"""Vectorized Section-IV validation: every C-VDPS against one worker.

Profiling the medium bench shape shows the catalog build's wall time is
dominated not by the subset DP itself but by the per-worker validation
scan — ``|W| x |C-VDPS|`` calls of
:func:`repro.vdps.catalog.validate_entry`, each re-reading arrival times,
expiries, and rewards through Python attribute access.  This module
flattens the center's entry list once into contiguous arrays
(:class:`EntryArrays`) and turns each worker's scan into a handful of
elementwise passes.

Bit-identity with the scalar scan holds operation for operation:

* feasibility is ``(t + offset) <= earliest_expiry`` per visit, exactly
  the comparison :meth:`repro.core.routing.Route.is_valid_with_offset`
  makes (expiries are evaluated once at array-build time; the property is
  deterministic);
* the completion time is ``last_arrival + offset`` — the same single
  addition ``Route.shifted`` performs on the final element;
* the payoff divides the entry's stored ``total_reward`` (the identical
  Python-summed float) by that completion, one IEEE-754 division either
  way.

Surviving strategies are materialised through the same
``entry.route.shifted(offset)`` call the scalar path uses, so the
resulting :class:`~repro.vdps.catalog.WorkerStrategy` objects are equal
field for field.  Workers with an individual speed (``factor != 1``) and
``strict_revalidation`` builds fall back to the scalar
``validate_entry`` loop — those paths re-route per worker and are rare by
construction.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

import numpy as np

from repro.core.routing import Route
from repro.vdps.catalog import WorkerStrategy, strategy_sort_key, validate_entry
from repro.vdps.generator import CVdpsEntry


@dataclass(frozen=True)
class EntryArrays:
    """Flattened, index-aligned view of one center's C-VDPS entry list.

    Row ``e`` of every per-entry array describes ``entries[e]``; the
    per-visit arrays are the entry routes' arrival times and expiries
    concatenated, delimited by ``seg_start``/``seg_len``.
    """

    entries: Sequence[CVdpsEntry]
    #: ``(E,)`` int64 — ``len(entry.point_ids)``.
    sizes: np.ndarray
    #: ``(E,)`` float64 — ``entry.route.total_reward`` (Python-summed).
    rewards: np.ndarray
    #: ``(E,)`` float64 — center-relative completion time (last arrival).
    last_time: np.ndarray
    #: ``(E,)`` intp — offset of each entry's segment in the flat arrays.
    seg_start: np.ndarray
    #: ``(E,)`` int64 — visits per entry (always >= 1).
    seg_len: np.ndarray
    #: ``(F,)`` float64 — concatenated center-relative arrival times.
    t_flat: np.ndarray
    #: ``(F,)`` float64 — concatenated per-visit earliest task expiries.
    expiry_flat: np.ndarray
    #: ``(E,)`` int64 — rank of ``tuple(sorted(point_ids))`` among all
    #: entries, so the catalog's payoff-tie ordering reduces to an integer
    #: sort key.
    ids_rank: np.ndarray
    #: ``(E,)`` — each entry's ``route.sequence`` tuple (shared, not
    #: copied), pre-gathered so materialisation skips attribute chains.
    sequences: Sequence[tuple]
    #: ``(E,)`` — each entry's ``point_ids`` frozenset, likewise shared.
    point_ids: Sequence[frozenset]

    @classmethod
    def from_entries(cls, entries: Sequence[CVdpsEntry]) -> "EntryArrays":
        """One pass over ``entries``; safe for an empty list."""
        sizes: List[int] = []
        rewards: List[float] = []
        last_time: List[float] = []
        seg_start: List[int] = []
        seg_len: List[int] = []
        t_flat: List[float] = []
        expiry_flat: List[float] = []
        ids_keys: List[tuple] = []
        # The dp-level properties (earliest_expiry scans tasks, total_reward
        # sums them) are pure; caching them per dp id turns the quadratic
        # entries-x-points property traffic into one lookup per visit.
        expiry_of: dict = {}
        reward_of: dict = {}
        sequences: List[tuple] = []
        point_ids: List[frozenset] = []
        cursor = 0
        for entry in entries:
            route = entry.route
            visits = route.arrival_times
            sequences.append(route.sequence)
            point_ids.append(entry.point_ids)
            sizes.append(len(entry.point_ids))
            reward_parts: List[float] = []
            for dp in route.sequence:
                dp_id = dp.dp_id
                reward = reward_of.get(dp_id)
                if reward is None:
                    reward = dp.total_reward
                    reward_of[dp_id] = reward
                    expiry_of[dp_id] = dp.earliest_expiry
                reward_parts.append(reward)
                expiry_flat.append(expiry_of[dp_id])
            # sum() accumulates 0 + r0 + r1 + ... exactly as the
            # route.total_reward property does.
            rewards.append(sum(reward_parts))
            last_time.append(route.completion_time)
            seg_start.append(cursor)
            seg_len.append(len(visits))
            cursor += len(visits)
            t_flat.extend(visits)
            ids_keys.append(tuple(sorted(entry.point_ids)))
        ids_rank = np.empty(len(ids_keys), dtype=np.int64)
        for rank, e in enumerate(
            sorted(range(len(ids_keys)), key=ids_keys.__getitem__)
        ):
            ids_rank[e] = rank
        return cls(
            entries=list(entries),
            sizes=np.asarray(sizes, dtype=np.int64),
            rewards=np.asarray(rewards, dtype=np.float64),
            last_time=np.asarray(last_time, dtype=np.float64),
            seg_start=np.asarray(seg_start, dtype=np.intp),
            seg_len=np.asarray(seg_len, dtype=np.int64),
            t_flat=np.asarray(t_flat, dtype=np.float64),
            expiry_flat=np.asarray(expiry_flat, dtype=np.float64),
            ids_rank=ids_rank,
            sequences=sequences,
            point_ids=point_ids,
        )

    @property
    def n_entries(self) -> int:
        return self.sizes.size


def validate_worker_vectorized(
    arrays: EntryArrays,
    worker,
    offset: float,
    factor: float,
    travel_model,
    center_location,
    strict_revalidation: bool = False,
) -> List[WorkerStrategy]:
    """All of one worker's valid strategies, in canonical catalog order.

    The returned list is already sorted by
    :func:`repro.vdps.catalog.strategy_sort_key` (best payoff first, ties
    by point ids) — the sort reduces to ``np.lexsort`` over the payoffs
    and the precomputed :attr:`EntryArrays.ids_rank`, so callers building
    full catalogs skip their own key-function sort.  Falls back to the
    scalar ``validate_entry`` loop for speed-scaled workers and strict
    revalidation (see module doc).
    """
    if factor != 1.0 or strict_revalidation:
        out: List[WorkerStrategy] = []
        for entry in arrays.entries:
            strategy = validate_entry(
                entry,
                worker,
                offset,
                factor,
                travel_model,
                center_location,
                strict_revalidation,
            )
            if strategy is not None:
                out.append(strategy)
        out.sort(key=strategy_sort_key)
        return out
    if not arrays.n_entries:
        return []
    t_shift = arrays.t_flat + offset
    ok = t_shift <= arrays.expiry_flat
    seg_ok = (
        np.add.reduceat(ok.astype(np.int64), arrays.seg_start)
        == arrays.seg_len
    )
    completion = arrays.last_time + offset
    valid = (
        (arrays.sizes <= worker.max_delivery_points)
        & seg_ok
        & (completion > 0)
    )
    idxs = np.flatnonzero(valid)
    if not idxs.size:
        return []
    # Scalar float division overflows to inf silently; match that (the
    # non-finite results are filtered out either way).
    with np.errstate(over="ignore", divide="ignore", invalid="ignore"):
        payoffs = arrays.rewards[idxs] / completion[idxs]
    finite = np.isfinite(payoffs)
    idxs = idxs[finite]
    payoffs = payoffs[finite]
    # Canonical order: payoff descending, ties by point ids ascending.
    # Negating a float is exact, and ids_rank orders exactly as the id
    # tuples do, so this is strategy_sort_key as an integer/float lexsort.
    order = np.lexsort((arrays.ids_rank[idxs], -payoffs))
    idxs = idxs[order]
    payoffs = payoffs[order]
    # Gather only the surviving entries' arrival-time segments (typically a
    # small fraction of the flat array) in one vectorized pass: for entry
    # i the flat positions are seg_start[i] + (0 .. len_i - 1), expressed
    # as a repeat-plus-arange.  The shift itself (t_flat + offset) is the
    # identical IEEE-754 addition Route.shifted performs per element.
    idx_list = idxs.tolist()
    sel_lens = arrays.seg_len[idxs]
    bounds = np.empty(idxs.size + 1, dtype=np.int64)
    bounds[0] = 0
    np.cumsum(sel_lens, out=bounds[1:])
    flat = np.repeat(arrays.seg_start[idxs] - bounds[:-1], sel_lens) + np.arange(
        bounds[-1]
    )
    vals = t_shift[flat].tolist()
    bl = bounds.tolist()
    # Objects are assembled through __new__ + object.__setattr__: this is
    # exactly what the frozen-dataclass __init__ does minus the
    # __post_init__ length check, which holds by construction here
    # (seg_len IS the sequence length) — the instances are field-for-field
    # identical.
    route_new = Route.__new__
    strategy_new = WorkerStrategy.__new__
    set_field = object.__setattr__
    out = []
    append = out.append
    for seq, pid, p, a, b in zip(
        map(arrays.sequences.__getitem__, idx_list),
        map(arrays.point_ids.__getitem__, idx_list),
        payoffs.tolist(),
        bl,
        bl[1:],
    ):
        route = route_new(Route)
        set_field(route, "sequence", seq)
        set_field(route, "arrival_times", tuple(vals[a:b]))
        strategy = strategy_new(WorkerStrategy)
        set_field(strategy, "point_ids", pid)
        set_field(strategy, "route", route)
        set_field(strategy, "payoff", p)
        append(strategy)
    return out
