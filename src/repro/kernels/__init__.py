"""Batched numpy kernels for the subset-DP hot paths.

Three kernels port the catalog pipeline's pure-Python dict loops to array
passes, each bit-identical to its retained scalar reference (the
differential suites in ``tests/kernels/`` assert exact equality):

* :mod:`repro.kernels.cvdps` — the Algorithm-1 layered C-VDPS DP
  (:func:`~repro.kernels.cvdps.compute_states_vectorized`);
* :mod:`repro.kernels.validate` — the Section-IV per-worker validation
  scan (:class:`~repro.kernels.validate.EntryArrays`);
* :mod:`repro.kernels.routing` — the Held-Karp routing DP
  (:func:`~repro.kernels.routing.best_route_vectorized`).

Tier selection (``scalar`` / ``vectorized`` / ``numba``) lives in
:mod:`repro.kernels.config`; see ``docs/performance.md`` for the
representation and the canonical-tie-break argument.
"""

from repro.kernels.config import (
    KERNEL_ENV_VAR,
    VALID_KERNELS,
    default_kernel,
    numba_available,
    resolve_kernel,
    set_default_kernel,
)

__all__ = [
    "KERNEL_ENV_VAR",
    "VALID_KERNELS",
    "default_kernel",
    "numba_available",
    "resolve_kernel",
    "set_default_kernel",
]
