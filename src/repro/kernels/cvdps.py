"""Vectorized C-VDPS layered DP (Algorithm 1 as numpy array passes).

This is the batched counterpart of
:func:`repro.vdps.generator.compute_states`: the same layered expansion
over ``(subset, endpoint)`` states, with each layer's candidate generation,
deadline filtering, and canonical ``(time, path)`` relaxation executed as
array operations instead of dict loops.  The output table is **bit
identical** to the scalar one — same keys, same floats, same tie-breaks —
which is what lets :class:`repro.vdps.delta.DeltaCatalog` splice deltas
over a kernel-built table and still land on the rebuild's exact result.

How bit-identity is preserved:

* **Travel times** come from :meth:`repro.geo.travel.TravelModel.matrix`,
  which fills the matrix through the same memoised ``distance()`` calls
  the scalar path makes (``math.hypot`` is correctly rounded; a vectorised
  ``np.hypot`` is not guaranteed to match it bit for bit, so it is never
  used here).
* **Float evaluation order** matches ``extend_value`` exactly:
  ``(t + service[j]) + T[j, q]``, left-associated, one IEEE-754 operation
  at a time — elementwise array arithmetic performs the identical scalar
  operations.
* **The canonical tie-break** — keep the lexicographically minimal
  ``(time, path)`` per state — reduces to an integer sort.  The frontier
  is maintained in path-lexicographic order, so a row's index *is* its
  path's rank; within one layer all paths have equal length, so comparing
  two candidate paths for the same ``(subset, q)`` target is comparing
  their parents' ranks.  Sorting candidates by ``(time, parent_rank)``
  and keeping the first per target therefore reproduces the scalar
  ``value < cur`` relaxation exactly, and re-sorting winners by
  ``(parent_rank, q)`` restores the path-lexicographic frontier invariant
  for the next layer.

Subsets are carried as packed little-endian bitmask rows (one bit per
delivery point in sorted-id order — the same layout as
:class:`repro.vdps.catalog.CatalogIndex`), and frontier expansion is
chunked so the transient candidate matrices stay bounded regardless of
layer width.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.geo.travel import TravelMatrix, TravelModel

#: Upper bound on cells in one transient candidate matrix (rows x points).
_CHUNK_CELLS = 1 << 22

_StateKey = Tuple[FrozenSet[str], str]
_StateVal = Tuple[float, Tuple[str, ...]]


def center_matrix(
    points_by_id: Mapping[str, object],
    travel: TravelModel,
    center_location,
) -> Tuple[List[str], TravelMatrix]:
    """Sorted dp ids plus their travel matrix (kernel index space).

    The kernels index everything by position in the sorted-id order, which
    is also the order the scalar DP seeds in.
    """
    ids = sorted(points_by_id)
    matrix = travel.matrix(
        [points_by_id[dp_id].location for dp_id in ids], origin=center_location
    )
    return ids, matrix


def compute_states_vectorized(
    points_by_id: Mapping[str, object],
    neighbors: Mapping[str, Sequence[str]],
    travel: TravelModel,
    center_location,
    cap: int,
    stats,
    tracer,
    center_id: str,
    matrix: Optional[TravelMatrix] = None,
    use_numba: bool = False,
) -> Dict[_StateKey, _StateVal]:
    """The full layered DP as array passes; see the module doc.

    Drop-in replacement for the scalar
    :func:`repro.vdps.generator.compute_states`: identical state table,
    identical ``DPStats`` increments, identical ``cvdps.layer`` tracer
    events.  ``matrix`` lets callers that already built the center's
    sorted-id travel matrix (e.g. to vectorize ``neighbor_lists``) share
    it; it must be indexed in sorted-``dp_id`` order, as
    :func:`center_matrix` builds it.
    """
    if matrix is None:
        ids, matrix = center_matrix(points_by_id, travel, center_location)
    else:
        ids = sorted(points_by_id)
    n = len(ids)
    idx_of = {dp_id: i for i, dp_id in enumerate(ids)}
    pts = [points_by_id[dp_id] for dp_id in ids]
    service = np.array([dp.service_hours for dp in pts], dtype=np.float64)
    deadline = np.array([dp.earliest_expiry for dp in pts], dtype=np.float64)
    times = matrix.times
    adjacency = np.zeros((n, n), dtype=bool)
    for dp_id, neigh in neighbors.items():
        j = idx_of[dp_id]
        for q_id in neigh:
            adjacency[j, idx_of[q_id]] = True

    expand = None
    if use_numba:  # pragma: no cover - requires an image with numba
        from repro.kernels import _numba

        expand = _numba.expand_candidates if _numba.AVAILABLE else None

    states: Dict[_StateKey, _StateVal] = {}

    # Layer 1: seed every singleton whose center leg meets its deadline.
    # flatnonzero ascends, so the frontier starts in path-lex order.
    seed_times = matrix.origin_times
    seed_idx = np.flatnonzero(seed_times <= deadline)
    stats.deadline_rejections += n - seed_idx.size
    f_ends = seed_idx.astype(np.intp)
    f_times = seed_times[seed_idx]
    n_bytes = max(1, -(-n // 8))
    pmask = np.zeros((seed_idx.size, n_bytes), dtype=np.uint8)
    if seed_idx.size:
        pmask[np.arange(seed_idx.size), f_ends >> 3] |= (
            1 << (f_ends & 7)
        ).astype(np.uint8)
    # Subset rank per frontier row: rows sharing a subset share a rank,
    # so (rank, endpoint) is the dedup key of the next layer's candidates.
    sid = np.arange(seed_idx.size, dtype=np.int64)
    f_paths: List[Tuple[str, ...]] = [(ids[e],) for e in f_ends.tolist()]
    for path, t in zip(f_paths, f_times.tolist()):
        states[(frozenset(path), path[-1])] = (t, path)
    stats.states_expanded += len(f_paths)
    if tracer.enabled:
        tracer.event(
            "cvdps.layer",
            center=center_id,
            size=1,
            states=len(f_paths),
            candidates=len(points_by_id),
            deadline_rejections=stats.deadline_rejections,
        )

    size = 1
    while f_times.size and size < cap:
        base = f_times + service[f_ends]
        chunk = max(1, _CHUNK_CELLS // max(n, 1))
        parents_parts: List[np.ndarray] = []
        qs_parts: List[np.ndarray] = []
        ts_parts: List[np.ndarray] = []
        layer_candidates = 0
        layer_rejections = 0
        for lo in range(0, f_times.size, chunk):
            hi = min(lo + chunk, f_times.size)
            member = np.unpackbits(
                pmask[lo:hi], axis=1, count=n, bitorder="little"
            ).astype(bool)
            allowed = adjacency[f_ends[lo:hi]] & ~member
            rows_c, qs_c = np.nonzero(allowed)
            layer_candidates += rows_c.size
            if not rows_c.size:
                continue
            rows_g = rows_c + lo
            if expand is not None:  # pragma: no cover - numba-only path
                t_new, feasible = expand(
                    base, f_ends, rows_g, qs_c, times, deadline
                )
            else:
                t_new = base[rows_g] + times[f_ends[rows_g], qs_c]
                feasible = t_new <= deadline[qs_c]
            layer_rejections += rows_c.size - int(np.count_nonzero(feasible))
            parents_parts.append(rows_g[feasible])
            qs_parts.append(qs_c[feasible])
            ts_parts.append(t_new[feasible])

        if parents_parts:
            parents = np.concatenate(parents_parts).astype(np.int64)
            qs = np.concatenate(qs_parts).astype(np.int64)
            ts = np.concatenate(ts_parts)
        else:
            parents = np.empty(0, dtype=np.int64)
            qs = np.empty(0, dtype=np.int64)
            ts = np.empty(0, dtype=np.float64)

        if parents.size:
            # Canonical relaxation: stable-sort candidates by (time, parent
            # rank), keep the first per (subset, endpoint) target.
            order = np.lexsort((parents, ts))
            key = sid[parents[order]] * np.int64(n) + qs[order]
            _, first = np.unique(key, return_index=True)
            wparents = parents[order][first]
            wqs = qs[order][first]
            wts = ts[order][first]
            # Path-lex frontier invariant: (parent rank, endpoint) order.
            reorder = np.lexsort((wqs, wparents))
            wparents = wparents[reorder]
            wqs = wqs[reorder]
            wts = wts[reorder]

            k = wts.size
            new_pmask = pmask[wparents].copy()
            new_pmask[np.arange(k), wqs >> 3] |= (1 << (wqs & 7)).astype(
                np.uint8
            )
            _, new_sid = np.unique(new_pmask, axis=0, return_inverse=True)
            new_paths = [
                f_paths[p] + (ids[q],)
                for p, q in zip(wparents.tolist(), wqs.tolist())
            ]
            for path, t in zip(new_paths, wts.tolist()):
                states[(frozenset(path), path[-1])] = (t, path)
            f_paths = new_paths
            f_ends = wqs.astype(np.intp)
            f_times = wts
            pmask = new_pmask
            sid = new_sid.reshape(-1).astype(np.int64)
        else:
            f_paths = []
            f_ends = np.empty(0, dtype=np.intp)
            f_times = np.empty(0, dtype=np.float64)
            pmask = np.zeros((0, n_bytes), dtype=np.uint8)
            sid = np.empty(0, dtype=np.int64)

        size += 1
        stats.states_expanded += f_times.size
        stats.candidates_tried += layer_candidates
        stats.deadline_rejections += layer_rejections
        if tracer.enabled:
            tracer.event(
                "cvdps.layer",
                center=center_id,
                size=size,
                states=int(f_times.size),
                candidates=layer_candidates,
                deadline_rejections=layer_rejections,
            )
    return states


def collect_entries_vectorized(
    points_by_id: Mapping[str, object],
    states: Mapping[_StateKey, _StateVal],
    matrix: TravelMatrix,
) -> list:
    """Array-pass counterpart of :func:`repro.vdps.generator.collect_entries`.

    Reconstructing every entry's full arrival-time vector through
    ``arrival_times`` costs one memoised travel call per hop; here the
    prefix times are rebuilt by *position* across all same-length paths —
    ``t[c] = (t[c-1] + service[p(c-1)]) + T[p(c-1), p(c)]`` with
    ``t[0] = origin_times[p(0)]`` — the identical left-associated float
    chain (``clock`` starts at ``0.0`` and ``0.0 + x == x`` bitwise), so
    the materialised routes match the scalar collector's float for float.
    ``matrix`` must be the sorted-id :func:`center_matrix`.
    """
    from repro.core.routing import Route
    from repro.vdps.generator import CVdpsEntry, best_per_subset

    best = best_per_subset(states)
    ids = sorted(points_by_id)
    idx_of = {dp_id: i for i, dp_id in enumerate(ids)}
    service = np.array(
        [points_by_id[dp_id].service_hours for dp_id in ids], dtype=np.float64
    )
    times = matrix.times
    origin = matrix.origin_times
    ordered = sorted(
        best.items(), key=lambda kv: (len(kv[0]), tuple(sorted(kv[0])))
    )
    entries: list = []
    pos = 0
    while pos < len(ordered):
        length = len(ordered[pos][1][1])
        end = pos
        while end < len(ordered) and len(ordered[end][1][1]) == length:
            end += 1
        group = ordered[pos:end]
        paths = np.array(
            [[idx_of[p] for p in value[1]] for _, value in group],
            dtype=np.intp,
        )
        t = np.empty((len(group), length), dtype=np.float64)
        t[:, 0] = origin[paths[:, 0]]
        for c in range(1, length):
            prev = paths[:, c - 1]
            t[:, c] = (t[:, c - 1] + service[prev]) + times[prev, paths[:, c]]
        rows = t.tolist()
        for r, (subset, value) in enumerate(group):
            sequence = tuple(points_by_id[p] for p in value[1])
            entries.append(CVdpsEntry(subset, Route(sequence, tuple(rows[r]))))
        pos = end
    return entries
