"""Kernel-tier selection for the subset-DP hot paths.

Three tiers exist for the C-VDPS layered DP, the Section-IV per-worker
validation scan, and the Held-Karp routing DP:

* ``scalar`` — the reference Python dict loops (always retained; the
  differential suites compare every other tier against it).
* ``vectorized`` — numpy array kernels in :mod:`repro.kernels`,
  bit-identical to scalar by construction (same float evaluation order,
  same canonical tie-breaks).  The default.
* ``numba`` — an optional JIT layer over the vectorized kernels.  Numba
  is deliberately *not* a dependency: when it cannot be imported the
  tier silently degrades to ``vectorized`` (counted in
  ``kernel.numba_fallbacks``), so requesting it is always safe.

The process-wide default comes from the ``REPRO_KERNEL`` environment
variable and can be overridden per call via the ``kernel=`` parameters on
:func:`repro.vdps.generator.generate_cvdps`,
:func:`repro.vdps.catalog.build_catalog`,
:class:`repro.vdps.delta.DeltaCatalog`, and
:func:`repro.core.routing.best_route`, or process-wide via
:func:`set_default_kernel` (the ``--kernel`` CLI flag).
"""

from __future__ import annotations

import os
from typing import Optional

from repro.obs.metrics import METRICS
from repro.utils.log import get_logger

logger = get_logger(__name__)

#: Environment variable naming the process-wide default kernel tier.
KERNEL_ENV_VAR = "REPRO_KERNEL"

#: The accepted tier names.
VALID_KERNELS = ("scalar", "vectorized", "numba")

_default_kernel: Optional[str] = None
_warned_numba = False


def _check(name: str) -> str:
    name = name.strip().lower()
    if name not in VALID_KERNELS:
        raise ValueError(
            f"kernel must be one of {', '.join(VALID_KERNELS)}, got {name!r}"
        )
    return name


def set_default_kernel(kernel: Optional[str]) -> None:
    """Set (or with ``None`` clear) the process-wide default kernel tier.

    A cleared default falls back to ``REPRO_KERNEL``, then ``vectorized``.
    """
    global _default_kernel
    _default_kernel = None if kernel is None else _check(kernel)


def default_kernel() -> str:
    """The process-wide default tier (override > env var > vectorized)."""
    if _default_kernel is not None:
        return _default_kernel
    env = os.environ.get(KERNEL_ENV_VAR)
    if env:
        return _check(env)
    return "vectorized"


def numba_available() -> bool:
    """Whether the optional numba JIT layer can actually be imported."""
    from repro.kernels import _numba

    return _numba.AVAILABLE


def resolve_kernel(kernel: Optional[str] = None) -> str:
    """The effective tier for one call: ``scalar`` or ``vectorized``.

    ``None`` resolves the process default.  ``numba`` resolves to itself
    only when the import succeeds; otherwise it degrades to ``vectorized``
    with one warning per process and a ``kernel.numba_fallbacks`` count —
    the vectorized kernels are the reference implementation the JIT layer
    compiles, so the degradation never changes results.
    """
    global _warned_numba
    name = default_kernel() if kernel is None else _check(kernel)
    if name == "numba" and not numba_available():
        METRICS.counter("kernel.numba_fallbacks").add(1)
        if not _warned_numba:
            logger.warning(
                "REPRO_KERNEL=numba requested but numba is not importable; "
                "falling back to the pure-numpy vectorized kernels"
            )
            _warned_numba = True
        name = "vectorized"
    return name
