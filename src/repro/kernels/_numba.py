"""Optional numba JIT layer — import-guarded, never a hard dependency.

Numba is not in the project's dependency set; this module only reports
whether it can be imported and, when it can, provides a compiled variant
of the innermost feasibility scan.  Every caller goes through
:func:`repro.kernels.config.resolve_kernel`, which degrades ``numba`` to
``vectorized`` when :data:`AVAILABLE` is false, so importing this module
is always safe and cheap.

The compiled function mirrors the numpy expression it replaces operation
for operation (same float order: ``(t + service) + travel``), so the
numba tier inherits the vectorized tier's bit-identity contract rather
than establishing its own.
"""

from __future__ import annotations

try:  # pragma: no cover - exercised only where numba is installed
    import numba as _numba_mod

    AVAILABLE = True
except ImportError:  # pragma: no cover - the only path on the CI image
    _numba_mod = None
    AVAILABLE = False


if AVAILABLE:  # pragma: no cover - exercised only where numba is installed

    @_numba_mod.njit(cache=True)
    def expand_candidates(base, ends, rows, qs, times_matrix, deadline):
        """``t_new`` and feasibility per candidate, compiled.

        ``base[r]`` is ``frontier_time[r] + service[ends[r]]``; the result
        pairs ``t_new = base[rows[k]] + T[ends[rows[k]], qs[k]]`` with
        ``t_new <= deadline[qs[k]]`` — exactly the numpy gather in
        :func:`repro.kernels.cvdps.compute_states_vectorized`.
        """
        m = rows.shape[0]
        t_new = base[rows].copy()
        feasible = t_new == t_new  # all-true boolean of matching length
        for k in range(m):
            t = base[rows[k]] + times_matrix[ends[rows[k]], qs[k]]
            t_new[k] = t
            feasible[k] = t <= deadline[qs[k]]
        return t_new, feasible

else:
    expand_candidates = None
