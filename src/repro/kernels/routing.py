"""Vectorized Held-Karp routing DP over reachable masks.

The batched counterpart of :func:`repro.core.routing.best_route`: one
``(n, n)`` relaxation per reachable visited-set instead of a Python
``(mask, j)`` dict loop.  Masks are enumerated layer by layer from
feasible predecessors only — a state at popcount ``s + 1`` needs a
feasible state at popcount ``s``, so an empty layer proves the full set
unreachable and exits early.

Bit-identity with the scalar DP:

* arrival times come from the same
  :meth:`~repro.geo.travel.TravelModel.matrix` floats, combined as
  ``(t_prev + service[i]) + T[i, j]`` — the scalar's exact left-associated
  evaluation order;
* the scalar keeps the minimal predecessor time with the *smallest* ``i``
  on ties (a strict ``<`` scan in ascending ``i``); ``np.argmin`` returns
  the first minimum, i.e. the same ``i``;
* deadline filtering happens after the min, as in the scalar loop (the
  deadline constrains the arrival itself, so min-then-filter and
  filter-then-min coincide);
* the final endpoint is the minimal full-mask time with the smallest
  ``j`` — again ``argmin``'s first-minimum rule.

Masks are Python ints shifted against an ``arange`` membership test, so
this kernel is limited to ``n <= 62``; the dispatching wrapper keeps the
scalar path for anything wider (where a ``2^n`` DP is hopeless anyway).
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.routing import Route, arrival_times
from repro.geo.point import Point
from repro.geo.travel import TravelModel

#: Widest point set the int-mask membership test supports.
MAX_VECTOR_POINTS = 62


def best_route_vectorized(
    center_location: Point,
    points: Sequence,
    travel: TravelModel,
    start_offset: float = 0.0,
) -> Optional[Route]:
    """Drop-in replacement for the scalar Held-Karp DP (see module doc).

    Callers must have checked for duplicate dp ids and ``n`` bounds
    (:func:`repro.core.routing.best_route` dispatches here).
    """
    pts = list(points)
    n = len(pts)
    if n == 0:
        return Route((), ())
    matrix = travel.matrix([dp.location for dp in pts], origin=center_location)
    times = matrix.times
    service = np.array([dp.service_hours for dp in pts], dtype=np.float64)
    deadline = np.array([dp.earliest_expiry for dp in pts], dtype=np.float64)
    bit_index = np.arange(n, dtype=np.int64)

    seed_times = start_offset + matrix.origin_times
    dp_times: Dict[int, np.ndarray] = {}
    dp_parents: Dict[int, np.ndarray] = {}
    layer: List[int] = []
    for j in np.flatnonzero(seed_times <= deadline).tolist():
        t_arr = np.full(n, math.inf, dtype=np.float64)
        p_arr = np.full(n, -2, dtype=np.int64)
        t_arr[j] = seed_times[j]
        p_arr[j] = -1
        mask = 1 << j
        dp_times[mask] = t_arr
        dp_parents[mask] = p_arr
        layer.append(mask)

    for _ in range(1, n):
        if not layer:
            return None  # no feasible state at this size => none above it
        next_times: Dict[int, np.ndarray] = {}
        next_parents: Dict[int, np.ndarray] = {}
        for mask in layer:
            base = dp_times[mask] + service
            cand = base[:, None] + times  # cand[i, j]; inf rows are inert
            best_i = np.argmin(cand, axis=0)
            best_t = cand[best_i, bit_index]
            members = ((mask >> bit_index) & 1).astype(bool)
            ok = ~members & np.isfinite(best_t) & (best_t <= deadline)
            for j in np.flatnonzero(ok).tolist():
                new_mask = mask | (1 << j)
                t_arr = next_times.get(new_mask)
                if t_arr is None:
                    t_arr = np.full(n, math.inf, dtype=np.float64)
                    next_times[new_mask] = t_arr
                    next_parents[new_mask] = np.full(n, -2, dtype=np.int64)
                t_arr[j] = best_t[j]
                next_parents[new_mask][j] = best_i[j]
        dp_times.update(next_times)
        dp_parents.update(next_parents)
        layer = list(next_times)

    full = (1 << n) - 1
    final = dp_times.get(full)
    if final is None:
        return None
    end = int(np.argmin(final))  # first minimum = smallest j on ties

    order: List[int] = []
    mask, j = full, end
    while j != -1:
        order.append(j)
        i = int(dp_parents[mask][j])
        mask ^= 1 << j
        j = i
    order.reverse()
    sequence: Tuple = tuple(pts[k] for k in order)
    arrivals = tuple(
        arrival_times(center_location, sequence, travel, start_offset)
    )
    return Route(sequence, arrivals)
