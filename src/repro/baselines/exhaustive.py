"""Exhaustive search over joint strategies — the test oracle.

Enumerates every conflict-free joint strategy (each worker takes one of its
VDPSs or null) and returns the lexicographic optimum of the FTA objective:
minimal payoff difference first, maximal average payoff second.  The state
space is ``prod_i (|ST_i| + 1)``, so this is only usable on tiny instances;
tests use it to bound how far the heuristics sit from the true optimum.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Set, Tuple

from repro.core.instance import SubProblem
from repro.core.payoff import average_payoff, payoff_difference
from repro.games.base import GameResult, GameState
from repro.games.trace import ConvergenceTrace
from repro.utils.rng import SeedLike
from repro.vdps.catalog import NULL_STRATEGY, VDPSCatalog, WorkerStrategy, build_catalog

#: Refuse to enumerate beyond this many joint strategies.
_DEFAULT_STATE_LIMIT = 5_000_000


def enumerate_joint_strategies(
    catalog: VDPSCatalog,
) -> Iterator[Dict[str, WorkerStrategy]]:
    """Yield every conflict-free joint strategy of ``catalog``'s workers."""
    workers = [w.worker_id for w in catalog.workers]

    def _extend(
        depth: int, chosen: Dict[str, WorkerStrategy], claimed: Set[str]
    ) -> Iterator[Dict[str, WorkerStrategy]]:
        if depth == len(workers):
            yield dict(chosen)
            return
        worker_id = workers[depth]
        options: List[WorkerStrategy] = [NULL_STRATEGY]
        options.extend(
            s
            for s in catalog.strategies(worker_id)
            if not (claimed and s.conflicts_with(claimed))
        )
        for strategy in options:
            chosen[worker_id] = strategy
            added = strategy.point_ids - claimed
            claimed |= added
            yield from _extend(depth + 1, chosen, claimed)
            claimed -= added
            del chosen[worker_id]

    yield from _extend(0, {}, set())


@dataclass(frozen=True)
class ExhaustiveSolver:
    """Brute-force lexicographic optimum of the FTA objective."""

    epsilon: Optional[float] = None
    state_limit: int = _DEFAULT_STATE_LIMIT

    @property
    def name(self) -> str:
        return "OPT"

    def solve(
        self,
        sub: SubProblem,
        catalog: Optional[VDPSCatalog] = None,
        seed: SeedLike = None,  # accepted for interface parity; unused
    ) -> GameResult:
        """Enumerate all joint strategies; raise if the space is too large."""
        if catalog is None:
            catalog = build_catalog(sub, epsilon=self.epsilon)
        space = 1
        for w in catalog.workers:
            space *= len(catalog.strategies(w.worker_id)) + 1
            if space > self.state_limit:
                raise ValueError(
                    f"joint strategy space exceeds limit {self.state_limit}; "
                    "ExhaustiveSolver is a test oracle for tiny instances"
                )
        best_key: Optional[Tuple[float, float]] = None
        best: Optional[Dict[str, WorkerStrategy]] = None
        for joint in enumerate_joint_strategies(catalog):
            payoffs = [joint[w.worker_id].payoff for w in catalog.workers]
            key = (payoff_difference(payoffs), -average_payoff(payoffs))
            if best_key is None or key < best_key:
                best_key, best = key, joint

        state = GameState(catalog)
        assert best is not None  # at least the all-null joint strategy exists
        for worker_id, strategy in best.items():
            if not strategy.is_null:
                state.set_strategy(worker_id, strategy)
        payoffs_arr = state.payoffs()
        trace = ConvergenceTrace()
        trace.record(1, payoffs_arr, switches=0, potential=float(payoffs_arr.sum()))
        return GameResult(state.to_assignment(), trace, converged=True, rounds=1)
