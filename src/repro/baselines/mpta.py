"""Maximal Payoff based Task Assignment (MPTA).

The paper's strongest fairness-blind baseline "applies a tree-decomposition-
based algorithm to identify the task assignment with maximal total payoffs"
(after refs [30, 31], which are not open source).  We reproduce its role —
an (almost) exact maximiser of total payoff that is markedly more expensive
than every other method — with branch and bound over workers' strategy
catalogs:

* Worker order comes from a tree decomposition of the *conflict graph*
  (workers adjacent when their catalogs can claim a common delivery point),
  computed with networkx's min-fill-in heuristic.  Processing workers in
  elimination order keeps conflicting workers close together, which makes
  the bound tighten early, the B&B analogue of dynamic programming along a
  tree decomposition.
* The admissible bound is the sum of each remaining worker's best payoff
  ignoring conflicts; branches that cannot beat the incumbent are cut.
* An optional node budget degrades the search to "best found so far" on
  adversarial instances; the result then still dominates the greedy
  baseline but is no longer certified optimal (``GameResult.converged``
  reports certification).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set

import networkx as nx
import numpy as np

from repro.core.instance import SubProblem
from repro.games.base import GameResult, GameState
from repro.games.trace import ConvergenceTrace
from repro.obs.metrics import METRICS
from repro.obs.tracer import resolve_tracer
from repro.utils.rng import SeedLike
from repro.vdps.catalog import NULL_STRATEGY, VDPSCatalog, WorkerStrategy, build_catalog
from repro.verify.verifier import make_assignment_verifier


@dataclass(frozen=True)
class MPTASolver:
    """Exact (budgeted) maximiser of the total worker payoff.

    ``beam_width`` caps how many (highest-payoff) non-conflicting
    strategies are branched on per worker per node.  ``None`` keeps the
    search exact; a finite beam bounds per-node cost on the huge unpruned
    catalogs of the ``-W`` experiment arms, degrading gracefully to a
    strong heuristic (``GameResult.converged`` reports certification).

    ``verify`` runs the :mod:`repro.verify` assignment-level checkers on
    the result (also enabled globally by ``REPRO_VERIFY=1``); off by
    default with zero overhead.

    ``trace`` emits structured :mod:`repro.obs` events (``mpta.order``,
    ``mpta.incumbent``, and ``mpta.search`` phase spans plus solve
    start/end records); accepts ``True`` (process-wide sink) or a tracer
    instance, off by default with zero overhead.
    """

    epsilon: Optional[float] = None
    node_budget: int = 2_000_000
    beam_width: Optional[int] = None
    restarts: int = 8
    verify: bool = False
    trace: object = False

    def __post_init__(self) -> None:
        if self.beam_width is not None and self.beam_width < 1:
            raise ValueError(f"beam_width must be >= 1 or None, got {self.beam_width}")
        if self.restarts < 0:
            raise ValueError(f"restarts must be >= 0, got {self.restarts}")

    @property
    def name(self) -> str:
        return "MPTA" if self.epsilon is not None else "MPTA-W"

    def solve(
        self,
        sub: SubProblem,
        catalog: Optional[VDPSCatalog] = None,
        seed: SeedLike = None,  # accepted for interface parity; unused
    ) -> GameResult:
        """Branch-and-bound search for the maximal-total-payoff assignment."""
        tracer = resolve_tracer(self.trace)
        if catalog is None:
            catalog = build_catalog(sub, epsilon=self.epsilon, tracer=tracer)
        if tracer.enabled:
            tracer.event(
                "mpta.solve_start",
                solver=self.name,
                center=sub.center.center_id,
                workers=len(catalog.workers),
                strategies=catalog.total_strategy_count,
                epsilon=self.epsilon,
            )
        with METRICS.timer("mpta.solve_seconds"):
            with tracer.span("mpta.order"):
                order = _elimination_order(catalog)
            search = _BranchAndBound(
                catalog, order, self.node_budget, self.beam_width
            )
            with tracer.span("mpta.incumbent", restarts=self.restarts):
                search.seed_incumbent(_multistart_incumbent(catalog, self.restarts))
            search_span = tracer.span("mpta.search")
            with search_span:
                best = search.run()
                if tracer.enabled:
                    search_span.add(nodes=search.nodes, certified=search.certified)
        METRICS.counter("mpta.nodes_expanded").add(search.nodes)

        state = GameState(catalog)
        for worker_id, strategy in best.items():
            if not strategy.is_null:
                state.set_strategy(worker_id, strategy)
        payoffs = state.payoffs()
        trace = ConvergenceTrace()
        trace.record(1, payoffs, switches=0, potential=float(payoffs.sum()))
        assignment = state.to_assignment()
        make_assignment_verifier(self.verify, solver=self.name).on_final(
            state, assignment, sub=sub
        )
        if tracer.enabled:
            tracer.event(
                "mpta.solve_end",
                solver=self.name,
                center=sub.center.center_id,
                nodes=search.nodes,
                certified=search.certified,
            )
        return GameResult(assignment, trace, converged=search.certified, rounds=1)


def _elimination_order(catalog: VDPSCatalog) -> List[str]:
    """Worker order from a tree decomposition of the conflict graph."""
    graph = nx.Graph()
    point_users: Dict[str, Set[str]] = {}
    for worker in catalog.workers:
        graph.add_node(worker.worker_id)
        for strategy in catalog.strategies(worker.worker_id):
            for dp_id in strategy.point_ids:
                point_users.setdefault(dp_id, set()).add(worker.worker_id)
    for users in point_users.values():
        users_sorted = sorted(users)
        for i, u in enumerate(users_sorted):
            for v in users_sorted[i + 1 :]:
                graph.add_edge(u, v)
    if graph.number_of_edges() == 0:
        return [w.worker_id for w in catalog.workers]
    _, decomposition = nx.algorithms.approximation.treewidth_min_fill_in(graph)
    # Walk the decomposition tree bag by bag (BFS from the largest bag) and
    # emit workers on first appearance: a perfect-elimination-style order.
    order: List[str] = []
    seen: Set[str] = set()
    root = max(decomposition.nodes, key=len)
    for bag in nx.bfs_tree(decomposition, root):
        for worker_id in sorted(bag):
            if worker_id not in seen:
                seen.add(worker_id)
                order.append(worker_id)
    for worker in catalog.workers:  # isolated workers missing from any bag
        if worker.worker_id not in seen:
            order.append(worker.worker_id)
            seen.add(worker.worker_id)
    return order


def _greedy_incumbent(catalog: VDPSCatalog) -> Dict[str, WorkerStrategy]:
    """Globally greedy assignment used to seed the branch-and-bound incumbent.

    Guarantees MPTA never returns a worse total payoff than the greedy
    baseline, even when the node budget truncates the search.
    """
    candidates = []
    for worker in catalog.workers:
        for strategy in catalog.strategies(worker.worker_id):
            candidates.append((-strategy.payoff, worker.worker_id, strategy))
    candidates.sort(key=lambda c: (c[0], c[1]))
    chosen: Dict[str, WorkerStrategy] = {}
    claimed: Set[str] = set()
    for _, worker_id, strategy in candidates:
        if worker_id in chosen or strategy.point_ids & claimed:
            continue
        chosen[worker_id] = strategy
        claimed |= strategy.point_ids
    return chosen


def _multistart_incumbent(
    catalog: VDPSCatalog, restarts: int
) -> Dict[str, WorkerStrategy]:
    """Best of (greedy + ``restarts`` permuted greedy starts), each polished.

    Every start is a conflict-free fill followed by deterministic payoff
    best-response polishing (:func:`_local_search`).  Restart permutations
    come from a fixed-seed generator, so MPTA stays fully deterministic.
    The exact B&B then only has to *certify or beat* this incumbent, which
    keeps MPTA's "highest total payoff" role intact even under tight node
    budgets.
    """

    def total(chosen: Dict[str, WorkerStrategy]) -> float:
        return sum(s.payoff for s in chosen.values())

    best = _local_search(catalog, _greedy_incumbent(catalog))
    rng = np.random.default_rng(0xF7A)
    worker_ids = [w.worker_id for w in catalog.workers]
    for _ in range(restarts):
        order = list(rng.permutation(worker_ids))
        chosen: Dict[str, WorkerStrategy] = {}
        claimed: Set[str] = set()
        for wid in order:
            for strategy in catalog.strategies(wid):  # best payoff first
                if not strategy.conflicts_with(claimed):
                    chosen[wid] = strategy
                    claimed |= strategy.point_ids
                    break
        candidate = _local_search(catalog, chosen)
        if total(candidate) > total(best):
            best = candidate
    return best


def _local_search(
    catalog: VDPSCatalog,
    chosen: Dict[str, WorkerStrategy],
    max_rounds: int = 50,
) -> Dict[str, WorkerStrategy]:
    """Deterministic payoff best-response passes to polish an incumbent.

    Workers take turns switching to their highest-payoff strategy that is
    disjoint from the others' current picks; total payoff rises strictly
    each switch, so the loop terminates.  Cheap (no search tree) and often
    lifts the greedy incumbent substantially, which both tightens the B&B
    bound and keeps MPTA's "highest total payoff" role honest when the
    node budget truncates the exact search.
    """
    chosen = dict(chosen)
    claimed: Dict[str, str] = {
        dp_id: wid for wid, s in chosen.items() for dp_id in s.point_ids
    }
    for _ in range(max_rounds):
        improved = False
        for worker in catalog.workers:
            wid = worker.worker_id
            current = chosen.get(wid, NULL_STRATEGY)
            others = {dp for dp, owner in claimed.items() if owner != wid}
            for strategy in catalog.strategies(wid):  # best payoff first
                if strategy.payoff <= current.payoff + 1e-12:
                    break  # sorted: nothing better remains
                if strategy.conflicts_with(others):
                    continue
                for dp_id in current.point_ids:
                    claimed.pop(dp_id, None)
                for dp_id in strategy.point_ids:
                    claimed[dp_id] = wid
                chosen[wid] = strategy
                improved = True
                break
        if not improved:
            break
    return chosen


class _BranchAndBound:
    """DFS over workers in ``order``, pruned by an optimistic payoff bound."""

    def __init__(
        self,
        catalog: VDPSCatalog,
        order: Sequence[str],
        node_budget: int,
        beam_width: Optional[int] = None,
    ) -> None:
        self._catalog = catalog
        self._order = list(order)
        self._budget = node_budget
        self._beam = beam_width
        self._nodes = 0
        self._best_total = -1.0
        self._best: Dict[str, WorkerStrategy] = {}
        # Optimistic completion: suffix sums of each worker's best payoff.
        best_payoffs = [
            (catalog.strategies(w)[0].payoff if catalog.has_strategies(w) else 0.0)
            for w in self._order
        ]
        self._suffix = [0.0] * (len(self._order) + 1)
        for i in range(len(self._order) - 1, -1, -1):
            self._suffix[i] = self._suffix[i + 1] + best_payoffs[i]
        self.certified = True

    @property
    def nodes(self) -> int:
        """Search-tree nodes expanded so far."""
        return self._nodes

    def seed_incumbent(self, chosen: Dict[str, WorkerStrategy]) -> None:
        """Install a known-feasible assignment as the starting incumbent."""
        total = sum(s.payoff for s in chosen.values())
        if total > self._best_total:
            self._best_total = total
            self._best = dict(chosen)

    def run(self) -> Dict[str, WorkerStrategy]:
        self._descend(0, {}, set(), 0.0)
        return self._best

    def _descend(
        self,
        depth: int,
        chosen: Dict[str, WorkerStrategy],
        claimed: Set[str],
        total: float,
    ) -> None:
        self._nodes += 1
        if self._nodes > self._budget:
            self.certified = False
            return
        if depth == len(self._order):
            if total > self._best_total:
                self._best_total = total
                self._best = dict(chosen)
            return
        if total + self._suffix[depth] <= self._best_total:
            return  # even a conflict-free completion cannot win
        worker_id = self._order[depth]
        candidates: List[WorkerStrategy] = []
        for s in self._catalog.strategies(worker_id):  # sorted best-first
            if claimed and s.conflicts_with(claimed):
                continue
            candidates.append(s)
            if self._beam is not None and len(candidates) >= self._beam:
                self.certified = False  # branches beyond the beam were cut
                break
        candidates.append(NULL_STRATEGY)
        for strategy in candidates:
            chosen[worker_id] = strategy
            if strategy.is_null:
                self._descend(depth + 1, chosen, claimed, total)
            else:
                claimed |= strategy.point_ids
                self._descend(depth + 1, chosen, claimed, total + strategy.payoff)
                claimed -= strategy.point_ids
            del chosen[worker_id]
            if self._nodes > self._budget:
                return
