"""Greedy Task Assignment (GTA) — the paper's fast fairness-blind baseline.

GTA "assigns each worker the VDPS with the maximal payoff from the
unassigned tasks" (Section VII-A).  Two natural readings exist and both are
provided:

* ``order="global"`` (default): repeatedly commit the globally best
  remaining ``(worker, VDPS)`` pair, i.e. highest payoff first across all
  workers, skipping pairs that conflict with earlier commitments.
* ``order="worker"``: scan workers once in their given order; each takes
  its best available VDPS.

Both run a single selection pass (no iteration), matching the CPU-time
discussion of Figure 11.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Optional, Set

from repro.core.instance import SubProblem
from repro.games.base import GameResult, GameState
from repro.games.trace import ConvergenceTrace
from repro.obs.metrics import METRICS
from repro.obs.tracer import resolve_tracer
from repro.utils.rng import SeedLike
from repro.vdps.catalog import VDPSCatalog, build_catalog
from repro.verify.verifier import make_assignment_verifier

_ORDERS = ("global", "worker")


@dataclass(frozen=True)
class GTASolver:
    """Greedy maximal-payoff assignment without fairness.

    ``verify`` runs the :mod:`repro.verify` assignment-level checkers on
    the result (also enabled globally by ``REPRO_VERIFY=1``); off by
    default with zero overhead.

    ``trace`` emits structured :mod:`repro.obs` events (a ``gta.select``
    phase span plus solve start/end records); accepts ``True`` (process-
    wide sink) or a tracer instance, off by default with zero overhead.
    """

    epsilon: Optional[float] = None
    order: str = "global"
    verify: bool = False
    trace: object = False

    def __post_init__(self) -> None:
        if self.order not in _ORDERS:
            raise ValueError(f"order must be one of {_ORDERS}, got {self.order!r}")

    @property
    def name(self) -> str:
        return "GTA" if self.epsilon is not None else "GTA-W"

    def solve(
        self,
        sub: SubProblem,
        catalog: Optional[VDPSCatalog] = None,
        seed: SeedLike = None,  # accepted for interface parity; unused
    ) -> GameResult:
        """Greedy selection; ``seed`` is ignored (GTA is deterministic)."""
        tracer = resolve_tracer(self.trace)
        if catalog is None:
            catalog = build_catalog(sub, epsilon=self.epsilon, tracer=tracer)
        if tracer.enabled:
            tracer.event(
                "gta.solve_start",
                solver=self.name,
                center=sub.center.center_id,
                workers=len(catalog.workers),
                strategies=catalog.total_strategy_count,
                epsilon=self.epsilon,
            )
        state = GameState(catalog)
        with tracer.span("gta.select", order=self.order), METRICS.timer(
            "gta.solve_seconds"
        ):
            if self.order == "worker":
                self._worker_order_pass(state, catalog)
            else:
                self._global_order_pass(state, catalog)
        payoffs = state.payoffs()
        trace = ConvergenceTrace()
        trace.record(1, payoffs, switches=0, potential=float(payoffs.sum()))
        assignment = state.to_assignment()
        make_assignment_verifier(self.verify, solver=self.name).on_final(
            state, assignment, sub=sub
        )
        if tracer.enabled:
            tracer.event(
                "gta.solve_end",
                solver=self.name,
                center=sub.center.center_id,
                assigned=int((payoffs > 0).sum()),
            )
        return GameResult(assignment, trace, converged=True, rounds=1)

    def _worker_order_pass(self, state: GameState, catalog: VDPSCatalog) -> None:
        for worker in catalog.workers:
            available = state.available_strategies(worker.worker_id)
            if available:
                # Catalog strategies are sorted best payoff first.
                state.set_strategy(worker.worker_id, available[0])

    def _global_order_pass(self, state: GameState, catalog: VDPSCatalog) -> None:
        # Lazy-deletion heap over every (payoff, worker, strategy) candidate:
        # when the popped best conflicts with commitments it is simply stale.
        heap = []
        counter = 0
        for worker in catalog.workers:
            for strategy in catalog.strategies(worker.worker_id):
                heap.append((-strategy.payoff, counter, worker.worker_id, strategy))
                counter += 1
        heapq.heapify(heap)
        assigned: Set[str] = set()
        claimed: Set[str] = set()
        while heap:
            _, _, worker_id, strategy = heapq.heappop(heap)
            if worker_id in assigned:
                continue
            if strategy.point_ids & claimed:
                continue
            state.set_strategy(worker_id, strategy)
            assigned.add(worker_id)
            claimed |= strategy.point_ids
