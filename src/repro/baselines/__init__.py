"""Baseline task-assignment algorithms: GTA, MPTA, random, exhaustive oracle."""

from repro.baselines.gta import GTASolver
from repro.baselines.mpta import MPTASolver
from repro.baselines.maxmin import MaxMinSolver
from repro.baselines.random_assign import RandomSolver
from repro.baselines.exhaustive import ExhaustiveSolver, enumerate_joint_strategies

__all__ = [
    "GTASolver",
    "MPTASolver",
    "MaxMinSolver",
    "RandomSolver",
    "ExhaustiveSolver",
    "enumerate_joint_strategies",
]
