"""Max-min fairness baseline (after Ye et al., the paper's reference [20]).

The related-work section discusses fair allocation that "maximize[s] the
minimum utility ... for all workers" in non-spatial task allocation.  This
solver ports that notion into the FTA setting as an additional comparator:
repeatedly give the currently poorest worker its best available VDPS.  It
is fairness-aware but, unlike FGT/IEGT, neither strategic nor
inequity-model-based, which makes it a useful ablation point between GTA
and the game-theoretic methods.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

from repro.core.instance import SubProblem
from repro.games.base import GameResult, GameState
from repro.games.trace import ConvergenceTrace
from repro.utils.rng import SeedLike
from repro.vdps.catalog import VDPSCatalog, build_catalog


@dataclass(frozen=True)
class MaxMinSolver:
    """Progressive-filling heuristic: always serve the poorest worker next.

    Each round picks the worker with the lowest current payoff that still
    has an available strategy improving it, and applies the *smallest*
    improving strategy (lifting the floor gently keeps options open for the
    other poor workers).  Stops when no poorest worker can improve.
    """

    epsilon: Optional[float] = None
    max_rounds: int = 10_000

    @property
    def name(self) -> str:
        return "MAXMIN"

    def solve(
        self,
        sub: SubProblem,
        catalog: Optional[VDPSCatalog] = None,
        seed: SeedLike = None,  # accepted for interface parity; unused
    ) -> GameResult:
        """Run progressive filling; deterministic, ``seed`` is ignored."""
        if catalog is None:
            catalog = build_catalog(sub, epsilon=self.epsilon)
        state = GameState(catalog)
        rounds = 0
        converged = False
        for rounds in range(1, self.max_rounds + 1):
            if not self._lift_poorest(state):
                converged = True
                break
        payoffs = state.payoffs()
        trace = ConvergenceTrace()
        trace.record(max(rounds, 1), payoffs, switches=0, potential=float(payoffs.sum()))
        return GameResult(state.to_assignment(), trace, converged, rounds)

    def _lift_poorest(self, state: GameState) -> bool:
        """Give the poorest improvable worker its smallest improvement."""
        order = sorted(
            state.workers,
            key=lambda w: (state.strategy_of(w.worker_id).payoff, w.worker_id),
        )
        for worker in order:
            wid = worker.worker_id
            current = state.strategy_of(wid).payoff
            best = None
            best_payoff = math.inf
            for strategy in state.available_strategies(wid):
                if current < strategy.payoff < best_payoff:
                    best, best_payoff = strategy, strategy.payoff
            if best is not None:
                state.set_strategy(wid, best)
                return True
        return False
