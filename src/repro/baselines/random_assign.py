"""Random assignment baseline.

Not part of the paper's evaluation, but useful as a floor in ablation
benches and as a stress generator in tests: each worker, in a random order,
picks a uniformly random available VDPS (or stays null with probability
``null_probability``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.core.instance import SubProblem
from repro.games.base import GameResult, GameState
from repro.games.trace import ConvergenceTrace
from repro.utils.rng import SeedLike, ensure_rng
from repro.vdps.catalog import VDPSCatalog, build_catalog


@dataclass(frozen=True)
class RandomSolver:
    """Uniform random conflict-free assignment."""

    epsilon: Optional[float] = None
    null_probability: float = 0.0

    def __post_init__(self) -> None:
        if not 0.0 <= self.null_probability <= 1.0:
            raise ValueError(
                f"null_probability must be in [0, 1], got {self.null_probability}"
            )

    @property
    def name(self) -> str:
        return "RAND"

    def solve(
        self,
        sub: SubProblem,
        catalog: Optional[VDPSCatalog] = None,
        seed: SeedLike = None,
    ) -> GameResult:
        """Draw one random valid assignment."""
        if catalog is None:
            catalog = build_catalog(sub, epsilon=self.epsilon)
        rng = ensure_rng(seed)
        state = GameState(catalog)
        order = list(catalog.workers)
        rng.shuffle(order)
        for worker in order:
            if self.null_probability and rng.random() < self.null_probability:
                continue
            available = state.available_strategies(worker.worker_id)
            if available:
                pick = available[int(rng.integers(0, len(available)))]
                state.set_strategy(worker.worker_id, pick)
        payoffs = state.payoffs()
        trace = ConvergenceTrace()
        trace.record(1, payoffs, switches=0, potential=float(payoffs.sum()))
        return GameResult(state.to_assignment(), trace, converged=True, rounds=1)
