"""Deterministic fault injection for the dispatch service (chaos harness).

A :class:`FaultPlan` is a seeded, purely functional description of which
faults fire where: every decision is drawn from a named
:class:`~repro.utils.rng.RngFactory` stream keyed by the fault kind, the
round index, the center id, and the rung/attempt — so the same plan against
the same engine produces the same chaos on every run, and a failing chaos
test replays exactly.

Supported fault classes (all independent, all rate-controlled):

* **Solver delays** — the per-center solve sleeps ``delay_s`` before
  running, which trips the engine's ``solve_deadline_s`` budget.
* **Solver exceptions** — the solve raises :class:`InjectedFault` instead
  of running, exercising the retry/degradation ladder.
* **Catalog-cache corruption** — a *cache hit* is tampered (the stored
  route arrival times of each worker's best strategy are shifted far past
  every deadline) so the solve either crashes on assignment validation or
  fails the engine's per-rung :func:`repro.verify` check; either way the
  engine must invalidate the entry and rebuild cleanly.
* **Torn journal tails** — :func:`tear_journal_tail` truncates a
  write-ahead journal mid-record, which recovery must survive by dropping
  the torn suffix.

Plans thread into the engine through the ``faults=`` kwarg of
:class:`~repro.service.engine.DispatchEngine` or process-wide through the
``REPRO_FAULTS`` environment variable (the same tiering as ``REPRO_TRACE``
and ``REPRO_VERIFY``), whose value is a comma-separated spec such as
``"seed=7,delay_rate=0.5,delay_s=0.2,error_rate=0.25"``.
"""

from __future__ import annotations

import dataclasses
import os
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Optional, Tuple, Union

from repro.utils.rng import RngFactory
from repro.vdps.catalog import VDPSCatalog, WorkerStrategy
from repro.core.routing import Route

#: Environment variable carrying a process-wide fault-plan spec.
FAULTS_ENV_VAR = "REPRO_FAULTS"

#: Hours added to tampered route arrival times — far past any deadline.
_CORRUPTION_SHIFT_HOURS = 1000.0


class InjectedFault(RuntimeError):
    """A deliberately injected solver failure (chaos testing only)."""


@dataclass(frozen=True)
class FaultPlan:
    """A seeded, deterministic chaos schedule for the dispatch engine.

    Parameters
    ----------
    seed:
        Root seed of the decision streams; two plans with the same seed and
        rates fire identically.
    delay_rate, delay_s:
        Probability that one solve attempt sleeps ``delay_s`` seconds
        before running.
    error_rate:
        Probability that one solve attempt raises :class:`InjectedFault`.
    cache_corruption_rate:
        Probability that a catalog-cache *hit* for a center is tampered.
    max_round:
        When set, faults only fire in rounds ``< max_round`` (lets a chaos
        test end with clean rounds to observe recovery).
    shard_kill_round, shard_kill_index:
        Process-level chaos for the sharded engine: at the start of round
        ``shard_kill_round`` the supervisor SIGKILLs shard
        ``shard_kill_index`` (modulo the shard count) exactly once, so the
        round exercises crash detection, respawn, journal replay, and the
        idempotent round retry.  Ignored by the single-process engine.
    """

    seed: int = 0
    delay_rate: float = 0.0
    delay_s: float = 0.1
    error_rate: float = 0.0
    cache_corruption_rate: float = 0.0
    max_round: Optional[int] = None
    shard_kill_round: Optional[int] = None
    shard_kill_index: int = 0

    def __post_init__(self) -> None:
        for name in ("delay_rate", "error_rate", "cache_corruption_rate"):
            rate = getattr(self, name)
            if not 0.0 <= rate <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {rate!r}")
        if self.delay_s < 0:
            raise ValueError(f"delay_s must be >= 0, got {self.delay_s!r}")
        if self.max_round is not None and self.max_round < 0:
            raise ValueError(f"max_round must be >= 0, got {self.max_round!r}")
        if self.shard_kill_round is not None and self.shard_kill_round < 0:
            raise ValueError(
                f"shard_kill_round must be >= 0, got {self.shard_kill_round!r}"
            )
        if self.shard_kill_index < 0:
            raise ValueError(
                f"shard_kill_index must be >= 0, got {self.shard_kill_index!r}"
            )

    @property
    def active(self) -> bool:
        """Whether any fault class has a non-zero rate."""
        return bool(
            self.delay_rate or self.error_rate or self.cache_corruption_rate
        )

    # -- deterministic decisions --------------------------------------------

    def _fires(self, rate: float, stream: str, round_index: int) -> bool:
        if rate <= 0.0:
            return False
        if self.max_round is not None and round_index >= self.max_round:
            return False
        draw = float(RngFactory(self.seed).get(stream).random())
        return draw < rate

    def solver_action(
        self, round_index: int, center_id: str, rung: int, attempt: int
    ) -> Optional[Tuple[str, float]]:
        """The fault one solve attempt suffers, or ``None``.

        Returns ``("error", 0.0)`` (raise :class:`InjectedFault`) or
        ``("delay", seconds)`` (sleep before solving).  Errors are drawn
        first so a plan with both rates at 1.0 always errors.
        """
        key = f"{round_index}:{center_id}:{rung}:{attempt}"
        if self._fires(self.error_rate, f"error:{key}", round_index):
            return ("error", 0.0)
        if self._fires(self.delay_rate, f"delay:{key}", round_index):
            return ("delay", self.delay_s)
        return None

    def corrupt_catalog(self, round_index: int, center_id: str) -> bool:
        """Whether this round's cache hit for ``center_id`` is tampered."""
        return self._fires(
            self.cache_corruption_rate,
            f"corrupt:{round_index}:{center_id}",
            round_index,
        )

    # -- corruption mechanics -----------------------------------------------

    @staticmethod
    def tamper(catalog: VDPSCatalog) -> VDPSCatalog:
        """A corrupted copy of ``catalog`` (the cache-rot simulation).

        Each worker's best strategy keeps its advertised payoff but its
        route's stored arrival times are shifted ~1000 h into the future:
        assignment validation (Definition 8 deadline feasibility) or the
        engine's per-rung :func:`repro.verify` payoff re-derivation must
        reject any solve that picks it.
        """
        tampered: Dict[str, Tuple[WorkerStrategy, ...]] = {}
        for worker in catalog.workers:
            strategies = catalog.strategies(worker.worker_id)
            if strategies:
                first = strategies[0]
                broken_route = Route(
                    first.route.sequence,
                    tuple(
                        t + _CORRUPTION_SHIFT_HOURS for t in first.route.arrival_times
                    ),
                )
                strategies = (
                    dataclasses.replace(first, route=broken_route),
                ) + strategies[1:]
            tampered[worker.worker_id] = strategies
        return VDPSCatalog(
            catalog.workers, tampered, catalog.epsilon, catalog.cvdps_count
        )

    # -- parsing ------------------------------------------------------------

    @classmethod
    def from_spec(cls, spec: str) -> "FaultPlan":
        """Parse a ``"key=value,key=value"`` spec (the ``REPRO_FAULTS`` form)."""
        fields = {f.name: f for f in dataclasses.fields(cls)}
        kwargs: Dict[str, object] = {}
        for chunk in spec.split(","):
            chunk = chunk.strip()
            if not chunk:
                continue
            key, sep, value = chunk.partition("=")
            key = key.strip()
            if not sep or key not in fields:
                raise ValueError(
                    f"bad fault spec entry {chunk!r}; known keys: "
                    f"{', '.join(sorted(fields))}"
                )
            if key in ("seed", "max_round", "shard_kill_round", "shard_kill_index"):
                kwargs[key] = int(value)
            else:
                kwargs[key] = float(value)
        return cls(**kwargs)

    @classmethod
    def from_env(cls) -> Optional["FaultPlan"]:
        """The plan named by ``REPRO_FAULTS``, or ``None`` when unset/empty."""
        spec = os.environ.get(FAULTS_ENV_VAR, "").strip()
        if not spec:
            return None
        return cls.from_spec(spec)

    def describe(self) -> str:
        """One-line summary for logs and ``/healthz``."""
        parts = [f"seed={self.seed}"]
        if self.delay_rate:
            parts.append(f"delay={self.delay_rate:g}@{self.delay_s:g}s")
        if self.error_rate:
            parts.append(f"error={self.error_rate:g}")
        if self.cache_corruption_rate:
            parts.append(f"cache_corruption={self.cache_corruption_rate:g}")
        if self.max_round is not None:
            parts.append(f"max_round={self.max_round}")
        if self.shard_kill_round is not None:
            parts.append(
                f"shard_kill=#{self.shard_kill_index}@round{self.shard_kill_round}"
            )
        return " ".join(parts)


def resolve_faults(
    flag: Union[None, "FaultPlan"] = None
) -> Optional["FaultPlan"]:
    """The plan an engine should use given its ``faults=`` kwarg.

    An explicit plan wins; otherwise the ``REPRO_FAULTS`` environment
    variable is consulted (mirroring ``REPRO_TRACE``/``REPRO_VERIFY``).
    """
    if flag is not None:
        return flag
    return FaultPlan.from_env()


def tear_journal_tail(path: Union[str, Path], drop_bytes: int = 7) -> int:
    """Truncate ``path`` mid-record, simulating a crash during a write.

    Removes the trailing newline plus ``drop_bytes`` content bytes of the
    final record, leaving a torn last line that journal recovery must drop.
    Returns the new file size.
    """
    target = Path(path)
    size = target.stat().st_size
    new_size = max(0, size - 1 - max(0, drop_bytes))
    with target.open("rb+") as fh:
        fh.truncate(new_size)
    return new_size
