"""Online dispatch service: a long-running HTTP assignment engine.

The production face of the reproduction (the ROADMAP's north star): the
paper's one-shot FTA solvers run continuously over a mutating world of
centers, couriers, and tasks, behind a stdlib-only JSON-over-HTTP API.

* :mod:`repro.service.state` — thread-safe world state with churn ops.
* :mod:`repro.service.cache` — snapshot-hash-keyed strategy-catalog cache.
* :mod:`repro.service.engine` — windowed micro-batch dispatch rounds,
  sharded per center through :func:`repro.parallel.solve_instance`, with
  optional :mod:`repro.verify` checking and :mod:`repro.obs` telemetry.
* :mod:`repro.service.api` — the HTTP server (``python -m repro serve``).
* :mod:`repro.service.client` — thin client + deterministic load generator.

See ``docs/service.md`` for the API reference and consistency semantics.
"""

from repro.service.api import DispatchServer
from repro.service.cache import SnapshotCatalogCache
from repro.service.client import DispatchClient, LoadGenerator, ServiceError
from repro.service.engine import DispatchEngine, RoundResult
from repro.service.state import Rejection, WorldSnapshot, WorldState

__all__ = [
    "DispatchClient",
    "DispatchEngine",
    "DispatchServer",
    "LoadGenerator",
    "Rejection",
    "RoundResult",
    "ServiceError",
    "SnapshotCatalogCache",
    "WorldSnapshot",
    "WorldState",
]
