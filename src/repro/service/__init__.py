"""Online dispatch service: a long-running HTTP assignment engine.

The production face of the reproduction (the ROADMAP's north star): the
paper's one-shot FTA solvers run continuously over a mutating world of
centers, couriers, and tasks, behind a stdlib-only JSON-over-HTTP API.

* :mod:`repro.service.state` — thread-safe world state with churn ops.
* :mod:`repro.service.cache` — snapshot-hash-keyed strategy-catalog cache.
* :mod:`repro.service.engine` — windowed micro-batch dispatch rounds,
  sharded per center through :func:`repro.parallel.solve_instance`, with
  optional :mod:`repro.verify` checking and :mod:`repro.obs` telemetry.
* :mod:`repro.service.api` — the HTTP server (``python -m repro serve``).
* :mod:`repro.service.client` — thin client + deterministic load generator.
* :mod:`repro.service.journal` — write-ahead journal (crash durability).
* :mod:`repro.service.breaker` — per-center circuit breakers.
* :mod:`repro.service.faults` — deterministic chaos-injection plans.
* :mod:`repro.service.shards` — supervised multi-process shard pool
  (``python -m repro serve --shards N``).

See ``docs/service.md`` for the API reference and consistency semantics,
and ``docs/fault_tolerance.md`` for the degradation ladder, breakers,
journal format, and recovery runbook.
"""

from repro.service.api import DispatchServer
from repro.service.breaker import BreakerBoard, BreakerConfig, CircuitBreaker
from repro.service.cache import SnapshotCatalogCache
from repro.service.client import (
    DispatchClient,
    LoadGenerator,
    ServiceError,
    ServiceUnavailable,
)
from repro.service.engine import (
    DispatchEngine,
    EngineDraining,
    RoundResult,
    ServiceOverloaded,
    SolveTimeout,
)
from repro.service.faults import FaultPlan, InjectedFault
from repro.service.journal import JournalCorruption, JournalRecord, WorldJournal
from repro.service.shards import (
    ShardBusy,
    ShardCrashed,
    ShardFailed,
    ShardSpec,
    ShardSupervisor,
    ShardedDispatchEngine,
)
from repro.service.state import Rejection, WorldSnapshot, WorldState

__all__ = [
    "BreakerBoard",
    "BreakerConfig",
    "CircuitBreaker",
    "DispatchClient",
    "DispatchEngine",
    "DispatchServer",
    "EngineDraining",
    "FaultPlan",
    "InjectedFault",
    "JournalCorruption",
    "JournalRecord",
    "LoadGenerator",
    "Rejection",
    "RoundResult",
    "ServiceError",
    "ServiceOverloaded",
    "ServiceUnavailable",
    "ShardBusy",
    "ShardCrashed",
    "ShardFailed",
    "ShardSpec",
    "ShardSupervisor",
    "ShardedDispatchEngine",
    "SnapshotCatalogCache",
    "SolveTimeout",
    "WorldJournal",
    "WorldSnapshot",
    "WorldState",
]
