"""Per-center strategy-catalog cache for the dispatch service.

Building the C-VDPS catalog (Algorithm 1 + Section IV validation) dominates
a round's cost, yet between two service rounds most centers are unchanged:
no new tasks landed, nobody's deadline moved, the same couriers are idle.
This cache keys each center's catalog by the
:func:`~repro.service.state._fingerprint` of its snapshotted sub-problem
(plus the pruning threshold), so a round only rebuilds the centers whose
content actually changed; any churn — task arrival, expiry, worker
movement, clock advance that shifts a relative deadline — changes the
fingerprint and invalidates the entry.

A changed fingerprint no longer means a from-scratch rebuild, though: in
delta mode (the default) each center keeps a
:class:`~repro.vdps.delta.DeltaCatalog` alive between rounds and a miss is
served by ``refresh(sub)`` — state surgery over whatever actually churned,
with the rebuild fallback handled inside the delta layer.  A
:class:`~repro.vdps.store.CatalogStore` additionally survives restarts:
the first miss for a center tries the store before paying a cold build, and
:meth:`persist` (called by the engine's drain) writes the live deltas back.

Either way a hit returns the *identical* catalog a cold build would produce
(the fingerprint covers every catalog input, and the delta layer's refresh
is proven bit-identical to ``build_catalog`` by the differential suites),
which is what makes warm-cache service rounds bit-identical to cold-cache
runs.  Hits and misses are recorded in :data:`repro.obs.METRICS` under
``service.catalog_cache.*``; the delta layer's own activity lands on
:data:`~repro.obs.metrics.CATALOG_DELTA_METRICS`.
"""

from __future__ import annotations

import threading
from typing import Dict, Optional, Tuple

from repro.core.instance import SubProblem
from repro.obs.metrics import METRICS
from repro.vdps.catalog import VDPSCatalog, build_catalog
from repro.vdps.delta import DeltaCatalog
from repro.vdps.store import CatalogStore


class SnapshotCatalogCache:
    """One catalog per center, valid while the center's fingerprint holds.

    Unlike :class:`repro.experiments.runner.CatalogCache` (which keys by
    ``(center, epsilon)`` for a *static* instance shared across algorithm
    arms), this cache serves a *mutating* world: the key includes the
    snapshot content hash, and a changed hash evicts the stale entry.

    Parameters
    ----------
    delta:
        Serve misses by incrementally refreshing a per-center
        :class:`DeltaCatalog` instead of rebuilding from scratch.  Output
        is identical either way; ``False`` restores the PR-5 behaviour
        (used by the bit-identity tests as the control arm).
    store:
        Optional persistent store consulted on a center's *first* miss and
        written by :meth:`persist`; ignored when ``delta`` is off.
    rebuild_fraction:
        Forwarded to every :class:`DeltaCatalog` this cache creates.
    """

    def __init__(
        self,
        delta: bool = True,
        store: Optional[CatalogStore] = None,
        rebuild_fraction: float = 0.5,
    ) -> None:
        self._lock = threading.Lock()
        self._entries: Dict[str, Tuple[str, Optional[float], VDPSCatalog]] = {}
        self._delta = bool(delta)
        self._store = store
        self._rebuild_fraction = float(rebuild_fraction)
        self._deltas: Dict[str, DeltaCatalog] = {}
        # Serialises builds/refreshes per center: an abandoned (timed-out)
        # solve may still be fetching a catalog when the retry starts, and
        # a DeltaCatalog mutates in place during refresh.
        self._center_locks: Dict[str, threading.Lock] = {}
        self._store_checked: Dict[str, bool] = {}

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    @property
    def delta_enabled(self) -> bool:
        return self._delta

    @property
    def store(self) -> Optional[CatalogStore]:
        return self._store

    def get(
        self, sub: SubProblem, fingerprint: str, epsilon: Optional[float]
    ) -> VDPSCatalog:
        """The catalog for ``sub``, rebuilt only when its content changed."""
        return self.get_with_status(sub, fingerprint, epsilon)[0]

    def get_with_status(
        self, sub: SubProblem, fingerprint: str, epsilon: Optional[float]
    ) -> Tuple[VDPSCatalog, bool]:
        """Like :meth:`get`, also reporting whether it was a hit.

        The fault-tolerant engine needs the distinction: injected
        cache-corruption only makes sense on a *hit* (a cold build is by
        definition fresh), and a corrupt entry must be invalidated so the
        retry's rebuild is clean.
        """
        center_id = sub.center.center_id
        with self._lock:
            entry = self._entries.get(center_id)
            build_lock = self._center_locks.setdefault(center_id, threading.Lock())
        if entry is not None and entry[0] == fingerprint and entry[1] == epsilon:
            METRICS.counter("service.catalog_cache.hits").add(1)
            return entry[2], True
        METRICS.counter("service.catalog_cache.misses").add(1)
        with build_lock:
            with METRICS.timer("service.catalog_build_seconds"):
                catalog = self._obtain(sub, center_id, epsilon)
            with self._lock:
                self._entries[center_id] = (fingerprint, epsilon, catalog)
        return catalog, False

    def _obtain(
        self, sub: SubProblem, center_id: str, epsilon: Optional[float]
    ) -> VDPSCatalog:
        """Produce the center's catalog (caller holds its build lock)."""
        if not self._delta:
            return build_catalog(sub, epsilon=epsilon)
        with self._lock:
            delta = self._deltas.get(center_id)
        if delta is not None and delta.epsilon == epsilon:
            return delta.refresh(sub)
        if self._store is not None and not self._store_checked.get(center_id):
            self._store_checked[center_id] = True
            loaded = self._store.load(center_id, epsilon)
            if loaded is not None:
                _, restored = loaded
                try:
                    # Replays whatever churned since the save; may fall
                    # back to a rebuild internally, never to wrong output.
                    catalog = restored.refresh(sub)
                except Exception:  # noqa: BLE001 — a rotten payload is a miss
                    METRICS.counter("catalog.delta_store_errors").add(1)
                else:
                    with self._lock:
                        self._deltas[center_id] = restored
                    return catalog
        delta = DeltaCatalog(
            sub, epsilon=epsilon, rebuild_fraction=self._rebuild_fraction
        )
        with self._lock:
            self._deltas[center_id] = delta
        return delta.catalog

    def persist(self) -> int:
        """Save every live delta catalog to the store; returns the count.

        Called by the engine's drain so a restart warm-starts from disk.
        No-op (0) without a store or in non-delta mode; save failures are
        counted (``catalog.delta_store_errors``) but never raised —
        shutdown must not fail on a full disk.
        """
        if self._store is None or not self._delta:
            return 0
        with self._lock:
            deltas = dict(self._deltas)
            fingerprints = {cid: entry[0] for cid, entry in self._entries.items()}
            locks = {
                cid: self._center_locks.setdefault(cid, threading.Lock())
                for cid in deltas
            }
        saved = 0
        for cid, delta in deltas.items():
            with locks[cid]:  # never pickle a delta mid-refresh
                if self._store.save(cid, fingerprints.get(cid, ""), delta):
                    saved += 1
        return saved

    def invalidate(self, center_id: str) -> bool:
        """Drop one center's entry *and* its delta state; True if either existed.

        The fault-tolerant engine calls this when a solve fails: the
        failure may stem from a rotten cached catalog, and in delta mode
        the delta's internal tables are part of that state — the next miss
        pays one full rebuild and is guaranteed clean.
        """
        with self._lock:
            had_entry = self._entries.pop(center_id, None) is not None
            had_delta = self._deltas.pop(center_id, None) is not None
            self._store_checked.pop(center_id, None)
        return had_entry or had_delta

    def clear(self) -> None:
        """Drop every entry (e.g. on an epsilon reconfiguration)."""
        with self._lock:
            self._entries.clear()
            self._deltas.clear()
            self._store_checked.clear()
