"""Per-center strategy-catalog cache for the dispatch service.

Building the C-VDPS catalog (Algorithm 1 + Section IV validation) dominates
a round's cost, yet between two service rounds most centers are unchanged:
no new tasks landed, nobody's deadline moved, the same couriers are idle.
This cache keys each center's catalog by the
:func:`~repro.service.state._fingerprint` of its snapshotted sub-problem
(plus the pruning threshold), so a round only rebuilds the centers whose
content actually changed; any churn — task arrival, expiry, worker
movement, clock advance that shifts a relative deadline — changes the
fingerprint and invalidates the entry.

A hit returns the *identical* catalog a cold build would produce (the
fingerprint covers every catalog input), which is what makes warm-cache
service rounds bit-identical to cold-cache runs.  Hits and misses are
recorded in :data:`repro.obs.METRICS` under ``service.catalog_cache.*``
and surface on ``GET /metrics``.
"""

from __future__ import annotations

import threading
from typing import Dict, Optional, Tuple

from repro.core.instance import SubProblem
from repro.obs.metrics import METRICS
from repro.vdps.catalog import VDPSCatalog, build_catalog


class SnapshotCatalogCache:
    """One catalog per center, valid while the center's fingerprint holds.

    Unlike :class:`repro.experiments.runner.CatalogCache` (which keys by
    ``(center, epsilon)`` for a *static* instance shared across algorithm
    arms), this cache serves a *mutating* world: the key includes the
    snapshot content hash, and a changed hash evicts the stale entry.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._entries: Dict[str, Tuple[str, Optional[float], VDPSCatalog]] = {}

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def get(
        self, sub: SubProblem, fingerprint: str, epsilon: Optional[float]
    ) -> VDPSCatalog:
        """The catalog for ``sub``, rebuilt only when its content changed."""
        return self.get_with_status(sub, fingerprint, epsilon)[0]

    def get_with_status(
        self, sub: SubProblem, fingerprint: str, epsilon: Optional[float]
    ) -> Tuple[VDPSCatalog, bool]:
        """Like :meth:`get`, also reporting whether it was a hit.

        The fault-tolerant engine needs the distinction: injected
        cache-corruption only makes sense on a *hit* (a cold build is by
        definition fresh), and a corrupt entry must be invalidated so the
        retry's rebuild is clean.
        """
        center_id = sub.center.center_id
        with self._lock:
            entry = self._entries.get(center_id)
        if entry is not None and entry[0] == fingerprint and entry[1] == epsilon:
            METRICS.counter("service.catalog_cache.hits").add(1)
            return entry[2], True
        METRICS.counter("service.catalog_cache.misses").add(1)
        with METRICS.timer("service.catalog_build_seconds"):
            catalog = build_catalog(sub, epsilon=epsilon)
        with self._lock:
            self._entries[center_id] = (fingerprint, epsilon, catalog)
        return catalog, False

    def invalidate(self, center_id: str) -> bool:
        """Drop one center's entry; returns whether one existed."""
        with self._lock:
            return self._entries.pop(center_id, None) is not None

    def clear(self) -> None:
        """Drop every entry (e.g. on an epsilon reconfiguration)."""
        with self._lock:
            self._entries.clear()
