"""The dispatch engine: windowed micro-batch solves over the live world.

Each call to :meth:`DispatchEngine.dispatch` is one *round* of the paper's
one-shot FTA problem over whatever the world holds right now, run the way
the ROADMAP's production system must:

1. **Snapshot** — atomically advance the clock, expire dead tasks, and
   freeze a :class:`~repro.service.state.WorldSnapshot` (solving happens
   outside the state lock, so churn keeps landing during a solve and is
   picked up next round).
2. **Shard** — hand the snapshot's per-center sub-problems to
   :func:`repro.parallel.solve_instance` (serial or process-pool), with
   catalogs served by the :class:`~repro.service.cache.SnapshotCatalogCache`
   so unchanged centers skip the C-VDPS rebuild.
3. **Commit** — apply routes exactly like
   :class:`~repro.sim.platform.DispatchSimulator`: workers go busy until
   their route completes and reappear at the last drop-off, delivered
   tasks leave the queue.  ``commit=False`` turns the round into a what-if
   preview that leaves the world untouched.

Determinism contract: round ``i`` solves with seed :meth:`round_seed`\\ (i)
and per-center streams ``"<solver.name>:<center_id>"`` — the exact streams
:func:`repro.experiments.runner.run_algorithms` derives — so an offline
``run_algorithms(snapshot.instance(), ..., seed=engine.round_seed(i))``
reproduces the service's committed routes, payoffs, and Equation 2
``P_dif`` bit-for-bit.

With ``verify=True`` every per-center assignment passes the Definition 8 /
Equations 1-2 checkers of :mod:`repro.verify` before it is committed.
Every round emits a ``service.round`` tracer event and feeds the
``service.dispatch_seconds`` latency histogram.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Tuple

from repro.obs.metrics import METRICS
from repro.obs.tracer import NullTracer, resolve_tracer
from repro.parallel import solve_instance
from repro.service.cache import SnapshotCatalogCache
from repro.service.state import WorldSnapshot, WorldState
from repro.utils.rng import RngFactory, SeedLike
from repro.verify.checkers import verify_assignment


@dataclass(frozen=True)
class RoundResult:
    """What one dispatch round saw, decided, and (maybe) committed.

    The service analogue of :class:`~repro.sim.platform.RoundRecord`, plus
    the routes themselves and the round's cache behaviour.
    """

    round_index: int
    now: float
    committed: bool
    center_ids: Tuple[str, ...]
    assigned_tasks: int
    expired_tasks: int
    pending_tasks: int
    available_workers: int
    payoff_difference: float
    average_payoff: float
    payoffs: Mapping[str, float] = field(default_factory=dict)
    assignments: Mapping[str, Mapping[str, Tuple[str, ...]]] = field(
        default_factory=dict
    )
    cache_hits: int = 0
    cache_misses: int = 0
    verified_centers: int = 0
    duration_seconds: float = 0.0

    def as_dict(self) -> Dict[str, object]:
        """JSON-ready view served by ``POST /dispatch``."""
        return {
            "round": self.round_index,
            "now": self.now,
            "committed": self.committed,
            "centers": list(self.center_ids),
            "assigned_tasks": self.assigned_tasks,
            "expired_tasks": self.expired_tasks,
            "pending_tasks": self.pending_tasks,
            "available_workers": self.available_workers,
            "payoff_difference": self.payoff_difference,
            "average_payoff": self.average_payoff,
            "payoffs": dict(self.payoffs),
            "assignments": {
                center: {w: list(dps) for w, dps in routes.items()}
                for center, routes in self.assignments.items()
            },
            "cache": {"hits": self.cache_hits, "misses": self.cache_misses},
            "verified_centers": self.verified_centers,
            "duration_seconds": self.duration_seconds,
        }


class DispatchEngine:
    """Runs dispatch rounds over a :class:`WorldState` (see module doc).

    Parameters
    ----------
    state:
        The mutable world the engine snapshots and commits into.
    solver:
        Any one-shot solver from the library (GTA/MPTA/FGT/IEGT/...).
    epsilon:
        VDPS pruning threshold for every center's catalog.
    n_jobs:
        Per-center solve parallelism, forwarded to
        :func:`repro.parallel.solve_instance`.
    verify:
        Run the assignment-level invariant checkers on every round.
    seed:
        Root seed of the engine's per-round streams.
    trace:
        ``False``/``True``/tracer instance, resolved like the solvers'
        ``trace=`` field.
    """

    def __init__(
        self,
        state: WorldState,
        solver,
        epsilon: Optional[float] = None,
        n_jobs: int = 1,
        verify: bool = False,
        seed: SeedLike = None,
        trace: object = False,
        history_limit: int = 256,
    ) -> None:
        if n_jobs < 1:
            raise ValueError(f"n_jobs must be >= 1, got {n_jobs}")
        if history_limit < 1:
            raise ValueError(f"history_limit must be >= 1, got {history_limit}")
        self._state = state
        self._solver = solver
        self._name = str(getattr(solver, "name", type(solver).__name__))
        self._epsilon = epsilon
        self._n_jobs = n_jobs
        self._verify = verify
        self._trace = trace
        self._rng = RngFactory(seed)
        self._cache = SnapshotCatalogCache()
        self._dispatch_lock = threading.Lock()
        self._round = 0
        self._history: List[RoundResult] = []
        self._history_limit = history_limit
        self._last_committed: Optional[RoundResult] = None

    # -- introspection ------------------------------------------------------

    @property
    def state(self) -> WorldState:
        return self._state

    @property
    def solver_name(self) -> str:
        return self._name

    @property
    def epsilon(self) -> Optional[float]:
        return self._epsilon

    @property
    def rounds_dispatched(self) -> int:
        return self._round

    @property
    def cache(self) -> SnapshotCatalogCache:
        return self._cache

    @property
    def history(self) -> List[RoundResult]:
        return list(self._history)

    @property
    def last_committed(self) -> Optional[RoundResult]:
        return self._last_committed

    def round_seed(self, index: int) -> int:
        """The root seed round ``index`` solves with (the fidelity hook)."""
        return self._rng.seed_for(f"round:{index}")

    # -- the dispatch loop --------------------------------------------------

    def dispatch(self, advance_hours: float = 0.0, commit: bool = True) -> RoundResult:
        """Run one micro-batch round; see the module doc for the phases."""
        with self._dispatch_lock:
            start = time.perf_counter()
            tracer = resolve_tracer(self._trace)
            with self._state.lock:
                self._state.advance(advance_hours)
                expired = self._state.expire()
                snapshot = self._state.snapshot()
            index = self._round
            self._round += 1
            hits_before = METRICS.counter("service.catalog_cache.hits").value
            misses_before = METRICS.counter("service.catalog_cache.misses").value

            payoffs: Dict[str, float] = {}
            assignments: Dict[str, Dict[str, Tuple[str, ...]]] = {}
            assigned = 0
            verified = 0
            p_dif = 0.0
            avg_p = 0.0
            if snapshot.subproblems:
                catalogs = {
                    sub.center.center_id: self._cache.get(
                        sub,
                        snapshot.fingerprints[sub.center.center_id],
                        self._epsilon,
                    )
                    for sub in snapshot.subproblems
                }
                solution = solve_instance(
                    snapshot.instance(),
                    self._solver,
                    epsilon=self._epsilon,
                    seed=self.round_seed(index),
                    n_jobs=self._n_jobs,
                    seed_stream=self._name,
                    catalogs=catalogs,
                )
                if self._verify:
                    for sub in snapshot.subproblems:
                        center_id = sub.center.center_id
                        verify_assignment(
                            solution.assignments[center_id],
                            sub=sub,
                            catalog=catalogs[center_id],
                            solver=self._name,
                        )
                        verified += 1
                for center_id, assignment in solution.assignments.items():
                    assignments[center_id] = dict(assignment.as_mapping())
                    for pair in assignment:
                        payoffs[pair.worker.worker_id] = pair.payoff
                p_dif = solution.payoff_difference
                avg_p = solution.average_payoff
                if commit:
                    assigned = self._state.commit(snapshot, solution.assignments)

            duration = time.perf_counter() - start
            result = RoundResult(
                round_index=index,
                now=snapshot.now,
                committed=commit,
                center_ids=tuple(snapshot.center_ids),
                assigned_tasks=assigned,
                expired_tasks=len(expired),
                pending_tasks=self._state.pending_task_count,
                available_workers=self._state.available_worker_count(),
                payoff_difference=p_dif,
                average_payoff=avg_p,
                payoffs=payoffs,
                assignments=assignments,
                cache_hits=METRICS.counter("service.catalog_cache.hits").value
                - hits_before,
                cache_misses=METRICS.counter("service.catalog_cache.misses").value
                - misses_before,
                verified_centers=verified,
                duration_seconds=duration,
            )
            self._record(result, tracer)
            return result

    def drain(self) -> None:
        """Block until any in-flight dispatch round has finished."""
        with self._dispatch_lock:
            pass

    # -- internals ----------------------------------------------------------

    def _record(self, result: RoundResult, tracer: NullTracer) -> None:
        self._history.append(result)
        if len(self._history) > self._history_limit:
            del self._history[: -self._history_limit]
        if result.committed:
            self._last_committed = result
        METRICS.counter("service.rounds").add(1)
        if result.committed:
            METRICS.counter("service.rounds.committed").add(1)
        METRICS.histogram("service.dispatch_seconds").observe(
            result.duration_seconds
        )
        METRICS.gauge("service.pending_tasks").set(result.pending_tasks)
        METRICS.gauge("service.available_workers").set(result.available_workers)
        METRICS.gauge("service.round.payoff_difference").set(
            result.payoff_difference
        )
        if tracer.enabled:
            tracer.event(
                "service.round",
                round=result.round_index,
                now=result.now,
                committed=result.committed,
                centers=len(result.center_ids),
                assigned=result.assigned_tasks,
                expired=result.expired_tasks,
                p_dif=result.payoff_difference,
                cache_hits=result.cache_hits,
                cache_misses=result.cache_misses,
                dur=result.duration_seconds,
            )
