"""The dispatch engine: windowed micro-batch solves over the live world.

Each call to :meth:`DispatchEngine.dispatch` is one *round* of the paper's
one-shot FTA problem over whatever the world holds right now, run the way
the ROADMAP's production system must:

1. **Snapshot** — atomically advance the clock, expire dead tasks, and
   freeze a :class:`~repro.service.state.WorldSnapshot` (solving happens
   outside the state lock, so churn keeps landing during a solve and is
   picked up next round).
2. **Shard** — hand the snapshot's per-center sub-problems to
   :func:`repro.parallel.solve_instance` (serial or process-pool), with
   catalogs served by the :class:`~repro.service.cache.SnapshotCatalogCache`
   so unchanged centers skip the C-VDPS rebuild.
3. **Commit** — apply routes exactly like
   :class:`~repro.sim.platform.DispatchSimulator`: workers go busy until
   their route completes and reappear at the last drop-off, delivered
   tasks leave the queue.  ``commit=False`` turns the round into a what-if
   preview that leaves the world untouched.

Determinism contract: round ``i`` solves with seed :meth:`round_seed`\\ (i)
and per-center streams ``"<solver.name>:<center_id>"`` — the exact streams
:func:`repro.experiments.runner.run_algorithms` derives — so an offline
``run_algorithms(snapshot.instance(), ..., seed=engine.round_seed(i))``
reproduces the service's committed routes, payoffs, and Equation 2
``P_dif`` bit-for-bit.

With ``verify=True`` every per-center assignment passes the Definition 8 /
Equations 1-2 checkers of :mod:`repro.verify` before it is committed.
Every round emits a ``service.round`` tracer event and feeds the
``service.dispatch_seconds`` latency histogram.

Fault tolerance (``docs/fault_tolerance.md``): passing ``solve_deadline_s``
or a :class:`~repro.service.faults.FaultPlan` switches per-center solving
to the degradation ladder — primary solver with retries + seeded-jitter
backoff, then a deadline-capped scalar variant, then GTA greedy, then
skip-the-center (tasks carry to the next round) — with a per-center
circuit breaker that routes repeatedly-failing centers straight to the
greedy rung.  Every rung's output is re-verified against the snapshot
before use, so a corrupted cached catalog can only cost a rebuild, never a
bad commit.  Without those knobs the engine runs the exact legacy path and
stays bit-identical to it.
"""

from __future__ import annotations

import dataclasses
import threading
import time
from concurrent.futures import Future, ThreadPoolExecutor
from concurrent.futures import TimeoutError as _FutureTimeout
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Tuple

from contextlib import nullcontext

from repro.baselines.gta import GTASolver
from repro.core.assignment import Assignment, WorkerAssignment
from repro.core.fairness import (
    DEFAULT_EQUITY_STRENGTH,
    gini_coefficient,
    jain_index,
)
from repro.core.instance import SubProblem
from repro.obs.metrics import METRICS
from repro.obs.tracer import (
    NullTracer,
    attach_context,
    current_context,
    resolve_tracer,
    start_trace,
)
from repro.parallel import InstanceSolution, solve_instance, solve_subproblem
from repro.service.breaker import BreakerBoard, BreakerConfig
from repro.service.cache import SnapshotCatalogCache
from repro.vdps.store import CatalogStore
from repro.service.faults import FaultPlan, InjectedFault, resolve_faults
from repro.service.state import WorldSnapshot, WorldState
from repro.utils.rng import RngFactory, SeedLike
from repro.verify.checkers import verify_assignment


#: Reusable no-op scope for ``with span if tracer.enabled else _NULL_SCOPE``
#: sites — keeps the disabled path from even building the span's kwargs.
_NULL_SCOPE = nullcontext()


class EngineDraining(RuntimeError):
    """The engine is shutting down and accepts no new dispatch rounds."""


class ServiceOverloaded(RuntimeError):
    """Admission control shed the request; retry after ``retry_after_s``.

    Raised when a bounded queue (the sharded engine's dispatch admission
    slots or a shard's RPC slots) is full.  The API layer maps it to
    ``503`` with a ``Retry-After`` header instead of queueing without
    bound — the backpressure contract of ``docs/fault_tolerance.md``.
    """

    def __init__(self, message: str, retry_after_s: float = 1.0) -> None:
        super().__init__(message)
        self.retry_after_s = float(retry_after_s)


class SolveTimeout(RuntimeError):
    """A per-center solve exceeded its ``solve_deadline_s`` budget."""


#: Upper bound on abandoned (timed-out but still running) solve threads one
#: center may accumulate before further deadline-bounded attempts for it are
#: refused outright.  A timed-out solve cannot be killed, only detached; the
#: cap keeps a persistently hung solver from leaking one thread per attempt
#: per round without bound — attempts past the cap fail fast with
#: :class:`SolveTimeout` and the ladder degrades as usual.
MAX_ABANDONED_SOLVES = 3


@dataclass(frozen=True)
class RoundResult:
    """What one dispatch round saw, decided, and (maybe) committed.

    The service analogue of :class:`~repro.sim.platform.RoundRecord`, plus
    the routes themselves and the round's cache behaviour.
    """

    round_index: int
    now: float
    committed: bool
    center_ids: Tuple[str, ...]
    assigned_tasks: int
    expired_tasks: int
    pending_tasks: int
    available_workers: int
    payoff_difference: float
    average_payoff: float
    payoffs: Mapping[str, float] = field(default_factory=dict)
    assignments: Mapping[str, Mapping[str, Tuple[str, ...]]] = field(
        default_factory=dict
    )
    cache_hits: int = 0
    cache_misses: int = 0
    verified_centers: int = 0
    duration_seconds: float = 0.0
    #: ``center_id -> ladder rung`` that produced its assignment; empty on
    #: the legacy (non-fault-tolerant) path.  Rung names: ``primary``,
    #: ``scalar``, ``greedy``, ``skip``.
    degraded: Mapping[str, str] = field(default_factory=dict)
    #: Whether the round solved with ledger-weighted equity utilities.
    equity_mode: bool = False
    #: Rolling-window fairness from the equity ledger, when one is
    #: attached to the world (``None`` otherwise — including dry-run
    #: rounds, which do not advance the ledger).
    rolling_gini: Optional[float] = None
    rolling_jain: Optional[float] = None

    def as_dict(self) -> Dict[str, object]:
        """JSON-ready view served by ``POST /dispatch``."""
        data = {
            "round": self.round_index,
            "now": self.now,
            "committed": self.committed,
            "centers": list(self.center_ids),
            "assigned_tasks": self.assigned_tasks,
            "expired_tasks": self.expired_tasks,
            "pending_tasks": self.pending_tasks,
            "available_workers": self.available_workers,
            "payoff_difference": self.payoff_difference,
            "average_payoff": self.average_payoff,
            "payoffs": dict(self.payoffs),
            "assignments": {
                center: {w: list(dps) for w, dps in routes.items()}
                for center, routes in self.assignments.items()
            },
            "cache": {"hits": self.cache_hits, "misses": self.cache_misses},
            "verified_centers": self.verified_centers,
            "duration_seconds": self.duration_seconds,
            "degraded": dict(self.degraded),
        }
        if self.rolling_gini is not None:
            data["equity"] = {
                "mode": self.equity_mode,
                "rolling_gini": self.rolling_gini,
                "rolling_jain": self.rolling_jain,
            }
        return data


class DispatchEngine:
    """Runs dispatch rounds over a :class:`WorldState` (see module doc).

    Parameters
    ----------
    state:
        The mutable world the engine snapshots and commits into.
    solver:
        Any one-shot solver from the library (GTA/MPTA/FGT/IEGT/...).
    epsilon:
        VDPS pruning threshold for every center's catalog.
    n_jobs:
        Per-center solve parallelism: forwarded to
        :func:`repro.parallel.solve_instance` on the legacy path, and the
        size of the thread pool centers fan out across on the
        fault-tolerant path.
    verify:
        Run the assignment-level invariant checkers on every round.
    seed:
        Root seed of the engine's per-round streams.
    trace:
        ``False``/``True``/tracer instance, resolved like the solvers'
        ``trace=`` field.
    solve_deadline_s:
        Per-center wall-clock budget for each solve attempt.  Setting it
        (or ``faults``) switches per-center solving to the fault-tolerant
        degradation ladder; ``None`` with no faults runs the legacy
        bit-identical path.
    solve_retries:
        Extra attempts of the *primary* rung after its first failure,
        separated by exponential backoff with seeded jitter.
    backoff_base_s:
        Base of the retry backoff (doubled per retry, jittered ×[0.5, 1.5)).
    scalar_round_cap:
        ``max_rounds`` cap of the degraded scalar rung.
    breaker:
        Per-center circuit-breaker tuning (``None`` = defaults); centers
        whose breaker is open skip straight to the greedy rung.
    breaker_clock:
        Injectable monotonic clock for the breakers (tests).
    faults:
        Deterministic chaos plan; ``None`` falls back to the
        ``REPRO_FAULTS`` environment variable.
    delta_catalog:
        Serve catalog-cache misses by incremental
        :class:`~repro.vdps.delta.DeltaCatalog` refresh (bit-identical to
        a rebuild, proven by the differential suites) instead of a cold
        build.  ``False`` restores the rebuild-per-miss behaviour.
    catalog_store:
        Optional :class:`~repro.vdps.store.CatalogStore` for warm
        restarts: consulted on each center's first cache miss, written by
        :meth:`drain`.  Requires ``delta_catalog``.
    equity_mode:
        Solve rounds with ledger-weighted equity utilities
        (``docs/temporal_fairness.md``): each round the solver receives
        the world's :class:`~repro.equity.ledger.EquityLedger` cumulative
        baselines, so envy/guilt act on long-run income, not just this
        round's payoffs.  The engine attaches a ledger to the world if it
        has none.  With ``equity_mode=False`` the engine still *records*
        rounds into an already-attached ledger (observer mode — how the
        per-round arm of a comparison keeps rolling metrics without
        changing its assignments).
    equity_strength:
        IAU amplification for equity rounds (see
        :func:`repro.core.fairness.equity_model`).
    """

    def __init__(
        self,
        state: WorldState,
        solver,
        epsilon: Optional[float] = None,
        n_jobs: int = 1,
        verify: bool = False,
        seed: SeedLike = None,
        trace: object = False,
        history_limit: int = 256,
        solve_deadline_s: Optional[float] = None,
        solve_retries: int = 1,
        backoff_base_s: float = 0.05,
        scalar_round_cap: int = 50,
        breaker: Optional[BreakerConfig] = None,
        breaker_clock=time.monotonic,
        faults: Optional[FaultPlan] = None,
        delta_catalog: bool = True,
        catalog_store: Optional[CatalogStore] = None,
        equity_mode: bool = False,
        equity_strength: float = DEFAULT_EQUITY_STRENGTH,
    ) -> None:
        if n_jobs < 1:
            raise ValueError(f"n_jobs must be >= 1, got {n_jobs}")
        if history_limit < 1:
            raise ValueError(f"history_limit must be >= 1, got {history_limit}")
        if solve_deadline_s is not None and not solve_deadline_s > 0:
            raise ValueError(
                f"solve_deadline_s must be > 0 or None, got {solve_deadline_s!r}"
            )
        if solve_retries < 0:
            raise ValueError(f"solve_retries must be >= 0, got {solve_retries}")
        if backoff_base_s < 0:
            raise ValueError(f"backoff_base_s must be >= 0, got {backoff_base_s}")
        if scalar_round_cap < 1:
            raise ValueError(f"scalar_round_cap must be >= 1, got {scalar_round_cap}")
        if not equity_strength > 0:
            raise ValueError(
                f"equity_strength must be > 0, got {equity_strength!r}"
            )
        self._state = state
        self._solver = solver
        self._name = str(getattr(solver, "name", type(solver).__name__))
        self._epsilon = epsilon
        self._n_jobs = n_jobs
        self._verify = verify
        self._trace = trace
        self._rng = RngFactory(seed)
        self._cache = SnapshotCatalogCache(
            delta=delta_catalog, store=catalog_store
        )
        self._dispatch_lock = threading.Lock()
        self._round = 0
        self._history: List[RoundResult] = []
        self._history_limit = history_limit
        self._last_committed: Optional[RoundResult] = None
        self._solve_deadline_s = solve_deadline_s
        self._solve_retries = solve_retries
        self._backoff_base_s = backoff_base_s
        self._scalar_round_cap = scalar_round_cap
        self._faults = resolve_faults(faults)
        self._breakers = BreakerBoard(breaker, breaker_clock)
        # Timed-out solves that are still running, per center (each center
        # is handled by one thread per round, so no extra locking needed).
        self._abandoned: Dict[str, List[Future]] = {}
        self._fault_tolerant = (
            solve_deadline_s is not None or self._faults is not None
        )
        self._ladder = self._build_ladder() if self._fault_tolerant else ()
        self._equity_mode = bool(equity_mode)
        self._equity_strength = float(equity_strength)
        if self._equity_mode:
            state.enable_equity()
        self._draining = False

    # -- introspection ------------------------------------------------------

    @property
    def state(self) -> WorldState:
        return self._state

    @property
    def solver_name(self) -> str:
        return self._name

    @property
    def epsilon(self) -> Optional[float]:
        return self._epsilon

    @property
    def rounds_dispatched(self) -> int:
        return self._round

    @property
    def cache(self) -> SnapshotCatalogCache:
        return self._cache

    @property
    def history(self) -> List[RoundResult]:
        return list(self._history)

    @property
    def last_committed(self) -> Optional[RoundResult]:
        return self._last_committed

    @property
    def breakers(self) -> BreakerBoard:
        return self._breakers

    @property
    def faults(self) -> Optional[FaultPlan]:
        return self._faults

    @property
    def fault_tolerant(self) -> bool:
        """Whether per-center solves run on the degradation ladder."""
        return self._fault_tolerant

    @property
    def equity_mode(self) -> bool:
        """Whether rounds solve with ledger-weighted equity utilities."""
        return self._equity_mode

    @property
    def equity_strength(self) -> float:
        return self._equity_strength

    @property
    def draining(self) -> bool:
        return self._draining

    def round_seed(self, index: int) -> int:
        """The root seed round ``index`` solves with (the fidelity hook)."""
        return self._rng.seed_for(f"round:{index}")

    def resume_at(self, index: int) -> None:
        """Align the round counter so the next dispatch runs round ``index``.

        Used by shard workers: the supervisor owns the global round
        counter and passes the index with every round RPC, so a respawned
        worker (whose own counter restarted at the journal's last round)
        re-derives exactly the per-round seeds of the round it is asked to
        run — the bit-identity contract across crashes and shard counts.
        """
        if index < 0:
            raise ValueError(f"round index must be >= 0, got {index}")
        self._round = int(index)

    # -- the dispatch loop --------------------------------------------------

    def dispatch(self, advance_hours: float = 0.0, commit: bool = True) -> RoundResult:
        """Run one micro-batch round; see the module doc for the phases.

        Raises :class:`EngineDraining` once :meth:`begin_drain` has been
        called: shutdown lets the in-flight round finish committing but
        admits no new ones (the half-committed-round race fix).
        """
        if self._draining:
            raise EngineDraining(
                "dispatch engine is draining; no new rounds accepted"
            )
        with self._dispatch_lock:
            start = time.perf_counter()
            tracer = resolve_tracer(self._trace)
            # Each round belongs to exactly one trace: adopt the ambient
            # context (the HTTP request's, carrying X-Repro-Trace-Id) when
            # present, otherwise open a per-round trace so offline callers
            # get complete trees — and head sampling — too.
            trace_scope = (
                start_trace()
                if tracer.enabled and current_context() is None
                else nullcontext()
            )
            with trace_scope, tracer.span("service.round") as round_span:
                result = self._dispatch_round(
                    advance_hours, commit, start, tracer, round_span
                )
            return result

    def _dispatch_round(
        self,
        advance_hours: float,
        commit: bool,
        start: float,
        tracer: NullTracer,
        round_span,
    ) -> RoundResult:
        """The body of one round, run under the round's span context."""
        with self._state.lock:
            self._state.advance(advance_hours)
            expired = self._state.expire()
            snapshot = self._state.snapshot()
        index = self._round
        self._round += 1
        hits_before = METRICS.counter("service.catalog_cache.hits").value
        misses_before = METRICS.counter("service.catalog_cache.misses").value
        # Equity baselines are read once per round from the committed
        # ledger state, so every center of the round sees the same
        # cumulative picture regardless of solve order.  All-equal
        # baselines (cold start, or a history of all-idle rounds) carry
        # no cross-round signal — the amplified IAU then degenerates to
        # per-round differences with beta' > 1, where the all-null
        # assignment is a Nash equilibrium that dispersed-payoff worlds
        # cascade into — so those rounds solve with plain per-round IAU.
        baselines = (
            self._state.equity.baselines()
            if self._equity_mode and self._state.equity is not None
            else None
        )
        if baselines is not None:
            values = baselines.values()
            if not baselines or min(values) == max(values):
                baselines = None

        payoffs: Dict[str, float] = {}
        assignments: Dict[str, Dict[str, Tuple[str, ...]]] = {}
        degraded: Dict[str, str] = {}
        assigned = 0
        verified = 0
        p_dif = 0.0
        avg_p = 0.0
        if snapshot.subproblems:
            if self._fault_tolerant:
                solution, degraded, verified = self._solve_fault_tolerant(
                    snapshot, index, tracer, baselines
                )
            else:
                catalogs = {
                    sub.center.center_id: self._cache.get(
                        sub,
                        snapshot.fingerprints[sub.center.center_id],
                        self._epsilon,
                    )
                    for sub in snapshot.subproblems
                }
                METRICS.counter("dispatch.center_solves").add(
                    len(snapshot.subproblems)
                )
                solution = solve_instance(
                    snapshot.instance(),
                    self._with_equity(self._solver, baselines),
                    epsilon=self._epsilon,
                    seed=self.round_seed(index),
                    n_jobs=self._n_jobs,
                    seed_stream=self._name,
                    catalogs=catalogs,
                )
                if self._verify:
                    for sub in snapshot.subproblems:
                        center_id = sub.center.center_id
                        verify_assignment(
                            solution.assignments[center_id],
                            sub=sub,
                            catalog=catalogs[center_id],
                            solver=self._name,
                        )
                        verified += 1
            for center_id, assignment in solution.assignments.items():
                assignments[center_id] = dict(assignment.as_mapping())
                for pair in assignment:
                    payoffs[pair.worker.worker_id] = pair.payoff
            p_dif = solution.payoff_difference
            avg_p = solution.average_payoff
            if commit:
                assigned = self._state.commit(snapshot, solution.assignments)

        rolling_gini: Optional[float] = None
        rolling_jain: Optional[float] = None
        ledger = self._state.equity
        if commit and ledger is not None:
            # Recorded whenever a ledger is attached, not just in equity
            # mode: observer-mode worlds (the per-round arm of an equity
            # comparison) keep rolling metrics without changing routes.
            # Empty rounds record an empty payoff map so idle time still
            # decays every balance.
            self._state.record_equity(payoffs)
            rolling_gini = ledger.rolling_gini()
            rolling_jain = ledger.rolling_jain()
            if tracer.enabled:
                tracer.event(
                    "equity.record",
                    round=index,
                    workers=len(payoffs),
                    ledger_rounds=ledger.rounds,
                    rolling_gini=rolling_gini,
                )

        duration = time.perf_counter() - start
        result = RoundResult(
            round_index=index,
            now=snapshot.now,
            committed=commit,
            center_ids=tuple(snapshot.center_ids),
            assigned_tasks=assigned,
            expired_tasks=len(expired),
            pending_tasks=self._state.pending_task_count,
            available_workers=self._state.available_worker_count(),
            payoff_difference=p_dif,
            average_payoff=avg_p,
            payoffs=payoffs,
            assignments=assignments,
            cache_hits=METRICS.counter("service.catalog_cache.hits").value
            - hits_before,
            cache_misses=METRICS.counter("service.catalog_cache.misses").value
            - misses_before,
            verified_centers=verified,
            duration_seconds=duration,
            degraded=degraded,
            equity_mode=self._equity_mode,
            rolling_gini=rolling_gini,
            rolling_jain=rolling_jain,
        )
        self._record(result)
        if tracer.enabled:
            round_span.add(
                round=result.round_index,
                now=result.now,
                committed=result.committed,
                centers=len(result.center_ids),
                assigned=result.assigned_tasks,
                expired=result.expired_tasks,
                p_dif=result.payoff_difference,
                cache_hits=result.cache_hits,
                cache_misses=result.cache_misses,
                degraded=sum(
                    1 for rung in result.degraded.values() if rung != "primary"
                ),
            )
        return result

    def begin_drain(self) -> None:
        """Refuse new dispatch rounds (in-flight rounds keep committing).

        Shutdown order matters: flip this first, then :meth:`drain` — a
        SIGTERM arriving mid-round thus finishes the round's commit
        atomically instead of racing the server teardown.
        """
        self._draining = True

    def drain(self) -> None:
        """Block until any in-flight dispatch round has finished.

        With a catalog store configured, the quiesced engine then persists
        every live delta catalog so the next process warm-starts from disk
        instead of paying cold C-VDPS builds.
        """
        with self._dispatch_lock:
            pass
        self._cache.persist()

    # -- the degradation ladder ---------------------------------------------

    def _build_ladder(self) -> Tuple[Tuple[str, object], ...]:
        """``(rung_name, solver)`` pairs, most faithful first.

        ``primary`` is the configured solver; ``scalar`` is its
        deadline-capped scalar variant when the solver supports one (FGT /
        IEGT dataclasses); ``greedy`` is the always-fast fairness-blind
        GTA; ``skip`` (solver ``None``) assigns every worker the null
        strategy so the center's tasks carry to the next round.
        """
        rungs: List[Tuple[str, object]] = [("primary", self._solver)]
        scalar = self._scalar_variant()
        if scalar is not None:
            rungs.append(("scalar", scalar))
        rungs.append(("greedy", GTASolver(epsilon=self._epsilon)))
        rungs.append(("skip", None))
        return tuple(rungs)

    def _scalar_variant(self):
        """A capped scalar copy of the primary solver, or ``None``."""
        if getattr(self._solver, "engine", None) != "vectorized":
            return None
        max_rounds = getattr(self._solver, "max_rounds", self._scalar_round_cap)
        changes: Dict[str, object] = {
            "engine": "scalar",
            "max_rounds": min(max_rounds, self._scalar_round_cap),
        }
        try:
            return dataclasses.replace(
                self._solver, deadline_s=self._solve_deadline_s, **changes
            )
        except TypeError:
            pass  # solver has no deadline_s field (e.g. IEGT)
        try:
            return dataclasses.replace(self._solver, **changes)
        except TypeError:
            return None

    def _greedy_rung_index(self) -> int:
        for i, (name, _) in enumerate(self._ladder):
            if name == "greedy":
                return i
        return len(self._ladder) - 1

    def _with_equity(self, solver, baselines):
        """An equity-mode copy of ``solver``, or ``solver`` unchanged.

        Solvers without equity fields (the GTA greedy rung) stay
        equity-blind: a degraded center falls back to exactly the same
        fairness-blind greedy it would without equity mode.  IEGT carries
        no ``equity_strength`` field (its replicator gate needs no
        amplification), so the strength is set only where it exists.
        """
        if baselines is None or solver is None:
            return solver
        if not dataclasses.is_dataclass(solver):
            return solver
        names = {f.name for f in dataclasses.fields(solver)}
        if "equity_mode" not in names:
            return solver
        changes: Dict[str, object] = {
            "equity_mode": True,
            "equity_baselines": baselines,
        }
        if "equity_strength" in names:
            changes["equity_strength"] = self._equity_strength
        return dataclasses.replace(solver, **changes)

    def _solve_fault_tolerant(
        self,
        snapshot: WorldSnapshot,
        index: int,
        tracer: NullTracer,
        baselines: Optional[Mapping[str, float]] = None,
    ) -> Tuple[InstanceSolution, Dict[str, str], int]:
        """Solve each center down the ladder; never raises.

        Seeds are derived exactly like :func:`repro.parallel.solve_instance`
        (``RngFactory(round_seed).seed_for(f"{name}:{center}")``), so a
        center whose primary rung succeeds is bit-identical to the legacy
        path.  Centers fan out across an ``n_jobs``-bounded thread pool
        (the thread analogue of the legacy path's sharding — process pools
        cannot carry the breaker/cache state); seeds are derived up front
        and each center's walk is independent, so results are
        bit-identical regardless of scheduling.

        Returns ``(solution, center -> rung, centers actually verified)``.
        """
        round_rng = RngFactory(self.round_seed(index))
        subs = snapshot.subproblems
        seeds = {
            sub.center.center_id: round_rng.seed_for(
                f"{self._name}:{sub.center.center_id}"
            )
            for sub in subs
        }

        # contextvars stay on their thread: capture the round's context here
        # and re-attach it inside each pool worker so per-center spans hang
        # off the round span instead of becoming orphans.
        ctx = current_context()

        def solve(sub: SubProblem) -> Tuple[Assignment, str, bool]:
            cid = sub.center.center_id
            METRICS.counter("dispatch.center_solves").add(1)
            if not tracer.enabled:
                return self._solve_center(
                    sub, snapshot, index, cid, seeds[cid], tracer, baselines
                )
            with attach_context(ctx):
                with tracer.span(
                    "service.center_solve", round=index, center=cid
                ) as span:
                    outcome = self._solve_center(
                        sub, snapshot, index, cid, seeds[cid], tracer,
                        baselines,
                    )
                    span.add(rung=outcome[1])
            return outcome

        if self._n_jobs > 1 and len(subs) > 1:
            with ThreadPoolExecutor(
                max_workers=min(self._n_jobs, len(subs)),
                thread_name_prefix="dispatch-center",
            ) as pool:
                outcomes = list(pool.map(solve, subs))
        else:
            outcomes = [solve(sub) for sub in subs]

        assignments: Dict[str, Assignment] = {}
        degraded: Dict[str, str] = {}
        verified = 0
        for sub, (assignment, rung, checked) in zip(subs, outcomes):
            cid = sub.center.center_id
            assignments[cid] = assignment
            degraded[cid] = rung
            verified += int(checked)
            if rung != "primary" and tracer.enabled:
                tracer.event(
                    "service.degraded", round=index, center=cid, rung=rung
                )
        return InstanceSolution(assignments), degraded, verified

    def _solve_center(
        self,
        sub: SubProblem,
        snapshot: WorldSnapshot,
        round_index: int,
        cid: str,
        seed: int,
        tracer: NullTracer,
        baselines: Optional[Mapping[str, float]] = None,
    ) -> Tuple[Assignment, str, bool]:
        """One center's walk down the ladder.

        Returns ``(assignment, rung, verified)``; ``verified`` reports
        whether the accepted assignment actually passed
        :func:`~repro.verify.checkers.verify_assignment` (every rung,
        including skip, currently does — the flag keeps the round's
        ``verified_centers`` honest by construction).
        """
        breaker = self._breakers.for_center(cid)
        start = 0
        if not breaker.allow_primary():
            start = self._greedy_rung_index()
            METRICS.counter("dispatch.breaker_shortcuts").add(1)
        for rung_index in range(start, len(self._ladder)):
            rung_name, solver = self._ladder[rung_index]
            if rung_name == "skip":
                METRICS.counter("dispatch.centers_skipped").add(1)
                return self._skip_assignment(sub), rung_name, True
            attempts = 1 + (self._solve_retries if rung_name == "primary" else 0)
            for attempt in range(attempts):
                if attempt:
                    METRICS.counter("dispatch.solve_retries").add(1)
                    self._backoff(round_index, cid, attempt)
                try:
                    # Each ladder rung attempt is a child span of the
                    # center solve; a failing attempt's span still lands
                    # (with an ``error`` field), so critical paths show
                    # time burned on rungs that did not produce the route.
                    with tracer.span(
                        "service.rung",
                        round=round_index,
                        center=cid,
                        rung=rung_name,
                        attempt=attempt,
                    ) if tracer.enabled else _NULL_SCOPE:
                        assignment = self._attempt_solve(
                            sub, snapshot,
                            self._with_equity(solver, baselines),
                            seed, round_index, cid, rung_index, attempt,
                        )
                except Exception as exc:  # noqa: BLE001 — the ladder absorbs all
                    METRICS.counter("dispatch.solve_failures").add(1)
                    if isinstance(exc, SolveTimeout):
                        METRICS.counter("dispatch.solve_timeouts").add(1)
                    # A failure may stem from a rotten cache entry; evicting
                    # costs one rebuild and guarantees the retry is clean.
                    self._cache.invalidate(cid)
                    if tracer.enabled:
                        tracer.event(
                            "service.solve_failure",
                            round=round_index,
                            center=cid,
                            rung=rung_name,
                            attempt=attempt,
                            error=type(exc).__name__,
                        )
                    continue
                if rung_name == "primary":
                    breaker.record_success()
                return assignment, rung_name, True
            if rung_name == "primary":
                breaker.record_failure()
        raise AssertionError("degradation ladder must end with the skip rung")

    def _attempt_solve(
        self,
        sub: SubProblem,
        snapshot: WorldSnapshot,
        solver,
        seed: int,
        round_index: int,
        cid: str,
        rung_index: int,
        attempt: int,
    ) -> Assignment:
        """One solve attempt under the deadline, fault hooks, and verify gate.

        The catalog fetch runs *inside* the budgeted thread (a cold C-VDPS
        build is usually the slow part).  The returned assignment is always
        re-verified against the snapshot's sub-problem, so a tampered
        catalog cannot smuggle an infeasible route past the ladder.
        """
        action = (
            self._faults.solver_action(round_index, cid, rung_index, attempt)
            if self._faults is not None
            else None
        )
        # The deadline path runs the solve on a fresh thread; carry the rung
        # span's context over so catalog spans nest under it.
        ctx = current_context()

        def run() -> Assignment:
            with attach_context(ctx):
                return _run_body()

        def _run_body() -> Assignment:
            if action is not None:
                kind, seconds = action
                if kind == "error":
                    METRICS.counter("dispatch.injected_errors").add(1)
                    raise InjectedFault(
                        f"injected solver error (round {round_index}, "
                        f"center {cid}, rung {rung_index}, attempt {attempt})"
                    )
                METRICS.counter("dispatch.injected_delays").add(1)
                time.sleep(seconds)
            catalog, hit = self._cache.get_with_status(
                sub, snapshot.fingerprints[cid], self._epsilon
            )
            if (
                hit
                and self._faults is not None
                and self._faults.corrupt_catalog(round_index, cid)
            ):
                METRICS.counter("dispatch.injected_corruptions").add(1)
                catalog = FaultPlan.tamper(catalog)
            return solve_subproblem(
                sub, solver, epsilon=self._epsilon, seed=seed, catalog=catalog
            )

        deadline = self._solve_deadline_s
        if deadline is None:
            assignment = run()
        else:
            abandoned = self._abandoned.setdefault(cid, [])
            abandoned[:] = [f for f in abandoned if not f.done()]
            if len(abandoned) >= MAX_ABANDONED_SOLVES:
                METRICS.counter("dispatch.hung_solve_rejections").add(1)
                raise SolveTimeout(
                    f"center {cid} still has {len(abandoned)} abandoned "
                    f"solves running; refusing to start another "
                    f"(rung {rung_index}, attempt {attempt})"
                )
            pool = ThreadPoolExecutor(
                max_workers=1, thread_name_prefix=f"solve-{cid}"
            )
            try:
                future = pool.submit(run)
                try:
                    assignment = future.result(timeout=deadline)
                except _FutureTimeout:
                    # The timed-out solve finishes (and is discarded) in
                    # the background; remember it so a persistently hung
                    # solver cannot leak one thread per attempt forever.
                    abandoned.append(future)
                    raise SolveTimeout(
                        f"center {cid} solve exceeded {deadline:g}s "
                        f"(rung {rung_index}, attempt {attempt})"
                    ) from None
            finally:
                # wait=False keeps the round's budget honest.
                pool.shutdown(wait=False)
        verify_assignment(assignment, sub=sub, solver=self._name)
        return assignment

    def _backoff(self, round_index: int, cid: str, attempt: int) -> None:
        """Exponential backoff with deterministic seeded jitter."""
        if self._backoff_base_s <= 0:
            return
        jitter = float(
            self._rng.get(f"backoff:{round_index}:{cid}:{attempt}").random()
        )
        time.sleep(self._backoff_base_s * (2 ** (attempt - 1)) * (0.5 + jitter))

    def _skip_assignment(self, sub: SubProblem) -> Assignment:
        """Every worker on the null strategy: the ladder's last resort.

        Verified like every other rung's output so ``verified_centers``
        counts it truthfully; the null assignment is trivially disjoint
        and within capacity, so the check cannot fail and the rung keeps
        the ladder's never-raises contract.
        """
        assignment = Assignment(tuple(WorkerAssignment(w) for w in sub.workers))
        verify_assignment(assignment, sub=sub, solver=self._name)
        return assignment

    # -- internals ----------------------------------------------------------

    def _record(self, result: RoundResult) -> None:
        self._history.append(result)
        if len(self._history) > self._history_limit:
            del self._history[: -self._history_limit]
        if result.committed:
            self._last_committed = result
        METRICS.counter("service.rounds").add(1)
        if result.committed:
            METRICS.counter("service.rounds.committed").add(1)
        METRICS.histogram("service.dispatch_seconds").observe(
            result.duration_seconds
        )
        METRICS.gauge("service.pending_tasks").set(result.pending_tasks)
        METRICS.gauge("service.available_workers").set(result.available_workers)
        METRICS.gauge("service.round.payoff_difference").set(
            result.payoff_difference
        )
        self._record_fairness(result)
        for rung in result.degraded.values():
            if rung != "primary":
                METRICS.counter("dispatch.degraded_total").add(1)
                METRICS.counter(f"dispatch.degraded_{rung}").add(1)
        if self._fault_tolerant:
            METRICS.gauge("service.breaker.open").set(
                self._breakers.open_count()
            )

    def _record_fairness(self, result: RoundResult) -> None:
        """Rolling per-round fairness telemetry (the temporal-fairness hook).

        Gini/Jain over the round's per-worker payoffs land in gauges, and
        every payoff feeds a histogram, so an operator can watch equity
        drift across rounds instead of waiting for an end-of-run report.
        Payoffs are clamped at zero for the Gini (which rejects negatives);
        the engine never produces negative payoffs, but a defensive clamp
        beats a crashed round.

        When an equity ledger is attached (equity *or* observer mode) the
        rolling-window indices it maintains land in the
        ``fairness.rolling_*`` gauges and every worker's decayed
        cumulative payoff feeds the income-trajectory histogram — the
        long-horizon counterparts of the per-round gauges.
        """
        if result.rolling_gini is not None:
            METRICS.gauge("fairness.rolling_gini").set(result.rolling_gini)
            METRICS.gauge("fairness.rolling_jain").set(result.rolling_jain)
            ledger = self._state.equity
            if ledger is not None:
                cumulative_hist = METRICS.histogram(
                    "fairness.worker_cumulative_payoff"
                )
                for value in ledger.baselines().values():
                    cumulative_hist.observe(max(0.0, value))
        if not result.payoffs:
            return
        values = [max(0.0, float(v)) for v in result.payoffs.values()]
        METRICS.gauge("fairness.round_gini").set(gini_coefficient(values))
        METRICS.gauge("fairness.round_jain").set(jain_index(values))
        payoff_hist = METRICS.histogram("fairness.worker_payoff")
        for value in values:
            payoff_hist.observe(value)
