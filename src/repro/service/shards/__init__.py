"""Supervised multi-process shard pool for the dispatch service.

See :mod:`repro.service.shards.engine` for the facade,
:mod:`repro.service.shards.supervisor` for the failure model, and
``docs/fault_tolerance.md`` for the operator-facing contract.
"""

from repro.service.shards.engine import ShardedDispatchEngine, ShardedWorldView
from repro.service.shards.hashing import plan_shards, shard_for
from repro.service.shards.supervisor import (
    ShardBusy,
    ShardCrashed,
    ShardFailed,
    ShardRPCError,
    ShardSupervisor,
)
from repro.service.shards.worker import ShardSpec

__all__ = [
    "ShardBusy",
    "ShardCrashed",
    "ShardFailed",
    "ShardRPCError",
    "ShardSpec",
    "ShardSupervisor",
    "ShardedDispatchEngine",
    "ShardedWorldView",
    "plan_shards",
    "shard_for",
]
