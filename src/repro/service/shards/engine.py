"""The sharded dispatch engine: one facade, N supervised worker processes.

:class:`ShardedDispatchEngine` duck-types the single-process
:class:`~repro.service.engine.DispatchEngine` surface the HTTP layer
consumes, but routes every center to a shard worker process chosen by
rendezvous hashing (:mod:`~repro.service.shards.hashing`).  Each worker
owns a :class:`~repro.service.state.WorldState` partition plus its own
journal segment and solves with the *same* root seed, round index, and
solver stream names as the single-process engine — so an N-shard run's
assignments are bit-identical to a 1-process run (the ``shards`` bench
section and ``tests/service/test_shards.py`` gate this).

Failure model (see :mod:`~repro.service.shards.supervisor`):

* a crashed or hung shard is SIGKILLed, respawned, journal-replayed, and
  the round RPC retried — the ``shard_round`` record makes the retry
  exactly-once, so a mid-round kill still yields bit-identical output;
* a shard that stays down past the retry budget degrades: its centers
  are flagged ``degraded: skip`` in the round record (tasks stay pending,
  its clock catches up on the next successful round) and ``/healthz``
  turns 503 with the per-shard breakdown;
* overload is shed, not queued: dispatch admission beyond ``queue_bound``
  raises :class:`~repro.service.engine.ServiceOverloaded`, which the API
  maps to 503 + ``Retry-After``.

Scope (documented divergences from the single-process engine): equity
mode and catalog stores are not supported in sharded mode, the view's
``journal`` is ``None`` (segments live inside the workers), and task-id
dedupe is shard-local (a duplicate id for the *same* delivery point is
caught; the same id resubmitted against a dp of another shard is not).
"""

from __future__ import annotations

import hashlib
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from pathlib import Path
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.core.entities import DistributionCenter, Worker
from repro.geo.point import Point
from repro.core.fairness import gini_coefficient, jain_index
from repro.core.payoff import average_payoff, payoff_difference
from repro.geo.travel import TravelModel
from repro.obs.metrics import METRICS
from repro.service.engine import (
    EngineDraining,
    RoundResult,
    ServiceOverloaded,
)
from repro.service.faults import FaultPlan, resolve_faults
from repro.service.shards.hashing import plan_shards
from repro.service.shards.supervisor import (
    ShardBusy,
    ShardCrashed,
    ShardFailed,
    ShardRPCError,
    ShardSupervisor,
)
from repro.service.shards.worker import ShardSpec
from repro.service.state import Rejection
from repro.sim.arrivals import TaskArrival
from repro.utils.log import get_logger
from repro.utils.rng import RngFactory

_LOG = get_logger("service.shards.engine")

#: How long a fan-out info snapshot stays fresh (read-only endpoints).
_INFO_TTL_S = 0.25


class _MergedBreakerBoard:
    """Duck-types ``engine.breakers`` over the union of shard breakers."""

    def __init__(self, engine: "ShardedDispatchEngine") -> None:
        self._engine = engine

    def snapshot(self) -> Dict[str, Dict]:
        merged: Dict[str, Dict] = {}
        for info in self._engine._infos().values():
            merged.update(info.get("breakers") or {})
        return dict(sorted(merged.items()))

    def open_count(self) -> int:
        return sum(
            1
            for status in self.snapshot().values()
            if isinstance(status, dict) and status.get("state") == "open"
        )


class ShardedWorldView:
    """A read/churn facade over the union of the shard partitions.

    Duck-types the :class:`~repro.service.state.WorldState` surface the
    HTTP layer touches.  Reads fan out (with a short-TTL cache for the
    hot ``/healthz`` fields); churn routes each item to the shard that
    owns its delivery point / nearest center.
    """

    def __init__(self, engine: "ShardedDispatchEngine") -> None:
        self._engine = engine

    # -- read surface -------------------------------------------------------

    @property
    def travel(self) -> TravelModel:
        return self._engine._travel

    @property
    def centers(self) -> Tuple[DistributionCenter, ...]:
        return self._engine._centers

    @property
    def now(self) -> float:
        return self._engine._now

    @property
    def version(self) -> int:
        return sum(int(i.get("version", 0)) for i in self._engine._infos().values())

    @property
    def pending_task_count(self) -> int:
        return sum(
            int(i.get("pending_tasks", 0)) for i in self._engine._infos().values()
        )

    @property
    def worker_count(self) -> int:
        return sum(int(i.get("workers", 0)) for i in self._engine._infos().values())

    def available_worker_count(self) -> int:
        """Workers free to take a route right now, summed over shards."""
        return sum(
            int(i.get("available_workers", 0))
            for i in self._engine._infos().values()
        )

    @property
    def journal(self):
        """``None``: journal segments live inside the shard workers."""
        return None

    @property
    def equity(self):
        """``None``: equity ledgers are not supported in sharded mode."""
        return None

    def fingerprint(self) -> str:
        """Content hash over every shard's state fingerprint.

        Fetched fresh (no TTL cache): the identity gates compare this
        against reference runs, so staleness is not acceptable here.
        """
        parts = []
        for sid in self._engine.shard_ids:
            info = self._engine._supervisor.call(sid, "info")
            parts.append(f"{sid}:{info['fingerprint']}")
        digest = hashlib.sha256()
        for part in sorted(parts):
            digest.update(part.encode())
        return digest.hexdigest()

    def worker_stats(self) -> Dict[str, Dict[str, float]]:
        """Cumulative per-worker outcomes, merged across all partitions."""
        merged: Dict[str, Dict[str, float]] = {}
        for sid in self._engine.shard_ids:
            merged.update(self._engine._supervisor.call(sid, "worker_stats"))
        return dict(sorted(merged.items()))

    # -- churn --------------------------------------------------------------

    def add_tasks(self, tasks: Sequence) -> Tuple[List[str], List[Rejection]]:
        """Route each task to the shard owning its delivery point."""
        engine = self._engine
        batches: Dict[int, List] = {}
        routed: List[Optional[Tuple[int, str]]] = []
        rejections: List[Rejection] = []
        for item in tasks:
            try:
                if isinstance(item, TaskArrival):
                    task_id, dp_id, wire = item.task_id, item.dp_id, item
                elif isinstance(item, Mapping):
                    wire = dict(item)
                    task_id = str(wire["task_id"])
                    dp_id = str(wire["dp_id"])
                    # The shard's clock equals the facade's; pin the
                    # default arrival time here so routing never shifts it.
                    wire.setdefault("arrival_time", engine._now)
                else:
                    raise TypeError(
                        f"cannot interpret {type(item).__name__} as a task"
                    )
            except (KeyError, TypeError, ValueError) as exc:
                item_id = (
                    item.get("task_id", "?") if isinstance(item, Mapping) else "?"
                )
                rejections.append(Rejection(str(item_id), str(exc)))
                routed.append(None)
                continue
            shard_id = engine._dp_shard.get(str(dp_id))
            if shard_id is None:
                rejections.append(
                    Rejection(str(task_id), f"unknown delivery point {dp_id!r}")
                )
                routed.append(None)
                continue
            batches.setdefault(shard_id, []).append(wire)
            routed.append((shard_id, str(task_id)))
        accepted_ids = set()
        for shard_id, batch in sorted(batches.items()):
            acc, rej = engine._supervisor.call(shard_id, "add_tasks", tasks=batch)
            accepted_ids.update(acc)
            rejections.extend(
                r if isinstance(r, Rejection) else Rejection(r[0], r[1])
                for r in rej
            )
        accepted = [
            task_id
            for entry in routed
            if entry is not None
            for _, task_id in (entry,)
            if task_id in accepted_ids
        ]
        engine._invalidate_info()
        METRICS.counter("service.tasks.submitted").add(len(accepted))
        METRICS.counter("service.tasks.rejected").add(len(rejections))
        return accepted, rejections

    def add_workers(self, workers: Sequence) -> Tuple[List[str], List[Rejection]]:
        """Attach each worker to its (nearest) center's shard, then route.

        Nearest-center attachment must see the *global* layout, so it
        happens here — the receiving shard then re-validates against its
        own partition (where the chosen center is guaranteed to live).
        """
        engine = self._engine
        centers = {c.center_id: c for c in engine._centers}
        batches: Dict[int, List[Worker]] = {}
        routed: List[Optional[Tuple[int, str]]] = []
        rejections: List[Rejection] = []
        for item in workers:
            try:
                if isinstance(item, Worker):
                    worker = item
                elif isinstance(item, Mapping):
                    worker = Worker(
                        worker_id=str(item["worker_id"]),
                        location=Point(float(item["x"]), float(item["y"])),
                        max_delivery_points=int(item.get("max_delivery_points", 3)),
                        center_id=item.get("center_id"),
                        speed_kmh=item.get("speed_kmh"),
                    )
                else:
                    raise TypeError(
                        f"cannot interpret {type(item).__name__} as a worker"
                    )
            except (KeyError, TypeError, ValueError) as exc:
                item_id = (
                    item.get("worker_id", "?") if isinstance(item, Mapping) else "?"
                )
                rejections.append(Rejection(str(item_id), str(exc)))
                routed.append(None)
                continue
            if worker.center_id is not None and worker.center_id not in centers:
                rejections.append(
                    Rejection(
                        worker.worker_id, f"unknown center {worker.center_id!r}"
                    )
                )
                routed.append(None)
                continue
            if worker.center_id is None:
                nearest = min(
                    centers.values(),
                    key=lambda c: engine._travel.distance(
                        worker.location, c.location
                    ),
                )
                worker = worker.assigned_to(nearest.center_id)
            shard_id = engine._center_shard[worker.center_id]
            batches.setdefault(shard_id, []).append(worker)
            routed.append((shard_id, worker.worker_id))
        accepted_ids = set()
        for shard_id, batch in sorted(batches.items()):
            acc, rej = engine._supervisor.call(
                shard_id, "add_workers", workers=batch
            )
            accepted_ids.update(acc)
            rejections.extend(
                r if isinstance(r, Rejection) else Rejection(r[0], r[1])
                for r in rej
            )
        accepted = [
            worker_id
            for entry in routed
            if entry is not None
            for _, worker_id in (entry,)
            if worker_id in accepted_ids
        ]
        engine._invalidate_info()
        METRICS.counter("service.workers.added").add(len(accepted))
        METRICS.counter("service.workers.rejected").add(len(rejections))
        return accepted, rejections


class ShardedDispatchEngine:
    """Dispatch rounds across a supervised pool of shard worker processes.

    Parameters largely mirror :class:`~repro.service.engine.DispatchEngine`
    (they are forwarded into every worker's engine); the sharding-specific
    knobs are:

    shards:
        Worker process count (each must own ≥ 1 center).
    journal_dir:
        Directory for the per-shard journal segments
        (``shard-00.jsonl`` …); ``None`` disables durability.
    queue_bound:
        Max concurrently admitted ``dispatch()`` calls; excess requests
        are shed with :class:`~repro.service.engine.ServiceOverloaded`.
    max_inflight_per_shard:
        Per-shard RPC in-flight bound; excess sheds with
        :class:`~repro.service.shards.supervisor.ShardBusy`.
    """

    def __init__(
        self,
        centers: Sequence[DistributionCenter],
        solver,
        *,
        travel: Optional[TravelModel] = None,
        epsilon: Optional[float] = None,
        shards: int = 2,
        n_jobs: int = 1,
        verify: bool = False,
        seed: Optional[int] = None,
        history_limit: int = 256,
        solve_deadline_s: Optional[float] = None,
        solve_retries: int = 1,
        backoff_base_s: float = 0.05,
        scalar_round_cap: int = 50,
        faults: Optional[FaultPlan] = None,
        delta_catalog: bool = True,
        journal_dir=None,
        journal_fsync: bool = True,
        journal_compact_every: Optional[int] = None,
        queue_bound: int = 4,
        max_inflight_per_shard: int = 4,
        heartbeat_interval_s: float = 0.25,
        heartbeat_timeout_s: float = 2.0,
        rpc_timeout_s: float = 120.0,
        rpc_retries: int = 2,
        spawn_timeout_s: float = 60.0,
    ) -> None:
        if shards < 1:
            raise ValueError(f"shards must be >= 1, got {shards}")
        if history_limit < 1:
            raise ValueError(f"history_limit must be >= 1, got {history_limit}")
        if queue_bound < 1:
            raise ValueError(f"queue_bound must be >= 1, got {queue_bound}")
        self._centers = tuple(
            sorted(centers, key=lambda c: c.center_id)
        )
        self._travel = travel if travel is not None else TravelModel()
        self._seed = seed
        self._rng = RngFactory(seed)
        self._name = getattr(solver, "name", type(solver).__name__)
        self._epsilon = epsilon
        self._faults = resolve_faults(faults)
        self._fault_tolerant = (
            solve_deadline_s is not None or self._faults is not None
        )
        self._history_limit = int(history_limit)
        self._history: List[RoundResult] = []
        self._last_committed: Optional[RoundResult] = None
        self._draining = False
        self._chaos_killed = False
        self._dispatch_lock = threading.Lock()
        self._admission = threading.BoundedSemaphore(queue_bound)
        self._queue_bound = int(queue_bound)

        partition = plan_shards(
            (c.center_id for c in self._centers), shards
        )
        by_id = {c.center_id: c for c in self._centers}
        self._center_shard: Dict[str, int] = {
            cid: sid for sid, cids in partition.items() for cid in cids
        }
        self._dp_shard: Dict[str, int] = {
            dp.dp_id: self._center_shard[c.center_id]
            for c in self._centers
            for dp in c.delivery_points
        }
        # Faults with only process-level chaos (shard_kill) are the
        # facade's business; stripping them keeps the worker engines
        # identical to a fault-free twin, which the kill-vs-clean
        # bit-identity gate depends on.
        worker_faults = (
            self._faults
            if self._faults is not None and self._faults.active
            else None
        )
        segment_dir = None if journal_dir is None else Path(journal_dir)
        specs = []
        for sid in sorted(partition):
            segment = (
                None
                if segment_dir is None
                else str(segment_dir / f"shard-{sid:02d}.jsonl")
            )
            specs.append(
                ShardSpec(
                    shard_id=sid,
                    centers=tuple(by_id[cid] for cid in partition[sid]),
                    travel=self._travel,
                    solver=solver,
                    epsilon=epsilon,
                    seed=seed,
                    n_jobs=n_jobs,
                    verify=verify,
                    solve_deadline_s=solve_deadline_s,
                    solve_retries=solve_retries,
                    backoff_base_s=backoff_base_s,
                    scalar_round_cap=scalar_round_cap,
                    faults=worker_faults,
                    delta_catalog=delta_catalog,
                    journal_path=segment,
                    journal_fsync=journal_fsync,
                    journal_compact_every=journal_compact_every,
                    heartbeat_interval_s=heartbeat_interval_s,
                )
            )
        self._supervisor = ShardSupervisor(
            specs,
            heartbeat_timeout_s=heartbeat_timeout_s,
            rpc_timeout_s=rpc_timeout_s,
            rpc_retries=rpc_retries,
            backoff_base_s=backoff_base_s,
            max_inflight=max_inflight_per_shard,
            spawn_timeout_s=spawn_timeout_s,
            seed=seed if isinstance(seed, int) else 0,
        )
        self._pool = ThreadPoolExecutor(
            max_workers=len(specs), thread_name_prefix="shard-rpc"
        )
        self._view = ShardedWorldView(self)
        self._breakers = _MergedBreakerBoard(self)
        self._info_cache: Optional[Dict[int, Dict]] = None
        self._info_stamp = 0.0
        self._info_lock = threading.Lock()

        # Boot resync: recovered segments may carry prior rounds — resume
        # the global counters past the furthest shard so redispatching an
        # already-applied round is impossible.  A failed resync must not
        # leak the worker processes it just spawned.
        try:
            infos = self._infos(fresh=True)
            last_rounds = [
                i["last_round"]
                for i in infos.values()
                if i.get("last_round") is not None
            ]
            self._round = (max(last_rounds) + 1) if last_rounds else 0
            self._now = max(
                (float(i.get("now", 0.0)) for i in infos.values()), default=0.0
            )
            if self._round:
                _LOG.info(
                    "resumed sharded engine at round %d (now=%.3f h)",
                    self._round,
                    self._now,
                )
                self._catch_up_lagging(infos)
        except BaseException:
            self._pool.shutdown(wait=False)
            self._supervisor.close()
            raise

    def _catch_up_lagging(self, infos: Dict[int, Dict]) -> None:
        """Replay the newest round on shards whose segment lost its tail.

        A crash mid-append leaves a torn final ``shard_round`` record;
        recovery truncates it, so the shard reboots exactly one round
        behind its peers.  Re-driving that round is safe — the per-center
        streams depend only on the round index — and the shard's clock
        still sits at the lost round's ``prev_now``, so the replay sees
        the same advance the original dispatch did.  A lag of more than
        one round cannot come from a torn tail (every earlier record was
        fsynced before the next was written) and is refused outright.
        """
        newest = self._round - 1
        for sid, info in sorted(infos.items()):
            last = info.get("last_round")
            applied = -1 if last is None else int(last)
            if applied >= newest:
                continue
            if applied < newest - 1:
                raise RuntimeError(
                    f"shard {sid} journal is {newest - applied} rounds "
                    f"behind its peers (at {applied}, newest {newest}) — "
                    "torn-tail recovery can only lose the final record; "
                    "the segment is damaged beyond automatic replay"
                )
            shard_now = float(info.get("now", 0.0))
            _LOG.warning(
                "shard %d lost round %d to a torn journal tail — replaying",
                sid,
                newest,
            )
            self._supervisor.call(
                sid,
                "solve_round",
                index=newest,
                advance_hours=max(0.0, self._now - shard_now),
                prev_now=shard_now,
                target_now=self._now,
                commit=True,
            )
        self._invalidate_info()

    # -- engine surface (duck-typed for the HTTP layer) ---------------------

    @property
    def state(self) -> ShardedWorldView:
        return self._view

    @property
    def solver_name(self) -> str:
        return self._name

    @property
    def epsilon(self) -> Optional[float]:
        return self._epsilon

    @property
    def rounds_dispatched(self) -> int:
        return self._round

    @property
    def history(self) -> List[RoundResult]:
        return list(self._history)

    @property
    def last_committed(self) -> Optional[RoundResult]:
        return self._last_committed

    @property
    def breakers(self) -> _MergedBreakerBoard:
        return self._breakers

    @property
    def faults(self) -> Optional[FaultPlan]:
        return self._faults

    @property
    def fault_tolerant(self) -> bool:
        return self._fault_tolerant

    @property
    def equity_mode(self) -> bool:
        return False

    @property
    def equity_strength(self) -> float:
        return 0.0

    @property
    def draining(self) -> bool:
        return self._draining

    @property
    def shard_ids(self) -> Tuple[int, ...]:
        return self._supervisor.shard_ids

    @property
    def shard_count(self) -> int:
        return len(self._supervisor.shard_ids)

    @property
    def supervisor(self) -> ShardSupervisor:
        return self._supervisor

    def round_seed(self, index: int) -> int:
        """Same derivation as the single-process engine (fidelity hook)."""
        return self._rng.seed_for(f"round:{index}")

    def shard_health(self) -> Dict[str, Dict]:
        """Per-shard supervision breakdown (``/healthz``, ``/slo``)."""
        return self._supervisor.health()

    def centers_of(self, shard_id: int) -> Tuple[str, ...]:
        """The center ids the stable hash routed to ``shard_id``."""
        return tuple(
            cid for cid, sid in sorted(self._center_shard.items())
            if sid == shard_id
        )

    # -- info fan-out (cached) ----------------------------------------------

    def _infos(self, fresh: bool = False) -> Dict[int, Dict]:
        """Per-shard ``info`` snapshots; short-TTL cached, dead shards skipped."""
        with self._info_lock:
            if (
                not fresh
                and self._info_cache is not None
                and time.monotonic() - self._info_stamp < _INFO_TTL_S
            ):
                return self._info_cache
        infos: Dict[int, Dict] = {}
        for sid in self._supervisor.shard_ids:
            try:
                infos[sid] = self._supervisor.call(sid, "info")
            except (ShardCrashed, ShardFailed, ShardBusy, ShardRPCError):
                continue
        with self._info_lock:
            self._info_cache = infos
            self._info_stamp = time.monotonic()
        return infos

    def _invalidate_info(self) -> None:
        with self._info_lock:
            self._info_cache = None

    # -- dispatch ------------------------------------------------------------

    def dispatch(self, advance_hours: float = 0.0, commit: bool = True) -> RoundResult:
        """Run one round across every shard and merge the results.

        Admission control sheds beyond ``queue_bound`` concurrently
        admitted calls (:class:`ServiceOverloaded` → HTTP 503 +
        ``Retry-After``); admitted calls serialise on the round lock.
        """
        if self._draining:
            raise EngineDraining(
                "dispatch engine is draining; no new rounds accepted"
            )
        if not self._admission.acquire(blocking=False):
            METRICS.counter("service.shard.shed").add(1)
            raise ServiceOverloaded(
                f"dispatch queue is full ({self._queue_bound} in flight); "
                "retry later",
                retry_after_s=self._supervisor.retry_after_s,
            )
        try:
            with self._dispatch_lock:
                if self._draining:
                    raise EngineDraining(
                        "dispatch engine is draining; no new rounds accepted"
                    )
                return self._dispatch_round(float(advance_hours), commit)
        finally:
            self._admission.release()

    def _dispatch_round(self, advance_hours: float, commit: bool) -> RoundResult:
        start = time.perf_counter()
        index = self._round
        prev_now = self._now
        target_now = prev_now + advance_hours
        self._maybe_kill_for_chaos(index)
        futures = {
            sid: self._pool.submit(
                self._supervisor.call,
                sid,
                "solve_round",
                index=index,
                advance_hours=advance_hours,
                prev_now=prev_now,
                target_now=target_now,
                commit=commit,
            )
            for sid in self._supervisor.shard_ids
        }
        wires: Dict[int, Dict] = {}
        failed: Dict[int, Exception] = {}
        for sid, future in futures.items():
            try:
                wires[sid] = future.result()
            except (ShardCrashed, ShardFailed, ShardBusy, ShardRPCError) as exc:
                _LOG.error("round %d: shard %d failed: %s", index, sid, exc)
                failed[sid] = exc
        self._round = index + 1
        self._now = target_now
        result = self._merge(
            index, target_now, commit, wires, failed,
            time.perf_counter() - start,
        )
        self._record(result)
        self._supervisor.set_retry_after(2.0 * max(0.05, result.duration_seconds))
        self._invalidate_info()
        return result

    def _maybe_kill_for_chaos(self, index: int) -> None:
        plan = self._faults
        if (
            plan is None
            or plan.shard_kill_round is None
            or self._chaos_killed
            or index != plan.shard_kill_round
        ):
            return
        shard_ids = self._supervisor.shard_ids
        victim = shard_ids[plan.shard_kill_index % len(shard_ids)]
        _LOG.warning(
            "chaos plan: killing shard %d before round %d", victim, index
        )
        self._chaos_killed = True
        self._supervisor.kill_shard(victim)

    def _merge(
        self,
        index: int,
        now: float,
        commit: bool,
        wires: Dict[int, Dict],
        failed: Dict[int, Exception],
        duration_s: float,
    ) -> RoundResult:
        """Fold the per-shard round results into one global RoundResult.

        The global payoff aggregates must be *bit*-identical to the
        single-process engine's, whose ``average_payoff`` is an
        order-sensitive ``np.mean`` over payoffs in sorted-center →
        assignment-pair order — so that exact order is reconstructed here
        before any aggregate is computed.
        """
        assignments: Dict[str, Dict[str, Tuple[str, ...]]] = {}
        payoffs: Dict[str, float] = {}
        ordered: List[float] = []
        degraded: Dict[str, str] = {}
        assigned = expired = pending = available = 0
        cache_hits = cache_misses = verified = 0
        center_ids: List[str] = []
        for sid in sorted(wires):
            wire = wires[sid]
            assigned += int(wire["assigned_tasks"])
            expired += int(wire["expired_tasks"])
            pending += int(wire["pending_tasks"])
            available += int(wire["available_workers"])
            cache_hits += int(wire["cache"]["hits"])
            cache_misses += int(wire["cache"]["misses"])
            verified += int(wire["verified_centers"])
            degraded.update(wire.get("degraded") or {})
            center_ids.extend(wire.get("centers") or [])
        for cid in sorted(c.center_id for c in self._centers):
            sid = self._center_shard[cid]
            wire = wires.get(sid)
            if wire is None:
                continue
            routes = wire["assignments"].get(cid)
            if routes is None:
                continue
            assignments[cid] = {
                wid: tuple(dps) for wid, dps in routes.items()
            }
            for wid in routes:
                value = float(wire["payoffs"][wid])
                payoffs[wid] = value
                ordered.append(value)
        for sid in sorted(failed):
            # The whole partition sat the round out: same contract as the
            # in-worker ladder's terminal rung — tasks stay pending, the
            # shard's clock catches up on its next successful round.
            for cid in self.centers_of(sid):
                degraded[cid] = "skip"
        return RoundResult(
            round_index=index,
            now=now,
            committed=commit,
            center_ids=tuple(sorted(center_ids)),
            assigned_tasks=assigned,
            expired_tasks=expired,
            pending_tasks=pending,
            available_workers=available,
            payoff_difference=payoff_difference(ordered) if ordered else 0.0,
            average_payoff=average_payoff(ordered) if ordered else 0.0,
            payoffs=payoffs,
            assignments=assignments,
            cache_hits=cache_hits,
            cache_misses=cache_misses,
            verified_centers=verified,
            duration_seconds=duration_s,
            degraded=degraded,
        )

    def _record(self, result: RoundResult) -> None:
        """Mirror of the single-process engine's telemetry contract.

        The worker processes feed their *own* metric registries, which
        the facade process cannot see — so the service-level names the
        dashboards and SLOs consume are re-emitted here.
        """
        self._history.append(result)
        if len(self._history) > self._history_limit:
            del self._history[: -self._history_limit]
        if result.committed:
            self._last_committed = result
            METRICS.counter("service.rounds.committed").add(1)
        METRICS.counter("service.rounds").add(1)
        METRICS.histogram("service.dispatch_seconds").observe(
            result.duration_seconds
        )
        METRICS.gauge("service.pending_tasks").set(result.pending_tasks)
        METRICS.gauge("service.available_workers").set(result.available_workers)
        METRICS.gauge("service.round.payoff_difference").set(
            result.payoff_difference
        )
        if result.payoffs:
            values = [max(0.0, float(v)) for v in result.payoffs.values()]
            METRICS.gauge("fairness.round_gini").set(gini_coefficient(values))
            METRICS.gauge("fairness.round_jain").set(jain_index(values))
            payoff_hist = METRICS.histogram("fairness.worker_payoff")
            for value in values:
                payoff_hist.observe(value)
        for rung in result.degraded.values():
            if rung != "primary":
                METRICS.counter("dispatch.degraded_total").add(1)
                METRICS.counter(f"dispatch.degraded_{rung}").add(1)

    # -- shutdown ------------------------------------------------------------

    def begin_drain(self) -> None:
        """Refuse new rounds; stop auto-reviving shards."""
        self._draining = True
        self._supervisor.begin_drain()

    def drain(self) -> None:
        """Block until the in-flight round finishes, then stop the pool."""
        with self._dispatch_lock:
            pass
        self._pool.shutdown(wait=True)
        self._supervisor.close()

    def __enter__(self) -> "ShardedDispatchEngine":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.begin_drain()
        self.drain()
