"""Supervision of the shard worker pool: spawn, watch, kill, respawn.

The :class:`ShardSupervisor` owns N :mod:`~repro.service.shards.worker`
processes (``spawn`` start method — no forked locks, clean respawns) and
gives the sharded engine one façade-side verb, :meth:`call`, that hides the
whole failure model:

* **RPC with timeouts.**  Each shard's duplex pipe carries one request at
  a time.  A reply that misses its deadline is a *hang* — the worker is
  SIGKILLed and respawned; stale pipes are never reused.
* **Crash detection.**  A monitor thread consumes heartbeat events (a
  dedicated worker thread beats even during long solves).  Stale beats
  mark a shard ``suspect``; a dead process — or a beat 2× past the
  timeout — marks it ``dead`` and triggers a respawn (journal-segment
  replay brings it back fingerprint-identical).
* **Retries with backoff.**  :meth:`call` retries across crashes with
  exponential backoff plus seeded full jitter.  Boot failures are capped:
  a shard that cannot come up (e.g. corrupt segment) goes permanently
  ``dead`` and raises :class:`ShardFailed` instead of respawn-looping.
* **Backpressure.**  Per-shard in-flight slots are a non-blocking
  semaphore; an exhausted shard sheds the request with :class:`ShardBusy`
  (a :class:`~repro.service.engine.ServiceOverloaded`) carrying a
  ``Retry-After`` hint, rather than queueing unboundedly.

Supervision states: ``starting`` → ``live`` ⇄ ``suspect`` → ``dead`` →
``respawning`` → ``live``; ``close()`` moves every shard to ``stopped``.
"""

from __future__ import annotations

import itertools
import multiprocessing as mp
import os
import signal
import threading
import time
from typing import Dict, List, Optional, Sequence, Tuple

from repro.obs.metrics import METRICS
from repro.service.engine import ServiceOverloaded
from repro.service.shards.worker import ShardSpec, shard_worker_main
from repro.utils.log import get_logger
from repro.utils.rng import RngFactory

_LOG = get_logger("service.shards.supervisor")


class ShardCrashed(RuntimeError):
    """The shard's process or pipe died mid-RPC (transport failure).

    Retryable: the supervisor respawns the shard and the idempotent
    ``shard_round`` journal record makes a round retry safe.
    """

    def __init__(self, message: str, incarnation: int = -1) -> None:
        super().__init__(message)
        self.incarnation = int(incarnation)


class ShardRPCError(RuntimeError):
    """The shard is alive but the request itself failed (application error)."""


class ShardFailed(RuntimeError):
    """The shard is permanently dead (respawn budget exhausted)."""


class ShardBusy(ServiceOverloaded):
    """The shard's in-flight slots are exhausted — request shed, retry later."""


class _ShardHandle:
    """Mutable supervision record for one shard (facade-process side)."""

    def __init__(self, spec: ShardSpec, max_inflight: int) -> None:
        self.spec = spec
        self.process: Optional[mp.process.BaseProcess] = None
        self.conn = None
        self.incarnation = 0
        self.status = "starting"
        self.last_beat: Optional[float] = None
        self.heartbeats = 0
        self.respawns = 0
        self.boot_failures = 0
        self.slots = threading.BoundedSemaphore(max_inflight)
        self.rpc_lock = threading.Lock()
        self.revive_lock = threading.Lock()
        self.inflight = 0
        self.depth_lock = threading.Lock()

    @property
    def alive(self) -> bool:
        return self.process is not None and self.process.is_alive()


class ShardSupervisor:
    """Spawn, monitor, and mediate RPC to the shard worker pool."""

    def __init__(
        self,
        specs: Sequence[ShardSpec],
        *,
        heartbeat_timeout_s: float = 2.0,
        rpc_timeout_s: float = 30.0,
        rpc_retries: int = 2,
        backoff_base_s: float = 0.05,
        max_inflight: int = 4,
        spawn_timeout_s: float = 30.0,
        max_boot_failures: int = 3,
        seed: int = 0,
    ) -> None:
        if not specs:
            raise ValueError("the supervisor needs at least one shard spec")
        if heartbeat_timeout_s <= 0:
            raise ValueError(
                f"heartbeat_timeout_s must be > 0, got {heartbeat_timeout_s}"
            )
        if rpc_timeout_s <= 0:
            raise ValueError(f"rpc_timeout_s must be > 0, got {rpc_timeout_s}")
        if rpc_retries < 0:
            raise ValueError(f"rpc_retries must be >= 0, got {rpc_retries}")
        if max_inflight < 1:
            raise ValueError(f"max_inflight must be >= 1, got {max_inflight}")
        if max_boot_failures < 1:
            raise ValueError(
                f"max_boot_failures must be >= 1, got {max_boot_failures}"
            )
        self.heartbeat_timeout_s = float(heartbeat_timeout_s)
        self.rpc_timeout_s = float(rpc_timeout_s)
        self.rpc_retries = int(rpc_retries)
        self.backoff_base_s = float(backoff_base_s)
        self.max_inflight = int(max_inflight)
        self.spawn_timeout_s = float(spawn_timeout_s)
        self.max_boot_failures = int(max_boot_failures)
        self._jitter = RngFactory(seed).get("shards:supervisor:jitter")
        self._ctx = mp.get_context("spawn")
        self._events = self._ctx.Queue()
        self._shards: Dict[int, _ShardHandle] = {
            spec.shard_id: _ShardHandle(spec, max_inflight) for spec in specs
        }
        self._msg_ids = itertools.count(1)
        self._retry_after_s = 1.0
        self._closed = False
        self._draining = False
        for handle in self._shards.values():
            self._spawn(handle)
            self._handshake(handle)
        self._publish_gauges()  # don't leave live_fraction at 0 before the
        self._monitor_stop = threading.Event()  # monitor's first sweep
        self._monitor = threading.Thread(
            target=self._monitor_loop, name="shard-monitor", daemon=True
        )
        self._monitor.start()

    # -- lifecycle ----------------------------------------------------------

    def _spawn(self, handle: _ShardHandle) -> None:
        parent_conn, child_conn = self._ctx.Pipe(duplex=True)
        process = self._ctx.Process(
            target=shard_worker_main,
            args=(handle.spec, child_conn, self._events),
            name=f"repro-shard-{handle.spec.shard_id}",
            daemon=True,
        )
        process.start()
        child_conn.close()
        handle.process = process
        handle.conn = parent_conn
        handle.status = "starting"
        handle.last_beat = None

    def _handshake(self, handle: _ShardHandle) -> Dict:
        """Wait for the freshly-spawned shard to answer a ping."""
        try:
            info = self._rpc(
                handle, "ping", {}, timeout_s=self.spawn_timeout_s
            )
        except (ShardCrashed, ShardRPCError) as exc:
            handle.boot_failures += 1
            handle.status = "dead"
            self._kill(handle)
            if handle.boot_failures >= self.max_boot_failures:
                raise ShardFailed(
                    f"shard {handle.spec.shard_id} failed to boot "
                    f"{handle.boot_failures} time(s): {exc}"
                ) from exc
            raise ShardCrashed(
                f"shard {handle.spec.shard_id} failed handshake: {exc}",
                incarnation=handle.incarnation,
            ) from exc
        handle.boot_failures = 0
        handle.status = "live"
        handle.last_beat = time.monotonic()
        return info

    def _kill(self, handle: _ShardHandle) -> None:
        process, conn = handle.process, handle.conn
        handle.conn = None
        if conn is not None:
            try:
                conn.close()
            except OSError:
                pass
        if process is not None and process.is_alive():
            try:
                os.kill(process.pid, signal.SIGKILL)
            except (OSError, TypeError):
                pass
            process.join(timeout=5.0)

    def _revive(self, handle: _ShardHandle, incarnation: int) -> None:
        """Kill + respawn ``handle`` unless a newer incarnation already did."""
        with handle.revive_lock:
            if handle.incarnation != incarnation:
                return  # another caller already revived past this failure
            if self._closed or self._draining:
                handle.status = "dead"
                return
            if handle.status == "failed":
                raise ShardFailed(
                    f"shard {handle.spec.shard_id} is permanently dead"
                )
            handle.status = "respawning"
            self._kill(handle)
            handle.incarnation += 1
            handle.respawns += 1
            METRICS.counter("service.shard.respawns").add(1)
            _LOG.warning(
                "respawning shard %d (incarnation %d)",
                handle.spec.shard_id,
                handle.incarnation,
            )
            self._spawn(handle)
            try:
                self._handshake(handle)
            except ShardFailed:
                handle.status = "failed"
                self._kill(handle)
                raise
            except ShardCrashed:
                handle.status = "dead"
                raise

    def kill_shard(self, shard_id: int) -> None:
        """SIGKILL a shard without respawning it (chaos injection).

        The next :meth:`call` against it — or the monitor — detects the
        death and revives it through the normal path, so tests exercise
        exactly the machinery a real crash would.
        """
        handle = self._shards[shard_id]
        process = handle.process
        if process is not None and process.is_alive():
            _LOG.warning("chaos: SIGKILL shard %d (pid %s)", shard_id, process.pid)
            os.kill(process.pid, signal.SIGKILL)
            process.join(timeout=5.0)
        handle.status = "dead"

    # -- RPC ----------------------------------------------------------------

    def call(self, shard_id: int, op: str, **payload) -> object:
        """Run ``op`` on ``shard_id``, surviving crashes and hangs.

        Sheds immediately with :class:`ShardBusy` when the shard's
        in-flight slots are exhausted.  Transport failures respawn the
        shard and retry (bounded, backoff with seeded full jitter);
        application errors surface as :class:`ShardRPCError` untouched.
        """
        if self._closed:
            raise RuntimeError("supervisor is closed")
        handle = self._shards[shard_id]
        if handle.status == "failed":
            raise ShardFailed(f"shard {shard_id} is permanently dead")
        if not handle.slots.acquire(blocking=False):
            METRICS.counter("service.shard.shed").add(1)
            raise ShardBusy(
                f"shard {shard_id} is at its in-flight limit "
                f"({self.max_inflight}); retry later",
                retry_after_s=self._retry_after_s,
            )
        with handle.depth_lock:
            handle.inflight += 1
        try:
            last_exc: Optional[Exception] = None
            for attempt in range(self.rpc_retries + 1):
                incarnation = handle.incarnation
                try:
                    return self._rpc(handle, op, payload)
                except ShardCrashed as exc:
                    last_exc = exc
                    if attempt >= self.rpc_retries:
                        break
                    try:
                        self._revive(handle, exc.incarnation)
                    except ShardCrashed as boot_exc:
                        last_exc = boot_exc
                    # full jitter: uniform over [0, base * 2^attempt]
                    span = self.backoff_base_s * (2.0 ** attempt)
                    time.sleep(float(self._jitter.uniform(0.0, span)))
            raise ShardCrashed(
                f"shard {shard_id} RPC {op!r} failed after "
                f"{self.rpc_retries + 1} attempt(s): {last_exc}",
                incarnation=incarnation,
            )
        finally:
            with handle.depth_lock:
                handle.inflight -= 1
            handle.slots.release()

    def _rpc(
        self,
        handle: _ShardHandle,
        op: str,
        payload: Dict,
        timeout_s: Optional[float] = None,
    ) -> object:
        """One request/response exchange; timeout ⇒ hang ⇒ kill + crash."""
        deadline_s = self.rpc_timeout_s if timeout_s is None else timeout_s
        msg_id = next(self._msg_ids)
        incarnation = handle.incarnation
        with handle.rpc_lock:
            if handle.incarnation != incarnation or handle.conn is None:
                raise ShardCrashed(
                    f"shard {handle.spec.shard_id} restarted mid-call",
                    incarnation=handle.incarnation,
                )
            conn = handle.conn
            message = dict(payload)
            message["op"] = op
            message["id"] = msg_id
            try:
                conn.send(message)
            except (OSError, ValueError, BrokenPipeError) as exc:
                handle.status = "dead"
                raise ShardCrashed(
                    f"shard {handle.spec.shard_id} pipe broken on send: {exc}",
                    incarnation=incarnation,
                ) from exc
            deadline = time.monotonic() + deadline_s
            while True:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    # A hung worker cannot be trusted (nor its pipe, which
                    # may later deliver this reply to the next request):
                    # kill it so the retry path respawns from the journal.
                    METRICS.counter("service.shard.rpc_timeouts").add(1)
                    handle.status = "dead"
                    self._kill(handle)
                    raise ShardCrashed(
                        f"shard {handle.spec.shard_id} RPC {op!r} timed out "
                        f"after {deadline_s:.1f}s (killed)",
                        incarnation=incarnation,
                    )
                try:
                    if not conn.poll(min(remaining, 0.1)):
                        process = handle.process
                        if process is not None and not process.is_alive():
                            handle.status = "dead"
                            raise ShardCrashed(
                                f"shard {handle.spec.shard_id} died mid-RPC "
                                f"(exitcode {process.exitcode})",
                                incarnation=incarnation,
                            )
                        continue
                    reply = conn.recv()
                except (EOFError, OSError, BrokenPipeError) as exc:
                    handle.status = "dead"
                    raise ShardCrashed(
                        f"shard {handle.spec.shard_id} pipe broken on recv: "
                        f"{exc}",
                        incarnation=incarnation,
                    ) from exc
                if not isinstance(reply, dict) or reply.get("id") != msg_id:
                    continue  # stale reply from a pre-crash request
                if reply.get("ok"):
                    return reply.get("value")
                raise ShardRPCError(
                    f"shard {handle.spec.shard_id} {op!r}: "
                    f"{reply.get('error', 'unknown error')}"
                )

    # -- monitoring ---------------------------------------------------------

    def _monitor_loop(self) -> None:
        while not self._monitor_stop.is_set():
            self._drain_events(timeout=0.2)
            now = time.monotonic()
            for handle in self._shards.values():
                self._sweep(handle, now)
            self._publish_gauges()

    def _drain_events(self, timeout: float) -> None:
        deadline = time.monotonic() + timeout
        while True:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                return
            try:
                kind, shard_id, _seq = self._events.get(timeout=remaining)
            except Exception:
                return  # queue empty (or closing)
            handle = self._shards.get(shard_id)
            if handle is None:
                continue
            handle.last_beat = time.monotonic()
            if kind == "heartbeat":
                handle.heartbeats += 1
                METRICS.counter("service.shard.heartbeats").add(1)
            if handle.status == "suspect":
                handle.status = "live"

    def _sweep(self, handle: _ShardHandle, now: float) -> None:
        if handle.status in ("failed", "respawning", "starting"):
            return
        process = handle.process
        dead = process is None or not process.is_alive()
        stale = (
            handle.last_beat is not None
            and now - handle.last_beat > self.heartbeat_timeout_s
        )
        very_stale = (
            handle.last_beat is not None
            and now - handle.last_beat > 2.0 * self.heartbeat_timeout_s
        )
        if dead or very_stale:
            if handle.status != "dead":
                _LOG.warning(
                    "shard %d is %s (heartbeat age %.2fs)",
                    handle.spec.shard_id,
                    "dead" if dead else "hung",
                    0.0 if handle.last_beat is None else now - handle.last_beat,
                )
            handle.status = "dead"
            if not (self._closed or self._draining):
                try:
                    self._revive(handle, handle.incarnation)
                except (ShardCrashed, ShardFailed):
                    pass  # next sweep / next call retries or surfaces it
        elif stale and handle.status == "live":
            handle.status = "suspect"

    def _publish_gauges(self) -> None:
        statuses = [h.status for h in self._shards.values()]
        live = sum(1 for s in statuses if s in ("live", "suspect"))
        METRICS.gauge("service.shard.live").set(float(live))
        METRICS.gauge("service.shard.live_fraction").set(
            live / len(statuses) if statuses else 0.0
        )
        METRICS.gauge("service.shard.queue_depth").set(
            float(sum(h.inflight for h in self._shards.values()))
        )

    # -- introspection ------------------------------------------------------

    @property
    def shard_ids(self) -> Tuple[int, ...]:
        return tuple(sorted(self._shards))

    @property
    def specs(self) -> Tuple[ShardSpec, ...]:
        return tuple(self._shards[k].spec for k in self.shard_ids)

    def health(self) -> Dict[str, Dict]:
        """Per-shard liveness breakdown (``/healthz`` body; str keys for JSON)."""
        now = time.monotonic()
        out: Dict[str, Dict] = {}
        for shard_id in self.shard_ids:
            handle = self._shards[shard_id]
            process = handle.process
            out[str(shard_id)] = {
                "status": handle.status,
                "pid": None if process is None else process.pid,
                "centers": list(handle.spec.center_ids),
                "respawns": handle.respawns,
                "heartbeats": handle.heartbeats,
                "last_heartbeat_age_s": None
                if handle.last_beat is None
                else round(now - handle.last_beat, 3),
                "inflight": handle.inflight,
            }
        return out

    def statuses(self) -> Dict[int, str]:
        """Each shard's current supervision state, keyed by shard id."""
        return {k: self._shards[k].status for k in self.shard_ids}

    @property
    def retry_after_s(self) -> float:
        return self._retry_after_s

    def set_retry_after(self, seconds: float) -> None:
        """Tune the ``Retry-After`` hint shed requests advertise."""
        self._retry_after_s = max(0.1, float(seconds))

    def begin_drain(self) -> None:
        """Stop auto-revival; in-flight work may still complete."""
        self._draining = True

    # -- shutdown -----------------------------------------------------------

    def close(self, stop_timeout_s: float = 10.0) -> None:
        """Stop monitoring, politely stop every shard, kill stragglers."""
        if self._closed:
            return
        self._closed = True
        self._draining = True
        self._monitor_stop.set()
        self._monitor.join(timeout=5.0)
        for handle in self._shards.values():
            conn = handle.conn
            if conn is not None and handle.alive:
                try:
                    self._rpc(handle, "stop", {}, timeout_s=stop_timeout_s)
                except (ShardCrashed, ShardRPCError):
                    pass
            self._kill(handle)
            handle.status = "stopped"
        try:
            self._events.close()
            self._events.join_thread()
        except (OSError, AttributeError):
            pass

    def __enter__(self) -> "ShardSupervisor":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()
