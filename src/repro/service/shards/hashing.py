"""Stable center → shard routing via rendezvous (highest-random-weight) hashing.

The sharded dispatch engine partitions the fixed center layout across N
worker processes.  The mapping must be

* **deterministic across processes** — the supervisor, every worker, the
  bench harness, and a recovered facade must agree without coordination,
  so weights come from SHA-256, not ``hash()`` (which ``PYTHONHASHSEED``
  perturbs);
* **stable under shard-count changes** — rendezvous hashing moves only
  ~1/N of the centers when N changes, so journal segments written under
  one shard count mostly keep their centers under another;
* **total** — every shard must own at least one center (a
  :class:`~repro.service.state.WorldState` needs a non-empty layout), so
  after the HRW pass a deterministic rebalance moves one center from the
  most-loaded shard to each empty one.
"""

from __future__ import annotations

import hashlib
from typing import Dict, Iterable, Tuple


def _weight(center_id: str, shard_id: int) -> int:
    """The HRW weight of placing ``center_id`` on shard ``shard_id``."""
    digest = hashlib.sha256(f"{center_id}|shard:{shard_id}".encode()).digest()
    return int.from_bytes(digest[:8], "big")


def shard_for(center_id: str, n_shards: int) -> int:
    """The shard that rendezvous hashing assigns ``center_id`` to."""
    if n_shards < 1:
        raise ValueError(f"n_shards must be >= 1, got {n_shards}")
    return max(range(n_shards), key=lambda k: (_weight(center_id, k), -k))


def plan_shards(
    center_ids: Iterable[str], n_shards: int
) -> Dict[int, Tuple[str, ...]]:
    """Partition ``center_ids`` into ``n_shards`` non-empty groups.

    Pure HRW assignment first; then, while any shard is empty, the
    lexicographically-largest center of the currently most-loaded shard
    moves over — deterministic, and a no-op whenever HRW already covered
    every shard.  Raises when there are fewer centers than shards.
    """
    ids = sorted(set(str(cid) for cid in center_ids))
    if n_shards < 1:
        raise ValueError(f"n_shards must be >= 1, got {n_shards}")
    if len(ids) < n_shards:
        raise ValueError(
            f"cannot spread {len(ids)} center(s) across {n_shards} shards; "
            "every shard needs at least one center"
        )
    groups: Dict[int, list] = {k: [] for k in range(n_shards)}
    for cid in ids:
        groups[shard_for(cid, n_shards)].append(cid)
    for k in range(n_shards):
        if groups[k]:
            continue
        donor = max(range(n_shards), key=lambda j: (len(groups[j]), -j))
        groups[k].append(groups[donor].pop())
    return {k: tuple(sorted(group)) for k, group in groups.items()}
