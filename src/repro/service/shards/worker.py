"""The shard worker process of the supervised dispatch pool.

One worker owns a partition of the center layout: a
:class:`~repro.service.state.WorldState` over its centers, its own journal
segment, and a :class:`~repro.service.engine.DispatchEngine` configured
with the *same* root seed and solve knobs as the facade.  Because per-round
solve seeds depend only on ``(seed, round index, solver name, center id)``,
a round solved here is bit-identical to the same round solved by the
single-process engine — shard layout never changes results.

The worker speaks a tiny RPC protocol over a duplex pipe (one request in
flight at a time; the supervisor serialises) and pushes heartbeats onto a
shared events queue from a dedicated thread, so a long solve never looks
like a hang.

**Exactly-once rounds.**  During a ``solve_round`` RPC the partition
journal is suspended (:meth:`WorldState.capture_journal`); the round's
records are captured in memory and the whole round is then made durable as
one fsynced ``shard_round`` record carrying the round index, the inner
ops, and the JSON result.  A crash *before* that append loses only
in-memory state — the supervisor's retry re-runs the round
deterministically on the respawned worker.  A crash *after* it replays the
ops on recovery and the retry returns the journaled result instead of
applying the round twice.
"""

from __future__ import annotations

import signal
import threading
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Optional, Tuple

from repro.core.entities import DistributionCenter
from repro.geo.travel import TravelModel
from repro.service.engine import DispatchEngine
from repro.service.faults import FaultPlan
from repro.service.journal import WorldJournal
from repro.service.state import WorldState
from repro.utils.log import get_logger
from repro.utils.rng import SeedLike

_LOG = get_logger("service.shards.worker")


@dataclass(frozen=True)
class ShardSpec:
    """Everything a shard worker needs to (re)build itself.

    Picklable by construction: it crosses the process boundary with the
    ``spawn`` start method, both at pool start and on every respawn.
    """

    shard_id: int
    centers: Tuple[DistributionCenter, ...]
    travel: Optional[TravelModel] = None
    solver: object = None
    epsilon: Optional[float] = None
    seed: SeedLike = None
    n_jobs: int = 1
    verify: bool = False
    solve_deadline_s: Optional[float] = None
    solve_retries: int = 1
    backoff_base_s: float = 0.05
    scalar_round_cap: int = 50
    faults: Optional[FaultPlan] = None
    delta_catalog: bool = True
    journal_path: Optional[str] = None
    journal_fsync: bool = True
    journal_compact_every: Optional[int] = None
    heartbeat_interval_s: float = 0.25

    @property
    def center_ids(self) -> Tuple[str, ...]:
        return tuple(c.center_id for c in self.centers)


class _ShardService:
    """The in-process request handlers behind the worker's RPC loop."""

    def __init__(self, spec: ShardSpec) -> None:
        self.spec = spec
        path = Path(spec.journal_path) if spec.journal_path else None
        if path is not None and path.exists() and path.stat().st_size > 0:
            # Respawn (or warm restart): replay the segment back to the
            # last fsynced record — fingerprint-identical by the journal
            # layer's contract — and resume journaling in place.
            self.state = WorldState.recover(
                path,
                travel=spec.travel,
                resume=True,
                fsync=spec.journal_fsync,
                compact_every=spec.journal_compact_every,
            )
        else:
            self.state = WorldState(spec.centers, travel=spec.travel)
            if path is not None:
                self.state.attach_journal(
                    WorldJournal(
                        path,
                        fsync=spec.journal_fsync,
                        compact_every=spec.journal_compact_every,
                    )
                )
        self.engine = DispatchEngine(
            self.state,
            spec.solver,
            epsilon=spec.epsilon,
            n_jobs=spec.n_jobs,
            verify=spec.verify,
            seed=spec.seed,
            solve_deadline_s=spec.solve_deadline_s,
            solve_retries=spec.solve_retries,
            backoff_base_s=spec.backoff_base_s,
            scalar_round_cap=spec.scalar_round_cap,
            faults=spec.faults,
            delta_catalog=spec.delta_catalog,
        )

    # -- RPC handlers -------------------------------------------------------

    def handle(self, op: str, msg: Dict) -> object:
        if op == "ping":
            return self.ping()
        if op == "info":
            return self.info()
        if op == "add_tasks":
            return self.state.add_tasks(msg["tasks"])
        if op == "add_workers":
            return self.state.add_workers(msg["workers"])
        if op == "worker_stats":
            return self.state.worker_stats()
        if op == "solve_round":
            return self.solve_round(
                int(msg["index"]),
                float(msg["advance_hours"]),
                msg.get("prev_now"),
                msg.get("target_now"),
                bool(msg.get("commit", True)),
            )
        if op == "drain":
            self.engine.drain()
            return True
        raise ValueError(f"unknown shard RPC op {op!r}")

    def ping(self) -> Dict:
        last = self.state.last_round
        return {
            "shard_id": self.spec.shard_id,
            "centers": list(self.spec.center_ids),
            "last_round": None if last is None else int(last["index"]),
        }

    def info(self) -> Dict:
        last = self.state.last_round
        journal = self.state.journal
        return {
            "shard_id": self.spec.shard_id,
            "centers": list(self.spec.center_ids),
            "now": self.state.now,
            "version": self.state.version,
            "pending_tasks": self.state.pending_task_count,
            "workers": self.state.worker_count,
            "available_workers": self.state.available_worker_count(),
            "fingerprint": self.state.fingerprint(),
            "last_round": None if last is None else int(last["index"]),
            "breakers": self.engine.breakers.snapshot(),
            "journal": None
            if journal is None
            else {"path": str(journal.path), "next_seq": journal.next_seq},
        }

    def solve_round(
        self,
        index: int,
        advance_hours: float,
        prev_now: Optional[float],
        target_now: Optional[float],
        commit: bool,
    ) -> Dict:
        last = self.state.last_round
        if last is not None and int(last["index"]) == index:
            # Retried RPC for a round this partition already applied (the
            # crash-after-append case): answer from the journaled record.
            return last["result"]
        if last is not None and int(last["index"]) > index:
            raise ValueError(
                f"shard {self.spec.shard_id} already applied round "
                f"{last['index']}, cannot run round {index}"
            )
        hours = float(advance_hours)
        if (
            prev_now is not None
            and target_now is not None
            and self.state.now != float(prev_now)
        ):
            # The partition clock lags (this shard skipped degraded
            # rounds): catch up to the facade's target instead of applying
            # the delta — clocks converge, late tasks expire correctly.
            hours = max(0.0, float(target_now) - self.state.now)
        self.engine.resume_at(index)
        if self.state.journal is None:
            result = self.engine.dispatch(advance_hours=hours, commit=commit)
            wire = result.as_dict()
            self.state.note_round(index, wire, commit)
            return wire
        with self.state.capture_journal() as recorder:
            result = self.engine.dispatch(advance_hours=hours, commit=commit)
        wire = result.as_dict()
        self.state.append_shard_round(index, commit, recorder.ops, wire)
        return wire

    def shutdown(self) -> None:
        self.engine.drain()
        journal = self.state.journal
        if journal is not None:
            journal.close()


def shard_worker_main(spec: ShardSpec, conn, events) -> None:
    """Entry point of one shard worker process (``spawn`` start method).

    ``conn`` is the worker end of the supervisor's duplex RPC pipe;
    ``events`` is the shared heartbeat queue.  The loop answers one
    request at a time and exits on ``stop``, EOF, or a closed pipe — the
    supervisor owns every other lifecycle decision (including SIGKILL).
    """
    # The supervisor drives shutdown; a terminal Ctrl-C must not tear the
    # pool down ahead of the facade's drain sequence.
    try:
        signal.signal(signal.SIGINT, signal.SIG_IGN)
    except (ValueError, OSError):  # non-main thread / exotic platform
        pass

    service = _ShardService(spec)
    stop = threading.Event()

    def _beat() -> None:
        seq = 0
        while not stop.is_set():
            try:
                events.put(("heartbeat", spec.shard_id, seq))
            except (OSError, ValueError):
                return
            seq += 1
            stop.wait(spec.heartbeat_interval_s)

    beater = threading.Thread(
        target=_beat, name=f"shard-{spec.shard_id}-heartbeat", daemon=True
    )
    beater.start()
    try:
        events.put(("ready", spec.shard_id, None))
    except (OSError, ValueError):
        pass

    try:
        while True:
            try:
                msg = conn.recv()
            except (EOFError, OSError):
                break
            op = str(msg.get("op"))
            msg_id = msg.get("id")
            if op == "stop":
                try:
                    service.shutdown()
                finally:
                    try:
                        conn.send({"id": msg_id, "ok": True, "value": True})
                    except (OSError, ValueError):
                        pass
                break
            try:
                value = service.handle(op, msg)
            except Exception as exc:  # answer, never die: supervisor decides
                _LOG.exception("shard %d rpc %r failed", spec.shard_id, op)
                reply = {
                    "id": msg_id,
                    "ok": False,
                    "error": f"{type(exc).__name__}: {exc}",
                }
            else:
                reply = {"id": msg_id, "ok": True, "value": value}
            try:
                conn.send(reply)
            except (OSError, ValueError):
                break
    finally:
        stop.set()
        try:
            conn.close()
        except OSError:
            pass
