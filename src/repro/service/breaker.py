"""Per-center circuit breakers for the dispatch engine.

A center that repeatedly times out or fails (huge catalog, pathological
convergence, injected chaos) should not re-burn the solve budget every
round.  Each center gets a classic three-state breaker:

* **closed** — primary solves run normally; consecutive failures are
  counted, and reaching ``failure_threshold`` opens the breaker.
* **open** — the engine skips straight to the greedy rung of the
  degradation ladder (bounded, fairness-blind, but always fast) until
  ``cooldown_s`` of wall-clock has passed.
* **half-open** — after the cooldown one primary attempt is admitted as a
  probe: success closes the breaker, failure re-opens it (and restarts
  the cooldown).

The clock is injectable (``time.monotonic`` by default) so tests drive
transitions without sleeping.  Transitions are counted in
:data:`repro.obs.METRICS` (``service.breaker.opened`` / ``.reopened`` /
``.closed``) and the board's state is served by ``GET /healthz``.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from typing import Callable, Dict, Optional

from repro.obs.metrics import METRICS

#: Breaker state names (stable API: these strings appear on /healthz).
CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half_open"


@dataclass(frozen=True)
class BreakerConfig:
    """Tuning of one center's breaker."""

    failure_threshold: int = 3
    cooldown_s: float = 30.0

    def __post_init__(self) -> None:
        if self.failure_threshold < 1:
            raise ValueError(
                f"failure_threshold must be >= 1, got {self.failure_threshold}"
            )
        if self.cooldown_s <= 0:
            raise ValueError(f"cooldown_s must be > 0, got {self.cooldown_s}")


class CircuitBreaker:
    """One center's closed → open → half-open breaker (see module doc)."""

    def __init__(
        self,
        config: BreakerConfig,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        self._config = config
        self._clock = clock
        self._state = CLOSED
        self._consecutive_failures = 0
        self._opened_at = 0.0

    @property
    def state(self) -> str:
        """Current state, promoting an expired ``open`` to ``half_open``."""
        if (
            self._state == OPEN
            and self._clock() - self._opened_at >= self._config.cooldown_s
        ):
            self._state = HALF_OPEN
        return self._state

    @property
    def consecutive_failures(self) -> int:
        return self._consecutive_failures

    def allow_primary(self) -> bool:
        """Whether the primary rung may run (closed, or a half-open probe)."""
        return self.state != OPEN

    def record_success(self) -> None:
        """A primary solve succeeded: close and reset the failure count."""
        if self._state != CLOSED:
            METRICS.counter("service.breaker.closed").add(1)
        self._state = CLOSED
        self._consecutive_failures = 0

    def record_failure(self) -> None:
        """A primary solve failed: count it, opening at the threshold."""
        state = self.state  # promote an expired cooldown first
        self._consecutive_failures += 1
        if state == HALF_OPEN:
            # The probe failed: straight back to open, fresh cooldown.
            self._state = OPEN
            self._opened_at = self._clock()
            METRICS.counter("service.breaker.reopened").add(1)
        elif (
            state == CLOSED
            and self._consecutive_failures >= self._config.failure_threshold
        ):
            self._state = OPEN
            self._opened_at = self._clock()
            METRICS.counter("service.breaker.opened").add(1)


class BreakerBoard:
    """Lazily-created breakers keyed by center id (thread-safe)."""

    def __init__(
        self,
        config: Optional[BreakerConfig] = None,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        self.config = config if config is not None else BreakerConfig()
        self._clock = clock
        self._lock = threading.Lock()
        self._breakers: Dict[str, CircuitBreaker] = {}

    def for_center(self, center_id: str) -> CircuitBreaker:
        """The breaker guarding ``center_id`` (created closed on first use)."""
        with self._lock:
            breaker = self._breakers.get(center_id)
            if breaker is None:
                breaker = self._breakers[center_id] = CircuitBreaker(
                    self.config, self._clock
                )
            return breaker

    def states(self) -> Dict[str, str]:
        """``center_id -> state`` for every breaker touched so far."""
        with self._lock:
            items = list(self._breakers.items())
        return {cid: breaker.state for cid, breaker in sorted(items)}

    def open_count(self) -> int:
        """Number of breakers currently open (feeds a gauge)."""
        return sum(1 for state in self.states().values() if state == OPEN)

    def snapshot(self) -> Dict[str, Dict[str, object]]:
        """JSON-ready per-center view served by ``GET /healthz``."""
        with self._lock:
            items = list(self._breakers.items())
        return {
            cid: {
                "state": breaker.state,
                "consecutive_failures": breaker.consecutive_failures,
            }
            for cid, breaker in sorted(items)
        }
