"""Thin client and deterministic load generator for the dispatch service.

:class:`DispatchClient` speaks the JSON API of :mod:`repro.service.api`
with nothing but ``urllib`` — usable from tests, the CI smoke job, and
operator scripts.  :class:`LoadGenerator` turns a center layout into
reproducible churn: the same seed always yields the same task and worker
batches, so a scripted load run is replayable bit-for-bit (the service-side
determinism contract extends to the traffic).
"""

from __future__ import annotations

import json
import random
import time
import urllib.error
import urllib.request
from typing import Dict, List, Optional, Sequence, Tuple

from repro.utils.rng import RngFactory, SeedLike


class ServiceError(Exception):
    """An HTTP error answered by the service (carries the status code)."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(f"HTTP {status}: {message}")
        self.status = status


class ServiceUnavailable(ServiceError):
    """The service cannot be reached (or answered 503, e.g. while draining).

    Raised with status 0 when every connection attempt failed at the
    transport layer (refused, reset, DNS, timeout) — the typed replacement
    for ``urllib.error.URLError`` leaking out of the client — and with
    status 503 when the service itself said so.  A 503 carries the
    server's ``Retry-After`` hint (seconds, ``None`` when absent) and the
    parsed JSON body (e.g. the degraded ``/healthz`` breakdown) when one
    was decodable.
    """

    def __init__(
        self,
        message: str,
        status: int = 0,
        retry_after: Optional[float] = None,
        payload: Optional[Dict] = None,
    ) -> None:
        super().__init__(status, message)
        self.retry_after = retry_after
        self.payload = payload


class DispatchClient:
    """Minimal JSON client for one dispatch service instance.

    Parameters
    ----------
    base_url:
        ``http://host:port`` of a running :class:`~repro.service.api.DispatchServer`.
    timeout:
        Per-request socket timeout in seconds.
    retries:
        Extra attempts after a *connection-level* failure (refused, reset,
        timed out before an HTTP response).  HTTP error responses are never
        retried — the request reached the service.  Retries apply only to
        *idempotent* requests: every GET, the submit POSTs (the server
        deduplicates by task/worker id, so a replay is rejected, not
        re-applied), and ``shutdown()``.  ``POST /dispatch`` is **not**
        idempotent — a request that dies mid-flight (e.g. a solve
        outliving the socket timeout) may still commit, and a retry would
        launch a second round — so :meth:`dispatch` never retries unless
        its ``retry=True`` is passed explicitly.
    backoff_s:
        Base of the retry backoff.  Actual sleeps use exponential backoff
        with *full jitter*: attempt ``k`` sleeps a uniform draw from
        ``[0, backoff_s * 2^(k-1)]``, so a fleet of clients retrying
        against one recovering service spreads out instead of
        thundering back in lockstep.  A 503 carrying ``Retry-After``
        overrides the jittered sleep with the server's hint (capped at
        ``max_retry_after_s``).
    max_retry_after_s:
        Upper bound honoured for server ``Retry-After`` hints.
    trace_id:
        When set, sent as the ``X-Repro-Trace-Id`` header on every request
        so the server's spans land in the caller's trace.  The server
        echoes the header either way; :attr:`last_trace_id` keeps the most
        recent echo for correlation.
    """

    def __init__(
        self,
        base_url: str,
        timeout: float = 10.0,
        retries: int = 2,
        backoff_s: float = 0.1,
        max_retry_after_s: float = 30.0,
        trace_id: Optional[str] = None,
    ) -> None:
        if retries < 0:
            raise ValueError(f"retries must be >= 0, got {retries}")
        if backoff_s < 0:
            raise ValueError(f"backoff_s must be >= 0, got {backoff_s}")
        if max_retry_after_s < 0:
            raise ValueError(
                f"max_retry_after_s must be >= 0, got {max_retry_after_s}"
            )
        self.base_url = base_url.rstrip("/")
        self.timeout = timeout
        self.retries = retries
        self.backoff_s = backoff_s
        self.max_retry_after_s = max_retry_after_s
        self.trace_id = trace_id
        #: The trace id the server echoed on the last successful response.
        self.last_trace_id: Optional[str] = None
        self._jitter = random.Random()

    # -- transport ----------------------------------------------------------

    def _sleep_seconds(
        self, attempt: int, retry_after: Optional[float] = None
    ) -> float:
        """How long to sleep before retry ``attempt`` (>= 1).

        A server ``Retry-After`` hint wins (capped); otherwise exponential
        backoff with full jitter — uniform over ``[0, base * 2^(k-1)]``.
        """
        if retry_after is not None:
            return min(max(0.0, float(retry_after)), self.max_retry_after_s)
        if not self.backoff_s:
            return 0.0
        return self._jitter.uniform(0.0, self.backoff_s * (2 ** (attempt - 1)))

    @staticmethod
    def _parse_503(raw: bytes, headers) -> Tuple[str, Optional[float], Optional[Dict]]:
        """Message, ``Retry-After`` seconds, and JSON body of a 503."""
        payload: Optional[Dict] = None
        try:
            decoded = json.loads(raw.decode("utf-8"))
            if isinstance(decoded, dict):
                payload = decoded
            message = (
                decoded.get("error", raw.decode())
                if isinstance(decoded, dict)
                else raw.decode()
            )
        except (ValueError, UnicodeDecodeError):
            message = raw.decode("utf-8", "replace")
        retry_after: Optional[float] = None
        header = headers.get("Retry-After") if headers is not None else None
        if header is not None:
            try:
                retry_after = float(header)
            except ValueError:
                retry_after = None
        return message, retry_after, payload

    def _request(
        self,
        method: str,
        path: str,
        payload: Optional[Dict] = None,
        idempotent: Optional[bool] = None,
        retry_503: Optional[bool] = None,
    ) -> Tuple[int, bytes, str]:
        if idempotent is None:
            idempotent = method == "GET"
        if retry_503 is None:
            # A 503 means the request was *not* applied (shed or draining),
            # so retrying it is safe exactly when retrying a connection
            # failure is.
            retry_503 = idempotent
        attempts = 1 + (self.retries if idempotent else 0)
        body = None if payload is None else json.dumps(payload).encode("utf-8")
        last_error: Optional[Exception] = None
        next_retry_after: Optional[float] = None
        for attempt in range(attempts):
            if attempt:
                delay = self._sleep_seconds(attempt, next_retry_after)
                next_retry_after = None
                if delay:
                    time.sleep(delay)
            headers = {"Content-Type": "application/json"} if body else {}
            if self.trace_id:
                headers["X-Repro-Trace-Id"] = self.trace_id
            request = urllib.request.Request(
                f"{self.base_url}{path}",
                data=body,
                method=method,
                headers=headers,
            )
            try:
                with urllib.request.urlopen(
                    request, timeout=self.timeout
                ) as response:
                    echoed = response.headers.get("X-Repro-Trace-Id")
                    if echoed:
                        self.last_trace_id = echoed
                    return (
                        response.status,
                        response.read(),
                        response.headers.get("Content-Type", ""),
                    )
            except urllib.error.HTTPError as exc:
                raw = exc.read()
                if exc.code == 503:
                    message, retry_after, body_503 = self._parse_503(
                        raw, exc.headers
                    )
                    error = ServiceUnavailable(
                        message,
                        status=503,
                        retry_after=retry_after,
                        payload=body_503,
                    )
                    if retry_503 and attempt + 1 < attempts:
                        # Overload/draining is transient: honour the
                        # server's Retry-After for the next sleep.
                        last_error = error
                        next_retry_after = retry_after
                        continue
                    raise error from None
                try:
                    message = json.loads(raw.decode("utf-8")).get(
                        "error", raw.decode()
                    )
                except (ValueError, UnicodeDecodeError):
                    message = raw.decode("utf-8", "replace")
                raise ServiceError(exc.code, message) from None
            except (urllib.error.URLError, OSError) as exc:
                last_error = exc
        if isinstance(last_error, ServiceUnavailable):
            raise last_error
        raise ServiceUnavailable(
            f"{method} {self.base_url}{path} failed after "
            f"{attempts} attempt(s): {last_error}"
        ) from last_error

    def _json(
        self,
        method: str,
        path: str,
        payload: Optional[Dict] = None,
        idempotent: Optional[bool] = None,
        retry_503: Optional[bool] = None,
    ) -> Dict:
        _, raw, _ = self._request(
            method, path, payload, idempotent=idempotent, retry_503=retry_503
        )
        return json.loads(raw.decode("utf-8"))

    # -- API ----------------------------------------------------------------

    def health(self) -> Dict:
        """``GET /healthz`` — returns the body even when it is a 503.

        A draining or degraded service answers 503 *with* a JSON body
        (status + per-shard breakdown); callers polling health want that
        body, not an exception, so the 503 is unwrapped here.  Transport
        failures (status 0) still raise.
        """
        try:
            return self._json("GET", "/healthz", retry_503=False)
        except ServiceUnavailable as exc:
            if exc.status == 503 and exc.payload is not None:
                return exc.payload
            raise

    def metrics_text(self) -> str:
        """``GET /metrics`` — the raw Prometheus exposition text."""
        _, raw, _ = self._request("GET", "/metrics")
        return raw.decode("utf-8")

    def metrics(self) -> Dict[str, float]:
        """``GET /metrics`` parsed into a flat ``name -> value`` mapping."""
        values: Dict[str, float] = {}
        for line in self.metrics_text().splitlines():
            if not line or line.startswith("#"):
                continue
            name, _, value = line.partition(" ")
            values[name] = float(value)
        return values

    def submit_tasks(self, tasks: Sequence[Dict]) -> Dict:
        """``POST /tasks`` with a batch of task dicts.

        Retried on connection failures: the server rejects duplicate task
        ids, so a replayed batch cannot be applied twice.
        """
        return self._json("POST", "/tasks", {"tasks": list(tasks)}, idempotent=True)

    def submit_workers(self, workers: Sequence[Dict]) -> Dict:
        """``POST /workers`` with a batch of worker dicts.

        Retried on connection failures: the server rejects duplicate
        worker ids, so a replayed batch cannot re-register (or reset) a
        worker.
        """
        return self._json(
            "POST", "/workers", {"workers": list(workers)}, idempotent=True
        )

    def dispatch(
        self,
        advance_hours: float = 0.0,
        commit: bool = True,
        retry: bool = False,
    ) -> Dict:
        """``POST /dispatch`` — trigger one micro-batch round.

        Not retried by default: a dispatch whose connection dies mid-solve
        may still commit server-side, so a retry would run a *second*
        round.  Pass ``retry=True`` only when at-least-once rounds are
        acceptable (e.g. load scripts that just want progress).  A 503
        (shed by admission control) is safe either way — the round was
        *not* started — and with ``retry=True`` the client sleeps the
        server's ``Retry-After`` hint before trying again; without it the
        :class:`ServiceUnavailable` carries the hint for the caller.
        """
        return self._json(
            "POST",
            "/dispatch",
            {"advance_hours": advance_hours, "commit": commit},
            idempotent=retry,
        )

    def assignments(self) -> Dict:
        """``GET /assignments`` — last committed round + worker stats."""
        return self._json("GET", "/assignments")

    def slo(self) -> Dict:
        """``GET /slo`` — objectives with error-budget burn accounting."""
        return self._json("GET", "/slo")

    def equity(self) -> Dict:
        """``GET /equity`` — the cross-round ledger (404 when not enabled)."""
        return self._json("GET", "/equity")

    def shutdown(self) -> Dict:
        """``POST /shutdown`` — ask the service to stop gracefully.

        Retried on connection failures; asking an already-draining service
        to stop again is harmless.
        """
        return self._json("POST", "/shutdown", idempotent=True)

    def wait_healthy(self, timeout: float = 10.0, interval: float = 0.05) -> Dict:
        """Poll ``/healthz`` until the service answers (startup barrier)."""
        deadline = time.monotonic() + timeout
        last_error: Optional[Exception] = None
        while time.monotonic() < deadline:
            try:
                return self.health()
            except (ServiceError, urllib.error.URLError, OSError) as exc:
                last_error = exc
                time.sleep(interval)
        raise TimeoutError(
            f"service at {self.base_url} not healthy after {timeout}s: {last_error}"
        )


class LoadGenerator:
    """Seeded task/worker churn over a fixed delivery-point layout.

    Parameters
    ----------
    dp_ids:
        The delivery points tasks may land on (e.g. from the instance the
        service was started with).
    seed:
        Root seed; every batch is a named stream, so generation order does
        not perturb the draws.
    patience:
        ``(min, max)`` hours a generated task stays valid after ``now``.
    """

    def __init__(
        self,
        dp_ids: Sequence[str],
        seed: SeedLike = None,
        patience: Tuple[float, float] = (0.8, 1.6),
        reward: float = 1.0,
    ) -> None:
        if not dp_ids:
            raise ValueError("the load generator needs at least one delivery point")
        low, high = patience
        if not 0 < low <= high:
            raise ValueError(f"patience must satisfy 0 < min <= max, got {patience}")
        self._dp_ids = list(dp_ids)
        self._rng_factory = RngFactory(seed)
        self._patience = (float(low), float(high))
        self._reward = float(reward)
        self._task_batches = 0
        self._worker_batches = 0

    def tasks(self, count: int, now: float = 0.0) -> List[Dict]:
        """A deterministic batch of task dicts with absolute expiries."""
        if count < 0:
            raise ValueError(f"count must be >= 0, got {count}")
        batch = self._task_batches
        self._task_batches += 1
        rng = self._rng_factory.get(f"tasks:{batch}")
        picks = rng.integers(0, len(self._dp_ids), size=count)
        patience = rng.uniform(self._patience[0], self._patience[1], size=count)
        return [
            {
                "task_id": f"load_b{batch}_t{k}",
                "dp_id": self._dp_ids[int(picks[k])],
                "expiry": now + float(patience[k]),
                "reward": self._reward,
            }
            for k in range(count)
        ]

    def workers(
        self,
        count: int,
        span_km: float = 2.0,
        max_delivery_points: int = 3,
        center_id: Optional[str] = None,
    ) -> List[Dict]:
        """A deterministic batch of worker dicts scattered around the origin."""
        if count < 0:
            raise ValueError(f"count must be >= 0, got {count}")
        batch = self._worker_batches
        self._worker_batches += 1
        rng = self._rng_factory.get(f"workers:{batch}")
        coords = rng.uniform(-span_km, span_km, size=(count, 2))
        return [
            {
                "worker_id": f"load_b{batch}_w{k}",
                "x": float(coords[k, 0]),
                "y": float(coords[k, 1]),
                "max_delivery_points": max_delivery_points,
                **({} if center_id is None else {"center_id": center_id}),
            }
            for k in range(count)
        ]
