"""Thin client and deterministic load generator for the dispatch service.

:class:`DispatchClient` speaks the JSON API of :mod:`repro.service.api`
with nothing but ``urllib`` — usable from tests, the CI smoke job, and
operator scripts.  :class:`LoadGenerator` turns a center layout into
reproducible churn: the same seed always yields the same task and worker
batches, so a scripted load run is replayable bit-for-bit (the service-side
determinism contract extends to the traffic).
"""

from __future__ import annotations

import json
import time
import urllib.error
import urllib.request
from typing import Dict, List, Optional, Sequence, Tuple

from repro.utils.rng import RngFactory, SeedLike


class ServiceError(Exception):
    """An HTTP error answered by the service (carries the status code)."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(f"HTTP {status}: {message}")
        self.status = status


class ServiceUnavailable(ServiceError):
    """The service cannot be reached (or answered 503, e.g. while draining).

    Raised with status 0 when every connection attempt failed at the
    transport layer (refused, reset, DNS, timeout) — the typed replacement
    for ``urllib.error.URLError`` leaking out of the client — and with
    status 503 when the service itself said so.
    """

    def __init__(self, message: str, status: int = 0) -> None:
        super().__init__(status, message)


class DispatchClient:
    """Minimal JSON client for one dispatch service instance.

    Parameters
    ----------
    base_url:
        ``http://host:port`` of a running :class:`~repro.service.api.DispatchServer`.
    timeout:
        Per-request socket timeout in seconds.
    retries:
        Extra attempts after a *connection-level* failure (refused, reset,
        timed out before an HTTP response).  HTTP error responses are never
        retried — the request reached the service.  Retries apply only to
        *idempotent* requests: every GET, the submit POSTs (the server
        deduplicates by task/worker id, so a replay is rejected, not
        re-applied), and ``shutdown()``.  ``POST /dispatch`` is **not**
        idempotent — a request that dies mid-flight (e.g. a solve
        outliving the socket timeout) may still commit, and a retry would
        launch a second round — so :meth:`dispatch` never retries unless
        its ``retry=True`` is passed explicitly.
    backoff_s:
        Base sleep between connection retries (doubled per attempt).
    trace_id:
        When set, sent as the ``X-Repro-Trace-Id`` header on every request
        so the server's spans land in the caller's trace.  The server
        echoes the header either way; :attr:`last_trace_id` keeps the most
        recent echo for correlation.
    """

    def __init__(
        self,
        base_url: str,
        timeout: float = 10.0,
        retries: int = 2,
        backoff_s: float = 0.1,
        trace_id: Optional[str] = None,
    ) -> None:
        if retries < 0:
            raise ValueError(f"retries must be >= 0, got {retries}")
        if backoff_s < 0:
            raise ValueError(f"backoff_s must be >= 0, got {backoff_s}")
        self.base_url = base_url.rstrip("/")
        self.timeout = timeout
        self.retries = retries
        self.backoff_s = backoff_s
        self.trace_id = trace_id
        #: The trace id the server echoed on the last successful response.
        self.last_trace_id: Optional[str] = None

    # -- transport ----------------------------------------------------------

    def _request(
        self,
        method: str,
        path: str,
        payload: Optional[Dict] = None,
        idempotent: Optional[bool] = None,
    ) -> Tuple[int, bytes, str]:
        if idempotent is None:
            idempotent = method == "GET"
        attempts = 1 + (self.retries if idempotent else 0)
        body = None if payload is None else json.dumps(payload).encode("utf-8")
        last_error: Optional[Exception] = None
        for attempt in range(attempts):
            if attempt and self.backoff_s:
                time.sleep(self.backoff_s * (2 ** (attempt - 1)))
            headers = {"Content-Type": "application/json"} if body else {}
            if self.trace_id:
                headers["X-Repro-Trace-Id"] = self.trace_id
            request = urllib.request.Request(
                f"{self.base_url}{path}",
                data=body,
                method=method,
                headers=headers,
            )
            try:
                with urllib.request.urlopen(
                    request, timeout=self.timeout
                ) as response:
                    echoed = response.headers.get("X-Repro-Trace-Id")
                    if echoed:
                        self.last_trace_id = echoed
                    return (
                        response.status,
                        response.read(),
                        response.headers.get("Content-Type", ""),
                    )
            except urllib.error.HTTPError as exc:
                raw = exc.read()
                try:
                    message = json.loads(raw.decode("utf-8")).get(
                        "error", raw.decode()
                    )
                except (ValueError, UnicodeDecodeError):
                    message = raw.decode("utf-8", "replace")
                if exc.code == 503:
                    raise ServiceUnavailable(message, status=503) from None
                raise ServiceError(exc.code, message) from None
            except (urllib.error.URLError, OSError) as exc:
                last_error = exc
        raise ServiceUnavailable(
            f"{method} {self.base_url}{path} failed after "
            f"{attempts} attempt(s): {last_error}"
        ) from last_error

    def _json(
        self,
        method: str,
        path: str,
        payload: Optional[Dict] = None,
        idempotent: Optional[bool] = None,
    ) -> Dict:
        _, raw, _ = self._request(method, path, payload, idempotent=idempotent)
        return json.loads(raw.decode("utf-8"))

    # -- API ----------------------------------------------------------------

    def health(self) -> Dict:
        """``GET /healthz``."""
        return self._json("GET", "/healthz")

    def metrics_text(self) -> str:
        """``GET /metrics`` — the raw Prometheus exposition text."""
        _, raw, _ = self._request("GET", "/metrics")
        return raw.decode("utf-8")

    def metrics(self) -> Dict[str, float]:
        """``GET /metrics`` parsed into a flat ``name -> value`` mapping."""
        values: Dict[str, float] = {}
        for line in self.metrics_text().splitlines():
            if not line or line.startswith("#"):
                continue
            name, _, value = line.partition(" ")
            values[name] = float(value)
        return values

    def submit_tasks(self, tasks: Sequence[Dict]) -> Dict:
        """``POST /tasks`` with a batch of task dicts.

        Retried on connection failures: the server rejects duplicate task
        ids, so a replayed batch cannot be applied twice.
        """
        return self._json("POST", "/tasks", {"tasks": list(tasks)}, idempotent=True)

    def submit_workers(self, workers: Sequence[Dict]) -> Dict:
        """``POST /workers`` with a batch of worker dicts.

        Retried on connection failures: the server rejects duplicate
        worker ids, so a replayed batch cannot re-register (or reset) a
        worker.
        """
        return self._json(
            "POST", "/workers", {"workers": list(workers)}, idempotent=True
        )

    def dispatch(
        self,
        advance_hours: float = 0.0,
        commit: bool = True,
        retry: bool = False,
    ) -> Dict:
        """``POST /dispatch`` — trigger one micro-batch round.

        Not retried by default: a dispatch whose connection dies mid-solve
        may still commit server-side, so a retry would run a *second*
        round.  Pass ``retry=True`` only when at-least-once rounds are
        acceptable (e.g. load scripts that just want progress).
        """
        return self._json(
            "POST",
            "/dispatch",
            {"advance_hours": advance_hours, "commit": commit},
            idempotent=retry,
        )

    def assignments(self) -> Dict:
        """``GET /assignments`` — last committed round + worker stats."""
        return self._json("GET", "/assignments")

    def slo(self) -> Dict:
        """``GET /slo`` — objectives with error-budget burn accounting."""
        return self._json("GET", "/slo")

    def equity(self) -> Dict:
        """``GET /equity`` — the cross-round ledger (404 when not enabled)."""
        return self._json("GET", "/equity")

    def shutdown(self) -> Dict:
        """``POST /shutdown`` — ask the service to stop gracefully.

        Retried on connection failures; asking an already-draining service
        to stop again is harmless.
        """
        return self._json("POST", "/shutdown", idempotent=True)

    def wait_healthy(self, timeout: float = 10.0, interval: float = 0.05) -> Dict:
        """Poll ``/healthz`` until the service answers (startup barrier)."""
        deadline = time.monotonic() + timeout
        last_error: Optional[Exception] = None
        while time.monotonic() < deadline:
            try:
                return self.health()
            except (ServiceError, urllib.error.URLError, OSError) as exc:
                last_error = exc
                time.sleep(interval)
        raise TimeoutError(
            f"service at {self.base_url} not healthy after {timeout}s: {last_error}"
        )


class LoadGenerator:
    """Seeded task/worker churn over a fixed delivery-point layout.

    Parameters
    ----------
    dp_ids:
        The delivery points tasks may land on (e.g. from the instance the
        service was started with).
    seed:
        Root seed; every batch is a named stream, so generation order does
        not perturb the draws.
    patience:
        ``(min, max)`` hours a generated task stays valid after ``now``.
    """

    def __init__(
        self,
        dp_ids: Sequence[str],
        seed: SeedLike = None,
        patience: Tuple[float, float] = (0.8, 1.6),
        reward: float = 1.0,
    ) -> None:
        if not dp_ids:
            raise ValueError("the load generator needs at least one delivery point")
        low, high = patience
        if not 0 < low <= high:
            raise ValueError(f"patience must satisfy 0 < min <= max, got {patience}")
        self._dp_ids = list(dp_ids)
        self._rng_factory = RngFactory(seed)
        self._patience = (float(low), float(high))
        self._reward = float(reward)
        self._task_batches = 0
        self._worker_batches = 0

    def tasks(self, count: int, now: float = 0.0) -> List[Dict]:
        """A deterministic batch of task dicts with absolute expiries."""
        if count < 0:
            raise ValueError(f"count must be >= 0, got {count}")
        batch = self._task_batches
        self._task_batches += 1
        rng = self._rng_factory.get(f"tasks:{batch}")
        picks = rng.integers(0, len(self._dp_ids), size=count)
        patience = rng.uniform(self._patience[0], self._patience[1], size=count)
        return [
            {
                "task_id": f"load_b{batch}_t{k}",
                "dp_id": self._dp_ids[int(picks[k])],
                "expiry": now + float(patience[k]),
                "reward": self._reward,
            }
            for k in range(count)
        ]

    def workers(
        self,
        count: int,
        span_km: float = 2.0,
        max_delivery_points: int = 3,
        center_id: Optional[str] = None,
    ) -> List[Dict]:
        """A deterministic batch of worker dicts scattered around the origin."""
        if count < 0:
            raise ValueError(f"count must be >= 0, got {count}")
        batch = self._worker_batches
        self._worker_batches += 1
        rng = self._rng_factory.get(f"workers:{batch}")
        coords = rng.uniform(-span_km, span_km, size=(count, 2))
        return [
            {
                "worker_id": f"load_b{batch}_w{k}",
                "x": float(coords[k, 0]),
                "y": float(coords[k, 1]),
                "max_delivery_points": max_delivery_points,
                **({} if center_id is None else {"center_id": center_id}),
            }
            for k in range(count)
        ]
