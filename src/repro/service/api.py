"""JSON-over-HTTP API of the online dispatch service (stdlib only).

A :class:`DispatchServer` wraps a :class:`~repro.service.engine.DispatchEngine`
in a ``ThreadingHTTPServer`` — no framework, no new dependencies — exposing
the operational loop a platform needs:

=========  ===============  ====================================================
method     path             effect
=========  ===============  ====================================================
``POST``   ``/tasks``       enqueue tasks (absolute-hour expiries)
``POST``   ``/workers``     register workers (attached to nearest center)
``POST``   ``/dispatch``    run one round; ``advance_hours``/``commit`` optional
``GET``    ``/assignments`` last committed round + cumulative worker stats
``GET``    ``/healthz``     liveness (503 while draining or a shard is down)
``GET``    ``/metrics``     Prometheus rendering of :data:`repro.obs.METRICS`
``GET``    ``/slo``         objectives with error-budget burn (:mod:`repro.obs.slo`)
``GET``    ``/equity``      cross-round equity ledger (docs/temporal_fairness.md)
``POST``   ``/shutdown``    graceful stop (drain in-flight round, final dump)
=========  ===============  ====================================================

Every request runs inside a trace: the ``X-Repro-Trace-Id`` request header
is adopted as the trace id when present (minted otherwise) and echoed on
the response, so a client can stitch its call into the server's JSONL
trace.  When tracing is live the request itself is a ``service.request``
span, and the dispatch round's whole span tree hangs under it.

Shutdown is graceful whichever way it arrives (signal, ``/shutdown``, or
:meth:`DispatchServer.stop`): the accept loop stops, any in-flight dispatch
round drains, and a final metrics snapshot is logged and traced.
"""

from __future__ import annotations

import json
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Dict, List, Optional, Tuple

import math

from repro.obs.metrics import METRICS
from repro.obs.slo import (
    SLOBoard,
    default_slos,
    rolling_fairness_slo,
    shard_liveness_slo,
)
from repro.obs.tracer import resolve_tracer, start_trace
from repro.service.engine import (
    DispatchEngine,
    EngineDraining,
    ServiceOverloaded,
)
from repro.utils.log import get_logger

_LOG = get_logger("service.api")

#: Largest request body the API accepts (1 MiB keeps churn posts cheap).
MAX_BODY_BYTES = 1 << 20

#: Request/response header carrying the causal trace id.
TRACE_HEADER = "X-Repro-Trace-Id"


class ApiError(Exception):
    """A client error with an HTTP status code."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(message)
        self.status = status


class _Handler(BaseHTTPRequestHandler):
    """Routes requests to the server's engine; one instance per request."""

    server: "DispatchHTTPServer"
    protocol_version = "HTTP/1.1"

    # -- plumbing -----------------------------------------------------------

    def log_message(self, fmt: str, *args) -> None:  # noqa: A003
        _LOG.debug("%s %s", self.address_string(), fmt % args)

    def _read_json(self) -> Dict:
        length = int(self.headers.get("Content-Length", 0) or 0)
        if length > MAX_BODY_BYTES:
            raise ApiError(413, f"body exceeds {MAX_BODY_BYTES} bytes")
        raw = self.rfile.read(length) if length else b""
        if not raw:
            return {}
        try:
            payload = json.loads(raw.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise ApiError(400, f"invalid JSON body: {exc}")
        if not isinstance(payload, dict):
            raise ApiError(400, "JSON body must be an object")
        return payload

    def _send(
        self,
        status: int,
        body: bytes,
        content_type: str,
        headers: Optional[Dict[str, str]] = None,
    ) -> None:
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        for name, value in (headers or {}).items():
            self.send_header(name, value)
        trace_id = getattr(self, "_trace_id", None)
        if trace_id:
            self.send_header(TRACE_HEADER, trace_id)
        self.end_headers()
        self.wfile.write(body)

    def _send_json(
        self,
        payload: Dict,
        status: int = 200,
        headers: Optional[Dict[str, str]] = None,
    ) -> None:
        self._send(
            status,
            json.dumps(payload).encode("utf-8"),
            "application/json; charset=utf-8",
            headers=headers,
        )

    def _send_overloaded(self, exc: ServiceOverloaded) -> None:
        """503 + integer-ceil ``Retry-After`` (RFC 9110 wants whole seconds)."""
        retry_after = max(1, math.ceil(exc.retry_after_s))
        self._send_json(
            {"error": str(exc), "retry_after_s": exc.retry_after_s},
            status=503,
            headers={"Retry-After": str(retry_after)},
        )

    def _send_text(self, text: str, status: int = 200) -> None:
        self._send(
            status, text.encode("utf-8"), "text/plain; version=0.0.4; charset=utf-8"
        )

    # -- routing ------------------------------------------------------------

    def do_GET(self) -> None:  # noqa: N802
        self._route({"/healthz": self._get_healthz,
                     "/metrics": self._get_metrics,
                     "/slo": self._get_slo,
                     "/equity": self._get_equity,
                     "/assignments": self._get_assignments})

    def do_POST(self) -> None:  # noqa: N802
        self._route({"/tasks": self._post_tasks,
                     "/workers": self._post_workers,
                     "/dispatch": self._post_dispatch,
                     "/shutdown": self._post_shutdown})

    def _route(self, table: Dict[str, object]) -> None:
        path = self.path.split("?", 1)[0].rstrip("/") or "/"
        handler = table.get(path)
        # Adopt the caller's trace id (or mint one), echo it on the
        # response, and run the whole request under that context so every
        # span the handler triggers lands in the caller's trace.
        with start_trace(self.headers.get(TRACE_HEADER) or None) as trace_id:
            self._trace_id = trace_id
            try:
                if handler is None:
                    raise ApiError(404, f"no such endpoint: {self.path}")
                tracer = resolve_tracer(False)
                if tracer.enabled:
                    with tracer.span(
                        "service.request", method=self.command, endpoint=path
                    ):
                        handler()
                else:
                    handler()
            except ApiError as exc:
                self._send_json({"error": str(exc)}, status=exc.status)
            except ServiceOverloaded as exc:
                # Shed by admission control or a shard's in-flight bound:
                # the request was NOT applied; tell the client when to
                # come back instead of letting it hammer the pool.
                self._send_overloaded(exc)
            except Exception as exc:  # the service must answer, not die
                _LOG.exception("unhandled error serving %s", self.path)
                self._send_json({"error": f"internal error: {exc}"}, status=500)

    # -- endpoints ----------------------------------------------------------

    def _get_healthz(self) -> None:
        """Liveness with honest status codes.

        * 200 ``ok`` — serving, every shard (if sharded) live.
        * 200 ``degraded`` — serving, but some shard is ``suspect``
          (stale heartbeat; not yet declared dead).
        * 503 ``degraded`` — a shard is dead/respawning/starting: rounds
          would run with its centers skipped.  The body carries the
          per-shard breakdown so orchestrators can see *which* one.
        * 503 ``draining`` — shutdown in progress; no new rounds.
        """
        engine = self.server.engine
        state = engine.state
        journal = state.journal
        status_code = 200
        status = "ok"
        shards: Optional[Dict[str, Dict]] = None
        shard_health = getattr(engine, "shard_health", None)
        if callable(shard_health):
            shards = shard_health()
            down = sorted(
                sid
                for sid, entry in shards.items()
                if entry.get("status") not in ("live", "suspect")
            )
            suspect = any(
                entry.get("status") == "suspect" for entry in shards.values()
            )
            if down:
                status, status_code = "degraded", 503
            elif suspect:
                status = "degraded"
        if engine.draining:
            status, status_code = "draining", 503
        payload: Dict[str, object] = {
            "status": status,
            "now": state.now,
            "rounds": engine.rounds_dispatched,
            "pending_tasks": state.pending_task_count,
            "workers": state.worker_count,
            "available_workers": state.available_worker_count(),
            "world_version": state.version,
            "world_fingerprint": state.fingerprint(),
            "algorithm": engine.solver_name,
            "epsilon": engine.epsilon,
            "uptime_seconds": time.perf_counter() - self.server.started,
            "fault_tolerant": engine.fault_tolerant,
            "breakers": engine.breakers.snapshot(),
        }
        if shards is not None:
            down = sorted(
                sid
                for sid, entry in shards.items()
                if entry.get("status") not in ("live", "suspect")
            )
            payload["shards"] = shards
            payload["shards_down"] = down
        if journal is not None:
            payload["journal"] = {
                "path": str(journal.path),
                "next_seq": journal.next_seq,
            }
        if engine.faults is not None:
            payload["faults"] = engine.faults.describe()
        ledger = state.equity
        if ledger is not None:
            equity = dict(ledger.summary())
            equity["mode"] = engine.equity_mode
            payload["equity"] = equity
        payload["slo"] = self.server.slo_board.summary()
        self._send_json(payload, status=status_code)

    def _get_metrics(self) -> None:
        self._send_text(METRICS.render_prometheus())

    def _get_slo(self) -> None:
        payload = self.server.slo_board.as_dict()
        shard_health = getattr(self.server.engine, "shard_health", None)
        if callable(shard_health):
            payload["shards"] = shard_health()
        self._send_json(payload)

    def _get_equity(self) -> None:
        """The cross-round equity ledger (docs/temporal_fairness.md)."""
        engine = self.server.engine
        ledger = engine.state.equity
        if ledger is None:
            raise ApiError(
                404, "equity ledger not enabled (start with --equity)"
            )
        payload = dict(ledger.summary())
        payload["mode"] = engine.equity_mode
        payload["strength"] = engine.equity_strength
        payload["cumulative"] = ledger.baselines()
        payload["balance"] = {
            wid: ledger.balance_of(wid) for wid in ledger.workers
        }
        payload["participation"] = {
            wid: ledger.participation_of(wid) for wid in ledger.workers
        }
        payload["rolling_income"] = ledger.rolling_payoffs()
        self._send_json(payload)

    def _get_assignments(self) -> None:
        engine = self.server.engine
        last = engine.last_committed
        payload: Dict[str, object] = {
            "round": None if last is None else last.as_dict(),
            "workers": engine.state.worker_stats(),
        }
        self._send_json(payload)

    def _post_tasks(self) -> None:
        payload = self._read_json()
        items = self._items(payload, "tasks", "task_id")
        accepted, rejected = self.server.engine.state.add_tasks(items)
        self._send_json(
            {
                "accepted": accepted,
                "rejected": [r.as_dict() for r in rejected],
                "pending_tasks": self.server.engine.state.pending_task_count,
            }
        )

    def _post_workers(self) -> None:
        payload = self._read_json()
        items = self._items(payload, "workers", "worker_id")
        accepted, rejected = self.server.engine.state.add_workers(items)
        self._send_json(
            {
                "accepted": accepted,
                "rejected": [r.as_dict() for r in rejected],
                "workers": self.server.engine.state.worker_count,
            }
        )

    @staticmethod
    def _items(payload: Dict, key: str, id_field: str) -> List[Dict]:
        """The batch under ``key``, or the payload itself as a singleton."""
        if key in payload:
            items = payload[key]
            if not isinstance(items, list):
                raise ApiError(400, f"{key!r} must be a list")
            return items
        if id_field in payload:
            return [payload]
        raise ApiError(400, f"body needs {key!r} (list) or a single {id_field!r}")

    def _post_dispatch(self) -> None:
        payload = self._read_json()
        advance = payload.get("advance_hours", 0.0)
        commit = payload.get("commit", True)
        if not isinstance(advance, (int, float)) or advance < 0:
            raise ApiError(400, f"advance_hours must be a number >= 0, got {advance!r}")
        if not isinstance(commit, bool):
            raise ApiError(400, f"commit must be a boolean, got {commit!r}")
        try:
            result = self.server.engine.dispatch(
                advance_hours=float(advance), commit=commit
            )
        except EngineDraining as exc:
            self._send_json({"error": str(exc)}, status=503)
            return
        except ServiceOverloaded as exc:
            self._send_overloaded(exc)
            return
        except Exception as exc:
            # InvariantViolation from verify=, or a solver failure: report
            # it as a server-side dispatch error but keep serving.
            _LOG.exception("dispatch round failed")
            self._send_json({"error": f"dispatch failed: {exc}"}, status=500)
            return
        self._send_json(result.as_dict())

    def _post_shutdown(self) -> None:
        self._send_json({"status": "shutting down"})
        self.server.request_stop()


class DispatchHTTPServer(ThreadingHTTPServer):
    """ThreadingHTTPServer that knows its engine (and survives handler errors)."""

    daemon_threads = True
    allow_reuse_address = True

    def __init__(
        self,
        address: Tuple[str, int],
        engine: DispatchEngine,
        slo_board: Optional[SLOBoard] = None,
    ) -> None:
        super().__init__(address, _Handler)
        self.engine = engine
        if slo_board is None:
            objectives = default_slos()
            if engine.state.equity is not None:
                # Worlds with an equity ledger (solver- or observer-mode)
                # get the rolling-fairness bound on the board for free.
                objectives.append(rolling_fairness_slo())
            if callable(getattr(engine, "shard_health", None)):
                objectives.append(shard_liveness_slo())
            slo_board = SLOBoard(objectives)
        self.slo_board = slo_board
        self.started = time.perf_counter()
        self._stop_requested = threading.Event()

    def request_stop(self) -> None:
        """Ask the serving loop to stop (idempotent, safe from handlers).

        The engine starts draining *before* the accept loop winds down: a
        round already in flight finishes committing atomically, while any
        dispatch arriving after this instant is answered 503 instead of
        racing the teardown (the mid-round SIGTERM fix).
        """
        if not self._stop_requested.is_set():
            self._stop_requested.set()
            self.engine.begin_drain()
            # shutdown() must not run on a handler thread's serve loop
            # synchronously; a helper thread keeps /shutdown responsive.
            threading.Thread(target=self.shutdown, daemon=True).start()


class DispatchServer:
    """Lifecycle wrapper: bind, serve (foreground or background), stop.

    ``port=0`` binds an ephemeral port; read :attr:`port` after
    construction.  Used by ``python -m repro serve``, the test suite, the
    CI ``service-smoke`` job, and ``examples/live_dispatch.py``.
    """

    def __init__(
        self,
        engine: DispatchEngine,
        host: str = "127.0.0.1",
        port: int = 0,
        slo_board: Optional[SLOBoard] = None,
    ) -> None:
        self._engine = engine
        self._httpd = DispatchHTTPServer((host, port), engine, slo_board)
        self._thread: Optional[threading.Thread] = None
        self._closed = False

    @property
    def engine(self) -> DispatchEngine:
        return self._engine

    @property
    def slo_board(self) -> SLOBoard:
        return self._httpd.slo_board

    @property
    def host(self) -> str:
        return self._httpd.server_address[0]

    @property
    def port(self) -> int:
        return self._httpd.server_address[1]

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    def serve_forever(self) -> None:
        """Serve on the calling thread until stopped, then shut down cleanly."""
        try:
            self._httpd.serve_forever(poll_interval=0.1)
        finally:
            self._finalise()

    def start_background(self) -> "DispatchServer":
        """Serve on a daemon thread; returns self for chaining."""
        if self._thread is None:
            self._thread = threading.Thread(
                target=self._httpd.serve_forever,
                kwargs={"poll_interval": 0.1},
                daemon=True,
            )
            self._thread.start()
        return self

    def request_stop(self) -> None:
        """Signal-handler-safe stop: never blocks the serving thread."""
        self._httpd.request_stop()

    def stop(self) -> None:
        """Stop serving, drain the engine, and dump final metrics."""
        self._httpd.shutdown()
        if self._thread is not None:
            self._thread.join(timeout=10.0)
            self._thread = None
        self._finalise()

    def join(self, timeout: Optional[float] = None) -> None:
        """Wait for a background serving thread to exit (e.g. /shutdown)."""
        if self._thread is not None:
            self._thread.join(timeout)
            if not self._thread.is_alive():
                self._thread = None
                self._finalise()

    def __enter__(self) -> "DispatchServer":
        return self.start_background()

    def __exit__(self, *exc_info: object) -> None:
        self.stop()

    def _finalise(self) -> None:
        """Graceful-shutdown tail: drain in-flight work, final metrics dump."""
        if self._closed:
            return
        self._closed = True
        # Refuse new rounds first, then close the listener, then wait for
        # the in-flight round's commit — never tear down under a commit.
        self._engine.begin_drain()
        self._httpd.server_close()
        self._engine.drain()
        journal = self._engine.state.journal
        if journal is not None:
            journal.close()
        snapshot = METRICS.snapshot()
        tracer = resolve_tracer(False)
        if tracer.enabled:
            tracer.event("service.shutdown", metrics=snapshot)
        _LOG.info(
            "dispatch service stopped after %d rounds (%d tasks assigned)",
            self._engine.rounds_dispatched,
            int(snapshot.get("service.tasks.assigned", 0)),
        )
