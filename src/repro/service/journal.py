"""Write-ahead journal for :class:`~repro.service.state.WorldState`.

The dispatch service's world is in-memory; this module makes it durable.
Every logical mutation — accepted tasks/workers, clock advances, expiries,
and committed assignments — is appended to a JSONL journal *before* the
in-memory state mutates (write-ahead semantics), each record fsynced and
protected by a CRC32, so a SIGKILL at any instant loses at most the
in-flight record and :meth:`~repro.service.state.WorldState.recover`
replays the surviving prefix into a bit-identical world.

Record wire format (one per line)::

    <crc32 as 8 hex chars> <compact JSON {"seq": n, "kind": k, "data": {...}}>

The CRC covers the JSON bytes exactly, so a torn tail (partial final line
after a crash) is detected and dropped; corruption *before* intact records
raises :class:`JournalCorruption` because it cannot be a crash artefact.
A recovery that resumes journaling first truncates the file back to the
end of the last intact record (:meth:`WorldJournal.truncate_to`), so the
next append starts a fresh line instead of concatenating onto torn bytes
— without that, a second crash after a torn-tail recovery would leave the
journal permanently unrecoverable.

Record kinds::

    genesis     fixed layout: centers, delivery points, travel speed
    checkpoint  full world dump (compaction anchor; replay fast-forwards)
    tasks       accepted TaskArrival batch
    workers     accepted Worker batch (post nearest-center attachment)
    advance     clock advance in hours
    expire      task ids dropped at an expiry sweep
    commit      one round's applied routes + consumed task ids
    shard_round one whole dispatch round of a shard partition: the round
                index, the inner records it generated (captured while the
                journal was suspended), and the JSON round result — the
                sharded engine's exactly-once redo boundary

``seq`` is strictly monotone; replay skips any record whose ``seq`` is not
greater than the last applied one, which makes accidental duplicate
appends (a retried write after a partial failure) idempotent.

Compaction rewrites the file as ``genesis`` + ``checkpoint`` via an
``os.replace`` of a fully-fsynced sibling, so a crash mid-compaction
leaves either the old or the new journal, never a mix.
"""

from __future__ import annotations

import json
import os
import zlib
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple, Union

from repro.obs.metrics import METRICS
from repro.obs.tracer import resolve_tracer

PathLike = Union[str, Path]


class JournalCorruption(ValueError):
    """The journal contains damage that cannot be a torn tail."""


@dataclass(frozen=True)
class JournalRecord:
    """One decoded journal line."""

    seq: int
    kind: str
    data: Dict[str, Any]


def _encode(seq: int, kind: str, data: Dict[str, Any]) -> str:
    payload = json.dumps(
        {"seq": seq, "kind": kind, "data": data}, separators=(",", ":")
    )
    crc = zlib.crc32(payload.encode("utf-8")) & 0xFFFFFFFF
    return f"{crc:08x} {payload}\n"


def _decode(line: str) -> JournalRecord:
    crc_hex, sep, payload = line.partition(" ")
    if not sep or len(crc_hex) != 8:
        raise ValueError("malformed journal line (no CRC prefix)")
    expected = int(crc_hex, 16)
    actual = zlib.crc32(payload.encode("utf-8")) & 0xFFFFFFFF
    if actual != expected:
        raise ValueError(f"CRC mismatch ({actual:08x} != {expected:08x})")
    raw = json.loads(payload)
    return JournalRecord(
        seq=int(raw["seq"]), kind=str(raw["kind"]), data=dict(raw["data"])
    )


class WorldJournal:
    """Append-only, CRC-checked, fsynced JSONL journal.

    Parameters
    ----------
    path:
        Journal file; created (with parents) on first append.
    fsync:
        Fsync after every record (the durability contract).  Tests may
        disable it for speed; the serve path keeps it on.
    compact_every:
        Auto-compaction threshold: when set, :meth:`should_compact` turns
        true once this many records were appended since the last
        compaction (the state layer then calls
        :meth:`~repro.service.state.WorldState.compact_journal`).
    """

    def __init__(
        self,
        path: PathLike,
        fsync: bool = True,
        compact_every: Optional[int] = None,
        next_seq: int = 0,
    ) -> None:
        if compact_every is not None and compact_every < 1:
            raise ValueError(f"compact_every must be >= 1, got {compact_every}")
        self.path = Path(path)
        self.fsync = bool(fsync)
        self.compact_every = compact_every
        self._next_seq = int(next_seq)
        self._since_compaction = 0
        self._fh = None  # opened lazily so an unused journal creates no file

    # -- introspection ------------------------------------------------------

    @property
    def next_seq(self) -> int:
        return self._next_seq

    @property
    def is_empty(self) -> bool:
        """Whether the journal file is absent or zero-length."""
        try:
            return self.path.stat().st_size == 0
        except FileNotFoundError:
            return True

    def should_compact(self) -> bool:
        """Whether the auto-compaction threshold has been crossed."""
        return (
            self.compact_every is not None
            and self._since_compaction >= self.compact_every
        )

    # -- writing ------------------------------------------------------------

    def _ensure_open(self):
        if self._fh is None:
            if self.path.parent != Path("."):
                self.path.parent.mkdir(parents=True, exist_ok=True)
            self._fh = self.path.open("a", encoding="utf-8")
        return self._fh

    def append(self, kind: str, data: Dict[str, Any]) -> int:
        """Durably append one record; returns its ``seq``.

        The record is flushed (and fsynced unless disabled) before this
        returns, which is what makes the state layer's write-ahead
        contract hold: a mutation is only applied after its record is on
        disk.
        """
        seq = self._next_seq
        line = _encode(seq, kind, data)
        tracer = resolve_tracer(False)
        if tracer.enabled:
            # ``kind`` is the tracer's envelope key, hence ``record_kind``.
            with tracer.span(
                "service.journal.append",
                record_kind=kind,
                journal_seq=seq,
                bytes=len(line),
            ):
                self._write_record(line)
        else:
            self._write_record(line)
        self._next_seq = seq + 1
        self._since_compaction += 1
        METRICS.counter("service.journal.records").add(1)
        METRICS.counter("service.journal.bytes").add(len(line))
        return seq

    def _write_record(self, line: str) -> None:
        fh = self._ensure_open()
        fh.write(line)
        fh.flush()
        if self.fsync:
            with METRICS.timer("service.journal.fsync_seconds"):
                os.fsync(fh.fileno())
            METRICS.counter("service.journal.fsyncs").add(1)

    def rewrite(self, records: List[Tuple[str, Dict[str, Any]]]) -> None:
        """Atomically replace the journal with ``records`` (compaction).

        The replacement is written to a sibling file, fsynced, and
        ``os.replace``d over the journal, so a crash leaves either the old
        or the new file intact.  Sequence numbering restarts at 0.
        """
        self.close()
        tmp = self.path.with_name(self.path.name + ".compact")
        if self.path.parent != Path("."):
            self.path.parent.mkdir(parents=True, exist_ok=True)
        with tmp.open("w", encoding="utf-8") as fh:
            for seq, (kind, data) in enumerate(records):
                fh.write(_encode(seq, kind, data))
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, self.path)
        self._next_seq = len(records)
        self._since_compaction = 0
        METRICS.counter("service.journal.compactions").add(1)

    def close(self) -> None:
        """Flush and close the underlying file (idempotent)."""
        if self._fh is not None:
            self._fh.flush()
            if self.fsync:
                os.fsync(self._fh.fileno())
            self._fh.close()
            self._fh = None

    def __enter__(self) -> "WorldJournal":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # -- reading ------------------------------------------------------------

    @staticmethod
    def read(path: PathLike) -> Tuple[List[JournalRecord], int, int]:
        """Decode the journal at ``path``, tolerating a torn tail.

        Returns ``(records, torn_lines_dropped, intact_end)``.  A decode
        failure is only forgiven when *no intact record follows it* — i.e.
        it is the crash-torn suffix; damage sandwiched between valid
        records raises :class:`JournalCorruption`.  A final line without a
        trailing newline is torn by definition even when its CRC
        validates: :meth:`append` only acknowledges a record after writing
        its newline, so such a line was never durable.

        ``intact_end`` is the byte offset just past the last intact
        record's newline (0 when there is none) — the offset a resuming
        journal must truncate to (:meth:`truncate_to`) so its next append
        starts on a fresh line instead of concatenating onto torn bytes.
        """
        target = Path(path)
        try:
            raw = target.read_bytes()
        except FileNotFoundError:
            return [], 0, 0
        chunks = raw.split(b"\n")
        # A file ending in "\n" leaves a trailing empty chunk; anything
        # else in the final slot is an unterminated (torn) write.
        terminated, tail = chunks[:-1], chunks[-1]
        records: List[JournalRecord] = []
        bad: List[Tuple[int, str]] = []
        offset = 0
        intact_end = 0
        for lineno, chunk in enumerate(terminated, start=1):
            line_end = offset + len(chunk) + 1
            line = chunk.decode("utf-8", errors="replace")
            offset = line_end
            if not line.strip():
                continue
            try:
                record = _decode(line)
            except (ValueError, KeyError, TypeError) as exc:
                bad.append((lineno, str(exc)))
                continue
            if bad:
                first_bad, reason = bad[0]
                raise JournalCorruption(
                    f"{target}: line {first_bad} is damaged ({reason}) but "
                    f"intact records follow — not a torn tail"
                )
            records.append(record)
            intact_end = line_end
        if tail.strip():
            bad.append((len(terminated) + 1, "unterminated final line"))
        if bad:
            METRICS.counter("service.journal.torn_records_dropped").add(len(bad))
        return records, len(bad), intact_end

    @staticmethod
    def truncate_to(path: PathLike, offset: int) -> int:
        """Physically drop the bytes past ``offset``; returns bytes removed.

        Resuming appends to a journal whose last line is torn would
        concatenate the next record onto the torn bytes, destroying that
        record and making the *next* recovery raise
        :class:`JournalCorruption` (damage followed by intact records).
        Truncating to the ``intact_end`` reported by :meth:`read` before
        resuming keeps a crash → recover → crash sequence recoverable.
        The truncation is fsynced before returning.
        """
        target = Path(path)
        try:
            size = target.stat().st_size
        except FileNotFoundError:
            return 0
        if size <= offset:
            return 0
        with target.open("rb+") as fh:
            fh.truncate(offset)
            fh.flush()
            os.fsync(fh.fileno())
        removed = size - offset
        METRICS.counter("service.journal.torn_bytes_truncated").add(removed)
        return removed
