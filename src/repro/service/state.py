"""Mutable world state of the online dispatch service.

The service's analogue of :class:`~repro.sim.platform.DispatchSimulator`'s
internals, made safe for concurrent churn: distribution centers are a fixed
layout, while workers and pending tasks arrive and leave through
thread-safe operations (``POST /tasks``, ``POST /workers``).  All times are
hours on one logical service clock (``now``); task expiries are *absolute*
like :class:`~repro.sim.arrivals.TaskArrival`, and each snapshot converts
them to the relative deadlines (Definition 3) the solvers consume.

A :class:`WorldSnapshot` is an immutable, per-round view: the materialised
:class:`~repro.core.instance.SubProblem` of every active center plus a
content fingerprint per center.  The fingerprint covers everything a
strategy catalog depends on — worker positions/capacities and task
deadlines/rewards — so the engine's catalog cache can prove a center
unchanged between rounds and skip the C-VDPS rebuild.

Durability: attaching a :class:`~repro.service.journal.WorldJournal` makes
every mutation write-ahead — the record is fsynced *before* the in-memory
state changes — and :meth:`WorldState.recover` replays a journal into a
bit-identical world (see ``docs/fault_tolerance.md`` for the format and
the recovery runbook).
"""

from __future__ import annotations

import hashlib
import threading
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Mapping, Optional, Sequence, Tuple

from repro.core.assignment import Assignment
from repro.core.entities import DeliveryPoint, DistributionCenter, SpatialTask, Worker
from repro.core.instance import ProblemInstance, SubProblem
from repro.equity.ledger import EquityLedger
from repro.geo.point import Point
from repro.geo.travel import TravelModel
from repro.obs.metrics import METRICS
from repro.service.journal import JournalCorruption, WorldJournal
from repro.sim.arrivals import TaskArrival
from repro.sim.workers import WorkerState


class _RecordingJournal:
    """In-memory stand-in for a :class:`WorldJournal` during one round.

    Shard workers suspend the real journal for the duration of a dispatch
    round and capture the round's mutation records here; the whole round is
    then made durable as a single ``shard_round`` record (see
    :meth:`WorldState.append_shard_round`), which is the unit of
    exactly-once redo after a crash.
    """

    def __init__(self) -> None:
        self.ops: List[Tuple[str, Dict]] = []

    def append(self, kind: str, data: Dict) -> None:
        self.ops.append((kind, data))

    def should_compact(self) -> bool:
        return False


@dataclass(frozen=True)
class Rejection:
    """Why one submitted task or worker was not accepted."""

    item_id: str
    reason: str

    def as_dict(self) -> Dict[str, str]:
        """JSON-ready ``{"id", "reason"}`` pair for API responses."""
        return {"id": self.item_id, "reason": self.reason}


@dataclass(frozen=True)
class WorldSnapshot:
    """One round's frozen view of the world.

    ``subproblems`` holds only *active* centers — at least one available
    worker and one materialised (non-hopeless) delivery point — in center-id
    order; ``fingerprints`` keys the catalog cache; ``task_ids`` maps each
    active center to the pending task ids its materialised points carry, so
    a commit removes exactly the tasks the round could deliver.
    """

    now: float
    subproblems: Tuple[SubProblem, ...]
    fingerprints: Mapping[str, str]
    task_ids: Mapping[str, Tuple[str, ...]]
    pending_tasks: int
    available_workers: int

    @property
    def center_ids(self) -> List[str]:
        return [sub.center.center_id for sub in self.subproblems]

    def instance(self) -> ProblemInstance:
        """The snapshot as a solvable :class:`ProblemInstance`.

        Feeding this to :func:`repro.experiments.runner.run_algorithms`
        with the engine's round seed reproduces the service's round
        bit-for-bit (the end-to-end fidelity contract of the service).
        """
        if not self.subproblems:
            raise ValueError("an empty snapshot has no solvable instance")
        centers = tuple(sub.center for sub in self.subproblems)
        workers = tuple(w for sub in self.subproblems for w in sub.workers)
        return ProblemInstance(centers, workers, self.subproblems[0].travel)


def _fingerprint(sub: SubProblem) -> str:
    """Content hash of everything a center's catalog depends on."""
    digest = hashlib.sha256()
    for w in sub.workers:
        digest.update(
            f"w|{w.worker_id}|{w.location.x.hex()}|{w.location.y.hex()}|"
            f"{w.max_delivery_points}|{w.speed_kmh}".encode()
        )
    for dp in sub.center.delivery_points:
        digest.update(
            f"p|{dp.dp_id}|{dp.location.x.hex()}|{dp.location.y.hex()}|"
            f"{float(dp.service_hours).hex()}".encode()
        )
        for task in sorted(dp.tasks):
            digest.update(
                f"t|{task.task_id}|{float(task.expiry).hex()}|"
                f"{float(task.reward).hex()}".encode()
            )
    return digest.hexdigest()


class WorldState:
    """Centers, workers, and pending tasks with thread-safe churn ops.

    Parameters
    ----------
    centers:
        The fixed layout.  Tasks land on these centers' delivery points;
        any tasks already attached to the layout are ignored (mirroring
        :class:`~repro.sim.platform.DispatchSimulator`).
    workers:
        Optional initial fleet; more can join via :meth:`add_workers`.
    travel:
        Shared travel model for snapshots and nearest-center attachment.
    """

    def __init__(
        self,
        centers: Sequence[DistributionCenter],
        workers: Sequence[Worker] = (),
        travel: Optional[TravelModel] = None,
    ) -> None:
        if not centers:
            raise ValueError("the service needs at least one distribution center")
        self._lock = threading.RLock()
        self._travel = travel if travel is not None else TravelModel()
        self._centers: Dict[str, DistributionCenter] = {}
        self._layout: Dict[str, DeliveryPoint] = {}  # dp_id -> bare point
        self._dp_center: Dict[str, str] = {}  # dp_id -> center_id
        for center in centers:
            if center.center_id in self._centers:
                raise ValueError(f"duplicate center id {center.center_id!r}")
            if not center.delivery_points:
                raise ValueError(
                    f"center {center.center_id!r} has no delivery points"
                )
            bare_points = []
            for dp in center.delivery_points:
                if dp.dp_id in self._layout:
                    raise ValueError(f"duplicate delivery point id {dp.dp_id!r}")
                bare = dp.with_tasks(())
                bare_points.append(bare)
                self._layout[dp.dp_id] = bare
                self._dp_center[dp.dp_id] = center.center_id
            self._centers[center.center_id] = DistributionCenter(
                center.center_id, center.location, tuple(bare_points)
            )
        self._workers: Dict[str, WorkerState] = {}
        self._worker_center: Dict[str, str] = {}
        self._pending: Dict[str, TaskArrival] = {}  # task_id -> arrival
        self._seen_tasks: set = set()
        self._journal: Optional[WorldJournal] = None
        self._equity: Optional[EquityLedger] = None
        self._last_round: Optional[Dict] = None
        self.now: float = 0.0
        self.version: int = 0
        for worker in workers:
            rejected = self.add_workers([worker])[1]
            if rejected:
                raise ValueError(rejected[0].reason)

    # -- properties ---------------------------------------------------------

    @property
    def lock(self) -> threading.RLock:
        return self._lock

    @property
    def travel(self) -> TravelModel:
        return self._travel

    @property
    def centers(self) -> Tuple[DistributionCenter, ...]:
        return tuple(self._centers[cid] for cid in sorted(self._centers))

    @property
    def pending_task_count(self) -> int:
        with self._lock:
            return len(self._pending)

    @property
    def worker_count(self) -> int:
        with self._lock:
            return len(self._workers)

    def available_worker_count(self, now: Optional[float] = None) -> int:
        """Number of workers free to take a route at ``now`` (default: clock)."""
        with self._lock:
            at = self.now if now is None else now
            return sum(1 for w in self._workers.values() if w.is_available(at))

    # -- temporal fairness ---------------------------------------------------

    @property
    def equity(self) -> Optional[EquityLedger]:
        """The cross-round equity ledger, or ``None`` when not enabled."""
        return self._equity

    def enable_equity(
        self, decay: Optional[float] = None, window: Optional[int] = None
    ) -> EquityLedger:
        """Attach an :class:`~repro.equity.ledger.EquityLedger` to this world.

        Idempotent: an already-attached ledger (e.g. restored from a
        journal checkpoint or replayed ``equity`` records by
        :meth:`recover`) is kept — its accrued state must not be reset by
        the serving process re-declaring ``--equity`` on restart.  The
        ``decay``/``window`` arguments only apply when creating a fresh
        ledger.
        """
        with self._lock:
            if self._equity is None:
                kwargs = {}
                if decay is not None:
                    kwargs["decay"] = decay
                if window is not None:
                    kwargs["window"] = window
                self._equity = EquityLedger(**kwargs)
            return self._equity

    def record_equity(self, payoffs: Mapping[str, float]) -> None:
        """Fold one round's per-worker payoffs into the equity ledger.

        Write-ahead durable like every other mutation: the ``equity``
        record (which carries the ledger's decay/window so replay can
        recreate it from scratch) is journaled before the in-memory
        ledger changes, and replaying the records reproduces the ledger
        bit-identically (all ledger arithmetic iterates sorted worker
        ids — see :mod:`repro.equity.ledger`).
        """
        with self._lock:
            if self._equity is None:
                raise ValueError(
                    "equity ledger not enabled; call enable_equity() first"
                )
            self._journal_append(
                "equity",
                {
                    "decay": self._equity.decay,
                    "window": self._equity.window,
                    "payoffs": {
                        wid: float(payoffs[wid]) for wid in sorted(payoffs)
                    },
                },
            )
            self._equity.record_round(payoffs)
            self.version += 1
            self._maybe_compact()

    def worker_stats(self) -> Dict[str, Dict[str, float]]:
        """Cumulative per-worker outcomes (earnings, deliveries, rate)."""
        with self._lock:
            return {
                wid: {
                    "center_id": self._worker_center[wid],
                    "earnings": state.earnings,
                    "deliveries": state.deliveries,
                    "assignments": state.assignments,
                    "working_hours": state.working_hours,
                    "earning_rate": state.earning_rate,
                    "available_at": state.available_at,
                }
                for wid, state in sorted(self._workers.items())
            }

    # -- churn --------------------------------------------------------------

    def add_tasks(
        self, tasks: Sequence
    ) -> Tuple[List[str], List[Rejection]]:
        """Enqueue tasks; returns ``(accepted ids, rejections)``.

        Each task is a :class:`~repro.sim.arrivals.TaskArrival` or a dict
        with ``task_id``, ``dp_id``, ``expiry`` (absolute hours) and an
        optional ``reward``.  Tasks on unknown delivery points, duplicate
        ids, or already-expired deadlines are rejected, not raised: churn
        endpoints must stay up under bad input.
        """
        accepted: List[str] = []
        rejections: List[Rejection] = []
        with self._lock:
            # Two-phase for write-ahead durability: validate the whole batch
            # first, journal the accepted arrivals, then mutate.
            arrivals: List[TaskArrival] = []
            batch_ids: set = set()
            for item in tasks:
                try:
                    arrival = self._coerce_task(item)
                except (KeyError, TypeError, ValueError) as exc:
                    rejections.append(Rejection(str(self._item_id(item)), str(exc)))
                    continue
                if arrival.dp_id not in self._layout:
                    rejections.append(
                        Rejection(arrival.task_id, f"unknown delivery point {arrival.dp_id!r}")
                    )
                elif arrival.task_id in self._seen_tasks or arrival.task_id in batch_ids:
                    rejections.append(
                        Rejection(arrival.task_id, "duplicate task id")
                    )
                elif arrival.expiry <= self.now:
                    rejections.append(
                        Rejection(
                            arrival.task_id,
                            f"expiry {arrival.expiry} is not after now ({self.now})",
                        )
                    )
                else:
                    arrivals.append(arrival)
                    batch_ids.add(arrival.task_id)
            if arrivals:
                self._journal_append(
                    "tasks",
                    {"tasks": [self._arrival_dict(a) for a in arrivals]},
                )
            for arrival in arrivals:
                self._pending[arrival.task_id] = arrival
                self._seen_tasks.add(arrival.task_id)
                accepted.append(arrival.task_id)
            if accepted:
                self.version += 1
            self._maybe_compact()
        METRICS.counter("service.tasks.submitted").add(len(accepted))
        METRICS.counter("service.tasks.rejected").add(len(rejections))
        return accepted, rejections

    def add_workers(
        self, workers: Sequence
    ) -> Tuple[List[str], List[Rejection]]:
        """Register workers; returns ``(accepted ids, rejections)``.

        Each worker is a :class:`~repro.core.entities.Worker` or a dict
        with ``worker_id``, ``x``, ``y`` and optional ``max_delivery_points``,
        ``center_id``, ``speed_kmh``.  A worker without a center is attached
        to the nearest one, like :meth:`ProblemInstance.subproblems`.
        """
        accepted: List[str] = []
        rejections: List[Rejection] = []
        with self._lock:
            # Two-phase like add_tasks: validate + attach centers, journal
            # the accepted workers (post-attachment), then mutate.
            coerced: List[Worker] = []
            batch_ids: set = set()
            for item in workers:
                try:
                    worker = self._coerce_worker(item)
                except (KeyError, TypeError, ValueError) as exc:
                    rejections.append(Rejection(str(self._item_id(item)), str(exc)))
                    continue
                if worker.worker_id in self._workers or worker.worker_id in batch_ids:
                    rejections.append(
                        Rejection(worker.worker_id, "duplicate worker id")
                    )
                    continue
                if worker.center_id is not None and worker.center_id not in self._centers:
                    rejections.append(
                        Rejection(
                            worker.worker_id,
                            f"unknown center {worker.center_id!r}",
                        )
                    )
                    continue
                if worker.center_id is None:
                    nearest = min(
                        self._centers.values(),
                        key=lambda c: self._travel.distance(worker.location, c.location),
                    )
                    worker = worker.assigned_to(nearest.center_id)
                coerced.append(worker)
                batch_ids.add(worker.worker_id)
            if coerced:
                self._journal_append(
                    "workers",
                    {"workers": [self._worker_dict(w) for w in coerced]},
                )
            for worker in coerced:
                self._workers[worker.worker_id] = WorkerState.from_worker(worker)
                self._worker_center[worker.worker_id] = worker.center_id
                accepted.append(worker.worker_id)
            if accepted:
                self.version += 1
            self._maybe_compact()
        METRICS.counter("service.workers.added").add(len(accepted))
        METRICS.counter("service.workers.rejected").add(len(rejections))
        return accepted, rejections

    def advance(self, hours: float) -> None:
        """Move the service clock forward (never backward)."""
        if hours < 0:
            raise ValueError(f"cannot advance by negative hours ({hours})")
        if hours:
            with self._lock:
                self._journal_append("advance", {"hours": float(hours)})
                self.now += hours
                self.version += 1
                self._maybe_compact()

    def expire(self) -> List[str]:
        """Drop tasks whose absolute expiry has been reached (``<= now``).

        A task expiring exactly at a round boundary is expired, matching
        :class:`~repro.sim.platform.DispatchSimulator`'s window rule.
        """
        with self._lock:
            gone = [
                tid for tid, t in self._pending.items() if t.expiry <= self.now
            ]
            if gone:
                self._journal_append("expire", {"task_ids": list(gone)})
            for tid in gone:
                del self._pending[tid]
            if gone:
                self.version += 1
            self._maybe_compact()
        METRICS.counter("service.tasks.expired").add(len(gone))
        return gone

    # -- snapshot & commit --------------------------------------------------

    def snapshot(self) -> WorldSnapshot:
        """Freeze the dispatchable world at ``now`` (see the module doc)."""
        with self._lock:
            now = self.now
            by_center: Dict[str, Dict[str, List[SpatialTask]]] = {}
            ids_by_center: Dict[str, List[str]] = {}
            for arrival in sorted(self._pending.values(), key=lambda a: a.task_id):
                remaining = arrival.remaining(now)
                if remaining <= 0:
                    continue
                center_id = self._dp_center[arrival.dp_id]
                dp = self._layout[arrival.dp_id]
                center = self._centers[center_id]
                if remaining <= self._travel.time(center.location, dp.location):
                    continue  # hopeless even from the center (Definition 6)
                by_center.setdefault(center_id, {}).setdefault(
                    arrival.dp_id, []
                ).append(
                    SpatialTask(
                        task_id=arrival.task_id,
                        delivery_point_id=arrival.dp_id,
                        expiry=remaining,
                        reward=arrival.reward,
                    )
                )
                ids_by_center.setdefault(center_id, []).append(arrival.task_id)

            subs: List[SubProblem] = []
            fingerprints: Dict[str, str] = {}
            task_ids: Dict[str, Tuple[str, ...]] = {}
            for center_id in sorted(by_center):
                available = [
                    self._workers[wid].snapshot()
                    for wid in sorted(self._workers)
                    if self._worker_center[wid] == center_id
                    and self._workers[wid].is_available(now)
                ]
                if not available:
                    continue
                points = tuple(
                    self._layout[dp_id].with_tasks(tuple(tasks))
                    for dp_id, tasks in sorted(by_center[center_id].items())
                )
                center = self._centers[center_id]
                sub = SubProblem(
                    DistributionCenter(center_id, center.location, points),
                    tuple(available),
                    self._travel,
                )
                subs.append(sub)
                fingerprints[center_id] = _fingerprint(sub)
                task_ids[center_id] = tuple(ids_by_center[center_id])
            return WorldSnapshot(
                now=now,
                subproblems=tuple(subs),
                fingerprints=fingerprints,
                task_ids=task_ids,
                pending_tasks=len(self._pending),
                available_workers=sum(
                    1 for w in self._workers.values() if w.is_available(now)
                ),
            )

    def commit(
        self, snapshot: WorldSnapshot, assignments: Mapping[str, Assignment]
    ) -> int:
        """Apply a round's routes the way the batch simulator does.

        Assigned workers go busy until their route completes and reappear
        at their last drop-off; the delivered delivery points' tasks leave
        the queue.  Returns the number of tasks committed.
        """
        assigned_tasks = 0
        with self._lock:
            # Two-phase for write-ahead durability: derive every route op and
            # removed task id without mutating, journal the round, then apply.
            routes: List[Dict[str, object]] = []
            removed: List[str] = []
            for center_id, assignment in assignments.items():
                delivered_dps: set = set()
                for pair in assignment:
                    if pair.route is None or len(pair.route) == 0:
                        continue
                    if pair.worker.worker_id not in self._workers:
                        continue  # worker left between snapshot and commit
                    end = pair.route.sequence[-1].location
                    routes.append(
                        {
                            "worker_id": pair.worker.worker_id,
                            "completion_time": pair.route.completion_time,
                            "reward": pair.route.total_reward,
                            "deliveries": pair.task_count,
                            "end": [end.x, end.y],
                        }
                    )
                    delivered_dps.update(pair.delivery_point_ids)
                for tid in snapshot.task_ids.get(center_id, ()):
                    arrival = self._pending.get(tid)
                    if arrival is not None and arrival.dp_id in delivered_dps:
                        removed.append(tid)
            if routes or removed:
                self._journal_append(
                    "commit",
                    {"now": snapshot.now, "routes": routes, "removed": removed},
                )
            assigned_tasks = self._apply_commit(snapshot.now, routes, removed)
            self._maybe_compact()
        METRICS.counter("service.tasks.assigned").add(assigned_tasks)
        return assigned_tasks

    def _apply_commit(
        self,
        now: float,
        routes: Sequence[Mapping[str, object]],
        removed: Sequence[str],
    ) -> int:
        """Apply a derived (journal-shaped) commit record; returns task count.

        Shared by the live :meth:`commit` path and journal replay so the
        two are one code path and recovery is bit-identical by construction.
        """
        assigned_tasks = 0
        for op in routes:
            state = self._workers.get(str(op["worker_id"]))
            if state is None:
                continue
            end = op["end"]
            state.commit_route(
                now,
                completion_time=float(op["completion_time"]),  # type: ignore[arg-type]
                reward=float(op["reward"]),  # type: ignore[arg-type]
                deliveries=int(op["deliveries"]),  # type: ignore[arg-type]
                end_location=Point(float(end[0]), float(end[1])),  # type: ignore[index]
            )
            assigned_tasks += int(op["deliveries"])  # type: ignore[arg-type]
        for tid in removed:
            self._pending.pop(tid, None)
        if assigned_tasks:
            self.version += 1
        return assigned_tasks

    # -- durability ---------------------------------------------------------

    def attach_journal(self, journal: WorldJournal) -> None:
        """Make every subsequent mutation write-ahead durable.

        An empty journal is seeded with a ``genesis`` record (the fixed
        center layout and travel speed) plus a ``checkpoint`` of the
        current dynamic state, so attaching to an already-populated world
        (the CLI builds the world, then attaches) loses nothing.  A
        non-empty journal is resumed as-is; the caller is expected to have
        built this state via :meth:`recover` from that same file.
        """
        with self._lock:
            self._journal = journal
            if journal.is_empty:
                journal.append("genesis", self._genesis_dict())
                journal.append("checkpoint", self._checkpoint_dict())

    @property
    def journal(self) -> Optional[WorldJournal]:
        return self._journal

    # -- shard-round durability (sharded dispatch) --------------------------

    @property
    def last_round(self) -> Optional[Dict]:
        """The last dispatch round durably applied to this partition.

        ``{"index", "committed", "result"}`` or ``None``.  Written by
        :meth:`note_round` / :meth:`append_shard_round` and restored by
        journal replay, it is how a respawned shard worker answers a
        retried round RPC instead of double-applying the round.
        """
        with self._lock:
            return self._last_round

    @contextmanager
    def capture_journal(self) -> Iterator[_RecordingJournal]:
        """Suspend the journal for one round, capturing its records.

        While active, mutations are validated and applied in memory as
        usual but their journal records land in the yielded recorder
        instead of on disk.  The caller then makes the whole round durable
        atomically via :meth:`append_shard_round` — crash before that
        append loses only in-memory state, so a deterministic redo of the
        round is bit-identical; crash after it replays the captured ops.
        """
        recorder = _RecordingJournal()
        with self._lock:
            real, self._journal = self._journal, recorder
        try:
            yield recorder
        finally:
            with self._lock:
                self._journal = real

    def note_round(self, index: int, result: Dict, committed: bool) -> None:
        """Record the last applied round in memory (journal-less worlds)."""
        with self._lock:
            self._last_round = {
                "index": int(index),
                "committed": bool(committed),
                "result": result,
            }

    def append_shard_round(
        self,
        index: int,
        committed: bool,
        ops: Sequence[Tuple[str, Dict]],
        result: Dict,
    ) -> None:
        """Durably record one completed dispatch round as a single record.

        ``ops`` are the journal records the round generated (captured by
        :meth:`capture_journal`); ``result`` is the JSON-ready round result
        returned to the supervisor.  The record is the shard's
        exactly-once boundary: replay re-applies the inner ops and
        restores :attr:`last_round`, so a retried round RPC after a crash
        returns the journaled result instead of running the round twice.
        """
        self.note_round(index, result, committed)
        with self._lock:
            self._journal_append(
                "shard_round",
                {
                    "index": int(index),
                    "committed": bool(committed),
                    "ops": [[kind, data] for kind, data in ops],
                    "result": result,
                },
            )
            self._maybe_compact()

    def _journal_append(self, kind: str, data: Dict) -> None:
        """Write-ahead append (no-op without a journal).

        Called under ``self._lock`` *before* the matching in-memory
        mutation; :meth:`WorldJournal.append` only returns once the record
        is fsynced, which is the durability contract.
        """
        if self._journal is not None:
            self._journal.append(kind, data)

    def _maybe_compact(self) -> None:
        """Compact when the journal's auto-threshold has been crossed."""
        if self._journal is not None and self._journal.should_compact():
            self.compact_journal()

    def compact_journal(self) -> None:
        """Rewrite the journal as ``genesis`` + ``checkpoint`` of now.

        Bounds journal growth (and recovery time) without losing anything:
        replaying the two records reproduces the current state exactly.
        """
        with self._lock:
            if self._journal is None:
                raise ValueError("no journal attached to this WorldState")
            self._journal.rewrite(
                [
                    ("genesis", self._genesis_dict()),
                    ("checkpoint", self._checkpoint_dict()),
                ]
            )

    def fingerprint(self) -> str:
        """Content hash of the full dynamic state (recovery equality checks).

        Covers the clock, every worker's cumulative outcomes and position,
        and every pending task, with floats hashed via ``float.hex`` so the
        comparison is bit-exact — the kill-and-recover acceptance test
        compares this against a never-crashed reference.
        """
        with self._lock:
            digest = hashlib.sha256()
            digest.update(f"now|{float(self.now).hex()}".encode())
            for wid in sorted(self._workers):
                st = self._workers[wid]
                digest.update(
                    f"w|{wid}|{self._worker_center[wid]}|"
                    f"{st.location.x.hex()}|{st.location.y.hex()}|"
                    f"{float(st.available_at).hex()}|{float(st.earnings).hex()}|"
                    f"{float(st.working_hours).hex()}|{st.deliveries}|"
                    f"{st.assignments}|{int(st.template.online)}".encode()
                )
            for tid in sorted(self._pending):
                a = self._pending[tid]
                digest.update(
                    f"t|{tid}|{a.dp_id}|{float(a.arrival_time).hex()}|"
                    f"{float(a.expiry).hex()}|{float(a.reward).hex()}".encode()
                )
            if self._equity is not None:
                # Gated on presence so equity-off fingerprints are
                # unchanged from pre-ledger journals and processes.
                for item in self._equity.fingerprint_items():
                    digest.update(f"e|{item}".encode())
            return digest.hexdigest()

    # -- journal (de)serialisation ------------------------------------------

    def _genesis_dict(self) -> Dict:
        """The fixed layout: centers, delivery points, travel speed."""
        return {
            "speed_kmh": self._travel.speed_kmh,
            "centers": [
                {
                    "center_id": c.center_id,
                    "x": c.location.x,
                    "y": c.location.y,
                    "delivery_points": [
                        {
                            "dp_id": dp.dp_id,
                            "x": dp.location.x,
                            "y": dp.location.y,
                            "service_hours": dp.service_hours,
                        }
                        for dp in c.delivery_points
                    ],
                }
                for c in self.centers
            ],
        }

    def _checkpoint_dict(self) -> Dict:
        """Full dump of the dynamic state (compaction / recovery anchor)."""
        data = {
            "now": self.now,
            "version": self.version,
            "seen_tasks": sorted(self._seen_tasks),
            "pending": [
                self._arrival_dict(self._pending[tid])
                for tid in sorted(self._pending)
            ],
            "workers": [
                self._worker_state_dict(self._workers[wid])
                for wid in sorted(self._workers)
            ],
        }
        if self._equity is not None:
            data["equity"] = self._equity.as_dict()
        if self._last_round is not None:
            data["last_round"] = self._last_round
        return data

    @staticmethod
    def _arrival_dict(arrival: TaskArrival) -> Dict:
        return {
            "task_id": arrival.task_id,
            "dp_id": arrival.dp_id,
            "arrival_time": arrival.arrival_time,
            "expiry": arrival.expiry,
            "reward": arrival.reward,
        }

    @staticmethod
    def _worker_dict(worker: Worker) -> Dict:
        return {
            "worker_id": worker.worker_id,
            "x": worker.location.x,
            "y": worker.location.y,
            "max_delivery_points": worker.max_delivery_points,
            "center_id": worker.center_id,
            "online": worker.online,
            "speed_kmh": worker.speed_kmh,
        }

    @staticmethod
    def _worker_state_dict(state: WorkerState) -> Dict:
        data = WorldState._worker_dict(state.template)
        data.update(
            {
                "location": [state.location.x, state.location.y],
                "available_at": state.available_at,
                "earnings": state.earnings,
                "working_hours": state.working_hours,
                "deliveries": state.deliveries,
                "assignments": state.assignments,
            }
        )
        return data

    @staticmethod
    def _worker_from_dict(data: Mapping) -> Worker:
        speed = data.get("speed_kmh")
        return Worker(
            worker_id=str(data["worker_id"]),
            location=Point(float(data["x"]), float(data["y"])),
            max_delivery_points=int(data["max_delivery_points"]),
            center_id=data.get("center_id"),
            online=bool(data.get("online", True)),
            speed_kmh=None if speed is None else float(speed),
        )

    @staticmethod
    def _arrival_from_dict(data: Mapping) -> TaskArrival:
        return TaskArrival(
            task_id=str(data["task_id"]),
            dp_id=str(data["dp_id"]),
            arrival_time=float(data["arrival_time"]),
            expiry=float(data["expiry"]),
            reward=float(data["reward"]),
        )

    # -- recovery -----------------------------------------------------------

    @classmethod
    def recover(
        cls,
        path,
        travel: Optional[TravelModel] = None,
        resume: bool = True,
        fsync: bool = True,
        compact_every: Optional[int] = None,
    ) -> "WorldState":
        """Rebuild a :class:`WorldState` from a write-ahead journal.

        Reads the journal (tolerating a crash-torn final record), rebuilds
        the layout from the ``genesis`` record, fast-forwards from the last
        ``checkpoint``, and replays every later mutation record in order;
        records whose ``seq`` does not advance are skipped, making
        duplicate appends idempotent.  The result is bit-identical (see
        :meth:`fingerprint`) to the state at the last fsynced record.

        Parameters
        ----------
        path:
            The journal file written by a previous process.
        travel:
            Optional travel-model override.  By default the genesis
            record's ``speed_kmh`` rebuilds a Euclidean model (the service
            default); pass an explicit model when serving a non-default
            metric.
        resume:
            Attach a :class:`WorldJournal` continuing at the next sequence
            number so the recovered world keeps journaling to ``path``.
            Any crash-torn tail is physically truncated first, so the
            resumed journal stays recoverable across further crashes.
        """
        records, _torn, intact_end = WorldJournal.read(path)
        if not records:
            raise JournalCorruption(f"{path}: no intact journal records")
        genesis = records[0]
        if genesis.kind != "genesis":
            raise JournalCorruption(
                f"{path}: first record is {genesis.kind!r}, expected 'genesis'"
            )
        data = genesis.data
        if travel is None:
            travel = TravelModel(speed_kmh=float(data["speed_kmh"]))
        centers = tuple(
            DistributionCenter(
                str(c["center_id"]),
                Point(float(c["x"]), float(c["y"])),
                tuple(
                    DeliveryPoint(
                        str(dp["dp_id"]),
                        Point(float(dp["x"]), float(dp["y"])),
                        (),
                        float(dp.get("service_hours", 0.0)),
                    )
                    for dp in c["delivery_points"]
                ),
            )
            for c in data["centers"]
        )
        state = cls(centers, travel=travel)

        # Fast-forward from the last checkpoint, then replay what follows.
        start = 0
        for index, record in enumerate(records):
            if record.kind == "checkpoint":
                start = index
        applied_seq = -1
        for record in records[start:]:
            if record.seq <= applied_seq:
                continue  # duplicate append — already applied
            state._replay(record.kind, record.data)
            applied_seq = record.seq
        if resume:
            # Physically drop any torn tail before appending again: the
            # torn line has no newline, so an append would concatenate
            # onto it and leave the journal unrecoverable after the next
            # crash (damage followed by intact records).
            WorldJournal.truncate_to(path, intact_end)
            state._journal = WorldJournal(
                path,
                fsync=fsync,
                compact_every=compact_every,
                next_seq=applied_seq + 1,
            )
        METRICS.counter("service.journal.recoveries").add(1)
        return state

    def _replay(self, kind: str, data: Mapping) -> None:
        """Apply one journal record to the in-memory state."""
        if kind == "genesis":
            return  # fixed layout, consumed by recover() itself
        if kind == "checkpoint":
            self.now = float(data["now"])
            self.version = int(data["version"])
            self._seen_tasks = set(data["seen_tasks"])
            self._pending = {}
            for raw in data["pending"]:
                arrival = self._arrival_from_dict(raw)
                self._pending[arrival.task_id] = arrival
            self._workers = {}
            self._worker_center = {}
            for raw in data["workers"]:
                worker = self._worker_from_dict(raw)
                ws = WorkerState.from_worker(worker)
                loc = raw["location"]
                ws.location = Point(float(loc[0]), float(loc[1]))
                ws.available_at = float(raw["available_at"])
                ws.earnings = float(raw["earnings"])
                ws.working_hours = float(raw["working_hours"])
                ws.deliveries = int(raw["deliveries"])
                ws.assignments = int(raw["assignments"])
                self._workers[worker.worker_id] = ws
                self._worker_center[worker.worker_id] = worker.center_id
            equity = data.get("equity")
            self._equity = (
                None if equity is None else EquityLedger.from_dict(equity)
            )
            last_round = data.get("last_round")
            self._last_round = None if last_round is None else dict(last_round)
        elif kind == "tasks":
            for raw in data["tasks"]:
                arrival = self._arrival_from_dict(raw)
                self._pending[arrival.task_id] = arrival
                self._seen_tasks.add(arrival.task_id)
            if data["tasks"]:
                self.version += 1
        elif kind == "workers":
            for raw in data["workers"]:
                worker = self._worker_from_dict(raw)
                self._workers[worker.worker_id] = WorkerState.from_worker(worker)
                self._worker_center[worker.worker_id] = worker.center_id
            if data["workers"]:
                self.version += 1
        elif kind == "advance":
            self.now += float(data["hours"])
            self.version += 1
        elif kind == "expire":
            for tid in data["task_ids"]:
                self._pending.pop(tid, None)
            if data["task_ids"]:
                self.version += 1
        elif kind == "commit":
            self._apply_commit(
                float(data["now"]), data["routes"], data["removed"]
            )
        elif kind == "shard_round":
            # One whole dispatch round of a shard partition: re-apply the
            # captured inner records (advance/expire/commit) in order, then
            # restore the round marker the retry/idempotency path checks.
            for op_kind, op_data in data["ops"]:
                self._replay(op_kind, op_data)
            self._last_round = {
                "index": int(data["index"]),
                "committed": bool(data.get("committed", True)),
                "result": data["result"],
            }
        elif kind == "equity":
            # The record carries the ledger config so a journal written
            # under --equity replays even into a world built without it.
            if self._equity is None:
                self._equity = EquityLedger(
                    decay=float(data["decay"]), window=int(data["window"])
                )
            self._equity.record_round(
                {str(k): float(v) for k, v in data["payoffs"].items()}
            )
            self.version += 1
        else:
            raise JournalCorruption(f"unknown journal record kind {kind!r}")

    # -- coercion helpers ---------------------------------------------------

    @staticmethod
    def _item_id(item) -> str:
        if isinstance(item, Mapping):
            return item.get("task_id") or item.get("worker_id") or "?"
        return getattr(item, "task_id", getattr(item, "worker_id", "?"))

    def _coerce_task(self, item) -> TaskArrival:
        if isinstance(item, TaskArrival):
            return item
        if isinstance(item, Mapping):
            return TaskArrival(
                task_id=str(item["task_id"]),
                dp_id=str(item["dp_id"]),
                arrival_time=float(item.get("arrival_time", self.now)),
                expiry=float(item["expiry"]),
                reward=float(item.get("reward", 1.0)),
            )
        raise TypeError(f"cannot interpret {type(item).__name__} as a task")

    def _coerce_worker(self, item) -> Worker:
        if isinstance(item, Worker):
            return item
        if isinstance(item, Mapping):
            return Worker(
                worker_id=str(item["worker_id"]),
                location=Point(float(item["x"]), float(item["y"])),
                max_delivery_points=int(item.get("max_delivery_points", 3)),
                center_id=item.get("center_id"),
                speed_kmh=item.get("speed_kmh"),
            )
        raise TypeError(f"cannot interpret {type(item).__name__} as a worker")
