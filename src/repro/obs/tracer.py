"""Structured JSONL tracing for the solver hot loops.

The tracer mirrors the :class:`~repro.verify.verifier.NullVerifier` pattern:
solvers hold a ``trace=`` field and resolve it to a tracer object once per
solve, so a disabled trace costs one attribute read per hook site and the
hot loops guard every emission with ``if tracer.enabled`` (no kwargs dict is
even built when tracing is off).

One trace is a JSON Lines stream of typed records.  Every record carries

* ``kind`` — a dotted event type (``fgt.round``, ``cvdps.layer``, ...),
* ``seq`` — a per-tracer monotone sequence number,
* ``ts`` — seconds since the tracer was opened (``time.perf_counter``),
* ``dur`` — span duration in seconds, present only on span records,

plus event-specific fields.  :mod:`repro.obs.reader` loads the stream back
into typed records.

Tracing is enabled per solver (``FGTSolver(trace=...)`` accepts ``True`` or
a tracer instance), process-wide via :func:`set_tracing`, or for a whole
invocation via the ``REPRO_TRACE=path.jsonl`` environment variable — the
same three tiers as runtime verification.
"""

from __future__ import annotations

import json
import os
import threading
import time
from pathlib import Path
from typing import IO, Any, Dict, List, Optional, Union

#: Environment variable naming the JSONL file process-wide tracing writes to.
TRACE_ENV_VAR = "REPRO_TRACE"


class NullTracer:
    """No-op tracer: the zero-overhead default on every solver hot path."""

    enabled = False

    def event(self, kind: str, **fields: Any) -> None:
        """Emit one event record; no-op."""
        pass

    def span(self, kind: str, **fields: Any) -> "_NullSpan":
        """Open a span (context manager emitting a record on exit); no-op."""
        return _NULL_SPAN

    def flush(self) -> None:
        """Flush any buffered records; no-op."""
        pass

    def close(self) -> None:
        """Release the underlying sink; no-op."""
        pass


class _NullSpan:
    """Context manager returned by :meth:`NullTracer.span`."""

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc_info: object) -> None:
        pass


_NULL_SPAN = _NullSpan()

#: Shared no-op instance handed to solvers when tracing is off.
NULL_TRACER = NullTracer()


class _Span:
    """Live span: emits a ``kind`` record with ``dur`` when the block exits."""

    __slots__ = ("_tracer", "_kind", "_fields", "_start")

    def __init__(self, tracer: "_RecordingTracer", kind: str, fields: Dict[str, Any]):
        self._tracer = tracer
        self._kind = kind
        self._fields = fields
        self._start = 0.0

    def add(self, **fields: Any) -> None:
        """Attach more fields to the record the span will emit."""
        self._fields.update(fields)

    def __enter__(self) -> "_Span":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc_info: object) -> None:
        dur = time.perf_counter() - self._start
        self._tracer._emit_record(self._kind, self._fields, dur=dur)


class _RecordingTracer(NullTracer):
    """Shared machinery of the live tracers: sequencing and timestamps."""

    enabled = True

    def __init__(self) -> None:
        self._seq = 0
        self._t0 = time.perf_counter()
        # The dispatch engine emits from a thread pool; sequencing and the
        # sink write must be atomic so records never interleave mid-line.
        self._emit_lock = threading.Lock()

    def event(self, kind: str, **fields: Any) -> None:
        """Emit one timestamped event record."""
        self._emit_record(kind, fields)

    def span(self, kind: str, **fields: Any) -> _Span:
        """A context manager that emits ``kind`` with its wall duration."""
        return _Span(self, kind, dict(fields))

    def _emit_record(
        self, kind: str, fields: Dict[str, Any], dur: Optional[float] = None
    ) -> None:
        with self._emit_lock:
            record: Dict[str, Any] = {
                "kind": kind,
                "seq": self._seq,
                "ts": round(time.perf_counter() - self._t0, 9),
            }
            if dur is not None:
                record["dur"] = round(dur, 9)
            record.update(fields)
            self._seq += 1
            self._write(record)

    def _write(self, record: Dict[str, Any]) -> None:
        raise NotImplementedError


class JsonlTracer(_RecordingTracer):
    """Tracer writing one JSON document per line to a file or stream."""

    def __init__(
        self, path: Union[str, Path, None] = None, stream: Optional[IO[str]] = None
    ) -> None:
        super().__init__()
        if (path is None) == (stream is None):
            raise ValueError("pass exactly one of path or stream")
        self._owns_stream = stream is None
        if stream is None:
            target = Path(path)
            if target.parent != Path("."):
                target.parent.mkdir(parents=True, exist_ok=True)
            stream = target.open("a")
        self._stream = stream
        self.path = None if path is None else Path(path)

    def _write(self, record: Dict[str, Any]) -> None:
        self._stream.write(json.dumps(record, separators=(",", ":")) + "\n")

    def flush(self) -> None:
        self._stream.flush()

    def close(self) -> None:
        if self._owns_stream and not self._stream.closed:
            self._stream.close()

    def __enter__(self) -> "JsonlTracer":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


class MemoryTracer(_RecordingTracer):
    """Tracer keeping records in memory — tests and ad-hoc inspection."""

    def __init__(self) -> None:
        super().__init__()
        self.records: List[Dict[str, Any]] = []

    def _write(self, record: Dict[str, Any]) -> None:
        self.records.append(record)

    def clear(self) -> None:
        """Drop the collected records (the sequence number keeps counting)."""
        self.records.clear()

    def kinds(self) -> List[str]:
        """The ``kind`` of every collected record, in emission order."""
        return [r["kind"] for r in self.records]


#: Process-wide override installed by :func:`set_tracing`.
#: ``None`` defers to the environment; ``False`` forces tracing off.
_OVERRIDE: Union[None, bool, NullTracer] = None

#: Lazily-opened tracer for the ``REPRO_TRACE`` environment variable,
#: cached per path so one process appends to a single stream.
_ENV_TRACER: Optional[JsonlTracer] = None
_ENV_PATH: Optional[str] = None

#: Fallback sink when a solver asks for tracing but no file is configured.
_FALLBACK = MemoryTracer()


def memory_tracer() -> MemoryTracer:
    """The shared in-memory fallback sink (``trace=True`` with no file)."""
    return _FALLBACK


def set_tracing(target: Union[None, bool, str, Path, NullTracer]) -> None:
    """Install a process-wide tracing override.

    ``None`` restores environment control (``REPRO_TRACE``); ``False``
    forces tracing off; ``True`` routes to the shared in-memory sink; a
    path opens a :class:`JsonlTracer` there; a tracer instance is used
    as-is.  A previously installed path-opened tracer is closed.
    """
    global _OVERRIDE
    if isinstance(_OVERRIDE, JsonlTracer):
        _OVERRIDE.close()
    if target is None or target is False:
        _OVERRIDE = target
    elif target is True:
        _OVERRIDE = _FALLBACK
    elif isinstance(target, (str, Path)):
        _OVERRIDE = JsonlTracer(target)
    elif isinstance(target, NullTracer):
        _OVERRIDE = target
    else:
        raise TypeError(f"cannot trace to {target!r}")


def _env_tracer() -> Optional[JsonlTracer]:
    """The tracer for ``REPRO_TRACE``, opened once per configured path."""
    global _ENV_TRACER, _ENV_PATH
    path = os.environ.get(TRACE_ENV_VAR, "").strip()
    if not path:
        return None
    if _ENV_TRACER is None or _ENV_PATH != path:
        if _ENV_TRACER is not None:
            _ENV_TRACER.close()
        _ENV_TRACER = JsonlTracer(path)
        _ENV_PATH = path
    return _ENV_TRACER


def _configured_sink() -> NullTracer:
    """The process-wide sink: override first, then environment, then memory."""
    if isinstance(_OVERRIDE, NullTracer):
        return _OVERRIDE
    env = _env_tracer()
    if env is not None:
        return env
    return _FALLBACK


def resolve_tracer(flag: Union[bool, NullTracer, None] = False) -> NullTracer:
    """The tracer a solver should use given its ``trace=`` field.

    A tracer instance wins outright; ``trace=True`` routes to the
    process-wide sink (override, then ``REPRO_TRACE``, then the shared
    in-memory fallback); ``trace=False`` still picks up a process-wide
    override or the environment variable — mirroring
    :func:`repro.verify.verifier.verification_enabled` — and otherwise
    returns the shared :data:`NULL_TRACER`.
    """
    if isinstance(flag, NullTracer):
        return flag
    if flag:
        return _configured_sink()
    if _OVERRIDE is False:
        return NULL_TRACER
    if isinstance(_OVERRIDE, NullTracer):
        return _OVERRIDE
    env = _env_tracer()
    if env is not None:
        return env
    return NULL_TRACER


def tracing_enabled(flag: Union[bool, NullTracer, None] = False) -> bool:
    """Whether :func:`resolve_tracer` would return a live tracer."""
    return resolve_tracer(flag).enabled
