"""Structured JSONL tracing for the solver hot loops.

The tracer mirrors the :class:`~repro.verify.verifier.NullVerifier` pattern:
solvers hold a ``trace=`` field and resolve it to a tracer object once per
solve, so a disabled trace costs one attribute read per hook site and the
hot loops guard every emission with ``if tracer.enabled`` (no kwargs dict is
even built when tracing is off).

One trace is a JSON Lines stream of typed records.  Every record carries

* ``kind`` — a dotted event type (``fgt.round``, ``cvdps.layer``, ...),
* ``seq`` — a per-tracer monotone sequence number,
* ``ts`` — seconds since the tracer was opened (``time.perf_counter``),
* ``dur`` — span duration in seconds, present only on span records,
* ``trace`` / ``span`` / ``parent`` — causal identity: the trace a record
  belongs to, the span's own id, and its parent span's id (span records
  emit all three; point events carry ``trace``/``parent`` only),

plus event-specific fields.  :mod:`repro.obs.reader` loads the stream back
into typed records and can reconstruct the span tree
(:func:`~repro.obs.reader.build_span_trees`).

Causal context rides a :class:`contextvars.ContextVar`, so nesting is
automatic on one thread; code that fans work out across a thread pool
captures :func:`current_context` before submitting and re-attaches it with
:func:`attach_context` inside each worker (``contextvars`` do not cross
thread boundaries on their own).  :func:`start_trace` opens a new trace —
the dispatch API calls it per HTTP request with the client's
``X-Repro-Trace-Id`` — and is also where head-based sampling happens: the
``REPRO_TRACE_SAMPLE`` environment variable (a fraction in [0, 1]) decides
per *trace* (deterministically from the trace id, so a trace is either
fully recorded or fully dropped, never half a tree).

Tracing is enabled per solver (``FGTSolver(trace=...)`` accepts ``True`` or
a tracer instance), process-wide via :func:`set_tracing`, or for a whole
invocation via the ``REPRO_TRACE=path.jsonl`` environment variable — the
same three tiers as runtime verification.
"""

from __future__ import annotations

import contextvars
import itertools
import json
import os
import threading
import time
import zlib
from contextlib import contextmanager
from pathlib import Path
from typing import IO, Any, Dict, Iterator, List, NamedTuple, Optional, Union

#: Environment variable naming the JSONL file process-wide tracing writes to.
TRACE_ENV_VAR = "REPRO_TRACE"

#: Environment variable holding the head-sampling fraction in [0, 1].
#: Applied per trace id at :func:`start_trace`; absent or malformed means
#: record everything.
SAMPLE_ENV_VAR = "REPRO_TRACE_SAMPLE"


class SpanContext(NamedTuple):
    """The causal position of the current code: which trace, under which span.

    ``span_id`` is ``None`` at the root of a freshly started trace (no span
    opened yet).  ``sampled=False`` suppresses every emission under the
    context while keeping ids flowing, so an unsampled request costs two
    context-variable operations and nothing else.
    """

    trace_id: str
    span_id: Optional[str]
    sampled: bool


#: The ambient causal context.  ``None`` outside any trace/span.
_SPAN_CTX: "contextvars.ContextVar[Optional[SpanContext]]" = (
    contextvars.ContextVar("repro_span_ctx", default=None)
)

#: Span-id allocator: unique within the process and — thanks to the random
#: starting offset — across process restarts appending to the same trace
#: file (the chaos kill-and-recover path), so trees never alias.
_SPAN_IDS = itertools.count(int.from_bytes(os.urandom(6), "big") << 16)


def new_trace_id() -> str:
    """A fresh 16-hex-char trace id."""
    return os.urandom(8).hex()


def _next_span_id() -> str:
    return format(next(_SPAN_IDS), "x")


def current_context() -> Optional[SpanContext]:
    """The ambient :class:`SpanContext`, or ``None`` outside any trace."""
    return _SPAN_CTX.get()


def current_trace_id() -> Optional[str]:
    """The ambient trace id, or ``None`` outside any trace."""
    ctx = _SPAN_CTX.get()
    return None if ctx is None else ctx.trace_id


def sample_rate() -> float:
    """The ``REPRO_TRACE_SAMPLE`` fraction, clamped to [0, 1] (default 1)."""
    raw = os.environ.get(SAMPLE_ENV_VAR, "").strip()
    if not raw:
        return 1.0
    try:
        rate = float(raw)
    except ValueError:
        return 1.0
    return min(1.0, max(0.0, rate))


def trace_sampled(trace_id: str, rate: Optional[float] = None) -> bool:
    """Deterministic head-sampling verdict for ``trace_id``.

    Hash-based, not random: every process (and every span site) agrees on
    the verdict for a given id, so a trace is recorded whole or not at all.
    """
    if rate is None:
        rate = sample_rate()
    if rate >= 1.0:
        return True
    if rate <= 0.0:
        return False
    bucket = zlib.crc32(trace_id.encode("utf-8")) & 0xFFFFFFFF
    return bucket < rate * (1 << 32)


@contextmanager
def start_trace(
    trace_id: Optional[str] = None, sampled: Optional[bool] = None
) -> Iterator[str]:
    """Open a (possibly propagated) trace for the enclosed block.

    ``trace_id=None`` mints a fresh id; passing one adopts the caller's
    (the ``X-Repro-Trace-Id`` propagation path).  ``sampled=None`` defers
    to :func:`trace_sampled`; explicitly passing a bool overrides the knob
    (the CLI forces ``True`` for its own runs).  Yields the trace id so
    callers can echo it back.
    """
    if trace_id is None:
        trace_id = new_trace_id()
    if sampled is None:
        sampled = trace_sampled(trace_id)
    token = _SPAN_CTX.set(SpanContext(str(trace_id), None, bool(sampled)))
    try:
        yield str(trace_id)
    finally:
        _SPAN_CTX.reset(token)


@contextmanager
def attach_context(ctx: Optional[SpanContext]) -> Iterator[None]:
    """Re-attach a captured :class:`SpanContext` on the current thread.

    The explicit propagation hook for thread pools: the submitting side
    captures :func:`current_context`, each worker runs under
    ``attach_context(ctx)`` so its spans parent correctly.  ``None`` is a
    no-op, keeping call sites unconditional.
    """
    if ctx is None:
        yield
        return
    token = _SPAN_CTX.set(ctx)
    try:
        yield
    finally:
        _SPAN_CTX.reset(token)


class NullTracer:
    """No-op tracer: the zero-overhead default on every solver hot path."""

    enabled = False

    def event(self, kind: str, **fields: Any) -> None:
        """Emit one event record; no-op."""
        pass

    def span(self, kind: str, **fields: Any) -> "_NullSpan":
        """Open a span (context manager emitting a record on exit); no-op."""
        return _NULL_SPAN

    def flush(self) -> None:
        """Flush any buffered records; no-op."""
        pass

    def close(self) -> None:
        """Release the underlying sink; no-op."""
        pass


class _NullSpan:
    """Context manager returned by :meth:`NullTracer.span`."""

    def add(self, **fields: Any) -> None:
        """Attach fields to the span record; no-op."""
        pass

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc_info: object) -> None:
        pass


_NULL_SPAN = _NullSpan()

#: Shared no-op instance handed to solvers when tracing is off.
NULL_TRACER = NullTracer()


class _Span:
    """Live span: emits a ``kind`` record with ``dur`` when the block exits.

    On entry the span allocates its id, records the ambient context as its
    parent, and installs itself as the new ambient context — so spans nest
    causally with no plumbing at the call sites.  Under an unsampled
    context the span emits nothing (and installs nothing: the unsampled
    context already suppresses any children).
    """

    __slots__ = (
        "_tracer", "_kind", "_fields", "_start",
        "_token", "_skip", "_trace_id", "_span_id", "_parent_id",
    )

    def __init__(self, tracer: "_RecordingTracer", kind: str, fields: Dict[str, Any]):
        self._tracer = tracer
        self._kind = kind
        self._fields = fields
        self._start = 0.0
        self._token = None
        self._skip = False
        self._trace_id: Optional[str] = None
        self._span_id: Optional[str] = None
        self._parent_id: Optional[str] = None

    def add(self, **fields: Any) -> None:
        """Attach more fields to the record the span will emit."""
        self._fields.update(fields)

    def __enter__(self) -> "_Span":
        ctx = _SPAN_CTX.get()
        if ctx is not None and not ctx.sampled:
            self._skip = True
        else:
            if ctx is not None:
                self._trace_id = ctx.trace_id
                self._parent_id = ctx.span_id
            else:
                # Outside any started trace (offline solver runs): all of
                # this tracer's root spans share its implicit trace id so
                # the file still reconstructs into trees.
                self._trace_id = self._tracer.trace_id
                self._parent_id = None
            self._span_id = _next_span_id()
            self._token = _SPAN_CTX.set(
                SpanContext(self._trace_id, self._span_id, True)
            )
        self._start = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        dur = time.perf_counter() - self._start
        if self._token is not None:
            _SPAN_CTX.reset(self._token)
            self._token = None
        if self._skip:
            return
        if exc_type is not None:
            self._fields.setdefault("error", exc_type.__name__)
        self._tracer._emit_record(
            self._kind,
            self._fields,
            dur=dur,
            trace=self._trace_id,
            span=self._span_id,
            parent=self._parent_id,
        )


class _RecordingTracer(NullTracer):
    """Shared machinery of the live tracers: sequencing and timestamps."""

    enabled = True

    def __init__(self) -> None:
        self._seq = 0
        self._t0 = time.perf_counter()
        # The tracer's implicit trace id: adopted by root spans opened
        # outside any start_trace() (offline CLI runs).
        self.trace_id = new_trace_id()
        # The dispatch engine emits from a thread pool; sequencing and the
        # sink write must be atomic so records never interleave mid-line.
        self._emit_lock = threading.Lock()

    def event(self, kind: str, **fields: Any) -> None:
        """Emit one timestamped event record.

        Events are causal leaves: they carry the ambient ``trace`` and the
        enclosing span as ``parent`` but allocate no span id.  Under an
        unsampled context the event is dropped.
        """
        ctx = _SPAN_CTX.get()
        if ctx is None:
            self._emit_record(kind, fields)
            return
        if not ctx.sampled:
            return
        self._emit_record(
            kind, fields, trace=ctx.trace_id, parent=ctx.span_id
        )

    def span(self, kind: str, **fields: Any) -> _Span:
        """A context manager that emits ``kind`` with its wall duration."""
        return _Span(self, kind, dict(fields))

    def _emit_record(
        self,
        kind: str,
        fields: Dict[str, Any],
        dur: Optional[float] = None,
        trace: Optional[str] = None,
        span: Optional[str] = None,
        parent: Optional[str] = None,
    ) -> None:
        with self._emit_lock:
            record: Dict[str, Any] = {
                "kind": kind,
                "seq": self._seq,
                "ts": round(time.perf_counter() - self._t0, 9),
            }
            if dur is not None:
                record["dur"] = round(dur, 9)
            if trace is not None:
                record["trace"] = trace
            if span is not None:
                record["span"] = span
            if parent is not None:
                record["parent"] = parent
            record.update(fields)
            self._seq += 1
            self._write(record)

    def _write(self, record: Dict[str, Any]) -> None:
        raise NotImplementedError


class JsonlTracer(_RecordingTracer):
    """Tracer writing one JSON document per line to a file or stream."""

    def __init__(
        self, path: Union[str, Path, None] = None, stream: Optional[IO[str]] = None
    ) -> None:
        super().__init__()
        if (path is None) == (stream is None):
            raise ValueError("pass exactly one of path or stream")
        self._owns_stream = stream is None
        if stream is None:
            target = Path(path)
            if target.parent != Path("."):
                target.parent.mkdir(parents=True, exist_ok=True)
            stream = target.open("a")
        self._stream = stream
        self.path = None if path is None else Path(path)

    def _write(self, record: Dict[str, Any]) -> None:
        # A detached solve thread can outlive the run that installed this
        # tracer and emit after close; drop those records instead of
        # raising on (or tearing a line into) a closed stream.
        if self._stream.closed:
            return
        self._stream.write(json.dumps(record, separators=(",", ":")) + "\n")

    def flush(self) -> None:
        """Flush the underlying stream (no-op once closed)."""
        if not self._stream.closed:
            self._stream.flush()

    def close(self) -> None:
        """Close an owned stream; emission afterwards is silently dropped."""
        with self._emit_lock:
            if self._owns_stream and not self._stream.closed:
                self._stream.close()

    def __enter__(self) -> "JsonlTracer":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


class MemoryTracer(_RecordingTracer):
    """Tracer keeping records in memory — tests and ad-hoc inspection."""

    def __init__(self) -> None:
        super().__init__()
        self.records: List[Dict[str, Any]] = []

    def _write(self, record: Dict[str, Any]) -> None:
        self.records.append(record)

    def clear(self) -> None:
        """Drop the collected records (the sequence number keeps counting)."""
        self.records.clear()

    def kinds(self) -> List[str]:
        """The ``kind`` of every collected record, in emission order."""
        return [r["kind"] for r in self.records]


#: Process-wide override installed by :func:`set_tracing`.
#: ``None`` defers to the environment; ``False`` forces tracing off.
_OVERRIDE: Union[None, bool, NullTracer] = None

#: Lazily-opened tracer for the ``REPRO_TRACE`` environment variable,
#: cached per path so one process appends to a single stream.
_ENV_TRACER: Optional[JsonlTracer] = None
_ENV_PATH: Optional[str] = None

#: Fallback sink when a solver asks for tracing but no file is configured.
_FALLBACK = MemoryTracer()


def memory_tracer() -> MemoryTracer:
    """The shared in-memory fallback sink (``trace=True`` with no file)."""
    return _FALLBACK


def set_tracing(target: Union[None, bool, str, Path, NullTracer]) -> None:
    """Install a process-wide tracing override.

    ``None`` restores environment control (``REPRO_TRACE``); ``False``
    forces tracing off; ``True`` routes to the shared in-memory sink; a
    path opens a :class:`JsonlTracer` there; a tracer instance is used
    as-is.  A previously installed path-opened tracer is closed.
    """
    global _OVERRIDE
    if isinstance(_OVERRIDE, JsonlTracer):
        _OVERRIDE.close()
    if target is None or target is False:
        _OVERRIDE = target
    elif target is True:
        _OVERRIDE = _FALLBACK
    elif isinstance(target, (str, Path)):
        _OVERRIDE = JsonlTracer(target)
    elif isinstance(target, NullTracer):
        _OVERRIDE = target
    else:
        raise TypeError(f"cannot trace to {target!r}")


def _env_tracer() -> Optional[JsonlTracer]:
    """The tracer for ``REPRO_TRACE``, opened once per configured path."""
    global _ENV_TRACER, _ENV_PATH
    path = os.environ.get(TRACE_ENV_VAR, "").strip()
    if not path:
        return None
    if _ENV_TRACER is None or _ENV_PATH != path:
        if _ENV_TRACER is not None:
            _ENV_TRACER.close()
        _ENV_TRACER = JsonlTracer(path)
        _ENV_PATH = path
    return _ENV_TRACER


def _configured_sink() -> NullTracer:
    """The process-wide sink: override first, then environment, then memory."""
    if isinstance(_OVERRIDE, NullTracer):
        return _OVERRIDE
    env = _env_tracer()
    if env is not None:
        return env
    return _FALLBACK


def resolve_tracer(flag: Union[bool, NullTracer, None] = False) -> NullTracer:
    """The tracer a solver should use given its ``trace=`` field.

    A tracer instance wins outright; ``trace=True`` routes to the
    process-wide sink (override, then ``REPRO_TRACE``, then the shared
    in-memory fallback); ``trace=False`` still picks up a process-wide
    override or the environment variable — mirroring
    :func:`repro.verify.verifier.verification_enabled` — and otherwise
    returns the shared :data:`NULL_TRACER`.
    """
    if isinstance(flag, NullTracer):
        return flag
    if flag:
        return _configured_sink()
    if _OVERRIDE is False:
        return NULL_TRACER
    if isinstance(_OVERRIDE, NullTracer):
        return _OVERRIDE
    env = _env_tracer()
    if env is not None:
        return env
    return NULL_TRACER


def tracing_enabled(flag: Union[bool, NullTracer, None] = False) -> bool:
    """Whether :func:`resolve_tracer` would return a live tracer."""
    return resolve_tracer(flag).enabled
