"""Process-wide metrics registry: counters, gauges, and histogram timers.

The paper's cost claims (Figures 8-12) are statements about *how* the
algorithms run — how many DP states C-VDPS generation expands, how many
best-response rounds FGT plays, where the CPU time goes.  The registry
collects those quantities as cheap in-process metrics so any run can report
them without tracing overhead:

* :class:`Counter` — monotone tallies (cache hits, DP expansions, switches).
* :class:`Gauge` — last-observed values (catalog size, worker count).
* :class:`Histogram` — bucketed latency distributions: fixed log-spaced
  buckets (:data:`DEFAULT_BUCKETS`) with streaming count/total/min/max,
  p50/p95/p99 estimation by in-bucket linear interpolation, and
  spec-compliant Prometheus ``_bucket``/``_sum``/``_count`` exposition;
  :meth:`MetricsRegistry.timer` feeds one with wall-clock phase durations
  measured via ``time.perf_counter``.

Recording is dictionary-lookup cheap, but the hot loops still avoid
per-iteration calls: they accumulate plain local integers and flush totals
once per solve/build (see :mod:`repro.vdps.generator`).  The process-wide
singleton is :data:`METRICS`; experiment arms snapshot it before/after a run
and attach the delta to their :class:`~repro.experiments.runner.RunRecord`.
"""

from __future__ import annotations

import math
import re
import threading
import time
from bisect import bisect_left
from contextlib import contextmanager
from typing import Dict, Iterator, List, Mapping, Optional, Sequence, Tuple

#: Characters Prometheus forbids in metric names, replaced by ``_``.
_PROM_INVALID = re.compile(r"[^a-zA-Z0-9_:]")

#: One lock shared by every instrument and the registry's get-or-create
#: tables.  The dispatch engine's fault-tolerant path records from a thread
#: pool, so increments and lazy creation must be race-free; recording is
#: rare enough (hot loops batch locally and flush once) that a single
#: uncontended lock costs nothing measurable.
_LOCK = threading.Lock()


def _prom_name(name: str, prefix: str) -> str:
    """A Prometheus-legal metric name for registry key ``name``."""
    sanitised = _PROM_INVALID.sub("_", name)
    if sanitised and sanitised[0].isdigit():
        sanitised = f"_{sanitised}"
    return f"{prefix}{sanitised}"


def _prom_value(value: float) -> str:
    """Render ``value`` the way Prometheus text exposition expects."""
    if isinstance(value, float) and not value.is_integer():
        return repr(value)
    return str(int(value))


def _prom_bound(bound: float) -> str:
    """Render a bucket's ``le`` bound (``0.005``, ``1.0``, ...)."""
    return repr(float(bound))


class Counter:
    """Monotonically increasing tally."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0

    def add(self, amount: int = 1) -> None:
        """Increase the tally by ``amount`` (must be >= 0); thread-safe."""
        if amount < 0:
            raise ValueError(f"counters only go up, got {amount!r}")
        with _LOCK:
            self.value += amount


class Gauge:
    """Last-observed value of some quantity."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def set(self, value: float) -> None:
        """Record the latest reading, replacing the previous one."""
        self.value = float(value)


#: Default histogram bucket upper bounds, in seconds: log-spaced from
#: 100 µs to a minute, sized for the latencies this codebase produces
#: (journal fsyncs at the fast end, cold C-VDPS builds at the slow end).
#: Observations above the last bound land in the implicit ``+Inf`` bucket.
DEFAULT_BUCKETS: Tuple[float, ...] = (
    0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025,
    0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 30.0, 60.0,
)


class Histogram:
    """Bucketed distribution of observed samples.

    Fixed upper-bound buckets (Prometheus ``le`` semantics: bucket *i*
    counts samples ``<= bounds[i]``; one implicit ``+Inf`` bucket catches
    the rest) plus the streaming count/total/min/max summary the registry
    has always exposed.  Quantiles are estimated the way
    ``histogram_quantile`` does it — find the bucket holding the target
    rank, interpolate linearly inside it — then clamped to the observed
    ``[min, max]`` so tiny sample counts cannot report a latency nobody
    ever saw.
    """

    __slots__ = ("count", "total", "min", "max", "bounds", "bucket_counts")

    def __init__(self, buckets: Optional[Sequence[float]] = None) -> None:
        bounds = tuple(sorted(DEFAULT_BUCKETS if buckets is None else buckets))
        if not bounds or any(b <= 0 for b in bounds):
            raise ValueError(f"bucket bounds must be positive, got {bounds!r}")
        if len(set(bounds)) != len(bounds):
            raise ValueError(f"bucket bounds must be distinct, got {bounds!r}")
        self.count = 0
        self.total = 0.0
        self.min = math.inf
        self.max = -math.inf
        self.bounds = bounds
        # Per-bucket (non-cumulative) tallies; the final slot is +Inf.
        self.bucket_counts = [0] * (len(bounds) + 1)

    def observe(self, value: float) -> None:
        """Fold one sample into the distribution; thread-safe."""
        value = float(value)
        with _LOCK:
            self.count += 1
            self.total += value
            if value < self.min:
                self.min = value
            if value > self.max:
                self.max = value
            self.bucket_counts[bisect_left(self.bounds, value)] += 1

    @property
    def mean(self) -> float:
        """Mean of the observed samples (0.0 before any observation)."""
        return self.total / self.count if self.count else 0.0

    def cumulative_counts(self) -> List[int]:
        """Cumulative count per bound (``le`` semantics), +Inf slot last."""
        with _LOCK:
            counts = list(self.bucket_counts)
        out: List[int] = []
        running = 0
        for c in counts:
            running += c
            out.append(running)
        return out

    def count_le(self, threshold: float) -> int:
        """Samples known to be ``<= threshold`` from the buckets alone.

        Conservative: only whole buckets whose upper bound is within the
        threshold are counted, so samples between the last such bound and
        the threshold are treated as violations.  SLO latency compliance
        uses this, which is why objective thresholds should sit on bucket
        bounds.
        """
        cumulative = self.cumulative_counts()
        best = 0
        for bound, cum in zip(self.bounds, cumulative):
            if bound <= threshold:
                best = cum
            else:
                break
        return best

    def quantile(self, q: float) -> float:
        """Estimated ``q``-quantile (``0 <= q <= 1``); 0.0 with no samples."""
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q!r}")
        with _LOCK:
            count = self.count
            counts = list(self.bucket_counts)
            lo_seen, hi_seen = self.min, self.max
        if not count:
            return 0.0
        rank = q * count
        cumulative = 0
        for i, bucket_count in enumerate(counts):
            cumulative += bucket_count
            if cumulative >= rank and bucket_count:
                if i >= len(self.bounds):
                    return hi_seen  # the +Inf bucket: all we know is max
                hi = self.bounds[i]
                lo = self.bounds[i - 1] if i else 0.0
                fraction = (rank - (cumulative - bucket_count)) / bucket_count
                estimate = lo + (hi - lo) * fraction
                return min(max(estimate, lo_seen), hi_seen)
        return hi_seen

    @property
    def p50(self) -> float:
        """Estimated median."""
        return self.quantile(0.50)

    @property
    def p95(self) -> float:
        """Estimated 95th percentile."""
        return self.quantile(0.95)

    @property
    def p99(self) -> float:
        """Estimated 99th percentile."""
        return self.quantile(0.99)


class MetricsRegistry:
    """Named counters, gauges, and histograms with get-or-create semantics.

    A name belongs to exactly one metric kind; asking for the same name as a
    different kind raises, which catches typo'd instrumentation early.
    """

    def __init__(self) -> None:
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}

    def _check_unique(self, name: str, kind: str) -> None:
        owners = {
            "counter": self._counters,
            "gauge": self._gauges,
            "histogram": self._histograms,
        }
        for other, table in owners.items():
            if other != kind and name in table:
                raise ValueError(f"metric {name!r} already registered as a {other}")

    def counter(self, name: str) -> Counter:
        """The counter called ``name``, created on first use (thread-safe)."""
        metric = self._counters.get(name)
        if metric is None:
            with _LOCK:
                metric = self._counters.get(name)
                if metric is None:
                    self._check_unique(name, "counter")
                    metric = self._counters[name] = Counter()
        return metric

    def gauge(self, name: str) -> Gauge:
        """The gauge called ``name``, created on first use (thread-safe)."""
        metric = self._gauges.get(name)
        if metric is None:
            with _LOCK:
                metric = self._gauges.get(name)
                if metric is None:
                    self._check_unique(name, "gauge")
                    metric = self._gauges[name] = Gauge()
        return metric

    def histogram(
        self, name: str, buckets: Optional[Sequence[float]] = None
    ) -> Histogram:
        """The histogram called ``name``, created on first use (thread-safe).

        ``buckets`` (upper bounds) applies only at creation; an existing
        histogram keeps the bounds it was born with.
        """
        metric = self._histograms.get(name)
        if metric is None:
            with _LOCK:
                metric = self._histograms.get(name)
                if metric is None:
                    self._check_unique(name, "histogram")
                    metric = self._histograms[name] = Histogram(buckets)
        return metric

    @contextmanager
    def timer(self, name: str) -> Iterator[None]:
        """Observe the wall-clock duration of the enclosed block.

        Feeds ``histogram(name)`` with ``time.perf_counter`` intervals, so
        ``<name>.total`` in a snapshot is the cumulative phase time.
        """
        start = time.perf_counter()
        try:
            yield
        finally:
            self.histogram(name).observe(time.perf_counter() - start)

    def snapshot(self) -> Dict[str, float]:
        """A flat, JSON-friendly view of every metric.

        Counters and gauges appear under their own name; a histogram ``h``
        expands to ``h.count``, ``h.total``, ``h.min``, ``h.max`` (the
        extrema only once it has samples).
        """
        with _LOCK:
            counters = list(self._counters.items())
            gauges = list(self._gauges.items())
            histograms = list(self._histograms.items())
        out: Dict[str, float] = {}
        for name, counter in counters:
            out[name] = counter.value
        for name, gauge in gauges:
            out[name] = gauge.value
        for name, hist in histograms:
            out[f"{name}.count"] = hist.count
            out[f"{name}.total"] = hist.total
            if hist.count:
                out[f"{name}.min"] = hist.min
                out[f"{name}.max"] = hist.max
        return out

    def delta(self, before: Mapping[str, float]) -> Dict[str, float]:
        """Counter/histogram movement since the ``before`` snapshot.

        Gauges are point-in-time readings, not accumulations, so they are
        reported at their current value rather than differenced.  Keys that
        did not move are omitted.
        """
        out: Dict[str, float] = {}
        for key, value in self.snapshot().items():
            base = key.rsplit(".", 1)[0]
            if key in self._gauges:
                if value != before.get(key, value):
                    out[key] = value
                elif key not in before:
                    out[key] = value
                continue
            if base in self._histograms and key.endswith((".min", ".max")):
                continue  # extrema do not difference meaningfully
            moved = value - before.get(key, 0)
            if moved:
                out[key] = moved
        return out

    def reset(self) -> None:
        """Drop every registered metric."""
        self._counters.clear()
        self._gauges.clear()
        self._histograms.clear()

    def render_prometheus(self, prefix: str = "repro_") -> str:
        """Prometheus text-exposition rendering of the registry.

        Counters and gauges keep their kind; a histogram renders as a real
        Prometheus ``histogram`` — cumulative ``_bucket{le="..."}`` series
        ending in ``le="+Inf"``, then ``_sum`` and ``_count`` — plus
        ``_min``/``_max`` gauges once it has samples.  Registry names are
        sanitised (``.`` and ``-`` become ``_``) and prefixed, so
        ``service.dispatch_seconds`` is scraped as
        ``repro_service_dispatch_seconds_bucket{le="0.005"}`` etc.  This is
        what ``GET /metrics`` on the dispatch service serves.
        """
        with _LOCK:
            counters = dict(self._counters)
            gauges = dict(self._gauges)
            histograms = dict(self._histograms)
        lines: List[str] = []
        for name in sorted(counters):
            metric = _prom_name(name, prefix)
            lines.append(f"# TYPE {metric} counter")
            lines.append(f"{metric} {_prom_value(counters[name].value)}")
        for name in sorted(gauges):
            metric = _prom_name(name, prefix)
            lines.append(f"# TYPE {metric} gauge")
            lines.append(f"{metric} {_prom_value(gauges[name].value)}")
        for name in sorted(histograms):
            hist = histograms[name]
            metric = _prom_name(name, prefix)
            lines.append(f"# TYPE {metric} histogram")
            cumulative = hist.cumulative_counts()
            for bound, cum in zip(hist.bounds, cumulative):
                lines.append(
                    f'{metric}_bucket{{le="{_prom_bound(bound)}"}} {cum}'
                )
            lines.append(f'{metric}_bucket{{le="+Inf"}} {cumulative[-1]}')
            lines.append(f"{metric}_sum {_prom_value(hist.total)}")
            lines.append(f"{metric}_count {_prom_value(hist.count)}")
            if hist.count:
                lines.append(f"# TYPE {metric}_min gauge")
                lines.append(f"{metric}_min {_prom_value(hist.min)}")
                lines.append(f"# TYPE {metric}_max gauge")
                lines.append(f"{metric}_max {_prom_value(hist.max)}")
        return "\n".join(lines) + "\n" if lines else ""

    def format(self) -> str:
        """Multi-line ``name  value`` table, alphabetical, for CLI output."""
        snap = self.snapshot()
        if not snap:
            return "(no metrics recorded)"
        width = max(len(name) for name in snap)
        lines = []
        for name in sorted(snap):
            value = snap[name]
            rendered = f"{value:g}" if isinstance(value, float) else str(value)
            lines.append(f"{name.ljust(width)}  {rendered}")
        return "\n".join(lines)


#: The process-wide registry every instrumented component records into.
METRICS = MetricsRegistry()

#: The incremental-catalog metric surface (:mod:`repro.vdps.delta` and the
#: service cache/store).  All counters except the final timer histogram:
#:
#: * ``catalog.delta_applies`` / ``catalog.delta_noops`` — refreshes served
#:   by state surgery vs. recognised as no-change.
#: * ``catalog.delta_fallbacks`` — refreshes that fell back to a rebuild
#:   (churn above ``rebuild_fraction`` or a structural change).
#: * ``catalog.delta_rebuilds`` — full builds, including ``__init__`` and
#:   every fallback.
#: * ``catalog.delta_points_added`` / ``catalog.delta_points_removed`` —
#:   delivery-point churn applied as deltas (a changed point counts once in
#:   each).
#: * ``catalog.delta_entries_added`` / ``catalog.delta_entries_removed`` —
#:   C-VDPS entry movement those point deltas caused.
#: * ``catalog.delta_workers_revalidated`` — workers whose own content
#:   changed and were re-validated against the full entry table (untouched
#:   workers get patched incrementally).
#: * ``catalog.delta_store_saves`` / ``catalog.delta_store_loads`` /
#:   ``catalog.delta_store_errors`` — persistent-store traffic.
#: * ``catalog.delta_refresh_seconds`` — histogram of refresh wall-clock
#:   (both the delta and the fallback path).
CATALOG_DELTA_METRICS = (
    "catalog.delta_applies",
    "catalog.delta_noops",
    "catalog.delta_fallbacks",
    "catalog.delta_rebuilds",
    "catalog.delta_points_added",
    "catalog.delta_points_removed",
    "catalog.delta_entries_added",
    "catalog.delta_entries_removed",
    "catalog.delta_workers_revalidated",
    "catalog.delta_store_saves",
    "catalog.delta_store_loads",
    "catalog.delta_store_errors",
    "catalog.delta_refresh_seconds",
)


def metrics_registry() -> MetricsRegistry:
    """The process-wide :class:`MetricsRegistry` singleton."""
    return METRICS


def reset_metrics() -> None:
    """Drop all metrics (start of a ``repro trace`` run or a test)."""
    METRICS.reset()


def render_prometheus(
    registry: MetricsRegistry = None, prefix: str = "repro_"
) -> str:
    """Prometheus text rendering of ``registry`` (default: :data:`METRICS`)."""
    if registry is None:
        registry = METRICS
    return registry.render_prometheus(prefix=prefix)
