"""Process-wide metrics registry: counters, gauges, and histogram timers.

The paper's cost claims (Figures 8-12) are statements about *how* the
algorithms run — how many DP states C-VDPS generation expands, how many
best-response rounds FGT plays, where the CPU time goes.  The registry
collects those quantities as cheap in-process metrics so any run can report
them without tracing overhead:

* :class:`Counter` — monotone tallies (cache hits, DP expansions, switches).
* :class:`Gauge` — last-observed values (catalog size, worker count).
* :class:`Histogram` — streaming count/total/min/max summaries of samples;
  :meth:`MetricsRegistry.timer` feeds one with wall-clock phase durations
  measured via ``time.perf_counter``.

Recording is dictionary-lookup cheap, but the hot loops still avoid
per-iteration calls: they accumulate plain local integers and flush totals
once per solve/build (see :mod:`repro.vdps.generator`).  The process-wide
singleton is :data:`METRICS`; experiment arms snapshot it before/after a run
and attach the delta to their :class:`~repro.experiments.runner.RunRecord`.
"""

from __future__ import annotations

import math
import re
import threading
import time
from contextlib import contextmanager
from typing import Dict, Iterator, List, Mapping

#: Characters Prometheus forbids in metric names, replaced by ``_``.
_PROM_INVALID = re.compile(r"[^a-zA-Z0-9_:]")

#: One lock shared by every instrument and the registry's get-or-create
#: tables.  The dispatch engine's fault-tolerant path records from a thread
#: pool, so increments and lazy creation must be race-free; recording is
#: rare enough (hot loops batch locally and flush once) that a single
#: uncontended lock costs nothing measurable.
_LOCK = threading.Lock()


def _prom_name(name: str, prefix: str) -> str:
    """A Prometheus-legal metric name for registry key ``name``."""
    sanitised = _PROM_INVALID.sub("_", name)
    if sanitised and sanitised[0].isdigit():
        sanitised = f"_{sanitised}"
    return f"{prefix}{sanitised}"


def _prom_value(value: float) -> str:
    """Render ``value`` the way Prometheus text exposition expects."""
    if isinstance(value, float) and not value.is_integer():
        return repr(value)
    return str(int(value))


class Counter:
    """Monotonically increasing tally."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0

    def add(self, amount: int = 1) -> None:
        """Increase the tally by ``amount`` (must be >= 0); thread-safe."""
        if amount < 0:
            raise ValueError(f"counters only go up, got {amount!r}")
        with _LOCK:
            self.value += amount


class Gauge:
    """Last-observed value of some quantity."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def set(self, value: float) -> None:
        """Record the latest reading, replacing the previous one."""
        self.value = float(value)


class Histogram:
    """Streaming summary (count, total, min, max) of observed samples."""

    __slots__ = ("count", "total", "min", "max")

    def __init__(self) -> None:
        self.count = 0
        self.total = 0.0
        self.min = math.inf
        self.max = -math.inf

    def observe(self, value: float) -> None:
        """Fold one sample into the summary; thread-safe."""
        value = float(value)
        with _LOCK:
            self.count += 1
            self.total += value
            if value < self.min:
                self.min = value
            if value > self.max:
                self.max = value

    @property
    def mean(self) -> float:
        """Mean of the observed samples (0.0 before any observation)."""
        return self.total / self.count if self.count else 0.0


class MetricsRegistry:
    """Named counters, gauges, and histograms with get-or-create semantics.

    A name belongs to exactly one metric kind; asking for the same name as a
    different kind raises, which catches typo'd instrumentation early.
    """

    def __init__(self) -> None:
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}

    def _check_unique(self, name: str, kind: str) -> None:
        owners = {
            "counter": self._counters,
            "gauge": self._gauges,
            "histogram": self._histograms,
        }
        for other, table in owners.items():
            if other != kind and name in table:
                raise ValueError(f"metric {name!r} already registered as a {other}")

    def counter(self, name: str) -> Counter:
        """The counter called ``name``, created on first use (thread-safe)."""
        metric = self._counters.get(name)
        if metric is None:
            with _LOCK:
                metric = self._counters.get(name)
                if metric is None:
                    self._check_unique(name, "counter")
                    metric = self._counters[name] = Counter()
        return metric

    def gauge(self, name: str) -> Gauge:
        """The gauge called ``name``, created on first use (thread-safe)."""
        metric = self._gauges.get(name)
        if metric is None:
            with _LOCK:
                metric = self._gauges.get(name)
                if metric is None:
                    self._check_unique(name, "gauge")
                    metric = self._gauges[name] = Gauge()
        return metric

    def histogram(self, name: str) -> Histogram:
        """The histogram called ``name``, created on first use (thread-safe)."""
        metric = self._histograms.get(name)
        if metric is None:
            with _LOCK:
                metric = self._histograms.get(name)
                if metric is None:
                    self._check_unique(name, "histogram")
                    metric = self._histograms[name] = Histogram()
        return metric

    @contextmanager
    def timer(self, name: str) -> Iterator[None]:
        """Observe the wall-clock duration of the enclosed block.

        Feeds ``histogram(name)`` with ``time.perf_counter`` intervals, so
        ``<name>.total`` in a snapshot is the cumulative phase time.
        """
        start = time.perf_counter()
        try:
            yield
        finally:
            self.histogram(name).observe(time.perf_counter() - start)

    def snapshot(self) -> Dict[str, float]:
        """A flat, JSON-friendly view of every metric.

        Counters and gauges appear under their own name; a histogram ``h``
        expands to ``h.count``, ``h.total``, ``h.min``, ``h.max`` (the
        extrema only once it has samples).
        """
        with _LOCK:
            counters = list(self._counters.items())
            gauges = list(self._gauges.items())
            histograms = list(self._histograms.items())
        out: Dict[str, float] = {}
        for name, counter in counters:
            out[name] = counter.value
        for name, gauge in gauges:
            out[name] = gauge.value
        for name, hist in histograms:
            out[f"{name}.count"] = hist.count
            out[f"{name}.total"] = hist.total
            if hist.count:
                out[f"{name}.min"] = hist.min
                out[f"{name}.max"] = hist.max
        return out

    def delta(self, before: Mapping[str, float]) -> Dict[str, float]:
        """Counter/histogram movement since the ``before`` snapshot.

        Gauges are point-in-time readings, not accumulations, so they are
        reported at their current value rather than differenced.  Keys that
        did not move are omitted.
        """
        out: Dict[str, float] = {}
        for key, value in self.snapshot().items():
            base = key.rsplit(".", 1)[0]
            if key in self._gauges:
                if value != before.get(key, value):
                    out[key] = value
                elif key not in before:
                    out[key] = value
                continue
            if base in self._histograms and key.endswith((".min", ".max")):
                continue  # extrema do not difference meaningfully
            moved = value - before.get(key, 0)
            if moved:
                out[key] = moved
        return out

    def reset(self) -> None:
        """Drop every registered metric."""
        self._counters.clear()
        self._gauges.clear()
        self._histograms.clear()

    def render_prometheus(self, prefix: str = "repro_") -> str:
        """Prometheus text-exposition rendering of the registry.

        Counters and gauges keep their kind; a histogram renders as a
        ``summary`` (``_count``/``_sum``) plus ``_min``/``_max`` gauges once
        it has samples.  Registry names are sanitised (``.`` and ``-``
        become ``_``) and prefixed, so ``service.dispatch_seconds`` is
        scraped as ``repro_service_dispatch_seconds_sum`` etc.  This is what
        ``GET /metrics`` on the dispatch service serves.
        """
        with _LOCK:
            counters = dict(self._counters)
            gauges = dict(self._gauges)
            histograms = dict(self._histograms)
        lines: List[str] = []
        for name in sorted(counters):
            metric = _prom_name(name, prefix)
            lines.append(f"# TYPE {metric} counter")
            lines.append(f"{metric} {_prom_value(counters[name].value)}")
        for name in sorted(gauges):
            metric = _prom_name(name, prefix)
            lines.append(f"# TYPE {metric} gauge")
            lines.append(f"{metric} {_prom_value(gauges[name].value)}")
        for name in sorted(histograms):
            hist = histograms[name]
            metric = _prom_name(name, prefix)
            lines.append(f"# TYPE {metric} summary")
            lines.append(f"{metric}_count {_prom_value(hist.count)}")
            lines.append(f"{metric}_sum {_prom_value(hist.total)}")
            if hist.count:
                lines.append(f"# TYPE {metric}_min gauge")
                lines.append(f"{metric}_min {_prom_value(hist.min)}")
                lines.append(f"# TYPE {metric}_max gauge")
                lines.append(f"{metric}_max {_prom_value(hist.max)}")
        return "\n".join(lines) + "\n" if lines else ""

    def format(self) -> str:
        """Multi-line ``name  value`` table, alphabetical, for CLI output."""
        snap = self.snapshot()
        if not snap:
            return "(no metrics recorded)"
        width = max(len(name) for name in snap)
        lines = []
        for name in sorted(snap):
            value = snap[name]
            rendered = f"{value:g}" if isinstance(value, float) else str(value)
            lines.append(f"{name.ljust(width)}  {rendered}")
        return "\n".join(lines)


#: The process-wide registry every instrumented component records into.
METRICS = MetricsRegistry()

#: The incremental-catalog metric surface (:mod:`repro.vdps.delta` and the
#: service cache/store).  All counters except the final timer histogram:
#:
#: * ``catalog.delta_applies`` / ``catalog.delta_noops`` — refreshes served
#:   by state surgery vs. recognised as no-change.
#: * ``catalog.delta_fallbacks`` — refreshes that fell back to a rebuild
#:   (churn above ``rebuild_fraction`` or a structural change).
#: * ``catalog.delta_rebuilds`` — full builds, including ``__init__`` and
#:   every fallback.
#: * ``catalog.delta_points_added`` / ``catalog.delta_points_removed`` —
#:   delivery-point churn applied as deltas (a changed point counts once in
#:   each).
#: * ``catalog.delta_entries_added`` / ``catalog.delta_entries_removed`` —
#:   C-VDPS entry movement those point deltas caused.
#: * ``catalog.delta_workers_revalidated`` — workers whose own content
#:   changed and were re-validated against the full entry table (untouched
#:   workers get patched incrementally).
#: * ``catalog.delta_store_saves`` / ``catalog.delta_store_loads`` /
#:   ``catalog.delta_store_errors`` — persistent-store traffic.
#: * ``catalog.delta_refresh_seconds`` — histogram of refresh wall-clock
#:   (both the delta and the fallback path).
CATALOG_DELTA_METRICS = (
    "catalog.delta_applies",
    "catalog.delta_noops",
    "catalog.delta_fallbacks",
    "catalog.delta_rebuilds",
    "catalog.delta_points_added",
    "catalog.delta_points_removed",
    "catalog.delta_entries_added",
    "catalog.delta_entries_removed",
    "catalog.delta_workers_revalidated",
    "catalog.delta_store_saves",
    "catalog.delta_store_loads",
    "catalog.delta_store_errors",
    "catalog.delta_refresh_seconds",
)


def metrics_registry() -> MetricsRegistry:
    """The process-wide :class:`MetricsRegistry` singleton."""
    return METRICS


def reset_metrics() -> None:
    """Drop all metrics (start of a ``repro trace`` run or a test)."""
    METRICS.reset()


def render_prometheus(
    registry: MetricsRegistry = None, prefix: str = "repro_"
) -> str:
    """Prometheus text rendering of ``registry`` (default: :data:`METRICS`)."""
    if registry is None:
        registry = METRICS
    return registry.render_prometheus(prefix=prefix)
