"""Load JSONL traces back into typed records, trees, and summaries.

The reader is the analysis-side counterpart of
:class:`~repro.obs.tracer.JsonlTracer`: it parses every line the tracer can
emit into a :class:`TraceRecord` and folds a record stream into a
:class:`TraceSummary` — per-phase wall time, rounds, switches, and the final
metrics snapshot — which is what ``python -m repro trace`` prints and what
convergence analyses (Figure 12 style) consume.

Since spans carry causal identity (``trace``/``span``/``parent``),
:func:`build_span_trees` reconstructs each trace's span forest, and
:func:`analyze_trace` walks it into the operator view ``python -m repro
trace analyze`` prints: per-dispatch-round critical paths (which center,
which ladder rung, which catalog path made the round slow) and a
flamegraph-style self-time table per span kind.

A service killed mid-write (the chaos suite's SIGKILL) leaves a torn final
line; :func:`iter_trace` forgives exactly that — damage on the *last*
non-blank line — mirroring the journal's torn-tail semantics, while damage
followed by intact records still raises :class:`TraceFormatError` (it
cannot be a crash artefact).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, Iterator, List, Mapping, Optional, Sequence, Union

PathLike = Union[str, Path]

#: Record fields reserved by the tracer envelope.
_ENVELOPE = ("kind", "seq", "ts", "dur", "trace", "span", "parent")


class TraceFormatError(ValueError):
    """A trace line is not a record the tracer could have written."""


@dataclass(frozen=True)
class TraceRecord:
    """One parsed trace line.

    Attributes
    ----------
    kind:
        Dotted event type, e.g. ``fgt.round`` or ``catalog.build``.
    seq:
        Per-tracer monotone sequence number.
    ts:
        Seconds since the tracer was opened.
    dur:
        Span duration in seconds; ``None`` for point events.
    fields:
        All event-specific fields, envelope keys removed.
    """

    kind: str
    seq: int
    ts: float
    dur: Optional[float]
    fields: Mapping[str, Any]
    #: Causal identity; ``None`` on records from pre-context producers.
    trace_id: Optional[str] = None
    span_id: Optional[str] = None
    parent_id: Optional[str] = None

    @property
    def solver(self) -> str:
        """The component prefix of ``kind`` (``fgt``, ``iegt``, ``cvdps``...)."""
        return self.kind.split(".", 1)[0]

    @property
    def is_span(self) -> bool:
        return self.dur is not None

    @property
    def start_ts(self) -> float:
        """When the record's work began (spans emit at exit)."""
        return self.ts - self.dur if self.dur is not None else self.ts


def parse_record(line: str, lineno: int = 0) -> TraceRecord:
    """Parse one JSONL line into a :class:`TraceRecord`."""
    try:
        raw = json.loads(line)
    except json.JSONDecodeError as exc:
        raise TraceFormatError(f"line {lineno}: not valid JSON: {exc}") from exc
    if not isinstance(raw, dict):
        raise TraceFormatError(f"line {lineno}: expected an object, got {type(raw)}")
    for key in ("kind", "seq", "ts"):
        if key not in raw:
            raise TraceFormatError(f"line {lineno}: record missing {key!r}")
    return TraceRecord(
        kind=str(raw["kind"]),
        seq=int(raw["seq"]),
        ts=float(raw["ts"]),
        dur=None if "dur" not in raw else float(raw["dur"]),
        fields={k: v for k, v in raw.items() if k not in _ENVELOPE},
        trace_id=None if "trace" not in raw else str(raw["trace"]),
        span_id=None if "span" not in raw else str(raw["span"]),
        parent_id=None if "parent" not in raw else str(raw["parent"]),
    )


def iter_trace(
    path: PathLike, tolerate_torn_tail: bool = True
) -> Iterator[TraceRecord]:
    """Lazily parse the trace at ``path``, skipping blank lines.

    A process killed mid-write leaves a torn final line;
    ``tolerate_torn_tail`` forgives a parse failure if and only if no
    intact record follows it — the journal's torn-tail rule.  Damage
    *before* intact records always raises :class:`TraceFormatError`.
    """
    pending: Optional[TraceFormatError] = None
    with Path(path).open() as fh:
        for lineno, line in enumerate(fh, start=1):
            if not line.strip():
                continue
            if pending is not None:
                raise pending  # damage followed by data: real corruption
            try:
                record = parse_record(line, lineno)
            except TraceFormatError as exc:
                if not tolerate_torn_tail:
                    raise
                pending = exc
                continue
            yield record


def read_trace(
    path: PathLike, tolerate_torn_tail: bool = True
) -> List[TraceRecord]:
    """Parse the whole trace at ``path`` into a list of records."""
    return list(iter_trace(path, tolerate_torn_tail=tolerate_torn_tail))


@dataclass
class TraceSummary:
    """Aggregate view of one trace.

    ``rounds``/``switches`` are keyed by solver prefix (``fgt``, ``iegt``,
    ...); ``span_seconds`` totals the duration of every span kind;
    ``events`` counts records per kind; ``metrics`` is the last embedded
    ``metrics.snapshot`` payload, when the producer wrote one.
    """

    events: Dict[str, int] = field(default_factory=dict)
    span_seconds: Dict[str, float] = field(default_factory=dict)
    rounds: Dict[str, int] = field(default_factory=dict)
    switches: Dict[str, int] = field(default_factory=dict)
    metrics: Dict[str, float] = field(default_factory=dict)
    #: ``service.degraded`` events folded by ladder rung (scalar/greedy/skip).
    degraded: Dict[str, int] = field(default_factory=dict)
    #: ``service.solve_failure`` events folded by error type.
    solve_failures: Dict[str, int] = field(default_factory=dict)

    def total_rounds(self, solver: Optional[str] = None) -> int:
        """Rounds recorded for ``solver`` (all solvers when ``None``)."""
        if solver is not None:
            return self.rounds.get(solver.lower(), 0)
        return sum(self.rounds.values())

    def total_switches(self, solver: Optional[str] = None) -> int:
        """Strategy switches recorded for ``solver`` (all when ``None``)."""
        if solver is not None:
            return self.switches.get(solver.lower(), 0)
        return sum(self.switches.values())

    @property
    def cache_stats(self) -> Dict[str, float]:
        """Catalog-cache hits/misses/hit-rate from the metrics snapshot."""
        hits = self.metrics.get("catalog_cache.hits", 0)
        misses = self.metrics.get("catalog_cache.misses", 0)
        total = hits + misses
        return {
            "hits": hits,
            "misses": misses,
            "hit_rate": hits / total if total else 0.0,
        }

    @property
    def robustness_stats(self) -> Dict[str, float]:
        """Fault-tolerance events and counters seen by this trace.

        Merges the ``service.degraded`` / ``service.solve_failure`` event
        folds with any ``dispatch.degraded_*``, ``service.breaker.*``, and
        ``service.journal.*`` counters from the embedded metrics snapshot,
        so ``python -m repro trace`` and BENCH tooling surface robustness
        behaviour without parsing raw events.
        """
        stats: Dict[str, float] = {}
        for rung, count in self.degraded.items():
            stats[f"degraded.{rung}"] = float(count)
        for error, count in self.solve_failures.items():
            stats[f"solve_failure.{error}"] = float(count)
        for name, value in self.metrics.items():
            if name.startswith(
                ("dispatch.degraded", "dispatch.solve", "dispatch.injected",
                 "dispatch.breaker", "dispatch.centers_skipped",
                 "service.breaker.", "service.journal.")
            ):
                stats[name] = float(value)
        return stats

    def format(self) -> str:
        """Human-readable multi-section summary for the CLI."""
        lines: List[str] = []
        if self.rounds:
            lines.append("rounds / switches")
            for solver in sorted(self.rounds):
                lines.append(
                    f"  {solver:<8} rounds={self.rounds[solver]} "
                    f"switches={self.switches.get(solver, 0)}"
                )
        if self.span_seconds:
            lines.append("phase wall time")
            width = max(len(k) for k in self.span_seconds)
            for kind in sorted(self.span_seconds):
                lines.append(
                    f"  {kind.ljust(width)}  {self.span_seconds[kind]:.6f}s"
                )
        cache = self.cache_stats
        if cache["hits"] or cache["misses"]:
            lines.append(
                f"catalog cache: hits={cache['hits']:g} "
                f"misses={cache['misses']:g} hit_rate={cache['hit_rate']:.2f}"
            )
        robustness = self.robustness_stats
        if robustness:
            lines.append("robustness (degradations / breakers / journal)")
            width = max(len(k) for k in robustness)
            for key in sorted(robustness):
                lines.append(f"  {key.ljust(width)}  {robustness[key]:g}")
        if self.events:
            lines.append("events")
            width = max(len(k) for k in self.events)
            for kind in sorted(self.events):
                lines.append(f"  {kind.ljust(width)}  {self.events[kind]}")
        return "\n".join(lines) if lines else "(empty trace)"


def summarize_trace(
    records: Union[Sequence[TraceRecord], PathLike]
) -> TraceSummary:
    """Fold a record stream (or a trace file path) into a :class:`TraceSummary`."""
    if isinstance(records, (str, Path)):
        records = read_trace(records)
    summary = TraceSummary()
    for record in records:
        summary.events[record.kind] = summary.events.get(record.kind, 0) + 1
        if record.dur is not None:
            summary.span_seconds[record.kind] = (
                summary.span_seconds.get(record.kind, 0.0) + record.dur
            )
        solver = record.solver
        if record.kind.endswith(".round"):
            summary.rounds[solver] = summary.rounds.get(solver, 0) + 1
            summary.switches[solver] = summary.switches.get(solver, 0) + int(
                record.fields.get("switches", 0)
            )
        elif record.kind == "metrics.snapshot":
            payload = record.fields.get("metrics", {})
            if isinstance(payload, dict):
                summary.metrics = payload
        elif record.kind == "service.degraded":
            rung = str(record.fields.get("rung", "?"))
            summary.degraded[rung] = summary.degraded.get(rung, 0) + 1
        elif record.kind == "service.solve_failure":
            error = str(record.fields.get("error", "?"))
            summary.solve_failures[error] = (
                summary.solve_failures.get(error, 0) + 1
            )
    return summary


# -- span-tree reconstruction and critical-path analysis ---------------------


@dataclass
class SpanNode:
    """One span (or leaf event) in a reconstructed trace tree."""

    record: TraceRecord
    children: List["SpanNode"] = field(default_factory=list)

    @property
    def kind(self) -> str:
        return self.record.kind

    @property
    def dur(self) -> float:
        return self.record.dur or 0.0

    @property
    def self_time(self) -> float:
        """The span's duration minus its child spans' durations, floored at 0.

        Children that ran concurrently (the per-center thread pool) can sum
        past the parent's wall time; the floor keeps the flamegraph table
        sane — a fan-out parent simply reports ~0 self time.
        """
        return max(0.0, self.dur - sum(c.dur for c in self.children))

    def walk(self) -> Iterator["SpanNode"]:
        """This node and every descendant, depth-first."""
        yield self
        for child in self.children:
            yield from child.walk()

    def label(self) -> str:
        """``kind`` plus its most identifying fields, for display."""
        bits = [self.kind]
        for key in ("center", "rung", "path", "round", "attempt"):
            value = self.record.fields.get(key)
            if value is not None:
                bits.append(f"{key}={value}")
        return " ".join(bits)


@dataclass
class SpanForest:
    """Every trace's span trees, plus the records that failed to attach."""

    #: ``trace_id -> root nodes`` (roots are spans with no parent).
    roots: Dict[str, List[SpanNode]] = field(default_factory=dict)
    #: Records naming a parent span that the trace never emitted.  A live
    #: tracer cannot produce these (a parent's record always lands, even on
    #: exceptions); their presence means a truncated or corrupted file.
    orphans: List[TraceRecord] = field(default_factory=list)
    #: Records with no causal identity at all (pre-context producers).
    contextless: List[TraceRecord] = field(default_factory=list)

    def iter_spans(self) -> Iterator[SpanNode]:
        """Every node of every tree, depth-first."""
        for trees in self.roots.values():
            for root in trees:
                yield from root.walk()

    def find(self, kind: str) -> List[SpanNode]:
        """Every node whose kind equals ``kind``, in emission order."""
        found = [n for n in self.iter_spans() if n.kind == kind]
        found.sort(key=lambda n: n.record.seq)
        return found


def build_span_trees(
    records: Union[Sequence[TraceRecord], PathLike]
) -> SpanForest:
    """Reconstruct the span forest of a record stream (or trace file).

    Spans become inner nodes; point events become zero-duration leaves
    under their parent span.  Children are ordered by start time so a
    tree reads chronologically.
    """
    if isinstance(records, (str, Path)):
        records = read_trace(records)
    forest = SpanForest()
    nodes: Dict[str, SpanNode] = {}
    spans: List[TraceRecord] = []
    leaves: List[TraceRecord] = []
    for record in records:
        if record.trace_id is None:
            forest.contextless.append(record)
        elif record.span_id is not None:
            nodes[record.span_id] = SpanNode(record)
            spans.append(record)
        else:
            leaves.append(record)
    for record in spans + leaves:
        node = nodes.get(record.span_id) if record.span_id else SpanNode(record)
        if record.parent_id is None:
            forest.roots.setdefault(record.trace_id, []).append(node)
        elif record.parent_id in nodes:
            nodes[record.parent_id].children.append(node)
        else:
            forest.orphans.append(record)
    for node in nodes.values():
        node.children.sort(key=lambda c: (c.record.start_ts, c.record.seq))
    for trees in forest.roots.values():
        trees.sort(key=lambda n: (n.record.start_ts, n.record.seq))
    return forest


@dataclass
class RoundPath:
    """One dispatch round's critical path through its span tree."""

    round_index: int
    dur: float
    #: ``(depth, label, dur)`` down the path of largest child spans.
    steps: List[Any] = field(default_factory=list)


@dataclass
class TraceAnalysis:
    """What ``python -m repro trace analyze`` reports."""

    forest: SpanForest
    rounds: List[RoundPath] = field(default_factory=list)
    #: ``kind -> (count, total wall, total self-time)`` over every span.
    phases: Dict[str, Any] = field(default_factory=dict)

    @property
    def orphan_count(self) -> int:
        return len(self.forest.orphans)

    def format(self, top: int = 10) -> str:
        """Human-readable critical paths + per-phase self-time table."""
        lines: List[str] = []
        trace_count = len(self.forest.roots)
        lines.append(
            f"{trace_count} trace(s), "
            f"{sum(1 for _ in self.forest.iter_spans())} spans/events, "
            f"{self.orphan_count} orphan(s)"
        )
        if self.rounds:
            lines.append("")
            lines.append("per-round critical paths")
            for rp in self.rounds:
                lines.append(f"  round {rp.round_index}  {rp.dur:.6f}s")
                for depth, label, dur in rp.steps:
                    indent = "    " * (depth + 1)
                    lines.append(f"  {indent}{dur:.6f}s  {label}")
        if self.phases:
            lines.append("")
            lines.append("phase self-time (flamegraph totals)")
            ranked = sorted(
                self.phases.items(), key=lambda kv: kv[1][2], reverse=True
            )[:top]
            width = max(len(kind) for kind, _ in ranked)
            lines.append(
                f"  {'kind'.ljust(width)}  {'count':>6}  "
                f"{'total_s':>10}  {'self_s':>10}"
            )
            for kind, (count, total, self_time) in ranked:
                lines.append(
                    f"  {kind.ljust(width)}  {count:>6}  "
                    f"{total:>10.6f}  {self_time:>10.6f}"
                )
        if self.forest.orphans:
            lines.append("")
            lines.append("orphaned records (parent span never emitted)")
            for record in self.forest.orphans[:top]:
                lines.append(
                    f"  seq={record.seq} kind={record.kind} "
                    f"parent={record.parent_id}"
                )
        return "\n".join(lines)


def _critical_path(node: SpanNode) -> List[Any]:
    """Descend into the largest child span at each level."""
    steps: List[Any] = []
    depth = 0
    current = node
    while True:
        span_children = [c for c in current.children if c.record.is_span]
        if not span_children:
            break
        best = max(span_children, key=lambda c: c.dur)
        steps.append((depth, best.label(), best.dur))
        current = best
        depth += 1
    return steps


def analyze_trace(
    records: Union[Sequence[TraceRecord], PathLike]
) -> TraceAnalysis:
    """Reconstruct trees and derive the per-round/per-phase view."""
    forest = build_span_trees(records)
    analysis = TraceAnalysis(forest=forest)
    for node in forest.iter_spans():
        if not node.record.is_span:
            continue
        count, total, self_time = analysis.phases.get(node.kind, (0, 0.0, 0.0))
        analysis.phases[node.kind] = (
            count + 1, total + node.dur, self_time + node.self_time
        )
    for node in forest.find("service.round"):
        analysis.rounds.append(
            RoundPath(
                round_index=int(node.record.fields.get("round", -1)),
                dur=node.dur,
                steps=_critical_path(node),
            )
        )
    analysis.rounds.sort(key=lambda rp: rp.round_index)
    return analysis
