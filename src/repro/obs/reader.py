"""Load JSONL traces back into typed records and summarise them.

The reader is the analysis-side counterpart of
:class:`~repro.obs.tracer.JsonlTracer`: it parses every line the tracer can
emit into a :class:`TraceRecord` and folds a record stream into a
:class:`TraceSummary` — per-phase wall time, rounds, switches, and the final
metrics snapshot — which is what ``python -m repro trace`` prints and what
convergence analyses (Figure 12 style) consume.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, Iterator, List, Mapping, Optional, Sequence, Union

PathLike = Union[str, Path]

#: Record fields reserved by the tracer envelope.
_ENVELOPE = ("kind", "seq", "ts", "dur")


class TraceFormatError(ValueError):
    """A trace line is not a record the tracer could have written."""


@dataclass(frozen=True)
class TraceRecord:
    """One parsed trace line.

    Attributes
    ----------
    kind:
        Dotted event type, e.g. ``fgt.round`` or ``catalog.build``.
    seq:
        Per-tracer monotone sequence number.
    ts:
        Seconds since the tracer was opened.
    dur:
        Span duration in seconds; ``None`` for point events.
    fields:
        All event-specific fields, envelope keys removed.
    """

    kind: str
    seq: int
    ts: float
    dur: Optional[float]
    fields: Mapping[str, Any]

    @property
    def solver(self) -> str:
        """The component prefix of ``kind`` (``fgt``, ``iegt``, ``cvdps``...)."""
        return self.kind.split(".", 1)[0]

    @property
    def is_span(self) -> bool:
        return self.dur is not None


def parse_record(line: str, lineno: int = 0) -> TraceRecord:
    """Parse one JSONL line into a :class:`TraceRecord`."""
    try:
        raw = json.loads(line)
    except json.JSONDecodeError as exc:
        raise TraceFormatError(f"line {lineno}: not valid JSON: {exc}") from exc
    if not isinstance(raw, dict):
        raise TraceFormatError(f"line {lineno}: expected an object, got {type(raw)}")
    for key in ("kind", "seq", "ts"):
        if key not in raw:
            raise TraceFormatError(f"line {lineno}: record missing {key!r}")
    return TraceRecord(
        kind=str(raw["kind"]),
        seq=int(raw["seq"]),
        ts=float(raw["ts"]),
        dur=None if "dur" not in raw else float(raw["dur"]),
        fields={k: v for k, v in raw.items() if k not in _ENVELOPE},
    )


def iter_trace(path: PathLike) -> Iterator[TraceRecord]:
    """Lazily parse the trace at ``path``, skipping blank lines."""
    with Path(path).open() as fh:
        for lineno, line in enumerate(fh, start=1):
            if line.strip():
                yield parse_record(line, lineno)


def read_trace(path: PathLike) -> List[TraceRecord]:
    """Parse the whole trace at ``path`` into a list of records."""
    return list(iter_trace(path))


@dataclass
class TraceSummary:
    """Aggregate view of one trace.

    ``rounds``/``switches`` are keyed by solver prefix (``fgt``, ``iegt``,
    ...); ``span_seconds`` totals the duration of every span kind;
    ``events`` counts records per kind; ``metrics`` is the last embedded
    ``metrics.snapshot`` payload, when the producer wrote one.
    """

    events: Dict[str, int] = field(default_factory=dict)
    span_seconds: Dict[str, float] = field(default_factory=dict)
    rounds: Dict[str, int] = field(default_factory=dict)
    switches: Dict[str, int] = field(default_factory=dict)
    metrics: Dict[str, float] = field(default_factory=dict)
    #: ``service.degraded`` events folded by ladder rung (scalar/greedy/skip).
    degraded: Dict[str, int] = field(default_factory=dict)
    #: ``service.solve_failure`` events folded by error type.
    solve_failures: Dict[str, int] = field(default_factory=dict)

    def total_rounds(self, solver: Optional[str] = None) -> int:
        """Rounds recorded for ``solver`` (all solvers when ``None``)."""
        if solver is not None:
            return self.rounds.get(solver.lower(), 0)
        return sum(self.rounds.values())

    def total_switches(self, solver: Optional[str] = None) -> int:
        """Strategy switches recorded for ``solver`` (all when ``None``)."""
        if solver is not None:
            return self.switches.get(solver.lower(), 0)
        return sum(self.switches.values())

    @property
    def cache_stats(self) -> Dict[str, float]:
        """Catalog-cache hits/misses/hit-rate from the metrics snapshot."""
        hits = self.metrics.get("catalog_cache.hits", 0)
        misses = self.metrics.get("catalog_cache.misses", 0)
        total = hits + misses
        return {
            "hits": hits,
            "misses": misses,
            "hit_rate": hits / total if total else 0.0,
        }

    @property
    def robustness_stats(self) -> Dict[str, float]:
        """Fault-tolerance events and counters seen by this trace.

        Merges the ``service.degraded`` / ``service.solve_failure`` event
        folds with any ``dispatch.degraded_*``, ``service.breaker.*``, and
        ``service.journal.*`` counters from the embedded metrics snapshot,
        so ``python -m repro trace`` and BENCH tooling surface robustness
        behaviour without parsing raw events.
        """
        stats: Dict[str, float] = {}
        for rung, count in self.degraded.items():
            stats[f"degraded.{rung}"] = float(count)
        for error, count in self.solve_failures.items():
            stats[f"solve_failure.{error}"] = float(count)
        for name, value in self.metrics.items():
            if name.startswith(
                ("dispatch.degraded", "dispatch.solve", "dispatch.injected",
                 "dispatch.breaker", "dispatch.centers_skipped",
                 "service.breaker.", "service.journal.")
            ):
                stats[name] = float(value)
        return stats

    def format(self) -> str:
        """Human-readable multi-section summary for the CLI."""
        lines: List[str] = []
        if self.rounds:
            lines.append("rounds / switches")
            for solver in sorted(self.rounds):
                lines.append(
                    f"  {solver:<8} rounds={self.rounds[solver]} "
                    f"switches={self.switches.get(solver, 0)}"
                )
        if self.span_seconds:
            lines.append("phase wall time")
            width = max(len(k) for k in self.span_seconds)
            for kind in sorted(self.span_seconds):
                lines.append(
                    f"  {kind.ljust(width)}  {self.span_seconds[kind]:.6f}s"
                )
        cache = self.cache_stats
        if cache["hits"] or cache["misses"]:
            lines.append(
                f"catalog cache: hits={cache['hits']:g} "
                f"misses={cache['misses']:g} hit_rate={cache['hit_rate']:.2f}"
            )
        robustness = self.robustness_stats
        if robustness:
            lines.append("robustness (degradations / breakers / journal)")
            width = max(len(k) for k in robustness)
            for key in sorted(robustness):
                lines.append(f"  {key.ljust(width)}  {robustness[key]:g}")
        if self.events:
            lines.append("events")
            width = max(len(k) for k in self.events)
            for kind in sorted(self.events):
                lines.append(f"  {kind.ljust(width)}  {self.events[kind]}")
        return "\n".join(lines) if lines else "(empty trace)"


def summarize_trace(
    records: Union[Sequence[TraceRecord], PathLike]
) -> TraceSummary:
    """Fold a record stream (or a trace file path) into a :class:`TraceSummary`."""
    if isinstance(records, (str, Path)):
        records = read_trace(records)
    summary = TraceSummary()
    for record in records:
        summary.events[record.kind] = summary.events.get(record.kind, 0) + 1
        if record.dur is not None:
            summary.span_seconds[record.kind] = (
                summary.span_seconds.get(record.kind, 0.0) + record.dur
            )
        solver = record.solver
        if record.kind.endswith(".round"):
            summary.rounds[solver] = summary.rounds.get(solver, 0) + 1
            summary.switches[solver] = summary.switches.get(solver, 0) + int(
                record.fields.get("switches", 0)
            )
        elif record.kind == "metrics.snapshot":
            payload = record.fields.get("metrics", {})
            if isinstance(payload, dict):
                summary.metrics = payload
        elif record.kind == "service.degraded":
            rung = str(record.fields.get("rung", "?"))
            summary.degraded[rung] = summary.degraded.get(rung, 0) + 1
        elif record.kind == "service.solve_failure":
            error = str(record.fields.get("error", "?"))
            summary.solve_failures[error] = (
                summary.solve_failures.get(error, 0) + 1
            )
    return summary
