"""Observability: metrics registry, causal tracing, SLOs, trace analysis.

The instrumentation layer behind every performance claim in the repo:

* :mod:`repro.obs.metrics` — process-wide :class:`MetricsRegistry` of
  counters, gauges, and bucketed latency histograms (phase wall time with
  p50/p95/p99, DP states expanded, catalog-cache hits/misses, verify
  checks run), rendered as spec-compliant Prometheus exposition.
* :mod:`repro.obs.tracer` — typed JSONL event/span tracing with causal
  span context (``trace``/``span``/``parent`` propagated via
  ``contextvars``), head sampling (``REPRO_TRACE_SAMPLE``), and a shared
  zero-overhead :data:`NULL_TRACER` default following the ``NullVerifier``
  pattern.  Enable per solver (``FGTSolver(trace=True)``), process-wide
  (:func:`set_tracing`), or via ``REPRO_TRACE=path.jsonl``.
* :mod:`repro.obs.reader` — reload JSONL traces into typed records,
  reconstructed span trees (:func:`build_span_trees`), critical-path /
  self-time analyses (:func:`analyze_trace`), and summaries.
* :mod:`repro.obs.slo` — declarative latency/quality objectives with
  error-budget burn accounting (the ``GET /slo`` endpoint).

The timing context managers of :mod:`repro.utils.timing` are re-exported
here so there is one timing idiom: ``from repro.obs import Stopwatch``.
See ``docs/observability.md`` for the event/metric ↔ paper mapping.
"""

from repro.obs.metrics import (
    DEFAULT_BUCKETS,
    METRICS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    metrics_registry,
    render_prometheus,
    reset_metrics,
)
from repro.obs.reader import (
    SpanForest,
    SpanNode,
    TraceAnalysis,
    TraceFormatError,
    TraceRecord,
    TraceSummary,
    analyze_trace,
    build_span_trees,
    iter_trace,
    parse_record,
    read_trace,
    summarize_trace,
)
from repro.obs.slo import (
    GaugeObjective,
    LatencyObjective,
    RatioObjective,
    SLOBoard,
    SLOStatus,
    default_slos,
    rolling_fairness_slo,
    shard_liveness_slo,
)
from repro.obs.tracer import (
    NULL_TRACER,
    SAMPLE_ENV_VAR,
    TRACE_ENV_VAR,
    JsonlTracer,
    MemoryTracer,
    NullTracer,
    SpanContext,
    attach_context,
    current_context,
    current_trace_id,
    memory_tracer,
    new_trace_id,
    resolve_tracer,
    sample_rate,
    set_tracing,
    start_trace,
    trace_sampled,
    tracing_enabled,
)
from repro.utils.timing import CpuTimer, Stopwatch, record_time, timed

__all__ = [
    # metrics
    "Counter",
    "Gauge",
    "Histogram",
    "DEFAULT_BUCKETS",
    "MetricsRegistry",
    "METRICS",
    "metrics_registry",
    "render_prometheus",
    "reset_metrics",
    # tracer
    "NullTracer",
    "NULL_TRACER",
    "JsonlTracer",
    "MemoryTracer",
    "TRACE_ENV_VAR",
    "SAMPLE_ENV_VAR",
    "SpanContext",
    "attach_context",
    "current_context",
    "current_trace_id",
    "memory_tracer",
    "new_trace_id",
    "resolve_tracer",
    "sample_rate",
    "set_tracing",
    "start_trace",
    "trace_sampled",
    "tracing_enabled",
    # reader
    "TraceRecord",
    "TraceSummary",
    "TraceFormatError",
    "SpanForest",
    "SpanNode",
    "TraceAnalysis",
    "analyze_trace",
    "build_span_trees",
    "parse_record",
    "iter_trace",
    "read_trace",
    "summarize_trace",
    # SLOs
    "SLOBoard",
    "SLOStatus",
    "GaugeObjective",
    "LatencyObjective",
    "RatioObjective",
    "default_slos",
    "rolling_fairness_slo",
    "shard_liveness_slo",
    # one timing idiom (re-exported from repro.utils.timing)
    "CpuTimer",
    "Stopwatch",
    "timed",
    "record_time",
]
