"""Observability: metrics registry, structured tracing, trace analysis.

The instrumentation layer behind every performance claim in the repo:

* :mod:`repro.obs.metrics` — process-wide :class:`MetricsRegistry` of
  counters, gauges, and histogram timers (phase wall time, DP states
  expanded, catalog-cache hits/misses, verify checks run).
* :mod:`repro.obs.tracer` — typed JSONL event/span :class:`Tracer` for the
  solver hot loops, with a shared zero-overhead :data:`NULL_TRACER` default
  following the ``NullVerifier`` pattern.  Enable per solver
  (``FGTSolver(trace=True)``), process-wide (:func:`set_tracing`), or via
  ``REPRO_TRACE=path.jsonl``.
* :mod:`repro.obs.reader` — reload JSONL traces into typed records and
  summaries for analysis and tests.

The timing context managers of :mod:`repro.utils.timing` are re-exported
here so there is one timing idiom: ``from repro.obs import Stopwatch``.
See ``docs/observability.md`` for the event/metric ↔ paper mapping.
"""

from repro.obs.metrics import (
    METRICS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    metrics_registry,
    render_prometheus,
    reset_metrics,
)
from repro.obs.reader import (
    TraceFormatError,
    TraceRecord,
    TraceSummary,
    iter_trace,
    parse_record,
    read_trace,
    summarize_trace,
)
from repro.obs.tracer import (
    NULL_TRACER,
    TRACE_ENV_VAR,
    JsonlTracer,
    MemoryTracer,
    NullTracer,
    memory_tracer,
    resolve_tracer,
    set_tracing,
    tracing_enabled,
)
from repro.utils.timing import CpuTimer, Stopwatch, record_time, timed

__all__ = [
    # metrics
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "METRICS",
    "metrics_registry",
    "render_prometheus",
    "reset_metrics",
    # tracer
    "NullTracer",
    "NULL_TRACER",
    "JsonlTracer",
    "MemoryTracer",
    "TRACE_ENV_VAR",
    "memory_tracer",
    "resolve_tracer",
    "set_tracing",
    "tracing_enabled",
    # reader
    "TraceRecord",
    "TraceSummary",
    "TraceFormatError",
    "parse_record",
    "iter_trace",
    "read_trace",
    "summarize_trace",
    # one timing idiom (re-exported from repro.utils.timing)
    "CpuTimer",
    "Stopwatch",
    "timed",
    "record_time",
]
