"""Declarative latency/quality objectives with error-budget accounting.

The ROADMAP's scale-out item needs a yardstick: before the dispatch
service is sharded across processes, "is a shard as healthy as the
monolith?" must be a number.  This module turns the metrics registry into
that number.  An *objective* declares what fraction of events must be good
(``target``, e.g. 0.99); evaluation reports

* ``compliance`` — the observed good fraction,
* ``error_budget`` — the tolerated bad fraction, ``1 - target``,
* ``burn`` — how much of the budget is spent: ``(1 - compliance) /
  error_budget``.  Below 1.0 the objective holds; above it, it is
  breached.  A burn of 2.0 means failing at twice the tolerated rate.

Three objective shapes cover everything the service tracks:

* :class:`LatencyObjective` — "p-fraction of observations in histogram H
  complete within T seconds".  Compliance comes from the histogram's
  buckets (:meth:`~repro.obs.metrics.Histogram.count_le`), which is exact
  when ``T`` sits on a bucket bound and conservative otherwise.
* :class:`RatioObjective` — "at most (1 - target) of counter TOTAL may be
  counter BAD" (deadline misses per solve, degraded rungs per solve, ...).
* :class:`GaugeObjective` — "gauge G stays on the right side of a
  threshold" (a binary state check: the rolling-fairness gauge fed by the
  equity ledger is its first user, via :func:`rolling_fairness_slo`).

:func:`default_slos` declares the service's four stock objectives; an
:class:`SLOBoard` evaluates a set of objectives against a registry and
renders the JSON the ``GET /slo`` endpoint serves.  With no events yet an
objective is vacuously compliant (burn 0) — an idle service is not
failing, it is idle.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.obs.metrics import METRICS, MetricsRegistry


@dataclass(frozen=True)
class SLOStatus:
    """One objective's evaluation snapshot."""

    name: str
    description: str
    target: float
    compliance: float
    events: int
    bad_events: float
    detail: Dict[str, float]

    @property
    def error_budget(self) -> float:
        return 1.0 - self.target

    @property
    def burn(self) -> float:
        """Error-budget burn: 1.0 = budget exactly spent, >1 = breached."""
        if not self.events:
            return 0.0
        return (1.0 - self.compliance) / self.error_budget

    @property
    def ok(self) -> bool:
        return self.burn <= 1.0

    def as_dict(self) -> Dict[str, object]:
        """JSON-ready view of the status, floats rounded for stable output."""
        return {
            "name": self.name,
            "description": self.description,
            "target": self.target,
            "compliance": round(self.compliance, 6),
            "error_budget": round(self.error_budget, 6),
            "burn": round(self.burn, 4),
            "ok": self.ok,
            "events": self.events,
            "bad_events": round(self.bad_events, 6),
            "detail": {k: round(v, 6) for k, v in self.detail.items()},
        }


@dataclass(frozen=True)
class LatencyObjective:
    """``target`` fraction of ``histogram`` samples must be <= ``threshold_s``."""

    name: str
    description: str
    histogram: str
    threshold_s: float
    target: float

    def evaluate(self, registry: MetricsRegistry) -> SLOStatus:
        """Score the objective against ``registry``'s histogram samples."""
        hist = registry.histogram(self.histogram)
        total = hist.count
        good = hist.count_le(self.threshold_s) if total else 0
        compliance = good / total if total else 1.0
        detail = {"threshold_s": self.threshold_s}
        if total:
            detail.update(p50=hist.p50, p95=hist.p95, p99=hist.p99)
        return SLOStatus(
            name=self.name,
            description=self.description,
            target=self.target,
            compliance=compliance,
            events=total,
            bad_events=float(total - good),
            detail=detail,
        )


@dataclass(frozen=True)
class RatioObjective:
    """At most ``1 - target`` of ``total_counter`` may be ``bad_counter``."""

    name: str
    description: str
    bad_counter: str
    total_counter: str
    target: float

    def evaluate(self, registry: MetricsRegistry) -> SLOStatus:
        """Score the objective against ``registry``'s counter pair."""
        total = registry.counter(self.total_counter).value
        bad = registry.counter(self.bad_counter).value
        bad = min(bad, total)  # racy reads may momentarily disagree
        compliance = 1.0 - bad / total if total else 1.0
        return SLOStatus(
            name=self.name,
            description=self.description,
            target=self.target,
            compliance=compliance,
            events=total,
            bad_events=float(bad),
            detail={},
        )


@dataclass(frozen=True)
class GaugeObjective:
    """Gauge ``gauge`` must be ``<=`` (``mode="le"``) or ``>=`` the threshold.

    A binary state check, not a rate: compliance is 1.0 or 0.0 over one
    event, so a breach burns the whole error budget at once.  ``target``
    must stay below 1.0 to leave a non-zero budget for the burn math.
    """

    name: str
    description: str
    gauge: str
    threshold: float
    mode: str = "le"
    target: float = 0.99

    def __post_init__(self) -> None:
        if self.mode not in ("le", "ge"):
            raise ValueError(f"mode must be 'le' or 'ge', got {self.mode!r}")
        if not 0.0 < self.target < 1.0:
            raise ValueError(
                f"target must be in (0, 1) for a gauge objective, "
                f"got {self.target!r}"
            )

    def evaluate(self, registry: MetricsRegistry) -> SLOStatus:
        """Score the objective against ``registry``'s current gauge value."""
        value = registry.gauge(self.gauge).value
        good = value <= self.threshold if self.mode == "le" else value >= self.threshold
        return SLOStatus(
            name=self.name,
            description=self.description,
            target=self.target,
            compliance=1.0 if good else 0.0,
            events=1,
            bad_events=0.0 if good else 1.0,
            detail={"value": float(value), "threshold": self.threshold},
        )


def rolling_fairness_slo(threshold: float = 0.5) -> GaugeObjective:
    """Rolling-window income Gini (from the equity ledger) stays bounded.

    Added to the board by the dispatch server whenever the world carries
    an equity ledger — in ledger-weighted *and* observer mode, so the SLO
    can witness per-round dispatch breaching the long-run bound that the
    equity mode holds (``docs/temporal_fairness.md``).
    """
    return GaugeObjective(
        name="rolling_fairness",
        description=(
            f"rolling-window income Gini stays at or below {threshold:g}"
        ),
        gauge="fairness.rolling_gini",
        threshold=threshold,
        mode="le",
    )


def shard_liveness_slo() -> GaugeObjective:
    """Every shard of the supervised pool stays live.

    Added to the board by the dispatch server when it runs a
    :class:`~repro.service.shards.ShardedDispatchEngine`.  The supervisor
    publishes ``service.shard.live_fraction`` (live + suspect over total);
    anything below 1.0 means some partition's centers are being skipped,
    which is exactly the degradation the SLO should burn on.
    """
    return GaugeObjective(
        name="shard_liveness",
        description="all dispatch shards are live",
        gauge="service.shard.live_fraction",
        threshold=1.0,
        mode="ge",
    )


def default_slos(
    round_latency_s: float = 2.5,
    fsync_latency_s: float = 0.05,
) -> List[object]:
    """The dispatch service's stock objectives.

    Thresholds sit on :data:`~repro.obs.metrics.DEFAULT_BUCKETS` bounds so
    latency compliance is bucket-exact (see
    :meth:`~repro.obs.metrics.Histogram.count_le`).
    """
    return [
        LatencyObjective(
            name="round_latency",
            description=(
                f"99% of dispatch rounds complete within {round_latency_s:g}s"
            ),
            histogram="service.dispatch_seconds",
            threshold_s=round_latency_s,
            target=0.99,
        ),
        RatioObjective(
            name="center_deadline_hits",
            description="95% of per-center solves finish inside their deadline",
            bad_counter="dispatch.solve_timeouts",
            total_counter="dispatch.center_solves",
            target=0.95,
        ),
        RatioObjective(
            name="primary_rung_rate",
            description="90% of per-center solves stay on the primary solver",
            bad_counter="dispatch.degraded_total",
            total_counter="dispatch.center_solves",
            target=0.90,
        ),
        LatencyObjective(
            name="journal_fsync_latency",
            description=(
                f"99% of journal fsyncs complete within {fsync_latency_s:g}s"
            ),
            histogram="service.journal.fsync_seconds",
            threshold_s=fsync_latency_s,
            target=0.99,
        ),
    ]


class SLOBoard:
    """A fixed set of objectives evaluated on demand against a registry."""

    def __init__(
        self,
        objectives: Optional[Sequence[object]] = None,
        registry: MetricsRegistry = METRICS,
    ) -> None:
        self._objectives = tuple(
            default_slos() if objectives is None else objectives
        )
        self._registry = registry

    @property
    def objectives(self) -> Sequence[object]:
        return self._objectives

    def evaluate(self) -> List[SLOStatus]:
        """Every objective's current :class:`SLOStatus`."""
        return [obj.evaluate(self._registry) for obj in self._objectives]

    def as_dict(self) -> Dict[str, object]:
        """The JSON payload ``GET /slo`` serves."""
        statuses = self.evaluate()
        breached = [s.name for s in statuses if not s.ok]
        return {
            "objectives": [s.as_dict() for s in statuses],
            "ok": not breached,
            "breached": breached,
            "worst_burn": round(
                max((s.burn for s in statuses), default=0.0), 4
            ),
        }

    def summary(self) -> Dict[str, object]:
        """The compact form embedded in ``GET /healthz``."""
        statuses = self.evaluate()
        breached = [s.name for s in statuses if not s.ok]
        return {
            "ok": not breached,
            "breached": breached,
            "worst_burn": round(
                max((s.burn for s in statuses), default=0.0), 4
            ),
        }
