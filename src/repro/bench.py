"""Tracked performance baseline: ``python -m repro bench``.

The hot path of both game solvers is the Algorithm 2/3 inner loop, and
PR-to-PR performance claims about it need a pinned, repeatable measurement.
This module runs a fixed benchmark shape — one gMission-like instance,
catalog build, FGT solve, IEGT solve — through *both* best-response engines
(the vectorized bitmask engine and the retained scalar reference) and writes
wall-times, speedups, and :mod:`repro.obs` counter deltas to a JSON file
(``BENCH_core.json`` by default).

Because the two engines are bit-identical by contract, the bench also
asserts that contract on every run: each phase records whether the scalar
and vectorized solves produced the same routes, payoffs, Equation 2
``P_dif``, and round counts.  A bench whose ``identical`` flags are not all
true is reporting a correctness bug, not a performance number.

Shapes are pinned here (not derived from the experiment grids) so the
numbers stay comparable across PRs:

* ``medium`` — the tracked baseline: large enough that the best-response
  inner loop dominates and timing noise is small.
* ``smoke`` — a seconds-scale reduction for CI's ``bench-smoke`` job.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional, Tuple

from repro.datasets.gmission import GMissionConfig, generate_gmission_like
from repro.games.fgt import FGTSolver
from repro.games.iegt import IEGTSolver
from repro.obs.metrics import METRICS
from repro.utils.rng import RngFactory
from repro.vdps.catalog import VDPSCatalog, build_catalog


@dataclass(frozen=True)
class BenchShape:
    """One pinned benchmark workload (a gMission-like instance)."""

    n_tasks: int
    n_workers: int
    n_delivery_points: int
    epsilon: float

    def as_dict(self) -> Dict[str, object]:
        """JSON-ready view stored under ``shape`` in the bench report."""
        return {
            "dataset": "gm",
            "n_tasks": self.n_tasks,
            "n_workers": self.n_workers,
            "n_delivery_points": self.n_delivery_points,
            "epsilon": self.epsilon,
        }


#: The pinned shapes; change these only with a deliberate baseline reset.
BENCH_SHAPES: Dict[str, BenchShape] = {
    "smoke": BenchShape(
        n_tasks=60, n_workers=14, n_delivery_points=30, epsilon=0.8
    ),
    "medium": BenchShape(
        n_tasks=1200, n_workers=150, n_delivery_points=260, epsilon=0.8
    ),
}


def _solve_outcome(
    solver, subs, catalogs: Dict[str, VDPSCatalog], rng_factory: RngFactory
) -> Tuple[List[Tuple[str, Tuple[str, ...], float]], int, bool]:
    """Solve every sub-problem; returns (routes+payoffs, rounds, converged).

    Seeds follow the ``"<solver.name>:<center_id>"`` streams of
    :func:`repro.experiments.runner.run_algorithms`, so the bench's solves
    are the same solves an experiment arm would run.
    """
    outcome: List[Tuple[str, Tuple[str, ...], float]] = []
    rounds = 0
    converged = True
    for sub in subs:
        seed = rng_factory.get(f"{solver.name}:{sub.center.center_id}")
        result = solver.solve(
            sub, catalog=catalogs[sub.center.center_id], seed=seed
        )
        rounds += result.rounds
        converged = converged and result.converged
        for pair in result.assignment.pairs:
            outcome.append(
                (pair.worker.worker_id, pair.delivery_point_ids, pair.payoff)
            )
    return outcome, rounds, converged


def _timed_engine_phase(
    make_solver, subs, catalogs, seed: int, repeats: int
) -> Dict[str, object]:
    """Best-of-``repeats`` wall time per engine plus the identity check."""
    phase: Dict[str, object] = {}
    outcomes = {}
    for engine in ("scalar", "vectorized"):
        solver = make_solver(engine)
        before = METRICS.snapshot()
        best = None
        for _ in range(repeats):
            rng_factory = RngFactory(seed)
            start = time.perf_counter()
            outcome = _solve_outcome(solver, subs, catalogs, rng_factory)
            elapsed = time.perf_counter() - start
            best = elapsed if best is None else min(best, elapsed)
        outcomes[engine] = outcome
        phase[f"{engine}_seconds"] = best
        phase[f"metrics_{engine}"] = METRICS.delta(before)
    routes, rounds, converged = outcomes["vectorized"]
    payoffs = [p for _, _, p in routes]
    from repro.core.payoff import average_payoff, payoff_difference

    phase["rounds"] = rounds
    phase["converged"] = converged
    phase["payoff_difference"] = payoff_difference(payoffs)
    phase["average_payoff"] = average_payoff(payoffs)
    phase["identical"] = outcomes["scalar"] == outcomes["vectorized"]
    scalar_s = phase["scalar_seconds"]
    vector_s = phase["vectorized_seconds"]
    phase["speedup"] = (scalar_s / vector_s) if vector_s > 0 else None
    return phase


def run_bench(
    scale: str = "medium",
    seed: int = 0,
    repeats: int = 3,
    output: Optional[Path] = None,
) -> Dict[str, object]:
    """Run the pinned benchmark and (optionally) write the JSON report."""
    if scale not in BENCH_SHAPES:
        raise ValueError(
            f"scale must be one of {sorted(BENCH_SHAPES)}, got {scale!r}"
        )
    if repeats < 1:
        raise ValueError(f"repeats must be >= 1, got {repeats}")
    shape = BENCH_SHAPES[scale]
    instance = generate_gmission_like(
        GMissionConfig(
            n_tasks=shape.n_tasks,
            n_workers=shape.n_workers,
            n_delivery_points=shape.n_delivery_points,
        ),
        seed=seed,
    )
    subs = list(instance.subproblems())

    before = METRICS.snapshot()
    start = time.perf_counter()
    catalogs = {
        sub.center.center_id: build_catalog(sub, epsilon=shape.epsilon)
        for sub in subs
    }
    catalog_seconds = time.perf_counter() - start
    catalog_metrics = METRICS.delta(before)

    report: Dict[str, object] = {
        "schema": 1,
        "scale": scale,
        "seed": seed,
        "repeats": repeats,
        "generated_at": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
        "shape": shape.as_dict(),
        "catalog": {
            "seconds": catalog_seconds,
            "strategies": sum(c.total_strategy_count for c in catalogs.values()),
            "cvdps": sum(c.cvdps_count for c in catalogs.values()),
            "metrics": catalog_metrics,
        },
        "fgt": _timed_engine_phase(
            lambda engine: FGTSolver(epsilon=shape.epsilon, engine=engine),
            subs,
            catalogs,
            seed,
            repeats,
        ),
        "iegt": _timed_engine_phase(
            lambda engine: IEGTSolver(epsilon=shape.epsilon, engine=engine),
            subs,
            catalogs,
            seed,
            repeats,
        ),
    }
    if output is not None:
        output = Path(output)
        if output.parent != Path(""):
            output.parent.mkdir(parents=True, exist_ok=True)
        output.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")
    return report


def format_report(report: Dict[str, object]) -> str:
    """Human-readable summary of a bench report for CLI output."""
    lines = [
        f"bench scale={report['scale']} seed={report['seed']} "
        f"repeats={report['repeats']}",
        f"shape            : {report['shape']}",
        f"catalog build    : {report['catalog']['seconds']:.3f}s "
        f"({report['catalog']['strategies']} strategies)",
    ]
    for phase in ("fgt", "iegt"):
        data = report[phase]
        lines.append(
            f"{phase.upper():<5} solve      : scalar={data['scalar_seconds']:.3f}s "
            f"vectorized={data['vectorized_seconds']:.3f}s "
            f"speedup={data['speedup']:.1f}x "
            f"identical={data['identical']} rounds={data['rounds']}"
        )
    return "\n".join(lines)
