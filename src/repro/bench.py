"""Tracked performance baseline: ``python -m repro bench``.

The hot path of both game solvers is the Algorithm 2/3 inner loop, and
PR-to-PR performance claims about it need a pinned, repeatable measurement.
This module runs a fixed benchmark shape — one gMission-like instance,
catalog build, FGT solve, IEGT solve — through *both* best-response engines
(the vectorized bitmask engine and the retained scalar reference) and writes
wall-times, speedups, and :mod:`repro.obs` counter deltas to a JSON file
(``BENCH_core.json`` by default).

Because the two engines are bit-identical by contract, the bench also
asserts that contract on every run: each phase records whether the scalar
and vectorized solves produced the same routes, payoffs, Equation 2
``P_dif``, and round counts.  A bench whose ``identical`` flags are not all
true is reporting a correctness bug, not a performance number.

The ``catalog_delta`` section (schema 2) tracks the incremental-catalog
layer the same way: single-point churn steps are timed as
:class:`~repro.vdps.delta.DeltaCatalog` refreshes against full
``build_catalog`` rebuilds of the largest center, with every step's output
checked for exact equality via :func:`~repro.vdps.delta.catalog_diff`.

The ``obs_overhead`` section (schema 3) guards the observability layer:
one dispatch round is timed with tracing disabled, head-sampled away
(``REPRO_TRACE_SAMPLE=0``), and fully traced.  The three modes must be
bit-identical in their assignments, and the disabled path is compared
against the tracked baseline's with a :data:`OBS_OVERHEAD_BUDGET_PCT`
budget — instrumentation must be free when off.

The ``kernel`` section (schema 5) tracks the DP/validation kernel tiers
(``docs/performance.md``): the largest center's ``build_catalog`` is timed
under ``kernel="scalar"`` and ``kernel="vectorized"`` and the two catalogs
are checked for exact equality with :func:`~repro.vdps.delta.catalog_diff`
— the CLI exits non-zero when they disagree.  A ``large`` arm builds a
bigger single-center instance (1k workers / 10k tasks at medium scale)
vectorized-only, to keep a completion-time record at a shape the scalar
tier cannot reach in bench time.

The ``temporal_fairness`` section (schema 4) guards the equity subsystem's
headline claim (``docs/temporal_fairness.md``): on the unlucky-worker
scenario the ledger-weighted mode must finish with a strictly lower
rolling Gini than per-round dispatch while giving up less than
:data:`~repro.equity.report.EFFICIENCY_BUDGET_PCT` percent of total
payoff.  Both arms are deterministic given the seed, so these are hard
gates, not advisory wall-time comparisons.

The ``shards`` section (schema 6) guards the supervised multi-process
shard pool (``docs/fault_tolerance.md``): a two-shard
:class:`~repro.service.shards.ShardedDispatchEngine` must replay a small
four-center world bit-identical to the single-process engine, and a
chaos arm that SIGKILLs one shard mid-run must respawn it, replay its
journal segment, and finish bit-identical to the fault-free sharded run.
Both are hard CLI gates; the 1-vs-N wall times ride along as advisory
numbers (at bench shapes the RPC overhead dominates).

Shapes are pinned here (not derived from the experiment grids) so the
numbers stay comparable across PRs:

* ``medium`` — the tracked baseline: large enough that the best-response
  inner loop dominates and timing noise is small.
* ``smoke`` — a seconds-scale reduction for CI's ``bench-smoke`` job.
"""

from __future__ import annotations

import copy
import gc
import json
import random
import time
from contextlib import contextmanager
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Tuple

from repro.core.entities import DistributionCenter, SpatialTask
from repro.core.instance import SubProblem
from repro.datasets.gmission import GMissionConfig, generate_gmission_like
from repro.games.fgt import FGTSolver
from repro.games.iegt import IEGTSolver
from repro.obs.metrics import METRICS
from repro.utils.rng import RngFactory
from repro.vdps.catalog import VDPSCatalog, build_catalog
from repro.vdps.delta import DeltaCatalog, catalog_diff


@dataclass(frozen=True)
class BenchShape:
    """One pinned benchmark workload (a gMission-like instance)."""

    n_tasks: int
    n_workers: int
    n_delivery_points: int
    epsilon: float

    def as_dict(self) -> Dict[str, object]:
        """JSON-ready view stored under ``shape`` in the bench report."""
        return {
            "dataset": "gm",
            "n_tasks": self.n_tasks,
            "n_workers": self.n_workers,
            "n_delivery_points": self.n_delivery_points,
            "epsilon": self.epsilon,
        }


#: The pinned shapes; change these only with a deliberate baseline reset.
BENCH_SHAPES: Dict[str, BenchShape] = {
    "smoke": BenchShape(
        n_tasks=60, n_workers=14, n_delivery_points=30, epsilon=0.8
    ),
    "medium": BenchShape(
        n_tasks=1200, n_workers=150, n_delivery_points=260, epsilon=0.8
    ),
}

#: The kernel section's large arm: a shape the scalar tier cannot cover in
#: bench time, run vectorized-only so its completion stays a tracked fact.
#: The medium arm is the ISSUE's ">= 1k workers / >= 10k tasks" floor.
KERNEL_LARGE_SHAPES: Dict[str, BenchShape] = {
    "smoke": BenchShape(
        n_tasks=800, n_workers=120, n_delivery_points=60, epsilon=0.8
    ),
    "medium": BenchShape(
        n_tasks=10_000, n_workers=1_000, n_delivery_points=300, epsilon=0.8
    ),
}


@contextmanager
def _maybe_profile(section: str, enabled: bool, top: int = 15):
    """Run a bench section under ``cProfile`` when ``--profile`` is set.

    Prints the ``top`` cumulative-time functions per section to stdout;
    profiling inflates the section's wall times, so ``--profile`` runs are
    for finding hot spots, not for committing as the tracked baseline.
    """
    if not enabled:
        yield
        return
    import cProfile
    import io
    import pstats

    prof = cProfile.Profile()
    prof.enable()
    try:
        yield
    finally:
        prof.disable()
        stream = io.StringIO()
        pstats.Stats(prof, stream=stream).sort_stats("cumulative").print_stats(top)
        print(f"--- profile: {section} (top {top} by cumulative time) ---")
        print(stream.getvalue())


def _solve_outcome(
    solver, subs, catalogs: Dict[str, VDPSCatalog], rng_factory: RngFactory
) -> Tuple[List[Tuple[str, Tuple[str, ...], float]], int, bool]:
    """Solve every sub-problem; returns (routes+payoffs, rounds, converged).

    Seeds follow the ``"<solver.name>:<center_id>"`` streams of
    :func:`repro.experiments.runner.run_algorithms`, so the bench's solves
    are the same solves an experiment arm would run.
    """
    outcome: List[Tuple[str, Tuple[str, ...], float]] = []
    rounds = 0
    converged = True
    for sub in subs:
        seed = rng_factory.get(f"{solver.name}:{sub.center.center_id}")
        result = solver.solve(
            sub, catalog=catalogs[sub.center.center_id], seed=seed
        )
        rounds += result.rounds
        converged = converged and result.converged
        for pair in result.assignment.pairs:
            outcome.append(
                (pair.worker.worker_id, pair.delivery_point_ids, pair.payoff)
            )
    return outcome, rounds, converged


def _timed_engine_phase(
    make_solver, subs, catalogs, seed: int, repeats: int
) -> Dict[str, object]:
    """Best-of-``repeats`` wall time per engine plus the identity check."""
    phase: Dict[str, object] = {}
    outcomes = {}
    for engine in ("scalar", "vectorized"):
        solver = make_solver(engine)
        before = METRICS.snapshot()
        best = None
        for _ in range(repeats):
            rng_factory = RngFactory(seed)
            start = time.perf_counter()
            outcome = _solve_outcome(solver, subs, catalogs, rng_factory)
            elapsed = time.perf_counter() - start
            best = elapsed if best is None else min(best, elapsed)
        outcomes[engine] = outcome
        phase[f"{engine}_seconds"] = best
        phase[f"metrics_{engine}"] = METRICS.delta(before)
    routes, rounds, converged = outcomes["vectorized"]
    payoffs = [p for _, _, p in routes]
    from repro.core.payoff import average_payoff, payoff_difference

    phase["rounds"] = rounds
    phase["converged"] = converged
    phase["payoff_difference"] = payoff_difference(payoffs)
    phase["average_payoff"] = average_payoff(payoffs)
    phase["identical"] = outcomes["scalar"] == outcomes["vectorized"]
    scalar_s = phase["scalar_seconds"]
    vector_s = phase["vectorized_seconds"]
    phase["speedup"] = (scalar_s / vector_s) if vector_s > 0 else None
    return phase


def _churn_steps(
    sub: SubProblem, seed: int
) -> Iterator[Tuple[str, SubProblem]]:
    """Four seeded single-point churn steps over ``sub``'s center.

    One delivery point changes per step — the live service's common case —
    covering the delta layer's main operations: a task arriving at a point,
    a deadline moving, a task leaving (possibly emptying the point), and
    the same task id returning with a different deadline.  Steps chain:
    each yielded sub-problem includes all previous churn.
    """
    rng = random.Random(seed)
    points = {dp.dp_id: dp for dp in sub.center.delivery_points}

    def emit(op: str) -> Tuple[str, SubProblem]:
        center = DistributionCenter(
            sub.center.center_id, sub.center.location, tuple(points.values())
        )
        return op, SubProblem(center, sub.workers, sub.travel)

    with_tasks = sorted(p for p, dp in points.items() if dp.tasks)
    target = rng.choice(with_tasks) if with_tasks else sorted(points)[0]

    dp = points[target]
    arrival = SpatialTask("bench_arrival", target, 1.5 + rng.random())
    points[target] = dp.with_tasks(dp.tasks + (arrival,))
    yield emit("task_arrival")

    dp = points[target]
    moved = SpatialTask(
        dp.tasks[0].task_id, target, dp.tasks[0].expiry * 0.5, dp.tasks[0].reward
    )
    points[target] = dp.with_tasks((moved,) + dp.tasks[1:])
    yield emit("deadline_change")

    dp = points[target]
    departed = dp.tasks[0]
    points[target] = dp.with_tasks(dp.tasks[1:])
    yield emit("task_expiry")

    dp = points[target]
    returned = SpatialTask(
        departed.task_id, target, departed.expiry + 0.75, departed.reward
    )
    points[target] = dp.with_tasks(dp.tasks + (returned,))
    yield emit("task_return")


def _catalog_delta_phase(
    subs, epsilon: float, seed: int, repeats: int
) -> Dict[str, object]:
    """Time single-point delta refreshes against full center rebuilds.

    Runs on the largest center (where a rebuild hurts most).  Each churn
    step times ``DeltaCatalog.refresh`` best-of-``repeats`` — on a pristine
    deep copy per repeat, since a refresh mutates the catalog in place and
    a second identical refresh would be a no-op — against a from-scratch
    ``build_catalog`` of the same sub-problem, and checks the two outputs
    for exact equality with :func:`catalog_diff`.  Like the engine phases,
    a report whose ``identical`` flag is false is a correctness bug, not a
    performance number.
    """
    sub = max(subs, key=lambda s: len(s.center.delivery_points))
    before = METRICS.snapshot()
    start = time.perf_counter()
    delta = DeltaCatalog(sub, epsilon=epsilon)
    initial_seconds = time.perf_counter() - start

    steps: List[Dict[str, object]] = []
    total_delta = 0.0
    total_rebuild = 0.0
    identical = True
    for op, churned in _churn_steps(sub, seed):
        best_delta = None
        catalog = None
        for _ in range(repeats):
            work = copy.deepcopy(delta)  # pristine pre-step state, untimed
            t0 = time.perf_counter()
            catalog = work.refresh(churned)
            elapsed = time.perf_counter() - t0
            best_delta = elapsed if best_delta is None else min(best_delta, elapsed)
        best_rebuild = None
        rebuilt = None
        for _ in range(repeats):
            t0 = time.perf_counter()
            rebuilt = build_catalog(churned, epsilon=epsilon)
            elapsed = time.perf_counter() - t0
            best_rebuild = (
                elapsed if best_rebuild is None else min(best_rebuild, elapsed)
            )
        step_identical = not catalog_diff(catalog, rebuilt)
        identical = identical and step_identical
        total_delta += best_delta
        total_rebuild += best_rebuild
        steps.append(
            {
                "op": op,
                "delta_seconds": best_delta,
                "rebuild_seconds": best_rebuild,
                "speedup": (best_rebuild / best_delta) if best_delta > 0 else None,
                "identical": step_identical,
            }
        )
        delta.refresh(churned)  # advance the live catalog to this step

    return {
        "center": sub.center.center_id,
        "delivery_points": len(sub.center.delivery_points),
        "initial_build_seconds": initial_seconds,
        "steps": steps,
        "delta_seconds": total_delta,
        "rebuild_seconds": total_rebuild,
        "speedup": (total_rebuild / total_delta) if total_delta > 0 else None,
        "identical": identical,
        "metrics": METRICS.delta(before),
    }


#: Observability-overhead budget: a tracing-disabled dispatch round may
#: cost at most this much more than the tracked baseline (schema 3).
OBS_OVERHEAD_BUDGET_PCT = 2.0


def _fingerprint(result) -> Tuple[Tuple[str, float], ...]:
    """Order-independent identity of one round's assignment decisions."""
    routes = tuple(
        (center, worker, tuple(route))
        for center, per_worker in sorted(result.assignments.items())
        for worker, route in sorted(per_worker.items())
    )
    payoffs = tuple(sorted(result.payoffs.items()))
    return (routes, payoffs)


def _obs_overhead_phase(instance, epsilon: float, seed: int, repeats: int):
    """Dispatch-round wall time: tracing disabled vs sampled-out vs on.

    Three :class:`~repro.service.engine.DispatchEngine` instances run the
    same uncommitted round (``commit=False`` leaves the world untouched,
    so every repetition solves identical sub-problems):

    * ``disabled`` — ``NULL_TRACER`` throughout: the cost of the
      instrumented engine with tracing off.  This is the number the
      tracked baseline guards: the ``if tracer.enabled`` guards must keep
      the disabled path within :data:`OBS_OVERHEAD_BUDGET_PCT` of the
      committed ``BENCH_core.json``.
    * ``sampled_out`` — a live JSONL tracer with ``REPRO_TRACE_SAMPLE=0``:
      every round's trace is head-sampled away, measuring the cost of
      carrying span context without emitting records.
    * ``traced`` — the same tracer at sample rate 1.0: full emission cost.

    The three modes must produce bit-identical assignments (``identical``)
    — tracing is observation, never behaviour.
    """
    import os
    import tempfile

    from repro.obs.tracer import JsonlTracer, SAMPLE_ENV_VAR
    from repro.service.engine import DispatchEngine
    from repro.service.state import WorldState

    def make_engine(trace) -> DispatchEngine:
        state = WorldState(instance.centers, travel=instance.travel)
        state.add_workers(instance.workers)
        state.add_tasks(
            [
                {
                    "task_id": task.task_id,
                    "dp_id": task.delivery_point_id,
                    "expiry": task.expiry,
                    "reward": task.reward,
                }
                for center in instance.centers
                for task in center.tasks
            ]
        )
        return DispatchEngine(
            state,
            FGTSolver(epsilon=epsilon),
            epsilon=epsilon,
            seed=seed,
            trace=trace,
        )

    phase: Dict[str, object] = {"budget_pct": OBS_OVERHEAD_BUDGET_PCT}
    fingerprints = {}
    saved_rate = os.environ.get(SAMPLE_ENV_VAR)
    with tempfile.TemporaryDirectory(prefix="repro_bench_obs_") as tmp:
        for mode in ("disabled", "sampled_out", "traced"):
            tracer: object = False
            if mode != "disabled":
                tracer = JsonlTracer(Path(tmp) / f"{mode}.jsonl")
                os.environ[SAMPLE_ENV_VAR] = (
                    "0.0" if mode == "sampled_out" else "1.0"
                )
            try:
                engine = make_engine(tracer)
                result = engine.dispatch(commit=False)  # warm caches, untimed
                fingerprints[mode] = _fingerprint(result)
                best = None
                for _ in range(repeats):
                    t0 = time.perf_counter()
                    engine.dispatch(commit=False)
                    elapsed = time.perf_counter() - t0
                    best = elapsed if best is None else min(best, elapsed)
                phase[f"{mode}_seconds"] = best
            finally:
                if tracer is not False:
                    tracer.close()
                if saved_rate is None:
                    os.environ.pop(SAMPLE_ENV_VAR, None)
                else:
                    os.environ[SAMPLE_ENV_VAR] = saved_rate
    disabled = phase["disabled_seconds"]
    for mode in ("sampled_out", "traced"):
        phase[f"{mode}_overhead_pct"] = (
            100.0 * (phase[f"{mode}_seconds"] - disabled) / disabled
            if disabled > 0
            else None
        )
    phase["identical"] = (
        fingerprints["disabled"]
        == fingerprints["sampled_out"]
        == fingerprints["traced"]
    )
    return phase


def _overhead_vs_tracked_baseline(
    phase: Dict[str, object], output: Optional[Path], scale: str
) -> None:
    """Fold the committed baseline's disabled-path time into ``phase``.

    The previous ``BENCH_core.json`` at ``output`` (the tracked baseline,
    about to be overwritten) is the cross-PR reference: a regression of
    the tracing-disabled dispatch beyond :data:`OBS_OVERHEAD_BUDGET_PCT`
    sets ``within_budget`` false.  Timing noise makes this advisory —
    the CLI warns instead of failing — but the number is recorded so a
    real regression is visible in the diff.
    """
    phase["baseline_disabled_seconds"] = None
    phase["regression_pct"] = None
    phase["within_budget"] = True
    if output is None or not Path(output).exists():
        return
    try:
        previous = json.loads(Path(output).read_text())
        if previous.get("scale") != scale:
            return  # a baseline at another shape is not comparable
        baseline = previous["obs_overhead"]["disabled_seconds"]
    except (ValueError, KeyError, TypeError):
        return
    if not isinstance(baseline, (int, float)) or baseline <= 0:
        return
    regression = 100.0 * (phase["disabled_seconds"] - baseline) / baseline
    phase["baseline_disabled_seconds"] = baseline
    phase["regression_pct"] = regression
    phase["within_budget"] = regression < OBS_OVERHEAD_BUDGET_PCT


def _temporal_fairness_phase(seed: int, rounds: int) -> Dict[str, object]:
    """Ledger-weighted vs per-round dispatch on the unlucky-worker world.

    Runs :func:`repro.equity.report.compare_scenario` — the same runner
    behind ``python -m repro equity report`` — and records the rolling
    Gini of both arms, the gap closed, and the efficiency cost, plus the
    two gate flags ``improved`` and ``within_budget`` that
    ``python -m repro bench`` fails on.
    """
    from repro.equity.report import EFFICIENCY_BUDGET_PCT, compare_scenario
    from repro.sim.scenarios import unlucky_worker

    start = time.perf_counter()
    comparison = compare_scenario(unlucky_worker(rounds=rounds), seed=seed)
    seconds = time.perf_counter() - start
    return {
        "scenario": comparison.scenario,
        "algorithm": comparison.ledger.algorithm,
        "rounds": rounds,
        "seconds": seconds,
        "per_round_rolling_gini": comparison.per_round.rolling_gini,
        "ledger_rolling_gini": comparison.ledger.rolling_gini,
        "per_round_total_payoff": comparison.per_round.total_payoff,
        "ledger_total_payoff": comparison.ledger.total_payoff,
        "gini_gap_closed": comparison.gini_gap_closed,
        "gini_gap_closed_pct": comparison.gini_gap_closed_pct,
        "efficiency_cost_pct": comparison.efficiency_cost_pct,
        "budget_pct": EFFICIENCY_BUDGET_PCT,
        "improved": comparison.improved,
        "within_budget": comparison.within_budget,
    }


def _shards_world():
    """A small deterministic four-center world for the shard-pool phase.

    ``generate_gmission_like`` emits exactly one distribution center, so
    the shard phase builds its own layout: four centers on a wide square
    (10 km apart — partitions never interact), each with three delivery
    points on a 1 km ring, two resident workers, and four seeded tasks
    with staggered expiries.  Pure arithmetic, no RNG: every arm replays
    the same world and only the process topology differs.
    """
    import math

    from repro.core.entities import DeliveryPoint, Worker
    from repro.geo.point import Point
    from repro.geo.travel import TravelModel

    centers = []
    workers = []
    tasks = []
    for c in range(4):
        cx, cy = 10.0 * (c % 2), 10.0 * (c // 2)
        points = []
        for i in range(3):
            angle = 2.0 * math.pi * i / 3.0
            points.append(
                DeliveryPoint(
                    dp_id=f"bench-c{c}-dp{i}",
                    location=Point(
                        cx + math.cos(angle), cy + math.sin(angle)
                    ),
                    tasks=(),
                )
            )
        centers.append(
            DistributionCenter(
                f"bench-c{c}", Point(cx, cy), tuple(points)
            )
        )
        for w in range(2):
            workers.append(
                Worker(
                    worker_id=f"bench-c{c}-w{w}",
                    location=Point(cx + 0.2 + 0.3 * w, cy - 0.2),
                    max_delivery_points=2,
                    center_id=f"bench-c{c}",
                )
            )
        for t in range(4):
            tasks.append(
                {
                    "task_id": f"bench-c{c}-t{t}",
                    "dp_id": f"bench-c{c}-dp{t % 3}",
                    "expiry": 1.0 + 0.5 * t,
                    "reward": 1.0 + 0.25 * (t % 2),
                }
            )
    return centers, workers, tasks, TravelModel()


def _shards_phase(seed: int, rounds: int) -> Dict[str, object]:
    """Supervised shard pool vs the single-process engine, plus chaos.

    Three arms replay the same four-center world for ``rounds`` rounds
    (every arm runs the fault-tolerant ladder — ``solve_deadline_s`` is
    set — so an inherited ``REPRO_FAULTS`` cannot skew one arm onto a
    different code path):

    * ``single`` — one :class:`~repro.service.engine.DispatchEngine`
      over the whole world.
    * ``sharded`` — a two-shard
      :class:`~repro.service.shards.ShardedDispatchEngine`; per-round
      fingerprints and payoff aggregates must be bit-identical to the
      single arm (``identical`` — a hard CLI gate).
    * ``kill`` — the same pool with a chaos plan that SIGKILLs shard 0
      mid-run; the supervisor must respawn it, replay its journal
      segment, and finish bit-identical to the clean sharded arm
      (``recovered_identical`` with ``respawns >= 1`` — a hard CLI
      gate).
    """
    import tempfile

    from repro.baselines.mpta import MPTASolver
    from repro.service.engine import DispatchEngine
    from repro.service.faults import FaultPlan
    from repro.service.shards import ShardedDispatchEngine
    from repro.service.state import WorldState

    centers, workers, tasks, travel = _shards_world()
    kill_round = max(1, rounds // 2)

    def round_identity(result) -> Tuple[object, ...]:
        return (
            _fingerprint(result),
            result.payoff_difference,
            result.average_payoff,
            result.pending_tasks,
        )

    def run_single():
        state = WorldState(centers, workers=workers, travel=travel)
        state.add_tasks(tasks)
        engine = DispatchEngine(
            state, MPTASolver(), seed=seed, solve_deadline_s=30.0
        )
        t0 = time.perf_counter()
        idents = [
            round_identity(engine.dispatch(advance_hours=0.25))
            for _ in range(rounds)
        ]
        return idents, time.perf_counter() - t0

    def run_sharded(journal_dir, faults=None):
        engine = ShardedDispatchEngine(
            centers,
            MPTASolver(),
            travel=travel,
            shards=2,
            seed=seed,
            solve_deadline_s=30.0,
            heartbeat_timeout_s=5.0,
            faults=faults,
            journal_dir=journal_dir,
            journal_fsync=False,
        )
        try:
            engine.state.add_workers(workers)
            engine.state.add_tasks(tasks)
            t0 = time.perf_counter()
            idents = [
                round_identity(engine.dispatch(advance_hours=0.25))
                for _ in range(rounds)
            ]
            elapsed = time.perf_counter() - t0
            fingerprint = engine.state.fingerprint()
            respawns = sum(
                h["respawns"] for h in engine.shard_health().values()
            )
            return idents, elapsed, fingerprint, respawns
        finally:
            engine.begin_drain()
            engine.drain()

    single_idents, single_seconds = run_single()
    with tempfile.TemporaryDirectory(prefix="repro_bench_shards_") as tmp:
        clean_idents, sharded_seconds, clean_fp, _ = run_sharded(
            Path(tmp) / "clean"
        )
        kill_idents, _, kill_fp, respawns = run_sharded(
            Path(tmp) / "kill",
            faults=FaultPlan(
                shard_kill_round=kill_round, shard_kill_index=0
            ),
        )
    return {
        "shards": 2,
        "centers": len(centers),
        "rounds": rounds,
        "single_seconds": single_seconds,
        "sharded_seconds": sharded_seconds,
        "speedup": (
            single_seconds / sharded_seconds if sharded_seconds > 0 else None
        ),
        "identical": single_idents == clean_idents,
        "kill_round": kill_round,
        "killed_shard": 0,
        "respawns": respawns,
        "recovered_identical": (
            kill_idents == clean_idents and kill_fp == clean_fp
        ),
    }


def _kernel_phase(
    subs, epsilon: float, scale: str, seed: int, repeats: int
) -> Dict[str, object]:
    """Time ``build_catalog`` under the scalar and vectorized kernel tiers.

    Runs on the largest center, best-of-``repeats`` per tier, and checks
    the two catalogs for exact equality with :func:`catalog_diff` — the
    tiers are bit-identical by contract (``docs/performance.md``), so a
    false ``identical`` here is a correctness bug, not a performance
    number, and the CLI exits non-zero on it.

    Every timed repeat is a *cold* build: the travel model's cross-build
    distance memo is cleared first (and GC is paused during the timing).
    The scalar tier would otherwise amortise its memo across repeats
    while the vectorized tier recomputes its travel matrix every build —
    cold-vs-cold is the apples-to-apples comparison of the two tiers on
    identical work.

    The ``large`` arm then generates :data:`KERNEL_LARGE_SHAPES`'s
    instance for this scale and builds it once, vectorized-only: at medium
    scale that is 1k workers / 10k tasks, far past where the scalar tier
    fits in bench time, so the record is a completion time, not a speedup.
    """
    sub = max(subs, key=lambda s: len(s.center.delivery_points))
    phase: Dict[str, object] = {
        "center": sub.center.center_id,
        "delivery_points": len(sub.center.delivery_points),
        "workers": len(sub.workers),
    }
    catalogs: Dict[str, VDPSCatalog] = {}
    for tier in ("scalar", "vectorized"):
        before = METRICS.snapshot()
        best = None
        for _ in range(repeats):
            sub.travel.clear_cache()
            gc_was_enabled = gc.isenabled()
            gc.disable()
            try:
                t0 = time.perf_counter()
                catalogs[tier] = build_catalog(
                    sub, epsilon=epsilon, kernel=tier
                )
                elapsed = time.perf_counter() - t0
            finally:
                if gc_was_enabled:
                    gc.enable()
            best = elapsed if best is None else min(best, elapsed)
        phase[f"{tier}_seconds"] = best
        phase[f"metrics_{tier}"] = METRICS.delta(before)
    phase["strategies"] = catalogs["vectorized"].total_strategy_count
    phase["cvdps"] = catalogs["vectorized"].cvdps_count
    phase["identical"] = not catalog_diff(
        catalogs["scalar"], catalogs["vectorized"]
    )
    scalar_s = phase["scalar_seconds"]
    vector_s = phase["vectorized_seconds"]
    phase["speedup"] = (scalar_s / vector_s) if vector_s > 0 else None

    large_shape = KERNEL_LARGE_SHAPES[scale]
    large_instance = generate_gmission_like(
        GMissionConfig(
            n_tasks=large_shape.n_tasks,
            n_workers=large_shape.n_workers,
            n_delivery_points=large_shape.n_delivery_points,
        ),
        seed=seed,
    )
    large_sub = max(
        large_instance.subproblems(),
        key=lambda s: len(s.center.delivery_points),
    )
    t0 = time.perf_counter()
    large_catalog = build_catalog(
        large_sub, epsilon=large_shape.epsilon, kernel="vectorized"
    )
    large_seconds = time.perf_counter() - t0
    phase["large"] = {
        "shape": large_shape.as_dict(),
        "kernel": "vectorized",
        "seconds": large_seconds,
        "strategies": large_catalog.total_strategy_count,
        "cvdps": large_catalog.cvdps_count,
    }
    return phase


def run_bench(
    scale: str = "medium",
    seed: int = 0,
    repeats: int = 3,
    output: Optional[Path] = None,
    profile: bool = False,
) -> Dict[str, object]:
    """Run the pinned benchmark and (optionally) write the JSON report."""
    if scale not in BENCH_SHAPES:
        raise ValueError(
            f"scale must be one of {sorted(BENCH_SHAPES)}, got {scale!r}"
        )
    if repeats < 1:
        raise ValueError(f"repeats must be >= 1, got {repeats}")
    shape = BENCH_SHAPES[scale]
    instance = generate_gmission_like(
        GMissionConfig(
            n_tasks=shape.n_tasks,
            n_workers=shape.n_workers,
            n_delivery_points=shape.n_delivery_points,
        ),
        seed=seed,
    )
    subs = list(instance.subproblems())

    before = METRICS.snapshot()
    with _maybe_profile("catalog", profile):
        start = time.perf_counter()
        catalogs = {
            sub.center.center_id: build_catalog(sub, epsilon=shape.epsilon)
            for sub in subs
        }
        catalog_seconds = time.perf_counter() - start
    catalog_metrics = METRICS.delta(before)

    report: Dict[str, object] = {
        "schema": 6,
        "scale": scale,
        "seed": seed,
        "repeats": repeats,
        "generated_at": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
        "shape": shape.as_dict(),
        "catalog": {
            "seconds": catalog_seconds,
            "strategies": sum(c.total_strategy_count for c in catalogs.values()),
            "cvdps": sum(c.cvdps_count for c in catalogs.values()),
            "metrics": catalog_metrics,
        },
    }
    with _maybe_profile("kernel", profile):
        report["kernel"] = _kernel_phase(
            subs, shape.epsilon, scale, seed, repeats
        )
    with _maybe_profile("fgt", profile):
        report["fgt"] = _timed_engine_phase(
            lambda engine: FGTSolver(epsilon=shape.epsilon, engine=engine),
            subs,
            catalogs,
            seed,
            repeats,
        )
    with _maybe_profile("iegt", profile):
        report["iegt"] = _timed_engine_phase(
            lambda engine: IEGTSolver(epsilon=shape.epsilon, engine=engine),
            subs,
            catalogs,
            seed,
            repeats,
        )
    with _maybe_profile("catalog_delta", profile):
        report["catalog_delta"] = _catalog_delta_phase(
            subs, shape.epsilon, seed, repeats
        )
    with _maybe_profile("obs_overhead", profile):
        report["obs_overhead"] = _obs_overhead_phase(
            instance, shape.epsilon, seed, repeats
        )
    with _maybe_profile("temporal_fairness", profile):
        report["temporal_fairness"] = _temporal_fairness_phase(
            seed, rounds=16 if scale == "smoke" else 28
        )
    with _maybe_profile("shards", profile):
        report["shards"] = _shards_phase(
            seed, rounds=4 if scale == "smoke" else 6
        )
    _overhead_vs_tracked_baseline(report["obs_overhead"], output, scale)
    if output is not None:
        output = Path(output)
        if output.parent != Path(""):
            output.parent.mkdir(parents=True, exist_ok=True)
        output.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")
    return report


def format_report(report: Dict[str, object]) -> str:
    """Human-readable summary of a bench report for CLI output."""
    lines = [
        f"bench scale={report['scale']} seed={report['seed']} "
        f"repeats={report['repeats']}",
        f"shape            : {report['shape']}",
        f"catalog build    : {report['catalog']['seconds']:.3f}s "
        f"({report['catalog']['strategies']} strategies)",
    ]
    kernel = report.get("kernel")
    if kernel is not None:
        lines.append(
            f"kernel tiers     : scalar={kernel['scalar_seconds']:.3f}s "
            f"vectorized={kernel['vectorized_seconds']:.3f}s "
            f"speedup={kernel['speedup']:.1f}x "
            f"identical={kernel['identical']}"
        )
        large = kernel["large"]
        lines.append(
            f"  large arm      : {large['shape']['n_tasks']} tasks / "
            f"{large['shape']['n_workers']} workers -> "
            f"{large['seconds']:.3f}s ({large['kernel']}, "
            f"{large['strategies']} strategies)"
        )
    for phase in ("fgt", "iegt"):
        data = report[phase]
        lines.append(
            f"{phase.upper():<5} solve      : scalar={data['scalar_seconds']:.3f}s "
            f"vectorized={data['vectorized_seconds']:.3f}s "
            f"speedup={data['speedup']:.1f}x "
            f"identical={data['identical']} rounds={data['rounds']}"
        )
    delta = report.get("catalog_delta")
    if delta is not None:
        lines.append(
            f"catalog delta    : refresh={delta['delta_seconds']:.4f}s "
            f"rebuild={delta['rebuild_seconds']:.3f}s "
            f"speedup={delta['speedup']:.1f}x "
            f"identical={delta['identical']} steps={len(delta['steps'])}"
        )
    obs = report.get("obs_overhead")
    if obs is not None:
        lines.append(
            f"obs overhead     : disabled={obs['disabled_seconds']:.4f}s "
            f"sampled_out={obs['sampled_out_overhead_pct']:+.1f}% "
            f"traced={obs['traced_overhead_pct']:+.1f}% "
            f"identical={obs['identical']}"
        )
        if obs.get("regression_pct") is not None:
            lines.append(
                f"  vs tracked     : baseline="
                f"{obs['baseline_disabled_seconds']:.4f}s "
                f"regression={obs['regression_pct']:+.1f}% "
                f"(budget {obs['budget_pct']:.0f}%) "
                f"within_budget={obs['within_budget']}"
            )
    equity = report.get("temporal_fairness")
    if equity is not None:
        lines.append(
            f"temporal fairness: rolling_gini "
            f"{equity['per_round_rolling_gini']:.4f} -> "
            f"{equity['ledger_rolling_gini']:.4f} "
            f"({equity['gini_gap_closed_pct']:+.1f}%) "
            f"cost={equity['efficiency_cost_pct']:.1f}% "
            f"(budget {equity['budget_pct']:.0f}%) "
            f"improved={equity['improved']} "
            f"within_budget={equity['within_budget']}"
        )
    shards = report.get("shards")
    if shards is not None:
        lines.append(
            f"shard pool       : shards={shards['shards']} "
            f"rounds={shards['rounds']} "
            f"single={shards['single_seconds']:.3f}s "
            f"sharded={shards['sharded_seconds']:.3f}s "
            f"identical={shards['identical']} "
            f"respawns={shards['respawns']} "
            f"recovered_identical={shards['recovered_identical']}"
        )
    return "\n".join(lines)
