"""Fairness-aware Task Assignment in Spatial Crowdsourcing (FTA).

A reproduction of Zhao et al., "Fairness-aware Task Assignment in Spatial
Crowdsourcing: Game-Theoretic Approaches" (ICDE 2021): Valid Delivery Point
Set generation with distance-constrained pruning, the FGT best-response
game, the IEGT evolutionary game, the MPTA/GTA baselines, dataset
generators, and the full experiment harness for the paper's Figures 2-12.

Quickstart::

    from repro import GMissionConfig, generate_gmission_like, FGTSolver

    instance = generate_gmission_like(GMissionConfig(n_tasks=120), seed=7)
    sub = instance.subproblems()[0]
    result = FGTSolver(epsilon=0.6).solve(sub, seed=7)
    print(result.assignment.describe())
"""

from repro.core import (
    Assignment,
    DeliveryPoint,
    DistributionCenter,
    InequityAversion,
    InvalidAssignmentError,
    InvalidInstanceError,
    PriorityModel,
    ProblemInstance,
    ReproError,
    Route,
    SpatialTask,
    SubProblem,
    Worker,
    WorkerAssignment,
    average_payoff,
    payoff_difference,
    priority_payoff_difference,
    worker_payoff,
)
from repro.geo import GridIndex, Metric, Point, TravelModel
from repro.vdps import VDPSCatalog, WorkerStrategy, build_catalog, generate_cvdps
from repro.games import (
    ConvergenceTrace,
    FGTSolver,
    GameResult,
    IEGTSolver,
    is_pure_nash,
)
from repro.baselines import (
    ExhaustiveSolver,
    GTASolver,
    MaxMinSolver,
    MPTASolver,
    RandomSolver,
)
from repro.datasets import (
    GMissionConfig,
    SynConfig,
    generate_gmission_like,
    generate_synthetic,
    kmeans,
    load_instance,
    save_instance,
)
from repro.analysis import compare_assignments, decompose_fairness, diagnose
from repro.obs import (
    METRICS,
    JsonlTracer,
    MemoryTracer,
    MetricsRegistry,
    metrics_registry,
    read_trace,
    reset_metrics,
    set_tracing,
    summarize_trace,
)
from repro.parallel import InstanceSolution, solve_instance
from repro.verify import (
    DifferentialReport,
    InvariantViolation,
    OracleBounds,
    check_against_oracle,
    oracle_bounds,
    run_differential,
    set_verification,
    verify_assignment,
)

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # geo
    "Point",
    "Metric",
    "TravelModel",
    "GridIndex",
    # core
    "SpatialTask",
    "DeliveryPoint",
    "DistributionCenter",
    "Worker",
    "ProblemInstance",
    "SubProblem",
    "Route",
    "Assignment",
    "WorkerAssignment",
    "InequityAversion",
    "PriorityModel",
    "worker_payoff",
    "average_payoff",
    "payoff_difference",
    "priority_payoff_difference",
    "ReproError",
    "InvalidInstanceError",
    "InvalidAssignmentError",
    # vdps
    "generate_cvdps",
    "build_catalog",
    "VDPSCatalog",
    "WorkerStrategy",
    # games
    "FGTSolver",
    "IEGTSolver",
    "GameResult",
    "ConvergenceTrace",
    "is_pure_nash",
    # baselines
    "GTASolver",
    "MPTASolver",
    "MaxMinSolver",
    "RandomSolver",
    "ExhaustiveSolver",
    # datasets
    "SynConfig",
    "generate_synthetic",
    "GMissionConfig",
    "generate_gmission_like",
    "kmeans",
    "save_instance",
    "load_instance",
    # analysis & parallel
    "diagnose",
    "compare_assignments",
    "decompose_fairness",
    "solve_instance",
    "InstanceSolution",
    # verify
    "InvariantViolation",
    "verify_assignment",
    "set_verification",
    "run_differential",
    "DifferentialReport",
    "check_against_oracle",
    "oracle_bounds",
    "OracleBounds",
    # observability
    "METRICS",
    "MetricsRegistry",
    "metrics_registry",
    "reset_metrics",
    "JsonlTracer",
    "MemoryTracer",
    "set_tracing",
    "read_trace",
    "summarize_trace",
]
