"""Whole-instance solving, optionally parallel across distribution centers.

Section VII-A: "Since task assignment across distribution centers is
independent, we can perform task assignment for different distribution
centers in parallel."  This module provides that convenience: solve every
sub-problem of an instance with one solver, serially or on a process pool,
with results identical between the two modes (per-center seeds are derived
deterministically, not drawn from a shared stream).
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Tuple

from repro.core.assignment import Assignment
from repro.core.instance import ProblemInstance, SubProblem
from repro.core.payoff import average_payoff, payoff_difference
from repro.utils.rng import RngFactory, SeedLike


@dataclass(frozen=True)
class InstanceSolution:
    """Per-center assignments plus the pooled (global) metrics."""

    assignments: Dict[str, Assignment]  # center_id -> assignment

    @property
    def payoffs(self) -> List[float]:
        """All workers' payoffs across centers (sorted by center id)."""
        out: List[float] = []
        for center_id in sorted(self.assignments):
            out.extend(self.assignments[center_id].payoffs)
        return out

    @property
    def payoff_difference(self) -> float:
        """Equation 2 over the global worker population."""
        return payoff_difference(self.payoffs)

    @property
    def average_payoff(self) -> float:
        return average_payoff(self.payoffs)

    @property
    def busy_worker_count(self) -> int:
        return sum(a.busy_worker_count for a in self.assignments.values())

    def describe(self) -> str:
        """One-line summary of the pooled metrics."""
        return (
            f"centers={len(self.assignments)} "
            f"P_dif={self.payoff_difference:.4f} "
            f"avgP={self.average_payoff:.4f} busy={self.busy_worker_count}"
        )


def solve_subproblem(
    sub: SubProblem,
    solver,
    epsilon: Optional[float] = None,
    seed: SeedLike = None,
    catalog: Optional[object] = None,
) -> Assignment:
    """Solve one center's sub-problem; the single-center unit of
    :func:`solve_instance`.

    Exposed so callers that shard per center themselves — the dispatch
    service's degradation ladder retries/degrades *individual* centers —
    produce exactly what :func:`solve_instance` would: passing the seed
    ``RngFactory(root).seed_for(f"{seed_stream}:{center_id}")`` here is
    bit-identical to the corresponding center of a whole-instance solve.
    """
    if catalog is None:
        from repro.vdps.catalog import build_catalog

        catalog = build_catalog(sub, epsilon=epsilon)
    result = solver.solve(sub, catalog=catalog, seed=seed)
    return result.assignment


def _solve_one(
    args: Tuple[SubProblem, object, Optional[float], int, Optional[object]]
) -> Tuple[str, Assignment]:
    """Worker function: solve one sub-problem (top-level for pickling)."""
    sub, solver, epsilon, seed, catalog = args
    return sub.center.center_id, solve_subproblem(
        sub, solver, epsilon=epsilon, seed=seed, catalog=catalog
    )


def solve_instance(
    instance: ProblemInstance,
    solver,
    epsilon: Optional[float] = None,
    seed: SeedLike = None,
    n_jobs: int = 1,
    seed_stream: str = "center",
    catalogs: Optional[Mapping[str, object]] = None,
) -> InstanceSolution:
    """Solve every center of ``instance`` with ``solver``.

    Parameters
    ----------
    epsilon:
        VDPS pruning threshold used for every center's catalog.
    seed:
        Root seed; each center receives an independent derived stream, so
        results do not depend on execution order or on ``n_jobs``.
    n_jobs:
        1 (default) solves serially; > 1 uses a process pool of that size.
    seed_stream:
        Prefix of the per-center stream names (``"<seed_stream>:<center>"``).
        The default keeps the historical ``center:*`` streams; passing the
        algorithm's name reproduces the per-arm streams of
        :func:`repro.experiments.runner.run_algorithms` exactly, which is
        how the dispatch service stays bit-identical to offline solves.
    catalogs:
        Optional prebuilt ``center_id -> VDPSCatalog`` mapping (e.g. from a
        cache).  Centers missing from the mapping build their catalog as
        usual.
    """
    if n_jobs < 1:
        raise ValueError(f"n_jobs must be >= 1, got {n_jobs}")
    rng_factory = RngFactory(seed)
    prebuilt = catalogs or {}
    tasks = [
        (
            sub,
            solver,
            epsilon,
            rng_factory.seed_for(f"{seed_stream}:{sub.center.center_id}"),
            prebuilt.get(sub.center.center_id),
        )
        for sub in instance.subproblems()
    ]
    results: Dict[str, Assignment] = {}
    if n_jobs == 1 or len(tasks) <= 1:
        for task in tasks:
            center_id, assignment = _solve_one(task)
            results[center_id] = assignment
    else:
        with ProcessPoolExecutor(max_workers=n_jobs) as pool:
            for center_id, assignment in pool.map(_solve_one, tasks):
                results[center_id] = assignment
    return InstanceSolution(results)
