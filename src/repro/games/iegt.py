"""Improved Evolutionary Game-Theoretic approach (IEGT) — Algorithm 3.

Workers of one distribution center form a population that repeatedly plays
the assignment game with bounded rationality.  Each round evaluates the
replicator dynamics (Equation 11): a strategy's share grows or shrinks with
the gap between its player's payoff ``U_i`` and the population average
``U-bar``.  A worker whose replicator derivative is negative (payoff below
average) must evolve: it switches to a *random* available VDPS with strictly
higher payoff, when one exists.  The play stops at the improved evolutionary
equilibrium — all derivatives zero (equal payoffs) or no worker able to
change strategy — which Definition 10 shows is an IESS.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Mapping, Optional

import numpy as np

from repro.core.instance import SubProblem
from repro.games.base import GameResult, GameState, random_initial_state
from repro.games.trace import ConvergenceTrace
from repro.obs.metrics import METRICS
from repro.obs.tracer import resolve_tracer
from repro.utils.log import get_logger
from repro.utils.rng import SeedLike, ensure_rng
from repro.vdps.catalog import VDPSCatalog, WorkerStrategy, build_catalog
from repro.verify.verifier import (
    NULL_VERIFIER,
    EvolutionaryGameVerifier,
    NullVerifier,
    verification_enabled,
)

logger = get_logger("games.iegt")


@dataclass(frozen=True)
class IEGTSolver:
    """Replicator-dynamics solver for the FTA evolutionary game.

    Parameters
    ----------
    max_rounds:
        Budget of evolution rounds; exceeding it is reported via
        ``GameResult.converged``.
    tol:
        Payoffs within ``tol`` of the population average are treated as
        average (replicator derivative zero), and a switch target must be
        better than the current payoff by more than ``tol``.
    epsilon:
        Distance-constrained pruning threshold for VDPS generation when the
        solver builds the catalog itself; ``None`` disables pruning.
    trace_granularity:
        ``"round"`` (default) records one trace point per evolution round;
        ``"update"`` records one per individual worker adaptation, matching
        the per-iteration x-axis of the paper's Figure 12.
    early_stop_patience, early_stop_tol:
        Optional early termination (the paper's future-work item): stop
        once the population's total payoff has improved by less than
        ``early_stop_tol`` over ``early_stop_patience`` consecutive rounds.
        ``None`` (default) disables it.  An early-stopped run reports
        ``converged=False``.
    termination:
        ``"improved"`` (default) is the paper's IESS condition — stop when
        all replicator derivatives are zero *or* nobody changed strategy.
        ``"classic"`` keeps only the textbook evolutionary-equilibrium
        condition (all payoffs equal), which in FTA's heterogeneous-
        strategy setting typically never holds; it exists to reproduce the
        paper's motivation for improving the termination (Section VI-C).
    verify:
        Run the :mod:`repro.verify` invariant checkers during the solve:
        a worker may only evolve when its replicator derivative is
        negative (payoff below the population average, Eqs. 11-14), every
        switch must strictly increase its payoff, a converged final state
        must satisfy Definition 10's improved equilibrium condition, and
        the final assignment must pass all Definition 6/8 checks.  Off by
        default (zero hot-path overhead via a no-op verifier); the global
        ``REPRO_VERIFY=1`` environment hook also enables it.
    trace:
        Emit structured :mod:`repro.obs` events while solving — one
        ``iegt.round`` per evolution round, one ``iegt.evolve`` per worker
        adaptation, plus solve start/end records.  Accepts ``True`` (route
        to the process-wide sink: :func:`repro.obs.set_tracing` target,
        then ``REPRO_TRACE=path.jsonl``, then the shared in-memory tracer)
        or a tracer instance.  Off by default with zero hot-path overhead
        via the shared no-op tracer.
    engine:
        ``"vectorized"`` (default) filters each evolving worker's strategy
        list through the catalog's bitmask conflict index in one pass; it
        is bit-identical to ``"scalar"``, the original per-strategy Python
        loop, retained as the reference implementation for differential
        tests and benchmarks (see ``docs/performance.md``).
    equity_mode, equity_baselines:
        Ledger-weighted temporal fairness (``docs/temporal_fairness.md``).
        When ``equity_mode`` is on, the replicator derivative's sign is
        taken on *effective* payoffs ``P_i + C_i``, where ``C_i`` is the
        worker's decayed cumulative payoff from ``equity_baselines``
        (typically :meth:`~repro.equity.ledger.EquityLedger.baselines`;
        missing workers default to 0.0).  A cumulative-rich worker thus
        sits above the effective average and never evolves, while a
        cumulative-poor worker keeps evolving even when its round payoff
        already matches its peers'.  Switch targets still require a
        strictly better *round* payoff, so every switch increases the raw
        population total — the termination argument survives equity mode
        untouched.  Both engines stay bit-identical in equity mode.
    """

    max_rounds: int = 500
    tol: float = 1e-9
    epsilon: Optional[float] = None
    trace_granularity: str = "round"
    early_stop_patience: Optional[int] = None
    early_stop_tol: float = 1e-6
    termination: str = "improved"
    verify: bool = False
    trace: object = False
    engine: str = "vectorized"
    equity_mode: bool = False
    equity_baselines: Optional[Mapping[str, float]] = None

    def __post_init__(self) -> None:
        if self.trace_granularity not in ("round", "update"):
            raise ValueError(
                f"trace_granularity must be 'round' or 'update', "
                f"got {self.trace_granularity!r}"
            )
        if self.early_stop_patience is not None and self.early_stop_patience < 1:
            raise ValueError(
                f"early_stop_patience must be >= 1 or None, "
                f"got {self.early_stop_patience!r}"
            )
        if self.termination not in ("improved", "classic"):
            raise ValueError(
                f"termination must be 'improved' or 'classic', "
                f"got {self.termination!r}"
            )
        if self.engine not in ("vectorized", "scalar"):
            raise ValueError(
                f"engine must be 'vectorized' or 'scalar', got {self.engine!r}"
            )

    @property
    def name(self) -> str:
        return "IEGT" if self.epsilon is not None else "IEGT-W"

    def solve(
        self,
        sub: SubProblem,
        catalog: Optional[VDPSCatalog] = None,
        seed: SeedLike = None,
    ) -> GameResult:
        """Run Algorithm 3 on the population of ``sub``'s workers."""
        tracer = resolve_tracer(self.trace)
        if catalog is None:
            catalog = build_catalog(sub, epsilon=self.epsilon, tracer=tracer)
        rng = ensure_rng(seed)
        state = random_initial_state(catalog, rng)
        trace = ConvergenceTrace()
        base = self._equity_base(state)
        verifier: NullVerifier = NULL_VERIFIER
        if verification_enabled(self.verify):
            verifier = EvolutionaryGameVerifier(
                tol=self.tol, solver=self.name, offsets=base
            )
        verifier.on_solve_start(state)
        if tracer.enabled:
            tracer.event(
                "iegt.solve_start",
                solver=self.name,
                center=sub.center.center_id,
                workers=len(state.workers),
                strategies=catalog.total_strategy_count,
                epsilon=self.epsilon,
            )

        population = len(state.workers)
        converged = False
        rounds = 0
        total_switches = 0
        stall = 0
        last_total = float(state.payoffs().sum())
        vectorized = self.engine == "vectorized"
        # Vectorized-filter batch statistics, flushed to METRICS once per
        # solve: [batches, strategies screened, candidates surviving].
        batch_stats = [0, 0, 0]
        with METRICS.timer("iegt.solve_seconds"):
            for rounds in range(1, self.max_rounds + 1):
                payoffs = state.payoffs()
                effective = payoffs if base is None else payoffs + base
                mean_payoff = float(effective.mean()) if population else 0.0
                switches = 0
                all_average = True
                for idx, worker in enumerate(state.workers):
                    # sigma_km > 0 for a strategy in use, so the sign of the
                    # replicator derivative (Eq. 11) is the sign of U_i - U-bar
                    # — on effective payoffs (round + cumulative base) when
                    # equity mode is on.
                    gap = effective[idx] - mean_payoff
                    switched = False
                    if gap < -self.tol:
                        all_average = False
                        old_payoff = payoffs[idx]
                        old_effective = effective[idx]
                        if vectorized:
                            switched = self._evolve_vectorized(
                                state, worker.worker_id, rng, batch_stats
                            )
                        else:
                            switched = self._evolve(state, worker.worker_id, rng)
                        if switched:
                            new_payoff = state.strategy_of(worker.worker_id).payoff
                            verifier.on_switch(
                                worker.worker_id,
                                rounds,
                                (old_effective, mean_payoff),
                                new_payoff
                                if base is None
                                else new_payoff + base[idx],
                            )
                            if tracer.enabled:
                                tracer.event(
                                    "iegt.evolve",
                                    worker=worker.worker_id,
                                    round=rounds,
                                    payoff_before=float(old_payoff),
                                    payoff_after=new_payoff,
                                    mean_payoff=mean_payoff,
                                )
                            switches += 1
                            payoffs = state.payoffs()
                            effective = (
                                payoffs if base is None else payoffs + base
                            )
                            mean_payoff = float(effective.mean())
                    elif abs(gap) > self.tol:
                        all_average = False
                    if self.trace_granularity == "update":
                        trace.record(
                            len(trace) + 1,
                            payoffs,
                            int(switched),
                            potential=float(payoffs.sum()),
                        )
                total_switches += switches
                if self.trace_granularity == "round":
                    trace.record(
                        rounds, payoffs, switches, potential=float(payoffs.sum())
                    )
                verifier.on_round(rounds, payoffs, float(payoffs.sum()), switches)
                if tracer.enabled:
                    tracer.event(
                        "iegt.round",
                        round=rounds,
                        switches=switches,
                        total_payoff=float(payoffs.sum()),
                        mean_payoff=mean_payoff,
                    )
                stop = (
                    all_average
                    if self.termination == "classic"
                    else (all_average or switches == 0)
                )
                if stop:
                    converged = True
                    break
                total = float(payoffs.sum())
                if self.early_stop_patience is not None:
                    if total - last_total < self.early_stop_tol:
                        stall += 1
                        if stall >= self.early_stop_patience:
                            break
                    else:
                        stall = 0
                last_total = total
        if not converged:
            logger.warning(
                "IEGT did not reach an evolutionary equilibrium within %d rounds",
                self.max_rounds,
            )
        METRICS.counter("iegt.rounds").add(rounds)
        METRICS.counter("iegt.switches").add(total_switches)
        if batch_stats[0]:
            METRICS.counter("engine.filter_batches").add(batch_stats[0])
            METRICS.counter("engine.candidates_screened").add(batch_stats[1])
            METRICS.counter("engine.candidates_available").add(batch_stats[2])
        assignment = state.to_assignment()
        verifier.on_final(state, assignment, sub=sub, converged=converged)
        if tracer.enabled:
            tracer.event(
                "iegt.solve_end",
                solver=self.name,
                center=sub.center.center_id,
                rounds=rounds,
                switches=total_switches,
                converged=converged,
            )
        return GameResult(assignment, trace, converged, rounds)

    def _equity_base(self, state: GameState) -> Optional[np.ndarray]:
        """Per-worker cumulative-payoff offsets, or ``None`` when equity is off.

        Workers missing from ``equity_baselines`` (newly joined since the
        ledger last recorded) start from a zero base, so the effective
        average immediately treats them as the poorest in the population.
        """
        if not self.equity_mode:
            return None
        baselines = self.equity_baselines or {}
        return np.array(
            [float(baselines.get(w.worker_id, 0.0)) for w in state.workers]
        )

    def _evolve(
        self, state: GameState, worker_id: str, rng: np.random.Generator
    ) -> bool:
        """Switch ``worker_id`` to a random strictly-better available VDPS.

        Returns whether a switch happened (Algorithm 3, lines 22-25).  This
        is the scalar reference implementation (``engine="scalar"``); the
        vectorized engine must stay bit-identical to it.
        """
        current_payoff = state.strategy_of(worker_id).payoff
        better: List[WorkerStrategy] = [
            s
            for s in state.available_strategies(worker_id)
            if s.payoff > current_payoff + self.tol
        ]
        if not better:
            return False
        pick = better[int(rng.integers(0, len(better)))]
        state.set_strategy(worker_id, pick)
        return True

    def _evolve_vectorized(
        self,
        state: GameState,
        worker_id: str,
        rng: np.random.Generator,
        batch_stats: list,
    ) -> bool:
        """Bit-identical :meth:`_evolve` on the bitmask conflict index.

        Availability and the strictly-better filter run as two vectorized
        passes that preserve catalog order, so the candidate pool — and
        therefore the rng draw and the chosen strategy — match the scalar
        list comprehension exactly.
        """
        current_payoff = state.strategy_of(worker_id).payoff
        wi = state.catalog.index.worker(worker_id)
        available = state.available_strategy_indices(worker_id)
        batch_stats[0] += 1
        batch_stats[1] += wi.n_strategies
        batch_stats[2] += int(available.size)
        better = available[wi.payoffs[available] > current_payoff + self.tol]
        if not better.size:
            return False
        pick = int(better[int(rng.integers(0, better.size))])
        state.set_strategy(worker_id, state.catalog.strategies(worker_id)[pick])
        return True
