"""Convergence traces for the game-theoretic solvers (Figure 12 data)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Sequence, Tuple

from repro.core.payoff import average_payoff, payoff_difference


@dataclass(frozen=True)
class TracePoint:
    """Diagnostics after one full update round.

    Attributes
    ----------
    round_index:
        1-based round counter.
    payoff_difference:
        ``P_dif`` of the joint strategy after the round.
    average_payoff:
        Mean worker payoff after the round.
    switches:
        How many workers changed strategy during the round (0 means the
        round was a fixed point).
    potential:
        The exact potential ``Phi`` (sum of IAUs) for FGT; for IEGT this is
        the sum of payoffs.
    """

    round_index: int
    payoff_difference: float
    average_payoff: float
    switches: int
    potential: float


class ConvergenceTrace:
    """Append-only series of :class:`TracePoint`, one per round."""

    def __init__(self) -> None:
        self._points: List[TracePoint] = []

    def record(
        self,
        round_index: int,
        payoffs: Sequence[float],
        switches: int,
        potential: float,
    ) -> None:
        """Append the diagnostics of a finished round."""
        self._points.append(
            TracePoint(
                round_index=round_index,
                payoff_difference=payoff_difference(payoffs),
                average_payoff=average_payoff(payoffs),
                switches=switches,
                potential=potential,
            )
        )

    def __len__(self) -> int:
        return len(self._points)

    def __iter__(self) -> Iterator[TracePoint]:
        return iter(self._points)

    def __getitem__(self, idx: int) -> TracePoint:
        return self._points[idx]

    @property
    def points(self) -> Tuple[TracePoint, ...]:
        return tuple(self._points)

    @property
    def final(self) -> TracePoint:
        """The last recorded round; raises on an empty trace."""
        if not self._points:
            raise IndexError("trace is empty")
        return self._points[-1]

    def series(self, field: str) -> List[float]:
        """The per-round series of one :class:`TracePoint` field."""
        return [getattr(p, field) for p in self._points]
