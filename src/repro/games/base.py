"""Shared game machinery: joint-strategy state and random initialisation.

Both Algorithm 2 (FGT) and Algorithm 3 (IEGT) start from the same random
single-point assignment (their lines 6-16) and then iterate strategy updates
over a mutable joint state.  :class:`GameState` owns that state and keeps the
disjointness bookkeeping (which delivery points are claimed by whom) so
solvers stay small.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Set, Tuple

import numpy as np

from repro.core.assignment import Assignment, WorkerAssignment
from repro.core.entities import Worker
from repro.games.trace import ConvergenceTrace
from repro.utils.rng import SeedLike, ensure_rng
from repro.vdps.catalog import NULL_STRATEGY, VDPSCatalog, WorkerStrategy


class GameState:
    """The joint strategy of all players plus conflict bookkeeping.

    Invariant: the point sets of all non-null strategies are pairwise
    disjoint (Definition 8); every mutation goes through
    :meth:`set_strategy`, which maintains the claimed-points map.
    """

    def __init__(self, catalog: VDPSCatalog) -> None:
        self.catalog = catalog
        self.workers: Tuple[Worker, ...] = catalog.workers
        self._strategy: Dict[str, WorkerStrategy] = {
            w.worker_id: NULL_STRATEGY for w in self.workers
        }
        self._claimed_by: Dict[str, str] = {}  # dp_id -> worker_id
        # Incremental bitmask mirror of _claimed_by, consumed by the
        # vectorized best-response engine: one uint64 word vector for the
        # union of all claimed points, plus each worker's own contribution.
        index = catalog.index
        self._claimed_words = index.empty_mask()
        zero = index.empty_mask()
        self._worker_words: Dict[str, np.ndarray] = {
            w.worker_id: zero for w in self.workers
        }
        # Strategies whose points are unknown to the catalog index (only
        # possible for hand-built strategies injected in tests) poison the
        # mask mirror; from then on index-based availability falls back to
        # the authoritative dict bookkeeping.
        self._masks_exact = True

    def strategy_of(self, worker_id: str) -> WorkerStrategy:
        """The strategy ``worker_id`` currently plays (null if none)."""
        return self._strategy[worker_id]

    def set_strategy(self, worker_id: str, strategy: WorkerStrategy) -> None:
        """Switch ``worker_id`` to ``strategy``, updating claimed points.

        Raises :class:`ValueError` if the strategy overlaps points claimed
        by another worker — solvers must only offer available strategies.
        """
        for dp_id in strategy.point_ids:
            owner = self._claimed_by.get(dp_id)
            if owner is not None and owner != worker_id:
                raise ValueError(
                    f"delivery point {dp_id!r} already claimed by {owner!r}"
                )
        for dp_id in self._strategy[worker_id].point_ids:
            self._claimed_by.pop(dp_id, None)
        for dp_id in strategy.point_ids:
            self._claimed_by[dp_id] = worker_id
        self._strategy[worker_id] = strategy
        if self._masks_exact:
            try:
                new_words = self.catalog.index.mask_of(strategy.point_ids)
            except KeyError:
                self._masks_exact = False
                return
            # Disjointness (checked above) makes XOR an exact release of the
            # worker's previous bits; OR then claims the new ones.
            self._claimed_words ^= self._worker_words[worker_id]
            self._claimed_words |= new_words
            self._worker_words[worker_id] = new_words

    def claimed_except(self, worker_id: str) -> Set[str]:
        """Delivery points claimed by every worker other than ``worker_id``."""
        return {
            dp_id for dp_id, owner in self._claimed_by.items() if owner != worker_id
        }

    def claimed_words_except(self, worker_id: str) -> np.ndarray:
        """Bitmask of points claimed by every worker but ``worker_id``."""
        return self._claimed_words & ~self._worker_words[worker_id]

    def available_strategies(self, worker_id: str) -> List[WorkerStrategy]:
        """Strategies ``worker_id`` could switch to right now (excl. null)."""
        return self.catalog.available(worker_id, self.claimed_except(worker_id))

    def available_strategy_indices(self, worker_id: str) -> np.ndarray:
        """Positions (into the worker's strategy tuple) available right now.

        The vectorized counterpart of :meth:`available_strategies`: selects
        the exact same strategies, as positions, via one ``masks & claimed``
        pass over the catalog index instead of per-strategy set
        intersections.
        """
        if not self._masks_exact:
            # Degraded mode (foreign strategy injected): derive positions
            # from the authoritative dict path instead.
            strategies = self.catalog.strategies(worker_id)
            position = {id(s): i for i, s in enumerate(strategies)}
            return np.asarray(
                [position[id(s)] for s in self.available_strategies(worker_id)],
                dtype=np.intp,
            )
        return self.catalog.index.worker(worker_id).available(
            self.claimed_words_except(worker_id)
        )

    def payoffs(self) -> np.ndarray:
        """Current payoff vector, in worker order."""
        return np.array(
            [self._strategy[w.worker_id].payoff for w in self.workers], dtype=float
        )

    def joint_strategy_key(self) -> Tuple[FrozenSet[str], ...]:
        """A hashable snapshot of the joint strategy (for cycle detection)."""
        return tuple(self._strategy[w.worker_id].point_ids for w in self.workers)

    def to_assignment(self) -> Assignment:
        """Freeze the state into a validated :class:`Assignment`."""
        pairs = []
        for w in self.workers:
            strategy = self._strategy[w.worker_id]
            route = None if strategy.is_null else strategy.route
            pairs.append(WorkerAssignment(w, route))
        return Assignment(pairs)


def random_initial_state(
    catalog: VDPSCatalog, seed: SeedLike = None
) -> GameState:
    """Random single-point initial assignment (Algorithms 2-3, lines 6-16).

    Workers are processed in catalog order; each draws uniformly among its
    size-1 VDPSs whose point is still unclaimed, or plays null when none
    remain.
    """
    rng = ensure_rng(seed)
    state = GameState(catalog)
    index = catalog.index
    for worker in catalog.workers:
        # Filtering the precomputed size-1 positions by the claimed bitmask
        # yields the same candidate list, in the same (catalog) order, as
        # scanning available_strategies for size == 1 — so the rng draws
        # and the resulting initial state are bit-identical to the scalar
        # formulation of Algorithms 2-3, lines 6-16.
        wid = worker.worker_id
        wi = index.worker(wid)
        if not wi.size1.size:
            continue
        claimed = state.claimed_words_except(wid)
        conflict = (wi.masks[wi.size1] & claimed).any(axis=1)
        candidates = wi.size1[~conflict]
        if candidates.size:
            pick = int(candidates[int(rng.integers(0, candidates.size))])
            state.set_strategy(wid, catalog.strategies(wid)[pick])
    return state


@dataclass(frozen=True)
class GameResult:
    """Outcome of a game-theoretic solve.

    Attributes
    ----------
    assignment:
        The final (validated) task assignment.
    trace:
        Per-iteration convergence diagnostics (Figure 12's raw data).
    converged:
        Whether a fixed point was reached before the iteration budget.
    rounds:
        Number of full update rounds executed.
    """

    assignment: Assignment
    trace: ConvergenceTrace
    converged: bool
    rounds: int
