"""Fairness-aware Game-Theoretic approach (FGT) — Algorithm 2.

FTA is cast as an n-player strategic game whose utilities are the Inequity
Aversion based Utilities (Equations 5-7).  Lemma 2 shows the game is an
exact potential game (potential = sum of IAUs), so sequential asynchronous
best response converges to a pure Nash equilibrium: workers take turns
switching to the available VDPS (or null) with maximal IAU, and the play
stops when a full round changes nobody's strategy.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Mapping, Optional

import numpy as np

from repro.core.fairness import (
    DEFAULT_EQUITY_STRENGTH,
    InequityAversion,
    equity_model,
)
from repro.core.instance import SubProblem
from repro.core.priority import PriorityModel
from repro.games.base import GameResult, GameState, random_initial_state
from repro.games.potential import IAUEvaluator, potential_value, sequential_best
from repro.games.trace import ConvergenceTrace
from repro.obs.metrics import METRICS
from repro.obs.tracer import NULL_TRACER, NullTracer, resolve_tracer
from repro.utils.log import get_logger
from repro.utils.rng import SeedLike, ensure_rng
from repro.vdps.catalog import NULL_STRATEGY, VDPSCatalog, build_catalog
from repro.verify.verifier import (
    NULL_VERIFIER,
    NullVerifier,
    PotentialGameVerifier,
    verification_enabled,
)

logger = get_logger("games.fgt")


def _effective(payoffs: np.ndarray, scales: np.ndarray, base) -> np.ndarray:
    """Effective payoffs: scaled round payoffs, plus the equity base if set.

    The ``base is None`` branch keeps the non-equity expression literally
    unchanged so existing solves stay byte-for-byte identical; the equity
    branch's ``payoffs * scales + base`` is the exact elementwise op order
    both engines replicate when they update single entries.
    """
    return payoffs * scales if base is None else payoffs * scales + base


@dataclass(frozen=True)
class FGTSolver:
    """Best-response solver for the FTA game.

    Parameters
    ----------
    alpha, beta:
        IAU weights (Equation 5); the paper fixes both at 0.5.
    max_rounds:
        Budget of full best-response rounds.  The potential argument of
        Lemma 2 makes cycling unlikely; the budget guards degenerate cases,
        and exceeding it is reported via ``GameResult.converged``.
    tol:
        A switch requires at least this much IAU improvement, which keeps
        floating-point noise from producing livelock.  Exact-utility ties
        among the accepted best candidates are broken by a seeded uniform
        draw (not first-in-catalog order, which would systematically
        favour the same point sets); both engines draw identically, so the
        solve stays deterministic per seed and bit-identical across
        engines.
    epsilon:
        Distance-constrained pruning threshold for VDPS generation when the
        solver builds the catalog itself; ``None`` disables pruning.
    trace_granularity:
        ``"round"`` (default) records one trace point per full best-response
        pass; ``"update"`` records one per individual worker update, which
        matches the per-iteration x-axis of the paper's Figure 12.
    early_stop_patience, early_stop_tol:
        Optional early termination (the paper's future-work item on
        iteration efficiency): stop once the potential has improved by less
        than ``early_stop_tol`` over ``early_stop_patience`` consecutive
        rounds.  ``None`` (default) disables it and plays to the exact
        fixed point.  An early-stopped run reports ``converged=False``.
    priorities:
        Optional :class:`~repro.core.priority.PriorityModel` enabling
        priority-aware fairness (the paper's future-work direction): the
        game's utilities become IAU over priority-normalised payoffs, so
        equilibrium payoffs gravitate toward priority-proportional shares.
        ``None`` is the paper's plain IAU game.
    verify:
        Run the :mod:`repro.verify` invariant checkers during the solve:
        every switch must strictly improve the switcher's IAU, the exact
        potential must be non-decreasing per round (Lemma 2), a converged
        final state must be a pure Nash equilibrium, and the final
        assignment must pass all Definition 6/8 checks.  Off by default
        (zero hot-path overhead via a no-op verifier); the global
        ``REPRO_VERIFY=1`` environment hook also enables it.
    trace:
        Emit structured :mod:`repro.obs` events while solving — one
        ``fgt.round`` per best-response pass, one ``fgt.switch`` per
        strategy change, plus solve start/end records.  Accepts ``True``
        (route to the process-wide sink: :func:`repro.obs.set_tracing`
        target, then ``REPRO_TRACE=path.jsonl``, then the shared in-memory
        tracer) or a tracer instance.  Off by default with zero hot-path
        overhead via the shared no-op tracer.
    engine:
        ``"vectorized"`` (default) runs each best-response pass on the
        catalog's bitmask conflict index with batched IAU evaluation; it is
        bit-identical to ``"scalar"``, the original per-strategy Python
        loop, which is retained as the reference implementation for
        differential tests and benchmarks (see ``docs/performance.md``).
    deadline_s:
        Optional cooperative wall-clock budget: the round loop stops after
        the first best-response pass that crosses it, reporting
        ``converged=False``.  The dispatch service's degradation ladder
        (``docs/fault_tolerance.md``) uses it so a degraded scalar solve
        self-terminates instead of blowing the round budget.  ``None``
        (default) plays to the fixed point; note this changes *which*
        assignment is returned only when the budget actually trips.
    equity_mode, equity_baselines, equity_strength:
        Ledger-weighted temporal fairness (``docs/temporal_fairness.md``).
        When ``equity_mode`` is on, utilities become the amplified IAU of
        :func:`repro.core.fairness.equity_model` evaluated at *effective*
        payoffs ``P_i * scale_i + C_i``, where ``C_i`` is the worker's
        decayed cumulative payoff from ``equity_baselines`` (a worker-id
        -> float mapping, typically
        :meth:`~repro.equity.ledger.EquityLedger.baselines`; missing
        workers default to 0.0, and ``None`` means an all-zero base — the
        amplified one-shot game ``solve --equity-mode`` plays).  Both
        engines stay elementwise bit-identical in equity mode.  The
        amplified weights void Lemma 2's potential-monotonicity guarantee
        (see :func:`~repro.core.fairness.equity_model`), so the verifier
        skips that one check and convergence is bounded by ``max_rounds``.
    """

    alpha: float = 0.5
    beta: float = 0.5
    max_rounds: int = 200
    tol: float = 1e-9
    epsilon: Optional[float] = None
    trace_granularity: str = "round"
    early_stop_patience: Optional[int] = None
    early_stop_tol: float = 1e-6
    priorities: Optional["PriorityModel"] = None
    verify: bool = False
    trace: object = False
    engine: str = "vectorized"
    deadline_s: Optional[float] = None
    equity_mode: bool = False
    equity_baselines: Optional[Mapping[str, float]] = None
    equity_strength: float = DEFAULT_EQUITY_STRENGTH

    def __post_init__(self) -> None:
        if self.deadline_s is not None and not self.deadline_s > 0:
            raise ValueError(
                f"deadline_s must be > 0 or None, got {self.deadline_s!r}"
            )
        if self.trace_granularity not in ("round", "update"):
            raise ValueError(
                f"trace_granularity must be 'round' or 'update', "
                f"got {self.trace_granularity!r}"
            )
        if self.engine not in ("vectorized", "scalar"):
            raise ValueError(
                f"engine must be 'vectorized' or 'scalar', got {self.engine!r}"
            )
        if self.early_stop_patience is not None and self.early_stop_patience < 1:
            raise ValueError(
                f"early_stop_patience must be >= 1 or None, "
                f"got {self.early_stop_patience!r}"
            )
        if not self.equity_strength > 0:
            raise ValueError(
                f"equity_strength must be > 0, got {self.equity_strength!r}"
            )

    @property
    def name(self) -> str:
        return "FGT" if self.epsilon is not None else "FGT-W"

    def solve(
        self,
        sub: SubProblem,
        catalog: Optional[VDPSCatalog] = None,
        seed: SeedLike = None,
    ) -> GameResult:
        """Run Algorithm 2 on ``sub`` and return the equilibrium assignment."""
        tracer = resolve_tracer(self.trace)
        if catalog is None:
            catalog = build_catalog(sub, epsilon=self.epsilon, tracer=tracer)
        model = InequityAversion(self.alpha, self.beta)
        rng = ensure_rng(seed)
        state = random_initial_state(catalog, rng)
        trace = ConvergenceTrace()
        scales = self._utility_scales(state)
        base = self._equity_base(state)
        if base is not None:
            model = equity_model(model, self.equity_strength)
        verifier: NullVerifier = NULL_VERIFIER
        if verification_enabled(self.verify):
            verifier = PotentialGameVerifier(
                model,
                scales=scales,
                tol=self.tol,
                solver=self.name,
                offsets=base,
                # Lemma 2's monotone-potential argument holds for IAU
                # weights <= 1/2; the amplified equity model voids it
                # (see core.fairness.equity_model), so only the
                # recompute/switch/Nash checks apply in equity mode.
                monotone=base is None,
            )
        verifier.on_solve_start(state)
        if tracer.enabled:
            tracer.event(
                "fgt.solve_start",
                solver=self.name,
                center=sub.center.center_id,
                workers=len(state.workers),
                strategies=catalog.total_strategy_count,
                epsilon=self.epsilon,
            )

        converged = False
        rounds = 0
        total_switches = 0
        stall = 0
        last_potential = potential_value(
            _effective(state.payoffs(), scales, base), model
        )
        vectorized = self.engine == "vectorized"
        # Vectorized-filter batch statistics, flushed to METRICS once per
        # solve: [batches, strategies screened, candidates surviving].
        batch_stats = [0, 0, 0]
        deadline_at = (
            None if self.deadline_s is None else time.monotonic() + self.deadline_s
        )
        with METRICS.timer("fgt.solve_seconds"):
            for rounds in range(1, self.max_rounds + 1):
                if vectorized:
                    switches = self._best_response_round_vectorized(
                        state, model, trace, scales, rng, verifier, rounds,
                        tracer, batch_stats, base,
                    )
                else:
                    switches = self._best_response_round(
                        state, model, trace, scales, rng, verifier, rounds,
                        tracer, base,
                    )
                total_switches += switches
                payoffs = state.payoffs()
                potential = potential_value(_effective(payoffs, scales, base), model)
                if self.trace_granularity == "round":
                    trace.record(rounds, payoffs, switches, potential)
                verifier.on_round(rounds, payoffs, potential, switches)
                if tracer.enabled:
                    tracer.event(
                        "fgt.round",
                        round=rounds,
                        switches=switches,
                        potential=potential,
                    )
                if switches == 0:
                    converged = True
                    break
                if deadline_at is not None and time.monotonic() >= deadline_at:
                    METRICS.counter("fgt.deadline_stops").add(1)
                    break
                if self.early_stop_patience is not None:
                    if potential - last_potential < self.early_stop_tol:
                        stall += 1
                        if stall >= self.early_stop_patience:
                            break
                    else:
                        stall = 0
                last_potential = potential
        if not converged:
            logger.warning(
                "FGT did not reach a Nash equilibrium within %d rounds", self.max_rounds
            )
        METRICS.counter("fgt.rounds").add(rounds)
        METRICS.counter("fgt.switches").add(total_switches)
        if batch_stats[0]:
            METRICS.counter("engine.filter_batches").add(batch_stats[0])
            METRICS.counter("engine.candidates_screened").add(batch_stats[1])
            METRICS.counter("engine.candidates_available").add(batch_stats[2])
        assignment = state.to_assignment()
        verifier.on_final(state, assignment, sub=sub, converged=converged)
        if tracer.enabled:
            tracer.event(
                "fgt.solve_end",
                solver=self.name,
                center=sub.center.center_id,
                rounds=rounds,
                switches=total_switches,
                converged=converged,
            )
        return GameResult(assignment, trace, converged, rounds)

    def _utility_scales(self, state: GameState) -> np.ndarray:
        """Per-worker payoff scaling for the utility computation.

        All ones for the plain IAU game; ``1 / priority_i`` under the
        priority-aware extension, which turns the utilities into IAU over
        priority-normalised payoffs.
        """
        if self.priorities is None:
            return np.ones(len(state.workers))
        return np.array(
            [1.0 / self.priorities.priority_of(w.worker_id) for w in state.workers]
        )

    def _equity_base(self, state: GameState) -> Optional[np.ndarray]:
        """Per-worker cumulative-payoff offsets, or ``None`` when equity is off.

        Workers missing from ``equity_baselines`` (newly joined since the
        ledger last recorded) start from a zero base, which is exactly the
        envied-at position the equity game should put a newcomer in.
        """
        if not self.equity_mode:
            return None
        baselines = self.equity_baselines or {}
        return np.array(
            [float(baselines.get(w.worker_id, 0.0)) for w in state.workers]
        )

    def _best_response_round(
        self,
        state: GameState,
        model: InequityAversion,
        trace: ConvergenceTrace,
        scales: np.ndarray,
        rng,
        verifier: NullVerifier = NULL_VERIFIER,
        round_index: int = 0,
        tracer: NullTracer = NULL_TRACER,
        base: Optional[np.ndarray] = None,
    ) -> int:
        """One pass of sequential asynchronous best responses; returns switches.

        This is the scalar reference implementation (``engine="scalar"``);
        the vectorized engine must stay bit-identical to it, including the
        seeded tie-break.  When several available strategies share the
        accepted best utility *exactly*, one is drawn uniformly from
        ``rng`` instead of keeping the first in catalog order — the
        catalog lists VDPSs in a fixed canonical order, so first-wins
        would systematically favour the same point sets across rounds and
        workers.  Tied strategies have equal utility by definition, so the
        draw never changes the switch decision or the potential, only
        *which* equally-good VDPS the worker claims.
        """
        switches = 0
        payoffs = state.payoffs()
        for idx, worker in enumerate(state.workers):
            wid = worker.worker_id
            others = np.delete(_effective(payoffs, scales, base), idx)
            evaluator = IAUEvaluator(others, model)
            current = state.strategy_of(wid)
            best_strategy = NULL_STRATEGY
            null_value = (
                NULL_STRATEGY.payoff
                if base is None
                else NULL_STRATEGY.payoff * scales[idx] + base[idx]
            )
            best_utility = evaluator.utility(null_value)
            available = list(state.available_strategies(wid))
            utilities = []
            accepted_any = False
            for strategy in available:
                value = strategy.payoff * scales[idx]
                if base is not None:
                    value = value + base[idx]
                u = evaluator.utility(value)
                utilities.append(u)
                if u > best_utility + self.tol:
                    best_strategy, best_utility = strategy, u
                    accepted_any = True
            if accepted_any:
                ties = [i for i, u in enumerate(utilities) if u == best_utility]
                if len(ties) > 1:
                    best_strategy = available[ties[int(rng.integers(len(ties)))]]
            current_value = current.payoff * scales[idx]
            if base is not None:
                current_value = current_value + base[idx]
            current_utility = evaluator.utility(current_value)
            switched = 0
            if best_utility > current_utility + self.tol:
                verifier.on_switch(wid, round_index, current_utility, best_utility)
                if tracer.enabled:
                    tracer.event(
                        "fgt.switch",
                        worker=wid,
                        round=round_index,
                        utility_before=current_utility,
                        utility_after=best_utility,
                        payoff=best_strategy.payoff,
                    )
                state.set_strategy(wid, best_strategy)
                payoffs[idx] = best_strategy.payoff
                switches += 1
                switched = 1
            if self.trace_granularity == "update":
                trace.record(
                    len(trace) + 1,
                    payoffs,
                    switched,
                    potential_value(_effective(payoffs, scales, base), model),
                )
        return switches

    def _best_response_round_vectorized(
        self,
        state: GameState,
        model: InequityAversion,
        trace: ConvergenceTrace,
        scales: np.ndarray,
        rng,
        verifier: NullVerifier,
        round_index: int,
        tracer: NullTracer,
        batch_stats: list,
        base: Optional[np.ndarray] = None,
    ) -> int:
        """One best-response pass on the bitmask index, bit-identical to
        :meth:`_best_response_round`.

        Differences are purely mechanical: availability is one
        ``masks & claimed`` pass per worker instead of per-strategy set
        intersections, all candidate IAUs are evaluated in one
        ``np.searchsorted`` batch, and the scaled payoff vector is
        maintained incrementally (the focal entry is masked out via slice
        copies into a reusable buffer) instead of being rebuilt with
        ``payoffs * scales`` + ``np.delete`` for every worker.  The winning
        candidate is chosen by :func:`sequential_best`, which replays the
        scalar loop's tol-thresholded accept scan exactly; exact-utility
        ties are then broken by the same seeded draw as the scalar loop
        (the batched utilities are bit-equal per element, so tie sets —
        and hence the two engines' rng streams — coincide).
        """
        switches = 0
        payoffs = state.payoffs()
        scaled = _effective(payoffs, scales, base)
        n = payoffs.size
        others = np.empty(n - 1 if n else 0, dtype=np.float64)
        catalog = state.catalog
        index = catalog.index
        for idx, worker in enumerate(state.workers):
            wid = worker.worker_id
            others[:idx] = scaled[:idx]
            others[idx:] = scaled[idx + 1 :]
            evaluator = IAUEvaluator(others, model)
            current = state.strategy_of(wid)
            best_strategy = NULL_STRATEGY
            null_value = (
                NULL_STRATEGY.payoff
                if base is None
                else NULL_STRATEGY.payoff * scales[idx] + base[idx]
            )
            best_utility = evaluator.utility(null_value)
            available = state.available_strategy_indices(wid)
            batch_stats[0] += 1
            batch_stats[1] += index.worker(wid).n_strategies
            batch_stats[2] += int(available.size)
            if available.size:
                candidates = index.worker(wid).payoffs[available] * scales[idx]
                if base is not None:
                    candidates = candidates + base[idx]
                utilities = evaluator.utilities(candidates)
                pos, accepted = sequential_best(utilities, best_utility, self.tol)
                if pos >= 0:
                    best_utility = accepted
                    ties = np.flatnonzero(utilities == accepted)
                    if ties.size > 1:
                        pos = int(ties[int(rng.integers(ties.size))])
                    best_strategy = catalog.strategies(wid)[int(available[pos])]
            current_value = current.payoff * scales[idx]
            if base is not None:
                current_value = current_value + base[idx]
            current_utility = evaluator.utility(current_value)
            switched = 0
            if best_utility > current_utility + self.tol:
                verifier.on_switch(wid, round_index, current_utility, best_utility)
                if tracer.enabled:
                    tracer.event(
                        "fgt.switch",
                        worker=wid,
                        round=round_index,
                        utility_before=current_utility,
                        utility_after=best_utility,
                        payoff=best_strategy.payoff,
                    )
                state.set_strategy(wid, best_strategy)
                payoffs[idx] = best_strategy.payoff
                value = best_strategy.payoff * scales[idx]
                scaled[idx] = value if base is None else value + base[idx]
                switches += 1
                switched = 1
            if self.trace_granularity == "update":
                trace.record(
                    len(trace) + 1,
                    payoffs,
                    switched,
                    potential_value(scaled, model),
                )
        return switches
