"""Potential-game machinery: fast IAU evaluation and Nash checks (Lemma 2).

Best response evaluates the IAU of one worker for many candidate payoffs
while everyone else's payoff stays fixed.  :class:`IAUEvaluator` sorts the
*others* once and answers each candidate in O(log n) via prefix sums, which
turns a round of best responses from O(|W|^2 |ST|) into
O(|W| (|W| log |W| + |ST| log |W|)).
"""

from __future__ import annotations

import bisect
from typing import Optional, Sequence, Tuple

import numpy as np

from repro.core.fairness import InequityAversion


class IAUEvaluator:
    """IAU of a focal worker as a function of its own payoff.

    Parameters
    ----------
    other_payoffs:
        Payoffs of the remaining ``n - 1`` workers (kept fixed).
    model:
        The :class:`InequityAversion` weights.
    """

    def __init__(
        self, other_payoffs: Sequence[float], model: InequityAversion
    ) -> None:
        self._model = model
        # asarray accepts ndarrays without copying; np.sort then makes the
        # evaluator's one private copy (callers may reuse their buffer).
        values = np.sort(np.asarray(other_payoffs, dtype=float))
        self._sorted = values
        self._prefix = np.concatenate(([0.0], np.cumsum(values)))
        self._n_others = values.size

    def utility(self, own_payoff: float) -> float:
        """IAU of the focal worker when its payoff is ``own_payoff``."""
        n_others = self._n_others
        if n_others == 0:
            return float(own_payoff)
        k = bisect.bisect_right(self._sorted, own_payoff)
        below = self._prefix[k]
        above = self._prefix[-1] - below
        lp = own_payoff * k - below  # focal ahead of k poorer workers
        mp = above - own_payoff * (n_others - k)  # richer workers' lead
        return float(
            own_payoff - (self._model.alpha * mp + self._model.beta * lp) / n_others
        )

    def utilities(self, own_payoffs: Sequence[float]) -> np.ndarray:
        """IAU for a whole vector of candidate payoffs in one pass.

        One ``np.searchsorted`` plus prefix-sum arithmetic over the batch.
        Every operation mirrors :meth:`utility` in the same order on the
        same float64 values, so each element is bit-identical to the scalar
        call — the property the vectorized best-response engine's
        bit-for-bit replay guarantee rests on.
        """
        values = np.asarray(own_payoffs, dtype=float)
        n_others = self._n_others
        if n_others == 0:
            return values.astype(float, copy=True)
        k = np.searchsorted(self._sorted, values, side="right")
        below = self._prefix[k]
        above = self._prefix[-1] - below
        lp = values * k - below
        mp = above - values * (n_others - k)
        return values - (self._model.alpha * mp + self._model.beta * lp) / n_others


def potential_value(payoffs: Sequence[float], model: InequityAversion) -> float:
    """The exact potential ``Phi = sum_i IAU_i`` of Lemma 2."""
    return model.potential(payoffs)


def sequential_best(
    utilities: np.ndarray, baseline: float, tol: float
) -> Tuple[int, float]:
    """Replay FGT's sequential accept scan over a precomputed utility batch.

    Algorithm 2's inner loop is *not* an argmax: starting from the null
    strategy's utility, a candidate is accepted only when it beats the
    current best by more than ``tol``, and later candidates within ``tol``
    of an accepted one never displace it.  This helper reproduces that exact
    scan with one vectorized comparison per *accepted* candidate (utilities
    arrive roughly descending, so almost always a single pass) instead of a
    Python-level loop over every candidate.

    Returns ``(position, best_utility)`` where ``position`` is -1 when no
    candidate was accepted (the baseline stands).
    """
    best = baseline
    best_pos = -1
    start = 0
    n = utilities.size
    while start < n:
        hits = utilities[start:] > best + tol
        offset = int(np.argmax(hits))
        if not hits[offset]:
            break
        best_pos = start + offset
        best = float(utilities[best_pos])
        start = best_pos + 1
    return best_pos, best


def best_response_index(
    candidate_payoffs: Sequence[float],
    other_payoffs: Optional[Sequence[float]] = None,
    model: Optional[InequityAversion] = None,
    evaluator: Optional[IAUEvaluator] = None,
) -> Tuple[int, float]:
    """Index and utility of the best candidate payoff under IAU.

    Ties are broken toward the lowest index, so passing candidates sorted by
    descending payoff reproduces "highest payoff among utility ties".

    Callers that evaluate many candidate sets against the same fixed
    ``other_payoffs`` should build one :class:`IAUEvaluator` and pass it as
    ``evaluator`` — its O(n log n) sort then happens once instead of per
    call.  When ``evaluator`` is given it takes precedence and
    ``other_payoffs``/``model`` may be omitted.
    """
    if not candidate_payoffs:
        raise ValueError("candidate_payoffs must be non-empty")
    if evaluator is None:
        if other_payoffs is None or model is None:
            raise ValueError(
                "either a prebuilt evaluator or (other_payoffs, model) is required"
            )
        evaluator = IAUEvaluator(other_payoffs, model)
    # np.argmax returns the first position of the maximum, which is exactly
    # the running strictly-greater scan this function used to perform.
    utilities = evaluator.utilities(np.asarray(candidate_payoffs, dtype=float))
    best_idx = int(np.argmax(utilities))
    return best_idx, float(utilities[best_idx])


def is_pure_nash(
    state,
    model: InequityAversion,
    tol: float = 1e-9,
    scales: Optional[Sequence[float]] = None,
    offsets: Optional[Sequence[float]] = None,
) -> bool:
    """Whether no worker can strictly improve its IAU by a unilateral switch.

    "Unilateral" honours the conflict structure: a worker may only move to
    strategies disjoint from the points currently claimed by others.
    ``scales`` (optional, one factor per worker) checks the equilibrium of
    the priority-normalised game instead, where utilities are IAU over
    ``payoff * scale`` (the FGT ``priorities=`` extension).  ``offsets``
    (optional, one addend per worker) checks the ledger-weighted equity
    game, where utilities are IAU over the *effective* payoff
    ``payoff * scale + offset`` — the offset being the worker's decayed
    cumulative payoff from the :class:`~repro.equity.ledger.EquityLedger`
    (null deviation included: idling still leaves the cumulative base).
    """
    payoffs = state.payoffs()
    factors = np.ones(payoffs.size) if scales is None else np.asarray(scales)
    base = None if offsets is None else np.asarray(offsets, dtype=float)
    scaled = payoffs * factors if base is None else payoffs * factors + base
    # States built on a VDPSCatalog expose the bitmask conflict index; the
    # candidate scan then runs as one batched IAU evaluation per worker.
    # Both branches decide "some deviation beats current by more than tol"
    # over identical utility values, so they return the same verdict.
    vectorized = hasattr(state, "available_strategy_indices")
    for idx, worker in enumerate(state.workers):
        others = np.delete(scaled, idx)
        evaluator = IAUEvaluator(others, model)
        current_utility = evaluator.utility(scaled[idx])
        null_value = 0.0 if base is None else 0.0 * factors[idx] + base[idx]
        if evaluator.utility(null_value) > current_utility + tol:  # null deviation
            return False
        if vectorized:
            available = state.available_strategy_indices(worker.worker_id)
            if available.size:
                candidates = (
                    state.catalog.index.worker(worker.worker_id).payoffs[available]
                    * factors[idx]
                )
                if base is not None:
                    candidates = candidates + base[idx]
                if bool(
                    np.any(evaluator.utilities(candidates) > current_utility + tol)
                ):
                    return False
        else:
            for strategy in state.available_strategies(worker.worker_id):
                value = strategy.payoff * factors[idx]
                if base is not None:
                    value = value + base[idx]
                if evaluator.utility(value) > current_utility + tol:
                    return False
    return True
