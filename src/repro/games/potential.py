"""Potential-game machinery: fast IAU evaluation and Nash checks (Lemma 2).

Best response evaluates the IAU of one worker for many candidate payoffs
while everyone else's payoff stays fixed.  :class:`IAUEvaluator` sorts the
*others* once and answers each candidate in O(log n) via prefix sums, which
turns a round of best responses from O(|W|^2 |ST|) into
O(|W| (|W| log |W| + |ST| log |W|)).
"""

from __future__ import annotations

import bisect
from typing import Optional, Sequence, Tuple

import numpy as np

from repro.core.fairness import InequityAversion


class IAUEvaluator:
    """IAU of a focal worker as a function of its own payoff.

    Parameters
    ----------
    other_payoffs:
        Payoffs of the remaining ``n - 1`` workers (kept fixed).
    model:
        The :class:`InequityAversion` weights.
    """

    def __init__(
        self, other_payoffs: Sequence[float], model: InequityAversion
    ) -> None:
        self._model = model
        values = np.sort(np.asarray(list(other_payoffs), dtype=float))
        self._sorted = values
        self._prefix = np.concatenate(([0.0], np.cumsum(values)))
        self._n_others = values.size

    def utility(self, own_payoff: float) -> float:
        """IAU of the focal worker when its payoff is ``own_payoff``."""
        n_others = self._n_others
        if n_others == 0:
            return float(own_payoff)
        k = bisect.bisect_right(self._sorted, own_payoff)
        below = self._prefix[k]
        above = self._prefix[-1] - below
        lp = own_payoff * k - below  # focal ahead of k poorer workers
        mp = above - own_payoff * (n_others - k)  # richer workers' lead
        return float(
            own_payoff - (self._model.alpha * mp + self._model.beta * lp) / n_others
        )


def potential_value(payoffs: Sequence[float], model: InequityAversion) -> float:
    """The exact potential ``Phi = sum_i IAU_i`` of Lemma 2."""
    return model.potential(payoffs)


def best_response_index(
    candidate_payoffs: Sequence[float],
    other_payoffs: Optional[Sequence[float]] = None,
    model: Optional[InequityAversion] = None,
    evaluator: Optional[IAUEvaluator] = None,
) -> Tuple[int, float]:
    """Index and utility of the best candidate payoff under IAU.

    Ties are broken toward the lowest index, so passing candidates sorted by
    descending payoff reproduces "highest payoff among utility ties".

    Callers that evaluate many candidate sets against the same fixed
    ``other_payoffs`` should build one :class:`IAUEvaluator` and pass it as
    ``evaluator`` — its O(n log n) sort then happens once instead of per
    call.  When ``evaluator`` is given it takes precedence and
    ``other_payoffs``/``model`` may be omitted.
    """
    if not candidate_payoffs:
        raise ValueError("candidate_payoffs must be non-empty")
    if evaluator is None:
        if other_payoffs is None or model is None:
            raise ValueError(
                "either a prebuilt evaluator or (other_payoffs, model) is required"
            )
        evaluator = IAUEvaluator(other_payoffs, model)
    best_idx, best_utility = 0, -np.inf
    for idx, p in enumerate(candidate_payoffs):
        u = evaluator.utility(p)
        if u > best_utility:
            best_idx, best_utility = idx, u
    return best_idx, float(best_utility)


def is_pure_nash(
    state,
    model: InequityAversion,
    tol: float = 1e-9,
    scales: Optional[Sequence[float]] = None,
) -> bool:
    """Whether no worker can strictly improve its IAU by a unilateral switch.

    "Unilateral" honours the conflict structure: a worker may only move to
    strategies disjoint from the points currently claimed by others.
    ``scales`` (optional, one factor per worker) checks the equilibrium of
    the priority-normalised game instead, where utilities are IAU over
    ``payoff * scale`` (the FGT ``priorities=`` extension).
    """
    payoffs = state.payoffs()
    factors = np.ones(payoffs.size) if scales is None else np.asarray(scales)
    scaled = payoffs * factors
    for idx, worker in enumerate(state.workers):
        others = np.delete(scaled, idx)
        evaluator = IAUEvaluator(others, model)
        current_utility = evaluator.utility(scaled[idx])
        if evaluator.utility(0.0) > current_utility + tol:  # null deviation
            return False
        for strategy in state.available_strategies(worker.worker_id):
            if evaluator.utility(strategy.payoff * factors[idx]) > current_utility + tol:
                return False
    return True
