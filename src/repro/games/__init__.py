"""Game-theoretic solvers: FGT (Algorithm 2) and IEGT (Algorithm 3)."""

from repro.games.base import GameResult, GameState, random_initial_state
from repro.games.potential import (
    IAUEvaluator,
    is_pure_nash,
    potential_value,
    sequential_best,
)
from repro.games.trace import ConvergenceTrace, TracePoint
from repro.games.fgt import FGTSolver
from repro.games.iegt import IEGTSolver

__all__ = [
    "GameState",
    "GameResult",
    "random_initial_state",
    "IAUEvaluator",
    "potential_value",
    "sequential_best",
    "is_pure_nash",
    "ConvergenceTrace",
    "TracePoint",
    "FGTSolver",
    "IEGTSolver",
]
