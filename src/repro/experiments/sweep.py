"""Parameter sweeps: one figure = one sweep of one knob over Table I grid."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Union

from repro.core.instance import ProblemInstance
from repro.experiments.runner import (
    AlgorithmSpec,
    CatalogCache,
    RunRecord,
    run_algorithms,
)
from repro.utils.rng import SeedLike

ParamValue = Union[int, float]

#: The metrics every figure reports, in the paper's panel order.
METRICS = ("payoff_difference", "average_payoff", "cpu_seconds")


@dataclass
class SweepResult:
    """All measurements of one parameter sweep (one paper figure).

    ``records[param_value][algorithm]`` holds the :class:`RunRecord` of one
    algorithm arm at one grid point.  ``series`` pivots that into plottable
    ``algorithm -> [metric at each grid point]`` arrays.
    """

    name: str
    parameter: str
    values: List[ParamValue]
    records: Dict[ParamValue, Dict[str, RunRecord]] = field(default_factory=dict)

    def add(self, value: ParamValue, arm_records: Sequence[RunRecord]) -> None:
        """Store the per-arm records measured at grid point ``value``."""
        self.records[value] = {r.algorithm: r for r in arm_records}

    @property
    def algorithms(self) -> List[str]:
        """Arm names in first-appearance order."""
        names: List[str] = []
        for value in self.values:
            for name in self.records.get(value, {}):
                if name not in names:
                    names.append(name)
        return names

    def series(self, metric: str, algorithm: str) -> List[float]:
        """The ``metric`` of ``algorithm`` across all grid points."""
        if metric not in METRICS:
            raise ValueError(f"unknown metric {metric!r}; expected one of {METRICS}")
        out = []
        for value in self.values:
            record = self.records[value][algorithm]
            out.append(record.as_dict()[metric])
        return out

    def record(self, value: ParamValue, algorithm: str) -> RunRecord:
        """The record of one algorithm arm at one grid value."""
        return self.records[value][algorithm]

    def as_dict(self) -> Dict:
        """JSON-friendly dump used by benches and EXPERIMENTS.md tooling.

        Besides the paper's three metric panels, the dump carries a
        ``diagnostics`` section — one entry per (algorithm, grid value)
        with convergence data and the arm's observability profile
        (:attr:`~repro.experiments.runner.RunRecord.metrics`) — so result
        files explain *how* each number was produced.
        """
        return {
            "name": self.name,
            "parameter": self.parameter,
            "values": list(self.values),
            "metrics": {
                metric: {
                    algorithm: self.series(metric, algorithm)
                    for algorithm in self.algorithms
                }
                for metric in METRICS
            },
            "diagnostics": {
                algorithm: [
                    None
                    if record is None
                    else {
                        "rounds": record.rounds,
                        "converged": record.converged,
                        "metrics": dict(record.metrics),
                    }
                    for value in self.values
                    for record in (self.records.get(value, {}).get(algorithm),)
                ]
                for algorithm in self.algorithms
            },
        }


def run_sweep(
    name: str,
    parameter: str,
    values: Sequence[ParamValue],
    make_instance: Callable[[ParamValue], ProblemInstance],
    algorithms: Sequence[AlgorithmSpec],
    epsilon_for: Callable[[ParamValue], Optional[float]],
    seed: SeedLike = None,
    unpruned: Sequence[AlgorithmSpec] = (),
) -> SweepResult:
    """Evaluate every algorithm arm at every grid point of one parameter.

    ``make_instance`` builds the instance for a grid value (the same seed
    is reused so only the swept knob varies); ``epsilon_for`` maps the grid
    value to the pruning threshold (identity for the epsilon sweeps of
    Figures 2-3, constant default elsewhere).
    """
    result = SweepResult(name=name, parameter=parameter, values=list(values))
    cache: Optional[CatalogCache] = None
    previous_instance: Optional[ProblemInstance] = None
    cached_unpruned: Optional[List[RunRecord]] = None
    for value in values:
        instance = make_instance(value)
        # Epsilon sweeps reuse one instance across grid points; keeping the
        # catalog cache alive there means the expensive unpruned (-W)
        # catalogs are built once per sweep, not once per grid point —
        # and the -W arms themselves, being epsilon-independent and
        # deterministic in (instance, seed), are computed once and
        # replicated as the flat lines the paper plots.
        same_instance = instance is previous_instance
        if cache is None or not same_instance:
            cache = CatalogCache()
            cached_unpruned = None
        previous_instance = instance
        records = run_algorithms(
            instance,
            algorithms,
            epsilon=epsilon_for(value),
            seed=seed,
            catalog_cache=cache,
            unpruned=() if cached_unpruned is not None else unpruned,
        )
        if unpruned:
            if cached_unpruned is None:
                cached_unpruned = [r for r in records if r.algorithm.endswith("-W")]
            else:
                records = records + cached_unpruned
        result.add(value, records)
    return result
