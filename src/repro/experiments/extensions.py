"""Extension experiments beyond the paper's figures.

Two studies the paper motivates but does not run, wired into the same
registry as Figures 2-12 so the CLI and benches can regenerate them:

* ``ext-longrun`` — the repeated-dispatch day (Section III's one-instant
  model looped by the simulator), reporting cumulative earning-rate
  fairness per policy.
* ``ext-metric`` — the default GM comparison re-run under Manhattan
  distances, checking the conclusions are not Euclidean artefacts.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.baselines.gta import GTASolver
from repro.baselines.maxmin import MaxMinSolver
from repro.core.instance import ProblemInstance
from repro.datasets.gmission import GMissionConfig, generate_gmission_like
from repro.experiments.config import Scale
from repro.experiments.report import format_series_table
from repro.games.iegt import IEGTSolver
from repro.geo.travel import TravelModel
from repro.sim import DispatchSimulator, PoissonTaskArrivals, SimConfig, SimReport
from repro.utils.rng import SeedLike
from repro.vdps.catalog import build_catalog

_SIM_SIZES = {
    Scale.SMOKE: dict(n_tasks=30, n_workers=6, n_delivery_points=12, horizon=2.0),
    Scale.CI: dict(n_tasks=60, n_workers=12, n_delivery_points=30, horizon=8.0),
    Scale.PAPER: dict(n_tasks=120, n_workers=24, n_delivery_points=60, horizon=12.0),
}


@dataclass
class LongRunStudy:
    """Per-policy simulation reports of the repeated-dispatch experiment."""

    reports: Dict[str, SimReport]

    def format(self) -> str:
        """ASCII table of the cumulative metrics, paper-report style."""
        rows = {
            name: [
                report.cumulative_payoff_difference,
                report.cumulative_average_payoff,
                report.completion_rate,
                float(report.completed_tasks),
            ]
            for name, report in self.reports.items()
        }
        return format_series_table(
            "Extension: repeated-dispatch day (cumulative metrics)",
            ["cum_P_dif", "cum_avgP", "completion", "completed"],
            rows,
        )


def ext_longrun(scale: Scale = Scale.CI, seed: SeedLike = 0) -> LongRunStudy:
    """Run the 3-policy dispatch-day simulation at the given scale."""
    sizes = _SIM_SIZES[scale]
    instance = generate_gmission_like(
        GMissionConfig(
            n_tasks=sizes["n_tasks"],
            n_workers=sizes["n_workers"],
            n_delivery_points=sizes["n_delivery_points"],
            expiry_min_hours=0.4,
            expiry_max_hours=1.2,
        ),
        seed=seed,
    )
    sub = instance.subproblems()[0]
    arrivals = PoissonTaskArrivals(
        sub.center.delivery_points, rate_per_hour=45.0, patience=(0.5, 1.2)
    )
    config = SimConfig(
        horizon_hours=sizes["horizon"], round_interval_hours=0.5, epsilon=0.8
    )
    reports: Dict[str, SimReport] = {}
    for solver in (
        GTASolver(epsilon=0.8),
        MaxMinSolver(epsilon=0.8),
        IEGTSolver(epsilon=0.8),
    ):
        simulator = DispatchSimulator(
            sub.center, sub.workers, arrivals, solver,
            travel=instance.travel, config=config,
        )
        reports[solver.name] = simulator.run(seed=seed)
    return LongRunStudy(reports)


@dataclass
class MetricSensitivityStudy:
    """Fairness/efficiency per (metric, solver) cell."""

    payoff_difference: Dict[str, List[float]]  # metric -> per-solver values
    average_payoff: Dict[str, List[float]]
    solvers: List[str]

    def format(self) -> str:
        """ASCII table with one row block per distance metric."""
        rows = {}
        for metric in self.payoff_difference:
            rows[f"P_dif ({metric})"] = self.payoff_difference[metric]
            rows[f"avgP ({metric})"] = self.average_payoff[metric]
        return format_series_table(
            "Extension: distance-metric sensitivity (GM defaults)",
            self.solvers,
            rows,
        )


def ext_metric_sensitivity(
    scale: Scale = Scale.CI, seed: SeedLike = 0
) -> MetricSensitivityStudy:
    """Re-run the GM comparison under Euclidean and Manhattan metrics."""
    from repro.games.fgt import FGTSolver

    if scale is Scale.SMOKE:
        config = GMissionConfig(n_tasks=60, n_workers=8, n_delivery_points=15)
    else:
        config = GMissionConfig()
    solvers = (GTASolver(epsilon=0.6), FGTSolver(epsilon=0.6), IEGTSolver(epsilon=0.6))
    names = [s.name for s in solvers]
    pdif: Dict[str, List[float]] = {}
    avgp: Dict[str, List[float]] = {}
    base = generate_gmission_like(config, seed=seed)
    for metric in ("euclidean", "manhattan"):
        travel = TravelModel(speed_kmh=5.0, metric=metric)
        instance = ProblemInstance(base.centers, base.workers, travel)
        sub = instance.subproblems()[0]
        catalog = build_catalog(sub, epsilon=0.6)
        assignments = [
            solver.solve(sub, catalog=catalog, seed=seed).assignment
            for solver in solvers
        ]
        pdif[metric] = [a.payoff_difference for a in assignments]
        avgp[metric] = [a.average_payoff for a in assignments]
    return MetricSensitivityStudy(pdif, avgp, names)
