"""One entry point per paper figure (Figures 2-12).

Each ``figN`` function reproduces one figure's experiment: it sweeps the
figure's parameter over its Table I grid, runs the paper's algorithm arms,
and returns a :class:`~repro.experiments.sweep.SweepResult` (Figures 2-11)
or a :class:`ConvergenceStudy` (Figure 12).  The figure functions are pure
given ``(scale, seed)``, so benches and docs regenerate identical numbers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence

from repro.core.instance import ProblemInstance
from repro.datasets.gmission import GMissionConfig, generate_gmission_like
from repro.datasets.synthetic import SynConfig, generate_synthetic
from repro.experiments.config import GM_GRID, SYN_GRID, SYN_SPACE_KM, ExperimentGrid, Scale
from repro.experiments.runner import default_algorithms, unpruned_variants
from repro.experiments.sweep import ParamValue, SweepResult, run_sweep
from repro.games import ConvergenceTrace, FGTSolver, IEGTSolver
from repro.utils.rng import RngFactory, SeedLike
from repro.vdps.catalog import build_catalog

# Workers per GM instance scale with the grid's defaults; the GM dataset has
# one distribution center (the task centroid) by construction.


def _gm_config(
    grid: ExperimentGrid,
    n_tasks: Optional[int] = None,
    n_workers: Optional[int] = None,
    n_dps: Optional[int] = None,
) -> GMissionConfig:
    tasks = n_tasks if n_tasks is not None else grid.tasks_default
    dps = n_dps if n_dps is not None else grid.dps_default
    return GMissionConfig(
        n_tasks=tasks,
        n_workers=n_workers if n_workers is not None else grid.workers_default,
        n_delivery_points=min(dps, tasks),
    )


def _syn_config(
    grid: ExperimentGrid,
    scale: Scale,
    n_tasks: Optional[int] = None,
    n_workers: Optional[int] = None,
    n_dps: Optional[int] = None,
    expiry: Optional[float] = None,
    maxdp: Optional[int] = None,
) -> SynConfig:
    return SynConfig(
        n_centers=grid.n_centers,
        n_workers=n_workers if n_workers is not None else grid.workers_default,
        n_delivery_points=n_dps if n_dps is not None else grid.dps_default,
        n_tasks=n_tasks if n_tasks is not None else grid.tasks_default,
        expiry_hours=expiry if expiry is not None else grid.expiry_default,
        max_delivery_points=maxdp if maxdp is not None else grid.maxdp_default,
        space_km=SYN_SPACE_KM[scale],
    )


def _sweep(
    name: str,
    parameter: str,
    values: Sequence[ParamValue],
    make_instance: Callable[[ParamValue], ProblemInstance],
    default_epsilon: Optional[float],
    seed: SeedLike,
    include_mpta: bool,
    epsilon_is_parameter: bool = False,
    with_unpruned: bool = False,
) -> SweepResult:
    algorithms = default_algorithms(include_mpta=include_mpta)
    unpruned = unpruned_variants(algorithms) if with_unpruned else ()
    epsilon_for = (
        (lambda value: float(value))
        if epsilon_is_parameter
        else (lambda value: default_epsilon)
    )
    return run_sweep(
        name=name,
        parameter=parameter,
        values=values,
        make_instance=make_instance,
        algorithms=algorithms,
        epsilon_for=epsilon_for,
        seed=seed,
        unpruned=unpruned,
    )


# --- Figures 2-3: effect of the pruning threshold epsilon ------------------


def fig2_epsilon_gm(
    scale: Scale = Scale.CI, seed: SeedLike = 0, include_mpta: bool = True
) -> SweepResult:
    """Figure 2: epsilon sweep on GM, pruned arms vs unpruned ``-W`` arms."""
    grid = GM_GRID[scale]
    instance = generate_gmission_like(_gm_config(grid), seed=seed)
    return _sweep(
        "Figure 2 (GM)",
        "epsilon_km",
        list(grid.epsilon_grid),
        lambda value: instance,
        default_epsilon=grid.epsilon_default,
        seed=seed,
        include_mpta=include_mpta,
        epsilon_is_parameter=True,
        with_unpruned=True,
    )


def fig3_epsilon_syn(
    scale: Scale = Scale.CI, seed: SeedLike = 0, include_mpta: bool = True
) -> SweepResult:
    """Figure 3: epsilon sweep on SYN, pruned arms vs unpruned ``-W`` arms."""
    grid = SYN_GRID[scale]
    instance = generate_synthetic(_syn_config(grid, scale), seed=seed)
    return _sweep(
        "Figure 3 (SYN)",
        "epsilon_km",
        list(grid.epsilon_grid),
        lambda value: instance,
        default_epsilon=grid.epsilon_default,
        seed=seed,
        include_mpta=include_mpta,
        epsilon_is_parameter=True,
        with_unpruned=True,
    )


# --- Figures 4-5: effect of the number of tasks |S| -------------------------


def fig4_tasks_gm(
    scale: Scale = Scale.CI, seed: SeedLike = 0, include_mpta: bool = True
) -> SweepResult:
    """Figure 4: |S| sweep on GM."""
    grid = GM_GRID[scale]
    return _sweep(
        "Figure 4 (GM)",
        "tasks",
        list(grid.tasks_grid),
        lambda value: generate_gmission_like(
            _gm_config(grid, n_tasks=int(value)), seed=seed
        ),
        default_epsilon=grid.epsilon_default,
        seed=seed,
        include_mpta=include_mpta,
    )


def fig5_tasks_syn(
    scale: Scale = Scale.CI, seed: SeedLike = 0, include_mpta: bool = True
) -> SweepResult:
    """Figure 5: |S| sweep on SYN."""
    grid = SYN_GRID[scale]
    return _sweep(
        "Figure 5 (SYN)",
        "tasks",
        list(grid.tasks_grid),
        lambda value: generate_synthetic(
            _syn_config(grid, scale, n_tasks=int(value)), seed=seed
        ),
        default_epsilon=grid.epsilon_default,
        seed=seed,
        include_mpta=include_mpta,
    )


# --- Figures 6-7: effect of the number of workers |W| -----------------------


def fig6_workers_gm(
    scale: Scale = Scale.CI, seed: SeedLike = 0, include_mpta: bool = True
) -> SweepResult:
    """Figure 6: |W| sweep on GM."""
    grid = GM_GRID[scale]
    return _sweep(
        "Figure 6 (GM)",
        "workers",
        list(grid.workers_grid),
        lambda value: generate_gmission_like(
            _gm_config(grid, n_workers=int(value)), seed=seed
        ),
        default_epsilon=grid.epsilon_default,
        seed=seed,
        include_mpta=include_mpta,
    )


def fig7_workers_syn(
    scale: Scale = Scale.CI, seed: SeedLike = 0, include_mpta: bool = True
) -> SweepResult:
    """Figure 7: |W| sweep on SYN."""
    grid = SYN_GRID[scale]
    return _sweep(
        "Figure 7 (SYN)",
        "workers",
        list(grid.workers_grid),
        lambda value: generate_synthetic(
            _syn_config(grid, scale, n_workers=int(value)), seed=seed
        ),
        default_epsilon=grid.epsilon_default,
        seed=seed,
        include_mpta=include_mpta,
    )


# --- Figures 8-9: effect of the number of delivery points |DP| --------------


def fig8_dps_gm(
    scale: Scale = Scale.CI, seed: SeedLike = 0, include_mpta: bool = True
) -> SweepResult:
    """Figure 8: |DP| sweep on GM."""
    grid = GM_GRID[scale]
    return _sweep(
        "Figure 8 (GM)",
        "delivery_points",
        list(grid.dps_grid),
        lambda value: generate_gmission_like(
            _gm_config(grid, n_dps=int(value)), seed=seed
        ),
        default_epsilon=grid.epsilon_default,
        seed=seed,
        include_mpta=include_mpta,
    )


def fig9_dps_syn(
    scale: Scale = Scale.CI, seed: SeedLike = 0, include_mpta: bool = True
) -> SweepResult:
    """Figure 9: |DP| sweep on SYN."""
    grid = SYN_GRID[scale]
    return _sweep(
        "Figure 9 (SYN)",
        "delivery_points",
        list(grid.dps_grid),
        lambda value: generate_synthetic(
            _syn_config(grid, scale, n_dps=int(value)), seed=seed
        ),
        default_epsilon=grid.epsilon_default,
        seed=seed,
        include_mpta=include_mpta,
    )


# --- Figure 10: effect of the task expiration time e (SYN) ------------------


def fig10_expiry_syn(
    scale: Scale = Scale.CI, seed: SeedLike = 0, include_mpta: bool = True
) -> SweepResult:
    """Figure 10: expiration-time sweep on SYN."""
    grid = SYN_GRID[scale]
    return _sweep(
        "Figure 10 (SYN)",
        "expiry_hours",
        list(grid.expiry_grid),
        lambda value: generate_synthetic(
            _syn_config(grid, scale, expiry=float(value)), seed=seed
        ),
        default_epsilon=grid.epsilon_default,
        seed=seed,
        include_mpta=include_mpta,
    )


# --- Figure 11: effect of maxDP (SYN) ----------------------------------------


def fig11_maxdp_syn(
    scale: Scale = Scale.CI, seed: SeedLike = 0, include_mpta: bool = True
) -> SweepResult:
    """Figure 11: maxDP sweep on SYN."""
    grid = SYN_GRID[scale]
    return _sweep(
        "Figure 11 (SYN)",
        "maxDP",
        list(grid.maxdp_grid),
        lambda value: generate_synthetic(
            _syn_config(grid, scale, maxdp=int(value)), seed=seed
        ),
        default_epsilon=grid.epsilon_default,
        seed=seed,
        include_mpta=include_mpta,
    )


# --- Figure 12: convergence of the game-theoretic approaches ----------------


@dataclass
class ConvergenceStudy:
    """Per-round convergence traces of FGT and IEGT (Figure 12's data)."""

    name: str
    traces: Dict[str, ConvergenceTrace]

    def series(self, algorithm: str, field: str = "payoff_difference") -> List[float]:
        """Per-iteration values of one trace field for ``algorithm``."""
        return self.traces[algorithm].series(field)

    @property
    def rounds(self) -> Dict[str, int]:
        return {name: len(trace) for name, trace in self.traces.items()}


def fig12_convergence(
    scale: Scale = Scale.CI, seed: SeedLike = 0, dataset: str = "gm"
) -> ConvergenceStudy:
    """Figure 12: convergence of FGT and IEGT on a default instance."""
    if dataset == "gm":
        grid = GM_GRID[scale]
        instance = generate_gmission_like(_gm_config(grid), seed=seed)
        epsilon: Optional[float] = grid.epsilon_default
    elif dataset == "syn":
        grid = SYN_GRID[scale]
        instance = generate_synthetic(_syn_config(grid, scale), seed=seed)
        epsilon = grid.epsilon_default
    else:
        raise ValueError(f"dataset must be 'gm' or 'syn', got {dataset!r}")

    rng_factory = RngFactory(seed)
    traces: Dict[str, ConvergenceTrace] = {}
    for name, solver in (
        ("FGT", FGTSolver(epsilon=epsilon, trace_granularity="update")),
        ("IEGT", IEGTSolver(epsilon=epsilon, trace_granularity="update")),
    ):
        traces[name] = _first_center_trace(instance, solver, rng_factory, name, epsilon)
    return ConvergenceStudy(f"Figure 12 ({dataset.upper()})", traces)


def _first_center_trace(
    instance: ProblemInstance,
    solver,
    rng_factory: RngFactory,
    name: str,
    epsilon: Optional[float],
) -> ConvergenceTrace:
    """Convergence trace on the instance's first (largest) sub-problem."""
    subproblems = sorted(
        instance.subproblems(), key=lambda s: len(s.workers), reverse=True
    )
    sub = subproblems[0]
    catalog = build_catalog(sub, epsilon=epsilon)
    result = solver.solve(
        sub, catalog=catalog, seed=rng_factory.get(f"trace:{name}")
    )
    return result.trace
