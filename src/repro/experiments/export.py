"""Export sweep results to JSON and CSV for external analysis/plotting.

Benches print ASCII tables and save SVGs; pipelines that post-process
results (notebooks, R, gnuplot) want machine-readable files instead.  The
formats are deliberately flat: one JSON document per sweep, or one tidy
CSV with a row per (grid value, algorithm) pair.
"""

from __future__ import annotations

import csv
import json
from pathlib import Path
from typing import Union

from repro.experiments.sweep import METRICS, SweepResult

PathLike = Union[str, Path]


def sweep_to_json(result: SweepResult, path: PathLike, indent: int = 2) -> Path:
    """Write ``result.as_dict()`` as a JSON document; returns the path."""
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    target.write_text(json.dumps(result.as_dict(), indent=indent) + "\n")
    return target


def load_sweep_json(path: PathLike) -> dict:
    """Read back a document written by :func:`sweep_to_json`."""
    return json.loads(Path(path).read_text())


def sweep_to_csv(result: SweepResult, path: PathLike) -> Path:
    """Write the sweep as tidy CSV: one row per (value, algorithm).

    Columns: the swept parameter, ``algorithm``, then one column per
    metric — the layout pandas/R users expect for ggplot-style plotting.
    """
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    with target.open("w", newline="") as fh:
        writer = csv.writer(fh)
        writer.writerow([result.parameter, "algorithm", *METRICS])
        for value in result.values:
            for algorithm in result.algorithms:
                record = result.record(value, algorithm)
                row = [value, algorithm]
                row.extend(record.as_dict()[metric] for metric in METRICS)
                writer.writerow(row)
    return target


def load_sweep_csv(path: PathLike) -> list:
    """Read back the rows written by :func:`sweep_to_csv` as dicts."""
    with Path(path).open(newline="") as fh:
        return list(csv.DictReader(fh))
