"""Experiment harness reproducing the paper's evaluation (Figures 2-12)."""

from repro.experiments.config import (
    GM_GRID,
    SYN_GRID,
    ExperimentGrid,
    Scale,
)
from repro.experiments.runner import AlgorithmSpec, RunRecord, default_algorithms, run_algorithms
from repro.experiments.sweep import SweepResult, run_sweep
from repro.experiments.report import format_series_table, format_sweep
from repro.experiments.registry import EXPERIMENTS, get_experiment, list_experiments

__all__ = [
    "Scale",
    "ExperimentGrid",
    "GM_GRID",
    "SYN_GRID",
    "AlgorithmSpec",
    "RunRecord",
    "default_algorithms",
    "run_algorithms",
    "SweepResult",
    "run_sweep",
    "format_sweep",
    "format_series_table",
    "EXPERIMENTS",
    "get_experiment",
    "list_experiments",
]
