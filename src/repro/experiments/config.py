"""Table I parameter grids and the CI/paper scaling policy.

The paper's SYN grids target a dual-Xeon server; per DESIGN.md §4 we keep
the paper's *per-center* densities but shrink the number of centers (and
with it the global counts) at ``Scale.CI``.  ``Scale.PAPER`` restores the
literal Table I values.  GM grids are small enough to keep verbatim at
both scales (the ``Scale.CI`` GM instance sizes equal the paper's).
Underlined (default) values from Table I are exposed as ``*_default``.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, Tuple


class Scale(enum.Enum):
    """How large the experiment instances are.

    ``CI``: laptop-friendly sizes preserving the paper's per-center
    densities; ``PAPER``: the literal Table I sizes; ``SMOKE``: tiny sizes
    for tests of the harness itself.
    """

    SMOKE = "smoke"
    CI = "ci"
    PAPER = "paper"


@dataclass(frozen=True)
class ExperimentGrid:
    """One dataset's Table I column: grids plus underlined defaults."""

    epsilon_grid: Tuple[float, ...]
    epsilon_default: float
    tasks_grid: Tuple[int, ...]
    tasks_default: int
    workers_grid: Tuple[int, ...]
    workers_default: int
    dps_grid: Tuple[int, ...]
    dps_default: int
    expiry_grid: Tuple[float, ...] = ()
    expiry_default: float = 2.0
    maxdp_grid: Tuple[int, ...] = ()
    maxdp_default: int = 3
    n_centers: int = 1

    def __post_init__(self) -> None:
        pairs = [
            (self.epsilon_grid, self.epsilon_default, "epsilon"),
            (self.tasks_grid, self.tasks_default, "tasks"),
            (self.workers_grid, self.workers_default, "workers"),
            (self.dps_grid, self.dps_default, "dps"),
        ]
        if self.expiry_grid:
            pairs.append((self.expiry_grid, self.expiry_default, "expiry"))
        if self.maxdp_grid:
            pairs.append((self.maxdp_grid, self.maxdp_default, "maxdp"))
        for grid, default, name in pairs:
            if default not in grid:
                raise ValueError(
                    f"{name}_default {default!r} must be a member of its grid {grid!r}"
                )


# --- gMission-like grids (Table I GM rows, verbatim) -----------------------

_GM_FULL = ExperimentGrid(
    epsilon_grid=(0.2, 0.4, 0.6, 0.8, 1.0),
    epsilon_default=0.6,
    tasks_grid=(100, 200, 300, 400, 500),
    tasks_default=200,
    workers_grid=(20, 40, 60, 80, 100),
    workers_default=40,
    dps_grid=(20, 40, 60, 80, 100),
    dps_default=100,
    n_centers=1,
)

_GM_SMOKE = ExperimentGrid(
    epsilon_grid=(0.2, 0.6, 1.0),
    epsilon_default=0.6,
    tasks_grid=(40, 80),
    tasks_default=80,
    workers_grid=(6, 12),
    workers_default=12,
    dps_grid=(10, 20),
    dps_default=20,
    n_centers=1,
)

# --- SYN grids --------------------------------------------------------------

_SYN_PAPER = ExperimentGrid(
    epsilon_grid=(0.5, 1.0, 1.5, 2.0, 2.5, 3.0, 3.5, 4.0),
    epsilon_default=2.0,
    tasks_grid=(25_000, 50_000, 75_000, 100_000, 125_000),
    tasks_default=100_000,
    workers_grid=(1_000, 2_000, 3_000, 4_000, 5_000),
    workers_default=2_000,
    dps_grid=(3_000, 3_500, 4_000, 4_500, 5_000),
    dps_default=5_000,
    expiry_grid=(0.5, 1.0, 1.5, 2.0, 2.5),
    expiry_default=2.0,
    maxdp_grid=(1, 2, 3, 4),
    maxdp_default=3,
    n_centers=50,
)

# CI scale: 4 centers instead of 50 (factor 0.08); per-center densities as in
# the paper (e.g. 100K tasks / 50 centers = 2K per center -> 8K / 4 centers).
_SYN_CI = ExperimentGrid(
    epsilon_grid=(0.5, 1.0, 1.5, 2.0, 2.5, 3.0, 3.5, 4.0),
    epsilon_default=2.0,
    tasks_grid=(2_000, 4_000, 6_000, 8_000, 10_000),
    tasks_default=8_000,
    workers_grid=(80, 160, 240, 320, 400),
    workers_default=160,
    dps_grid=(240, 280, 320, 360, 400),
    dps_default=400,
    expiry_grid=(0.5, 1.0, 1.5, 2.0, 2.5),
    expiry_default=2.0,
    maxdp_grid=(1, 2, 3, 4),
    maxdp_default=3,
    n_centers=4,
)

_SYN_SMOKE = ExperimentGrid(
    epsilon_grid=(1.0, 2.0),
    epsilon_default=2.0,
    tasks_grid=(200, 400),
    tasks_default=400,
    workers_grid=(8, 16),
    workers_default=16,
    dps_grid=(20, 40),
    dps_default=40,
    expiry_grid=(1.0, 2.0),
    expiry_default=2.0,
    maxdp_grid=(1, 2, 3),
    maxdp_default=3,
    n_centers=2,
)

GM_GRID: Dict[Scale, ExperimentGrid] = {
    Scale.SMOKE: _GM_SMOKE,
    Scale.CI: _GM_FULL,
    Scale.PAPER: _GM_FULL,
}

SYN_GRID: Dict[Scale, ExperimentGrid] = {
    Scale.SMOKE: _SYN_SMOKE,
    Scale.CI: _SYN_CI,
    Scale.PAPER: _SYN_PAPER,
}

#: Space side length for SYN instances per scale (km); see DESIGN.md §4.
#: Chosen so per-km^2 delivery-point density matches the paper's
#: (5000 points / 100^2 km^2 = 0.5 per km^2) and each center's catchment
#: geometry (cell ~14x14 km at 50 centers) carries over to fewer centers.
SYN_SPACE_KM: Dict[Scale, float] = {
    Scale.SMOKE: 15.0,
    Scale.CI: 30.0,
    Scale.PAPER: 100.0,
}
