"""Registry mapping experiment ids (figure numbers) to harness entries.

``EXPERIMENTS["fig4"].run(scale=Scale.CI, seed=0)`` regenerates the data of
the paper's Figure 4; DESIGN.md's per-experiment index references these
ids.  Extension studies beyond the paper register under ``ext-*`` ids.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List

from repro.experiments import extensions, figures


@dataclass(frozen=True)
class ExperimentEntry:
    """One reproducible paper artefact (or registered extension study)."""

    experiment_id: str
    paper_artefact: str
    parameter: str
    dataset: str
    run: Callable  # (scale, seed, ...) -> SweepResult | ConvergenceStudy | study

    def describe(self) -> str:
        """One-line human-readable description of the experiment."""
        return (
            f"{self.experiment_id}: {self.paper_artefact} — varies "
            f"{self.parameter} on {self.dataset}"
        )


EXPERIMENTS: Dict[str, ExperimentEntry] = {
    entry.experiment_id: entry
    for entry in (
        ExperimentEntry("fig2", "Figure 2", "epsilon", "GM", figures.fig2_epsilon_gm),
        ExperimentEntry("fig3", "Figure 3", "epsilon", "SYN", figures.fig3_epsilon_syn),
        ExperimentEntry("fig4", "Figure 4", "|S|", "GM", figures.fig4_tasks_gm),
        ExperimentEntry("fig5", "Figure 5", "|S|", "SYN", figures.fig5_tasks_syn),
        ExperimentEntry("fig6", "Figure 6", "|W|", "GM", figures.fig6_workers_gm),
        ExperimentEntry("fig7", "Figure 7", "|W|", "SYN", figures.fig7_workers_syn),
        ExperimentEntry("fig8", "Figure 8", "|DP|", "GM", figures.fig8_dps_gm),
        ExperimentEntry("fig9", "Figure 9", "|DP|", "SYN", figures.fig9_dps_syn),
        ExperimentEntry("fig10", "Figure 10", "e", "SYN", figures.fig10_expiry_syn),
        ExperimentEntry("fig11", "Figure 11", "maxDP", "SYN", figures.fig11_maxdp_syn),
        ExperimentEntry(
            "fig12", "Figure 12", "iteration", "GM+SYN", figures.fig12_convergence
        ),
        ExperimentEntry(
            "ext-longrun",
            "Extension: repeated-dispatch day",
            "policy",
            "GM-sim",
            extensions.ext_longrun,
        ),
        ExperimentEntry(
            "ext-metric",
            "Extension: distance-metric sensitivity",
            "metric",
            "GM",
            extensions.ext_metric_sensitivity,
        ),
    )
}


def get_experiment(experiment_id: str) -> ExperimentEntry:
    """Look up an experiment; raises :class:`KeyError` with the known ids."""
    try:
        return EXPERIMENTS[experiment_id]
    except KeyError:
        known = ", ".join(sorted(EXPERIMENTS))
        raise KeyError(f"unknown experiment {experiment_id!r}; known: {known}") from None


def _sort_key(experiment_id: str):
    if experiment_id.startswith("fig"):
        return (0, int(experiment_id.replace("fig", "")), experiment_id)
    return (1, 0, experiment_id)


def list_experiments() -> List[str]:
    """All experiment ids: figures in numeric order, then extensions."""
    return sorted(EXPERIMENTS, key=_sort_key)
