"""ASCII rendering of sweep results — the "rows/series the paper reports".

Benches print these tables so a reader can put them next to the paper's
figures: one block per metric, one row per algorithm, one column per grid
value of the swept parameter.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

from repro.experiments.sweep import METRICS, SweepResult

_METRIC_TITLES = {
    "payoff_difference": "Payoff Difference (lower = fairer)",
    "average_payoff": "Average Payoff (higher = better)",
    "cpu_seconds": "CPU Time (seconds)",
}


def _format_value(value: float) -> str:
    if value == 0:
        return "0"
    if abs(value) >= 1000:
        return f"{value:.0f}"
    if abs(value) >= 1:
        return f"{value:.3f}"
    return f"{value:.4f}"


def format_series_table(
    title: str,
    columns: Sequence,
    rows: Dict[str, Sequence[float]],
    column_header: str = "",
) -> str:
    """Render ``rows`` (name -> series) under ``columns`` as an ASCII table."""
    header_cells = [column_header] + [str(c) for c in columns]
    body = [[name] + [_format_value(v) for v in series] for name, series in rows.items()]
    widths = [
        max(len(row[i]) for row in [header_cells] + body)
        for i in range(len(header_cells))
    ]
    lines = [title]
    lines.append("  " + " | ".join(h.ljust(w) for h, w in zip(header_cells, widths)))
    lines.append("  " + "-+-".join("-" * w for w in widths))
    for row in body:
        lines.append("  " + " | ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def format_sweep(result: SweepResult, metrics: Optional[Sequence[str]] = None) -> str:
    """Render a whole sweep: one table per metric, paper-figure style."""
    metrics = list(metrics) if metrics is not None else list(METRICS)
    blocks = [f"=== {result.name} (varying {result.parameter}) ==="]
    for metric in metrics:
        rows = {
            algorithm: result.series(metric, algorithm)
            for algorithm in result.algorithms
        }
        blocks.append(
            format_series_table(
                _METRIC_TITLES.get(metric, metric),
                result.values,
                rows,
                column_header=result.parameter,
            )
        )
    return "\n\n".join(blocks)


def format_ratio_line(
    result: SweepResult, metric: str, numerator: str, denominator: str
) -> str:
    """e.g. "IEGT P_dif is 18%-27% of MPTA's" — the paper's headline ratios."""
    num = result.series(metric, numerator)
    den = result.series(metric, denominator)
    ratios = [n / d for n, d in zip(num, den) if d > 0]
    if not ratios:
        return f"{numerator}/{denominator} {metric}: undefined (zero baseline)"
    return (
        f"{numerator} {metric} is {min(ratios):.1%}-{max(ratios):.1%} "
        f"of {denominator}'s"
    )
