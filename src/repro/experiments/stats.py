"""Repeated-seed aggregation for experiment sweeps.

The paper reports single curves; a reproduction should also quantify run-
to-run variance, since FGT/IEGT start from random strategies.  This module
re-runs a sweep factory over several seeds and aggregates each
(metric, algorithm, grid point) cell into mean, standard deviation, and a
95% confidence interval.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Dict, List, Sequence

import numpy as np

from repro.experiments.sweep import METRICS, SweepResult

# Two-sided 95% t-distribution critical values for small sample sizes; the
# normal value 1.96 is used beyond the table.  Avoids a hard scipy
# dependency for one lookup.
_T95 = {2: 12.706, 3: 4.303, 4: 3.182, 5: 2.776, 6: 2.571, 7: 2.447, 8: 2.365, 9: 2.306, 10: 2.262}


def _t_critical(n: int) -> float:
    if n < 2:
        return float("nan")
    return _T95.get(n, 1.96)


@dataclass(frozen=True)
class CellStats:
    """Mean / spread of one metric cell across repeated seeds."""

    mean: float
    std: float
    ci95_half_width: float
    n: int

    @property
    def ci_low(self) -> float:
        return self.mean - self.ci95_half_width

    @property
    def ci_high(self) -> float:
        return self.mean + self.ci95_half_width

    def format(self) -> str:
        """``mean±ci`` rendering (bare mean when n = 1)."""
        if math.isnan(self.ci95_half_width):
            return f"{self.mean:.4f}"
        return f"{self.mean:.4f}±{self.ci95_half_width:.4f}"


def aggregate(samples: Sequence[float]) -> CellStats:
    """Mean, sample std, and 95% CI half-width of ``samples``."""
    values = np.asarray(list(samples), dtype=float)
    n = values.size
    if n == 0:
        raise ValueError("cannot aggregate zero samples")
    mean = float(values.mean())
    if n == 1:
        return CellStats(mean, 0.0, float("nan"), 1)
    std = float(values.std(ddof=1))
    half = _t_critical(n) * std / math.sqrt(n)
    return CellStats(mean, std, half, n)


@dataclass
class RepeatedSweepResult:
    """Aggregated sweeps: ``cells[metric][algorithm]`` is one CellStats per grid value."""

    name: str
    parameter: str
    values: List
    seeds: List[int]
    cells: Dict[str, Dict[str, List[CellStats]]]

    def series_mean(self, metric: str, algorithm: str) -> List[float]:
        """Mean of ``metric`` for ``algorithm`` at each grid value."""
        return [cell.mean for cell in self.cells[metric][algorithm]]

    def series(self, metric: str, algorithm: str) -> List[CellStats]:
        """Full :class:`CellStats` for ``algorithm`` at each grid value."""
        return self.cells[metric][algorithm]

    @property
    def algorithms(self) -> List[str]:
        first_metric = next(iter(self.cells.values()))
        return list(first_metric)

    def format_table(self, metric: str) -> str:
        """Render one metric as ``mean±ci`` cells."""
        header = [self.parameter] + [str(v) for v in self.values]
        rows = [
            [algorithm] + [cell.format() for cell in stats_list]
            for algorithm, stats_list in self.cells[metric].items()
        ]
        widths = [
            max(len(r[i]) for r in [header] + rows) for i in range(len(header))
        ]
        lines = [f"{self.name} — {metric} (n={len(self.seeds)} seeds, mean±95% CI)"]
        lines.append("  " + " | ".join(h.ljust(w) for h, w in zip(header, widths)))
        lines.append("  " + "-+-".join("-" * w for w in widths))
        for row in rows:
            lines.append("  " + " | ".join(c.ljust(w) for c, w in zip(row, widths)))
        return "\n".join(lines)


def run_repeated_sweep(
    sweep_factory: Callable[[int], SweepResult],
    seeds: Sequence[int],
) -> RepeatedSweepResult:
    """Run ``sweep_factory(seed)`` per seed and aggregate every cell.

    All runs must produce identical grids and algorithm arms; a mismatch
    raises :class:`ValueError` rather than silently mixing cells.
    """
    if not seeds:
        raise ValueError("seeds must be non-empty")
    runs: List[SweepResult] = [sweep_factory(int(seed)) for seed in seeds]
    first = runs[0]
    for run in runs[1:]:
        if run.values != first.values or run.algorithms != first.algorithms:
            raise ValueError("sweep runs disagree on grid or algorithm arms")

    cells: Dict[str, Dict[str, List[CellStats]]] = {}
    for metric in METRICS:
        cells[metric] = {}
        for algorithm in first.algorithms:
            per_value: List[CellStats] = []
            for idx in range(len(first.values)):
                samples = [run.series(metric, algorithm)[idx] for run in runs]
                per_value.append(aggregate(samples))
            cells[metric][algorithm] = per_value
    return RepeatedSweepResult(
        name=first.name,
        parameter=first.parameter,
        values=list(first.values),
        seeds=[int(s) for s in seeds],
        cells=cells,
    )
