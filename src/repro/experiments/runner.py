"""Timed execution of algorithm arms over a problem instance.

One "run" solves every per-center sub-problem of an instance with one
algorithm and aggregates the paper's three metrics: payoff difference and
average payoff over the *global* worker population (all centers pooled,
matching Equation 2's single worker set) and total CPU seconds (VDPS
generation included, since every algorithm starts from Algorithm 1).
Catalogs are shared between algorithm arms with the same pruning threshold
so arm-to-arm comparisons see identical strategy spaces.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.baselines import GTASolver, MPTASolver
from repro.core.instance import ProblemInstance, SubProblem
from repro.core.payoff import average_payoff, payoff_difference
from repro.games import FGTSolver, IEGTSolver
from repro.obs.metrics import METRICS
from repro.utils.rng import RngFactory, SeedLike
from repro.utils.timing import CpuTimer
from repro.vdps.catalog import VDPSCatalog, build_catalog
from repro.verify.verifier import verify_result

#: Signature every solver in the library satisfies.
SolverLike = object


@dataclass(frozen=True)
class AlgorithmSpec:
    """A named algorithm arm: a factory from pruning threshold to solver.

    ``epsilon=None`` in the produced solver means "no pruning", which is the
    ``-W`` family in Figures 2-3.
    """

    name: str
    factory: Callable[[Optional[float]], SolverLike]

    def build(self, epsilon: Optional[float]) -> SolverLike:
        """Instantiate the solver for pruning threshold ``epsilon``."""
        return self.factory(epsilon)


def default_algorithms(
    include_mpta: bool = True,
    mpta_node_budget: int = 50_000,
    max_rounds: int = 200,
) -> List[AlgorithmSpec]:
    """The paper's four evaluated algorithms (Section VII-A)."""
    specs = []
    if include_mpta:
        specs.append(
            AlgorithmSpec(
                "MPTA",
                lambda eps: MPTASolver(
                    epsilon=eps, node_budget=mpta_node_budget, beam_width=100
                ),
            )
        )
    specs.extend(
        [
            AlgorithmSpec("GTA", lambda eps: GTASolver(epsilon=eps)),
            AlgorithmSpec(
                "FGT", lambda eps: FGTSolver(epsilon=eps, max_rounds=max_rounds)
            ),
            AlgorithmSpec(
                "IEGT", lambda eps: IEGTSolver(epsilon=eps, max_rounds=max_rounds)
            ),
        ]
    )
    return specs


def unpruned_variants(specs: Sequence[AlgorithmSpec]) -> List[AlgorithmSpec]:
    """The ``-W`` (without pruning) companions of ``specs``."""
    return [
        AlgorithmSpec(f"{spec.name}-W", spec.factory, )
        for spec in specs
    ]


@dataclass
class RunRecord:
    """Aggregated outcome of one algorithm arm over a whole instance.

    ``metrics`` carries the arm's observability profile: per-phase CPU
    timings (``phase.catalog_build_cpu_s``, ``phase.solve_cpu_s``), solver
    round/switch totals, and the movement of every :mod:`repro.obs`
    registry counter during the arm (catalog-cache hits/misses, DP states
    expanded, verify checks run, ...).
    """

    algorithm: str
    payoff_difference: float
    average_payoff: float
    cpu_seconds: float
    payoffs: List[float] = field(default_factory=list, repr=False)
    converged: bool = True
    rounds: int = 0
    metrics: Dict[str, float] = field(default_factory=dict, repr=False)

    def as_dict(self) -> Dict[str, float]:
        """The three reported metrics as a plain dict."""
        return {
            "payoff_difference": self.payoff_difference,
            "average_payoff": self.average_payoff,
            "cpu_seconds": self.cpu_seconds,
        }


class CatalogCache:
    """Per-(center, epsilon) catalog cache shared across algorithm arms.

    Building catalogs dominates runtime at small scales, and the paper's
    comparisons hold the strategy space fixed across algorithms, so arms
    reuse catalogs — but each arm's reported CPU time still *includes* the
    (re-measured) generation cost, charged as the one-off build time.
    """

    def __init__(self) -> None:
        self._catalogs: Dict[Tuple[str, Optional[float]], Tuple[VDPSCatalog, float]] = {}

    def get(
        self, sub: SubProblem, epsilon: Optional[float]
    ) -> Tuple[VDPSCatalog, float]:
        """Return ``(catalog, build_cpu_seconds)`` for the sub-problem."""
        key = (sub.center.center_id, epsilon)
        if key not in self._catalogs:
            METRICS.counter("catalog_cache.misses").add(1)
            timer = CpuTimer()
            with timer:
                catalog = build_catalog(sub, epsilon=epsilon)
            self._catalogs[key] = (catalog, timer.elapsed)
        else:
            METRICS.counter("catalog_cache.hits").add(1)
        return self._catalogs[key]


def _verifying(solver: SolverLike) -> SolverLike:
    """A copy of ``solver`` with its ``verify`` flag raised, when it has one.

    Solvers without the flag (custom arms) keep running unverified at the
    trace level; the runner still applies the assignment-level checkers.
    """
    try:
        return dataclasses.replace(solver, verify=True)
    except TypeError:
        return solver


def run_algorithms(
    instance: ProblemInstance,
    algorithms: Sequence[AlgorithmSpec],
    epsilon: Optional[float],
    seed: SeedLike = None,
    catalog_cache: Optional[CatalogCache] = None,
    unpruned: Sequence[AlgorithmSpec] = (),
    verify: bool = False,
) -> List[RunRecord]:
    """Run every algorithm arm on ``instance`` and collect metrics.

    ``algorithms`` run with pruning threshold ``epsilon``; ``unpruned`` arms
    (named ``*-W`` by convention) run with pruning disabled.  All arms of
    one call observe the same per-arm random stream regardless of ordering.

    ``verify=True`` raises each solver's ``verify`` flag (in-solve trace
    checkers) and re-checks every returned assignment with the
    :mod:`repro.verify` invariant checkers; violations raise
    :class:`~repro.core.exceptions.InvariantViolation`.  Verification runs
    outside the CPU timers, so reported ``cpu_seconds`` stay comparable.

    Every returned record also carries an observability profile in
    ``RunRecord.metrics``: phase CPU timings, round/switch totals, and the
    per-arm movement of the :mod:`repro.obs` metrics registry.
    """
    cache = catalog_cache if catalog_cache is not None else CatalogCache()
    rng_factory = RngFactory(seed)
    subproblems = instance.subproblems()
    records: List[RunRecord] = []
    arms = [(spec, epsilon) for spec in algorithms]
    arms += [(spec, None) for spec in unpruned]
    for spec, eps in arms:
        solver = spec.build(eps)
        if verify:
            solver = _verifying(solver)
        payoffs: List[float] = []
        cpu = 0.0
        build_cpu = 0.0
        solve_cpu = 0.0
        converged = True
        rounds = 0
        switches = 0
        registry_before = METRICS.snapshot()
        for sub in subproblems:
            catalog, build_time = cache.get(sub, eps)
            cpu += build_time
            build_cpu += build_time
            arm_rng = rng_factory.get(f"{spec.name}:{sub.center.center_id}")
            timer = CpuTimer()
            with timer:
                result = solver.solve(sub, catalog=catalog, seed=arm_rng)
            cpu += timer.elapsed
            solve_cpu += timer.elapsed
            if verify:
                verify_result(result, sub=sub, catalog=catalog, solver=spec.name)
            payoffs.extend(result.assignment.payoffs)
            converged = converged and result.converged
            rounds = max(rounds, result.rounds)
            switches += sum(point.switches for point in result.trace)
        arm_metrics = METRICS.delta(registry_before)
        arm_metrics["phase.catalog_build_cpu_s"] = build_cpu
        arm_metrics["phase.solve_cpu_s"] = solve_cpu
        arm_metrics["solver.rounds"] = rounds
        arm_metrics["solver.switches"] = switches
        records.append(
            RunRecord(
                algorithm=spec.name,
                payoff_difference=payoff_difference(payoffs),
                average_payoff=average_payoff(payoffs),
                cpu_seconds=cpu,
                payoffs=payoffs,
                converged=converged,
                rounds=rounds,
                metrics=arm_metrics,
            )
        )
    return records
