"""Center-origin VDPS (C-VDPS) generation — Algorithm 1 of the paper.

The paper's Algorithm 1 is a dynamic program over subsets ``Q`` of the
center's delivery points, expanding in ascending ``|Q|`` and recording, for
each feasible ``(Q, endpoint)`` state, the minimal arrival time and the
predecessor used to reach it (the ``opt``/``pre`` tables).  Every subset with
at least one feasible endpoint is a C-VDPS, and the minimal-arrival endpoint
yields the minimal-travel-time delivery-point sequence kept for payoff
computation.

Our implementation performs the same layered DP but expands *only from
feasible states*: an infeasible subset can never become feasible by adding
points (arrival times only grow), so the reachable state space is usually a
vanishing fraction of ``2^n``.  With the distance-constrained pruning of
Section IV, successor candidates shrink further to the ``epsilon``
neighbourhood of the current endpoint.  :func:`generate_cvdps_reference` is a
literal transcription of Algorithm 1 kept as a cross-checking oracle.

DP states are keyed by ``(subset of dp ids, endpoint dp id)`` and valued by
``(arrival time, visit path)``.  Relaxation keeps the *lexicographically
minimal* ``(time, path)`` pair, so the value of every state is a canonical
function of the point set alone — independent of insertion or expansion
order.  That canonicality is what lets the incremental maintenance layer
(:mod:`repro.vdps.delta`) splice states for a single added delivery point
into an existing table and land on the exact table a from-scratch build
would produce, float-tie for float-tie.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.core.entities import DeliveryPoint, DistributionCenter
from repro.core.routing import Route, arrival_times
from repro.geo.distance import euclidean
from repro.geo.travel import TravelModel
from repro.obs.metrics import METRICS
from repro.obs.tracer import NullTracer, resolve_tracer
from repro.vdps.pruning import neighbor_lists

#: One DP state: the subset visited so far and the point the worker stands at.
_StateKey = Tuple[FrozenSet[str], str]
#: A state's value: minimal arrival time at the endpoint, plus the visit
#: order achieving it.  Compared lexicographically (time first, then path by
#: dp ids), which breaks exact-time ties deterministically *and* order-
#: independently — the invariant the delta layer's correctness rests on.
_StateVal = Tuple[float, Tuple[str, ...]]


@dataclass(frozen=True)
class CVdpsEntry:
    """One C-VDPS: a feasible delivery-point set and its best sequence.

    ``route`` is center-relative (arrival times measured from the moment a
    worker stands at the center), per the ``t'`` recurrence of Equation 3.
    ``point_ids`` is the unordered set identity used for conflict checks.
    """

    point_ids: FrozenSet[str]
    route: Route

    @property
    def size(self) -> int:
        return len(self.point_ids)

    @property
    def total_reward(self) -> float:
        return self.route.total_reward


@dataclass
class DPStats:
    """Counters one DP expansion accumulates (flushed to METRICS by callers)."""

    states_expanded: int = 0
    candidates_tried: int = 0
    deadline_rejections: int = 0


def seed_value(
    dp: DeliveryPoint, travel: TravelModel, center_location
) -> Optional[_StateVal]:
    """The singleton state ``({dp}, dp)``, or ``None`` if its deadline fails."""
    t = travel.time(center_location, dp.location)
    if t <= dp.earliest_expiry:
        return (t, (dp.dp_id,))
    return None


def extend_value(
    value: _StateVal,
    dp_from: DeliveryPoint,
    dp_to: DeliveryPoint,
    travel: TravelModel,
) -> Optional[_StateVal]:
    """``value`` extended by travelling ``dp_from -> dp_to``; ``None`` if late.

    The float evaluation order (arrival + service, then + travel) is shared
    by the full build and the delta layer so both produce bit-identical
    arrival times.
    """
    t, path = value
    t_next = t + dp_from.service_hours + travel.time(dp_from.location, dp_to.location)
    if t_next > dp_to.earliest_expiry:
        return None
    return (t_next, path + (dp_to.dp_id,))


def relax(table: Dict[_StateKey, _StateVal], key: _StateKey, value: _StateVal) -> None:
    """Keep the canonical (lexicographically minimal) value for ``key``."""
    cur = table.get(key)
    if cur is None or value < cur:
        table[key] = value


def entry_from_value(
    points_by_id: Mapping[str, DeliveryPoint],
    subset: FrozenSet[str],
    value: _StateVal,
    travel: TravelModel,
    center_location,
) -> CVdpsEntry:
    """Materialise the :class:`CVdpsEntry` for a subset's canonical state."""
    sequence = tuple(points_by_id[dp_id] for dp_id in value[1])
    times = tuple(arrival_times(center_location, sequence, travel))
    return CVdpsEntry(subset, Route(sequence, times))


def best_per_subset(
    states: Mapping[_StateKey, _StateVal]
) -> Dict[FrozenSet[str], _StateVal]:
    """Canonical minimal ``(time, path)`` value per subset across endpoints."""
    best: Dict[FrozenSet[str], _StateVal] = {}
    for (subset, _), value in states.items():
        cur = best.get(subset)
        if cur is None or value < cur:
            best[subset] = value
    return best


def compute_states(
    points_by_id: Mapping[str, DeliveryPoint],
    neighbors: Mapping[str, Sequence[str]],
    travel: TravelModel,
    center_location,
    cap: int,
    stats: DPStats,
    tracer: NullTracer,
    center_id: str,
    kernel: Optional[str] = None,
    matrix=None,
) -> Dict[_StateKey, _StateVal]:
    """The full layered DP over ``points_by_id``: every feasible state.

    This is the one expansion loop :func:`generate_cvdps` and the delta
    layer's rebuild path both run, so their state tables are identical by
    construction.  ``kernel`` selects the implementation (``"scalar"``,
    ``"vectorized"``, or ``"numba"``; ``None`` resolves the process
    default) — every tier produces the same table bit for bit, the same
    ``stats`` increments, and the same ``cvdps.layer`` events, which the
    seed-swept differential suite in ``tests/kernels/`` asserts.
    ``matrix`` optionally shares a prebuilt sorted-id
    :class:`~repro.geo.travel.TravelMatrix` with the vectorized kernel.
    """
    from repro.kernels import resolve_kernel

    tier = resolve_kernel(kernel)
    if tier != "scalar":
        from repro.kernels.cvdps import compute_states_vectorized

        METRICS.counter("kernel.cvdps_vectorized").add(1)
        return compute_states_vectorized(
            points_by_id,
            neighbors,
            travel,
            center_location,
            cap,
            stats,
            tracer,
            center_id,
            matrix=matrix,
            use_numba=tier == "numba",
        )
    METRICS.counter("kernel.cvdps_scalar").add(1)
    states: Dict[_StateKey, _StateVal] = {}
    frontier: Dict[_StateKey, _StateVal] = {}
    for dp_id in sorted(points_by_id):
        value = seed_value(points_by_id[dp_id], travel, center_location)
        if value is None:
            stats.deadline_rejections += 1
        else:
            frontier[(frozenset((dp_id,)), dp_id)] = value
    states.update(frontier)
    stats.states_expanded += len(frontier)
    if tracer.enabled:
        tracer.event(
            "cvdps.layer",
            center=center_id,
            size=1,
            states=len(frontier),
            candidates=len(points_by_id),
            deadline_rejections=stats.deadline_rejections,
        )

    size = 1
    while frontier and size < cap:
        next_frontier: Dict[_StateKey, _StateVal] = {}
        layer_candidates = 0
        layer_rejections = 0
        for (subset, j), value in frontier.items():
            dp_j = points_by_id[j]
            for q in neighbors[j]:
                if q in subset:
                    continue
                layer_candidates += 1
                extended = extend_value(value, dp_j, points_by_id[q], travel)
                if extended is None:
                    layer_rejections += 1
                    continue
                relax(next_frontier, (subset | {q}, q), extended)
        states.update(next_frontier)
        frontier = next_frontier
        size += 1
        stats.states_expanded += len(next_frontier)
        stats.candidates_tried += layer_candidates
        stats.deadline_rejections += layer_rejections
        if tracer.enabled:
            tracer.event(
                "cvdps.layer",
                center=center_id,
                size=size,
                states=len(next_frontier),
                candidates=layer_candidates,
                deadline_rejections=layer_rejections,
            )
    return states


def generate_cvdps(
    center: DistributionCenter,
    travel: TravelModel,
    epsilon: Optional[float] = None,
    max_size: Optional[int] = None,
    tracer: Optional[NullTracer] = None,
    kernel: Optional[str] = None,
) -> List[CVdpsEntry]:
    """All C-VDPSs of ``center`` with at most ``max_size`` points.

    Parameters
    ----------
    center:
        The distribution center whose delivery points are scheduled.
    travel:
        Travel-time model (shared speed, Euclidean metric by default).
    epsilon:
        Distance-constrained pruning threshold in km; ``None`` disables
        pruning (the ``-W`` algorithm variants).
    max_size:
        Upper bound on ``|Q|``; callers pass ``max_w maxDP`` since larger
        sets can never be assigned.  ``None`` means no bound.
    tracer:
        Structured-event tracer; ``None`` resolves the process-wide sink
        (``REPRO_TRACE`` / :func:`repro.obs.set_tracing`), so a live tracer
        receives one ``cvdps.layer`` event per DP layer.  Expansion and
        rejection totals always land in the :mod:`repro.obs` metrics
        registry — the DP loop accumulates plain local integers, so the
        per-state overhead is a few increments either way.
    kernel:
        DP implementation tier (``"scalar"``, ``"vectorized"``, or
        ``"numba"``); ``None`` resolves the process default
        (:mod:`repro.kernels.config`).  All tiers return bit-identical
        entries.  The vectorized tiers additionally build the center's
        travel matrix once and reuse its (Euclidean-metric) distances for
        the pruning neighbourhoods.

    Returns
    -------
    list of :class:`CVdpsEntry`, sorted by (size, point ids) so output
    order is deterministic.
    """
    from repro.kernels import resolve_kernel

    tracer = resolve_tracer(False) if tracer is None else tracer
    points = center.delivery_points
    n = len(points)
    if n == 0:
        return []
    cap = n if max_size is None else max(0, min(max_size, n))
    if cap == 0:
        return []
    points_by_id = {dp.dp_id: dp for dp in points}
    tier = resolve_kernel(kernel)
    matrix = None
    distances = None
    if tier != "scalar":
        from repro.kernels.cvdps import center_matrix

        ids, matrix = center_matrix(points_by_id, travel, center.location)
        if epsilon is not None and travel.distance_fn is euclidean:
            # Pruning distances are Euclidean; under the default metric
            # the kernel matrix already holds them (sorted-id order, so
            # permute back into the point-sequence order the
            # neighbourhood lists index by).
            position = {dp_id: k for k, dp_id in enumerate(ids)}
            perm = np.asarray([position[dp.dp_id] for dp in points])
            distances = matrix.distances[np.ix_(perm, perm)]
    neighbors = neighbor_id_map(points, epsilon, distances)
    if epsilon is not None:
        # Ordered point pairs the epsilon neighbourhood excludes up front:
        # the state space the distance-constrained pruning never visits.
        METRICS.counter("cvdps.pruned_pairs").add(
            n * (n - 1) - sum(len(adj) for adj in neighbors.values())
        )

    stats = DPStats()
    states = compute_states(
        points_by_id,
        neighbors,
        travel,
        center.location,
        cap,
        stats,
        tracer,
        center.center_id,
        kernel=tier,
        matrix=matrix,
    )
    METRICS.counter("cvdps.states_expanded").add(stats.states_expanded)
    METRICS.counter("cvdps.candidates_tried").add(stats.candidates_tried)
    METRICS.counter("cvdps.deadline_rejections").add(stats.deadline_rejections)
    if matrix is not None:
        from repro.kernels.cvdps import collect_entries_vectorized

        return collect_entries_vectorized(points_by_id, states, matrix)
    return collect_entries(points_by_id, states, travel, center.location)


def neighbor_id_map(
    points: Sequence[DeliveryPoint],
    epsilon: Optional[float],
    distances: Optional[np.ndarray] = None,
) -> Dict[str, Tuple[str, ...]]:
    """:func:`neighbor_lists` re-keyed by dp id (the DP core's key space).

    ``distances`` is the optional precomputed Euclidean matrix forwarded
    to :func:`neighbor_lists` (points-sequence order).
    """
    adjacency = neighbor_lists(points, epsilon, distances)
    return {
        points[j].dp_id: tuple(points[q].dp_id for q in adjacency[j])
        for j in range(len(points))
    }


def collect_entries(
    points_by_id: Mapping[str, DeliveryPoint],
    states: Mapping[_StateKey, _StateVal],
    travel: TravelModel,
    center_location,
) -> List[CVdpsEntry]:
    """Group DP states by subset, keep the canonical minimal value of each."""
    entries = [
        entry_from_value(points_by_id, subset, value, travel, center_location)
        for subset, value in best_per_subset(states).items()
    ]
    entries.sort(key=lambda e: (e.size, tuple(sorted(e.point_ids))))
    return entries


def generate_cvdps_reference(
    center: DistributionCenter,
    travel: TravelModel,
    epsilon: Optional[float] = None,
    max_size: Optional[int] = None,
) -> List[CVdpsEntry]:
    """Literal Algorithm 1: enumerate every subset, solve each exactly.

    Exponential in ``|dc.DP|``; used in tests to validate
    :func:`generate_cvdps` on small instances.  Under pruning, a sequence is
    admissible only if every *consecutive* pair of delivery points is within
    ``epsilon``, matching the restriction the fast generator applies while
    chaining.
    """
    points = center.delivery_points
    n = len(points)
    cap = n if max_size is None else max(0, min(max_size, n))
    neighbors = neighbor_lists(points, epsilon)
    allowed = [set(adj) for adj in neighbors]

    entries: List[CVdpsEntry] = []
    for size in range(1, cap + 1):
        for combo in itertools.combinations(range(n), size):
            route = _best_constrained_route(points, combo, allowed, travel, center)
            if route is not None:
                entries.append(
                    CVdpsEntry(frozenset(points[i].dp_id for i in combo), route)
                )
    entries.sort(key=lambda e: (e.size, tuple(sorted(e.point_ids))))
    return entries


def _best_constrained_route(
    points: Sequence[DeliveryPoint],
    combo: Tuple[int, ...],
    allowed: List[set],
    travel: TravelModel,
    center: DistributionCenter,
) -> Optional[Route]:
    """Minimal-time feasible permutation of ``combo`` honouring adjacency."""
    best_route_found: Optional[Route] = None
    for perm in itertools.permutations(combo):
        if any(perm[k + 1] not in allowed[perm[k]] for k in range(len(perm) - 1)):
            continue
        sequence = tuple(points[i] for i in perm)
        times = arrival_times(center.location, sequence, travel)
        if any(t > dp.earliest_expiry for dp, t in zip(sequence, times)):
            continue
        candidate = Route(sequence, tuple(times))
        if (
            best_route_found is None
            or candidate.completion_time < best_route_found.completion_time
        ):
            best_route_found = candidate
    return best_route_found
