"""Center-origin VDPS (C-VDPS) generation — Algorithm 1 of the paper.

The paper's Algorithm 1 is a dynamic program over subsets ``Q`` of the
center's delivery points, expanding in ascending ``|Q|`` and recording, for
each feasible ``(Q, endpoint)`` state, the minimal arrival time and the
predecessor used to reach it (the ``opt``/``pre`` tables).  Every subset with
at least one feasible endpoint is a C-VDPS, and the minimal-arrival endpoint
yields the minimal-travel-time delivery-point sequence kept for payoff
computation.

Our implementation performs the same layered DP but expands *only from
feasible states*: an infeasible subset can never become feasible by adding
points (arrival times only grow), so the reachable state space is usually a
vanishing fraction of ``2^n``.  With the distance-constrained pruning of
Section IV, successor candidates shrink further to the ``epsilon``
neighbourhood of the current endpoint.  :func:`generate_cvdps_reference` is a
literal transcription of Algorithm 1 kept as a cross-checking oracle.
"""

from __future__ import annotations

import itertools
import math
from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Optional, Sequence, Tuple

from repro.core.entities import DeliveryPoint, DistributionCenter
from repro.core.routing import Route, arrival_times
from repro.geo.travel import TravelModel
from repro.obs.metrics import METRICS
from repro.obs.tracer import NullTracer, resolve_tracer
from repro.vdps.pruning import neighbor_lists

_StateKey = Tuple[FrozenSet[int], int]


@dataclass(frozen=True)
class CVdpsEntry:
    """One C-VDPS: a feasible delivery-point set and its best sequence.

    ``route`` is center-relative (arrival times measured from the moment a
    worker stands at the center), per the ``t'`` recurrence of Equation 3.
    ``point_ids`` is the unordered set identity used for conflict checks.
    """

    point_ids: FrozenSet[str]
    route: Route

    @property
    def size(self) -> int:
        return len(self.point_ids)

    @property
    def total_reward(self) -> float:
        return self.route.total_reward


def generate_cvdps(
    center: DistributionCenter,
    travel: TravelModel,
    epsilon: Optional[float] = None,
    max_size: Optional[int] = None,
    tracer: Optional[NullTracer] = None,
) -> List[CVdpsEntry]:
    """All C-VDPSs of ``center`` with at most ``max_size`` points.

    Parameters
    ----------
    center:
        The distribution center whose delivery points are scheduled.
    travel:
        Travel-time model (shared speed, Euclidean metric by default).
    epsilon:
        Distance-constrained pruning threshold in km; ``None`` disables
        pruning (the ``-W`` algorithm variants).
    max_size:
        Upper bound on ``|Q|``; callers pass ``max_w maxDP`` since larger
        sets can never be assigned.  ``None`` means no bound.
    tracer:
        Structured-event tracer; ``None`` resolves the process-wide sink
        (``REPRO_TRACE`` / :func:`repro.obs.set_tracing`), so a live tracer
        receives one ``cvdps.layer`` event per DP layer.  Expansion and
        rejection totals always land in the :mod:`repro.obs` metrics
        registry — the DP loop accumulates plain local integers, so the
        per-state overhead is a few increments either way.

    Returns
    -------
    list of :class:`CVdpsEntry`, sorted by (size, point ids) so output
    order is deterministic.
    """
    tracer = resolve_tracer(False) if tracer is None else tracer
    points = center.delivery_points
    n = len(points)
    if n == 0:
        return []
    cap = n if max_size is None else max(0, min(max_size, n))
    if cap == 0:
        return []
    neighbors = neighbor_lists(points, epsilon)
    if epsilon is not None:
        # Ordered point pairs the epsilon neighbourhood excludes up front:
        # the state space the distance-constrained pruning never visits.
        METRICS.counter("cvdps.pruned_pairs").add(
            n * (n - 1) - sum(len(adj) for adj in neighbors)
        )

    states_expanded = 0
    candidates_tried = 0
    deadline_rejections = 0

    best: Dict[_StateKey, float] = {}
    parent: Dict[_StateKey, Optional[_StateKey]] = {}
    frontier: Dict[_StateKey, float] = {}
    for j, dp in enumerate(points):
        t = travel.time(center.location, dp.location)
        if t <= dp.earliest_expiry:
            key: _StateKey = (frozenset((j,)), j)
            best[key] = t
            parent[key] = None
            frontier[key] = t
        else:
            deadline_rejections += 1
    states_expanded += len(frontier)
    if tracer.enabled:
        tracer.event(
            "cvdps.layer",
            center=center.center_id,
            size=1,
            states=len(frontier),
            candidates=n,
            deadline_rejections=deadline_rejections,
        )

    size = 1
    while frontier and size < cap:
        next_frontier: Dict[_StateKey, float] = {}
        layer_candidates = 0
        layer_rejections = 0
        for (subset, j), t in frontier.items():
            origin = points[j].location
            depart = t + points[j].service_hours
            for q in neighbors[j]:
                if q in subset:
                    continue
                layer_candidates += 1
                dp_q = points[q]
                t_next = depart + travel.time(origin, dp_q.location)
                if t_next > dp_q.earliest_expiry:
                    layer_rejections += 1
                    continue
                key = (subset | {q}, q)
                if t_next < next_frontier.get(key, math.inf):
                    next_frontier[key] = t_next
                    parent[key] = (subset, j)
        best.update(next_frontier)
        frontier = next_frontier
        size += 1
        states_expanded += len(next_frontier)
        candidates_tried += layer_candidates
        deadline_rejections += layer_rejections
        if tracer.enabled:
            tracer.event(
                "cvdps.layer",
                center=center.center_id,
                size=size,
                states=len(next_frontier),
                candidates=layer_candidates,
                deadline_rejections=layer_rejections,
            )

    METRICS.counter("cvdps.states_expanded").add(states_expanded)
    METRICS.counter("cvdps.candidates_tried").add(candidates_tried)
    METRICS.counter("cvdps.deadline_rejections").add(deadline_rejections)
    return _collect_entries(points, best, parent, travel, center)


def _collect_entries(
    points: Sequence[DeliveryPoint],
    best: Dict[_StateKey, float],
    parent: Dict[_StateKey, Optional[_StateKey]],
    travel: TravelModel,
    center: DistributionCenter,
) -> List[CVdpsEntry]:
    """Group DP states by subset, keep the minimal-arrival endpoint each."""
    best_per_subset: Dict[FrozenSet[int], _StateKey] = {}
    for key, t in best.items():
        subset = key[0]
        incumbent = best_per_subset.get(subset)
        if incumbent is None or t < best[incumbent]:
            best_per_subset[subset] = key

    entries: List[CVdpsEntry] = []
    for subset, key in best_per_subset.items():
        order: List[int] = []
        cursor: Optional[_StateKey] = key
        while cursor is not None:
            order.append(cursor[1])
            cursor = parent[cursor]
        order.reverse()
        sequence = tuple(points[i] for i in order)
        times = tuple(arrival_times(center.location, sequence, travel))
        entries.append(
            CVdpsEntry(
                frozenset(points[i].dp_id for i in subset),
                Route(sequence, times),
            )
        )
    entries.sort(key=lambda e: (e.size, tuple(sorted(e.point_ids))))
    return entries


def generate_cvdps_reference(
    center: DistributionCenter,
    travel: TravelModel,
    epsilon: Optional[float] = None,
    max_size: Optional[int] = None,
) -> List[CVdpsEntry]:
    """Literal Algorithm 1: enumerate every subset, solve each exactly.

    Exponential in ``|dc.DP|``; used in tests to validate
    :func:`generate_cvdps` on small instances.  Under pruning, a sequence is
    admissible only if every *consecutive* pair of delivery points is within
    ``epsilon``, matching the restriction the fast generator applies while
    chaining.
    """
    points = center.delivery_points
    n = len(points)
    cap = n if max_size is None else max(0, min(max_size, n))
    neighbors = neighbor_lists(points, epsilon)
    allowed = [set(adj) for adj in neighbors]

    entries: List[CVdpsEntry] = []
    for size in range(1, cap + 1):
        for combo in itertools.combinations(range(n), size):
            route = _best_constrained_route(points, combo, allowed, travel, center)
            if route is not None:
                entries.append(
                    CVdpsEntry(frozenset(points[i].dp_id for i in combo), route)
                )
    entries.sort(key=lambda e: (e.size, tuple(sorted(e.point_ids))))
    return entries


def _best_constrained_route(
    points: Sequence[DeliveryPoint],
    combo: Tuple[int, ...],
    allowed: List[set],
    travel: TravelModel,
    center: DistributionCenter,
) -> Optional[Route]:
    """Minimal-time feasible permutation of ``combo`` honouring adjacency."""
    best_route_found: Optional[Route] = None
    for perm in itertools.permutations(combo):
        if any(perm[k + 1] not in allowed[perm[k]] for k in range(len(perm) - 1)):
            continue
        sequence = tuple(points[i] for i in perm)
        times = arrival_times(center.location, sequence, travel)
        if any(t > dp.earliest_expiry for dp, t in zip(sequence, times)):
            continue
        candidate = Route(sequence, tuple(times))
        if (
            best_route_found is None
            or candidate.completion_time < best_route_found.completion_time
        ):
            best_route_found = candidate
    return best_route_found
