"""Valid Delivery Point Set (VDPS) generation — Section IV of the paper."""

from repro.vdps.generator import (
    CVdpsEntry,
    generate_cvdps,
    generate_cvdps_reference,
)
from repro.vdps.pruning import neighbor_lists
from repro.vdps.catalog import (
    NULL_STRATEGY_ID,
    CatalogIndex,
    VDPSCatalog,
    WorkerIndex,
    WorkerStrategy,
    build_catalog,
)

__all__ = [
    "CVdpsEntry",
    "generate_cvdps",
    "generate_cvdps_reference",
    "neighbor_lists",
    "WorkerStrategy",
    "VDPSCatalog",
    "CatalogIndex",
    "WorkerIndex",
    "build_catalog",
    "NULL_STRATEGY_ID",
]
