"""Valid Delivery Point Set (VDPS) generation — Section IV of the paper."""

from repro.vdps.generator import (
    CVdpsEntry,
    generate_cvdps,
    generate_cvdps_reference,
)
from repro.vdps.pruning import neighbor_lists
from repro.vdps.catalog import (
    NULL_STRATEGY_ID,
    CatalogIndex,
    VDPSCatalog,
    WorkerIndex,
    WorkerStrategy,
    build_catalog,
    validate_entry,
    worker_offset_factor,
)
from repro.vdps.delta import DeltaCatalog, catalog_diff
from repro.vdps.store import CatalogStore

__all__ = [
    "CVdpsEntry",
    "generate_cvdps",
    "generate_cvdps_reference",
    "neighbor_lists",
    "WorkerStrategy",
    "VDPSCatalog",
    "CatalogIndex",
    "WorkerIndex",
    "build_catalog",
    "validate_entry",
    "worker_offset_factor",
    "DeltaCatalog",
    "catalog_diff",
    "CatalogStore",
    "NULL_STRATEGY_ID",
]
