"""Persistent on-disk store for :class:`~repro.vdps.delta.DeltaCatalog`.

A restarted dispatch service pays a cold C-VDPS build per center — the exact
cost the delta layer exists to avoid.  The store pickles each center's
:class:`DeltaCatalog` (its DP state table, entries, and per-worker strategy
maps) to one file under a root directory; on restart the cache loads it and
runs one ``refresh`` against the live snapshot, which replays only whatever
churned while the service was down.  Pickle round-trips floats exactly, so a
warmed catalog stays bit-identical to a rebuild.

Files are an internal cache, not an interchange format: a header records the
format version, the pruning threshold, and the world fingerprint at save
time, and anything that fails to load — truncated file, version skew,
epsilon mismatch — is treated as a miss (the service falls back to a cold
build and overwrites the file on the next persist).  Only point the store at
directories you trust; loading executes ``pickle``.
"""

from __future__ import annotations

import os
import pickle
import re
from pathlib import Path
from typing import Optional, Tuple, Union

from repro.obs.metrics import METRICS
from repro.vdps.delta import DeltaCatalog

#: Bump on any incompatible change to the pickled payload layout.
STORE_FORMAT = 1

_UNSAFE = re.compile(r"[^A-Za-z0-9._-]")


class CatalogStore:
    """One ``<center>.catalog.pkl`` file per center under ``root``."""

    def __init__(self, root: Union[str, Path]) -> None:
        self._root = Path(root)
        self._root.mkdir(parents=True, exist_ok=True)

    @property
    def root(self) -> Path:
        return self._root

    def path_for(self, center_id: str) -> Path:
        """The center's file path (ids sanitised for the filesystem)."""
        return self._root / f"{_UNSAFE.sub('_', center_id)}.catalog.pkl"

    def save(self, center_id: str, fingerprint: str, delta: DeltaCatalog) -> bool:
        """Persist one center's delta catalog; returns success.

        Written atomically (temp file + rename) so a crash mid-save leaves
        the previous file intact.  An unpicklable catalog (e.g. a custom
        lambda metric) is counted and skipped, never raised.
        """
        payload = {
            "format": STORE_FORMAT,
            "center_id": center_id,
            "fingerprint": fingerprint,
            "epsilon": delta.epsilon,
            "delta": delta,
        }
        path = self.path_for(center_id)
        try:
            blob = pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL)
            tmp = path.with_name(path.name + ".tmp")
            tmp.write_bytes(blob)
            os.replace(tmp, path)
        except Exception:  # noqa: BLE001 — persistence is best-effort
            METRICS.counter("catalog.delta_store_errors").add(1)
            return False
        METRICS.counter("catalog.delta_store_saves").add(1)
        return True

    def load(
        self, center_id: str, epsilon: Optional[float]
    ) -> Optional[Tuple[str, DeltaCatalog]]:
        """``(saved fingerprint, delta)`` for the center, or ``None``.

        ``None`` covers every miss: no file, unreadable/foreign payload,
        format-version skew, a sanitised-name collision, or an ``epsilon``
        other than the one asked for.  Callers must ``refresh(sub)`` the
        returned catalog before use — it carries no materialised
        :class:`VDPSCatalog` and the world may have churned since the save.
        """
        path = self.path_for(center_id)
        if not path.exists():
            return None
        try:
            payload = pickle.loads(path.read_bytes())
            if (
                not isinstance(payload, dict)
                or payload.get("format") != STORE_FORMAT
                or not isinstance(payload.get("delta"), DeltaCatalog)
            ):
                raise ValueError("unrecognised catalog store payload")
        except Exception:  # noqa: BLE001 — a rotten file is just a miss
            METRICS.counter("catalog.delta_store_errors").add(1)
            return None
        if payload.get("center_id") != center_id or payload.get("epsilon") != epsilon:
            return None
        METRICS.counter("catalog.delta_store_loads").add(1)
        return str(payload.get("fingerprint", "")), payload["delta"]

    def clear(self) -> int:
        """Delete every stored catalog; returns how many were removed."""
        removed = 0
        for path in self._root.glob("*.catalog.pkl"):
            try:
                path.unlink()
                removed += 1
            except OSError:
                pass
        return removed
