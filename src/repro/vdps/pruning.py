"""Distance-constrained pruning (Section IV).

The pruning strategy restricts the successor candidates of a delivery point
``dp_j`` to ``D(dp_j) = { dp_q : d(dp_j.l, dp_q.l) <= epsilon }`` while the
subset dynamic program chains points together.  Precomputing these neighbour
lists once turns the inner max of Equation 4 from a scan over all points into
a scan over a (usually tiny) neighbourhood.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from repro.core.entities import DeliveryPoint
from repro.geo.index import GridIndex

# Below this point count a brute-force O(n^2) pass beats building an index.
_INDEX_THRESHOLD = 64


def neighbor_lists(
    points: Sequence[DeliveryPoint],
    epsilon: Optional[float],
    distances: Optional[np.ndarray] = None,
) -> List[List[int]]:
    """For each point index ``j``, the indices of points within ``epsilon``.

    ``epsilon = None`` disables pruning: every other point is a neighbour
    (the ``-W`` variants of Figures 2-3).  A point is never its own
    neighbour.  Distances are Euclidean, matching ``d(a, b)`` in the paper.

    ``distances`` is an optional precomputed ``(n, n)`` Euclidean matrix
    (e.g. :attr:`repro.geo.travel.TravelMatrix.distances` under the default
    metric); when given, the comparison runs as one vectorised threshold
    per row instead of recomputing every pairwise distance.  Callers are
    responsible for only passing Euclidean matrices — pruning is defined on
    ``d(a, b)`` regardless of the travel metric in play.
    """
    n = len(points)
    if epsilon is None:
        return [[q for q in range(n) if q != j] for j in range(n)]
    if epsilon < 0:
        raise ValueError(f"epsilon must be non-negative, got {epsilon}")
    if distances is not None:
        if distances.shape != (n, n):
            raise ValueError(
                f"distances must be ({n}, {n}), got {distances.shape}"
            )
        out: List[List[int]] = []
        for j in range(n):
            hits = np.flatnonzero(distances[j] <= epsilon)
            out.append([int(q) for q in hits if q != j])
        return out
    if n <= _INDEX_THRESHOLD:
        out = []
        for j in range(n):
            here = points[j].location
            out.append(
                [
                    q
                    for q in range(n)
                    if q != j and here.distance_to(points[q].location) <= epsilon
                ]
            )
        return out
    index: GridIndex[int] = GridIndex.build(
        [(dp.location, i) for i, dp in enumerate(points)],
        cell_size=max(epsilon, 1e-9),
    )
    out = []
    for j in range(n):
        hits = index.within(points[j].location, epsilon)
        out.append(sorted(q for q in hits if q != j))
    return out
