"""Incrementally maintained C-VDPS catalogs (the ROADMAP's churn item).

A live dispatch round churns one or two delivery points per center — a task
arrives, a deadline passes — yet :func:`~repro.vdps.catalog.build_catalog`
re-enumerates the whole per-center subset DP.  :class:`DeltaCatalog` keeps
the DP state table alive between rounds and applies churn as state surgery:

* **Point removal** is pure retraction: a DP state depends on a point only
  if its subset contains it (arrival times of the other states chain through
  their own points alone), so dropping every state whose subset holds the
  point leaves exactly the table a rebuild over the surviving points yields.
* **Point addition** extends the table with exactly the states whose subset
  contains the new point: seed its singleton, one-step-extend every existing
  state by it, then close upward layer by layer (any extension of a state
  containing the point still contains it, so the closure never touches the
  old states).
* **A changed point** (new task, expired task, moved deadline) is a removal
  followed by an addition.

The canonical ``(time, path)`` relaxation of :mod:`repro.vdps.generator`
makes each state's value a function of the point set alone, so the spliced
table is *equal* to a from-scratch one — same floats, same tie-breaks — and
the materialised :class:`~repro.vdps.catalog.VDPSCatalog` (strategy tuples,
payoffs, and the lazy :class:`~repro.vdps.catalog.CatalogIndex` bit layout)
is bit-identical to ``build_catalog`` on the same sub-problem.  The
differential suites (``tests/vdps/test_delta_differential.py``,
``tests/properties/test_catalog_delta.py``) assert exactly that after every
step of randomised churn.

Worker-level revalidation is restricted the same way: a worker is fully
revalidated only when its own content changed (location → start offset,
``maxDP``, speed); untouched workers just drop strategies of removed
subsets and validate the added entries.  Structural changes no delta can
express (center moved, travel model swapped) and churn above
``rebuild_fraction`` (e.g. a clock advance rewriting every relative
deadline) fall back to a full rebuild — same output, full price.

Everything lands on the ``catalog.delta_*`` metrics surface
(:data:`repro.obs.metrics.CATALOG_DELTA_METRICS`).
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, FrozenSet, List, Optional, Set, Tuple

import numpy as np

from repro.core.entities import DeliveryPoint, Worker
from repro.core.instance import SubProblem
from repro.obs.metrics import METRICS
from repro.obs.tracer import NULL_TRACER, resolve_tracer
from repro.vdps.catalog import (
    VDPSCatalog,
    WorkerStrategy,
    build_catalog,
    strategy_sort_key,
    validate_entry,
    worker_offset_factor,
)
from repro.vdps.generator import (
    CVdpsEntry,
    DPStats,
    _StateKey,
    _StateVal,
    best_per_subset,
    compute_states,
    entry_from_value,
    extend_value,
    neighbor_id_map,
    relax,
    seed_value,
)


def _subset_sort_key(subset: FrozenSet[str]) -> Tuple[int, Tuple[str, ...]]:
    """The (size, ids) order entries are generated and validated in."""
    return (len(subset), tuple(sorted(subset)))


class DeltaCatalog:
    """One center's catalog, maintained by churn deltas (see module doc).

    Parameters
    ----------
    sub:
        The initial sub-problem; ``__init__`` performs one full build.
    epsilon:
        Distance-constrained pruning threshold, fixed for the catalog's
        lifetime (a changed threshold is a new catalog, as in the cache).
    strict_revalidation:
        Forwarded to Section IV validation, see
        :func:`~repro.vdps.catalog.build_catalog`.
    rebuild_fraction:
        Fall back to a full rebuild when more than this fraction of the
        center's delivery points changed in one refresh.  Deltas win when
        churn is sparse; a clock advance rewrites every relative deadline
        and is cheaper rebuilt.  ``0.0`` rebuilds on any churn; values
        above 1 never fall back (used by the differential tests to force
        the delta paths).
    verify:
        After every refresh, rebuild from scratch and assert equality
        (:func:`catalog_diff`).  Defeats the purpose in production; the
        harness tests and the bench's ``identical`` flag run on it.
    kernel:
        Implementation tier for the full-rebuild DP and the full-worker
        validation scans (``"scalar"``, ``"vectorized"``, or ``"numba"``;
        ``None`` resolves the process default).  The delta surgery itself
        stays scalar — it touches few states by construction — and every
        tier lands on the same bit-identical tables, so deltas applied
        over a kernel-built table still match rebuilds exactly.
    """

    def __init__(
        self,
        sub: SubProblem,
        epsilon: Optional[float] = None,
        strict_revalidation: bool = False,
        rebuild_fraction: float = 0.5,
        verify: bool = False,
        kernel: Optional[str] = None,
    ) -> None:
        if rebuild_fraction < 0:
            raise ValueError(
                f"rebuild_fraction must be >= 0, got {rebuild_fraction!r}"
            )
        self.epsilon = epsilon
        self._strict = bool(strict_revalidation)
        self._rebuild_fraction = float(rebuild_fraction)
        self._verify = bool(verify)
        self._kernel = kernel
        self._entry_arrays = None
        self._catalog: Optional[VDPSCatalog] = None
        self._last_path = "rebuild"
        tracer = resolve_tracer(False)
        if tracer.enabled:
            with tracer.span(
                "catalog.refresh",
                center=sub.center.center_id,
                path="rebuild",
            ):
                with METRICS.timer("catalog.delta_refresh_seconds"):
                    self._full_rebuild(sub)
        else:
            with METRICS.timer("catalog.delta_refresh_seconds"):
                self._full_rebuild(sub)

    # -- public surface -----------------------------------------------------

    @property
    def catalog(self) -> VDPSCatalog:
        """The catalog of the last refresh (never ``None`` after init)."""
        if self._catalog is None:
            raise RuntimeError(
                "DeltaCatalog was restored without a materialised catalog; "
                "call refresh(sub) first"
            )
        return self._catalog

    @property
    def center_id(self) -> str:
        return self._center_id

    @property
    def cap_built(self) -> int:
        """The ``maxDP`` bound the DP state table is complete up to."""
        return self._cap_built

    def refresh(self, sub: SubProblem) -> VDPSCatalog:
        """Bring the catalog up to date with ``sub`` and return it.

        Equal — strategy for strategy, bit for bit — to
        ``build_catalog(sub, epsilon=...)``, whether the refresh applied
        deltas or fell back to a rebuild.

        Traced as a ``catalog.refresh`` span whose ``path`` field names
        the outcome — ``delta``, ``noop``, ``fallback``, or ``rebuild`` —
        so round critical paths attribute catalog time to the decision
        that caused it.
        """
        tracer = resolve_tracer(False)
        if tracer.enabled:
            with tracer.span(
                "catalog.refresh", center=self._center_id
            ) as span:
                with METRICS.timer("catalog.delta_refresh_seconds"):
                    catalog = self._refresh(sub)
                span.add(path=self._last_path)
        else:
            with METRICS.timer("catalog.delta_refresh_seconds"):
                catalog = self._refresh(sub)
        if self._verify:
            diffs = catalog_diff(
                catalog,
                build_catalog(
                    sub,
                    epsilon=self.epsilon,
                    strict_revalidation=self._strict,
                    kernel=getattr(self, "_kernel", None),
                ),
            )
            if diffs:
                raise AssertionError(
                    "delta catalog diverged from rebuild: " + "; ".join(diffs)
                )
        return catalog

    def __getstate__(self):
        # The materialised catalog (and its numpy index) is cheap to
        # re-derive and bloats pickles; the persistent store drops it and
        # the first refresh() after a restore materialises it again.  The
        # flattened entry arrays are a derived cache too.
        state = self.__dict__.copy()
        state["_catalog"] = None
        state["_entry_arrays"] = None
        return state

    # -- refresh machinery --------------------------------------------------

    def _refresh(self, sub: SubProblem) -> VDPSCatalog:
        travel = sub.travel
        if (
            sub.center.center_id != self._center_id
            or sub.center.location != self._center_location
            or travel.speed_kmh != self._travel.speed_kmh
            or travel.distance_fn is not self._travel.distance_fn
        ):
            METRICS.counter("catalog.delta_fallbacks").add(1)
            self._full_rebuild(sub)
            self._last_path = "fallback"
            return self._catalog
        # Same geometry and parameters: adopt the live travel model (its
        # memoised distances are shared with the rest of the service).
        self._travel = travel

        new_points = {dp.dp_id: dp for dp in sub.center.delivery_points}
        workers = sub.online_workers
        new_cap = max((w.max_delivery_points for w in workers), default=0)
        added = [p for p in new_points if p not in self._points]
        removed = [p for p in self._points if p not in new_points]
        changed = [
            p
            for p, dp in new_points.items()
            if p in self._points and dp != self._points[p]
        ]
        churn = len(added) + len(removed) + len(changed)
        if (
            churn == 0
            and self._catalog is not None
            and workers == self._catalog.workers
        ):
            METRICS.counter("catalog.delta_noops").add(1)
            self._last_path = "noop"
            return self._catalog
        if churn > self._rebuild_fraction * max(
            len(new_points), len(self._points), 1
        ) or (new_cap > self._cap_built and self._cap_built == 0):
            METRICS.counter("catalog.delta_fallbacks").add(1)
            self._full_rebuild(sub)
            self._last_path = "fallback"
            return self._catalog

        METRICS.counter("catalog.delta_applies").add(1)
        self._last_path = "delta"
        METRICS.counter("catalog.delta_points_added").add(len(added) + len(changed))
        METRICS.counter("catalog.delta_points_removed").add(
            len(removed) + len(changed)
        )

        stats = DPStats()
        removed_subsets: Set[FrozenSet[str]] = set()
        added_entries: Dict[FrozenSet[str], CVdpsEntry] = {}
        for p in sorted(removed) + sorted(changed):
            self._remove_point(p, removed_subsets, added_entries)
        for p in sorted(changed) + sorted(added):
            self._add_point(p, new_points[p], added_entries, stats)
        if new_cap > self._cap_built:
            self._extend_cap(new_cap, added_entries, stats)
        METRICS.counter("cvdps.states_expanded").add(stats.states_expanded)
        METRICS.counter("cvdps.candidates_tried").add(stats.candidates_tried)
        METRICS.counter("cvdps.deadline_rejections").add(stats.deadline_rejections)
        METRICS.counter("catalog.delta_entries_added").add(len(added_entries))
        METRICS.counter("catalog.delta_entries_removed").add(len(removed_subsets))

        self._apply_worker_churn(workers, removed_subsets, added_entries)
        return self._materialize(workers)

    def _full_rebuild(self, sub: SubProblem) -> None:
        """Reset every table from scratch (init and the fallback path)."""
        METRICS.counter("catalog.delta_rebuilds").add(1)
        self._travel = sub.travel
        self._center_id = sub.center.center_id
        self._center_location = sub.center.location
        points = sub.center.delivery_points
        self._points: Dict[str, DeliveryPoint] = {dp.dp_id: dp for dp in points}
        self._neighbors: Dict[str, List[str]] = {
            dp_id: list(adj)
            for dp_id, adj in neighbor_id_map(points, self.epsilon).items()
        }
        workers = sub.online_workers
        self._cap_built = max((w.max_delivery_points for w in workers), default=0)
        stats = DPStats()
        if self._cap_built and self._points:
            self._states: Dict[_StateKey, _StateVal] = compute_states(
                self._points,
                self._neighbors,
                self._travel,
                self._center_location,
                self._cap_built,
                stats,
                NULL_TRACER,
                self._center_id,
                kernel=getattr(self, "_kernel", None),
            )
        else:
            self._states = {}
        self._entries: Dict[FrozenSet[str], CVdpsEntry] = {
            subset: entry_from_value(
                self._points, subset, value, self._travel, self._center_location
            )
            for subset, value in best_per_subset(self._states).items()
        }
        self._entry_arrays = None
        self._workers: Dict[str, Worker] = {}
        self._offsets: Dict[str, Tuple[float, float]] = {}
        self._strategies: Dict[str, Dict[FrozenSet[str], WorkerStrategy]] = {}
        for worker in workers:
            self._workers[worker.worker_id] = worker
            self._strategies[worker.worker_id] = self._validate_worker(worker)
        self._materialize(workers)

    # -- DP state surgery ---------------------------------------------------

    def _remove_point(
        self,
        p: str,
        removed_subsets: Set[FrozenSet[str]],
        added_entries: Dict[FrozenSet[str], CVdpsEntry],
    ) -> None:
        """Retract every state and entry whose subset contains ``p``."""
        del self._points[p]
        for q in self._neighbors.pop(p, []):
            adjacency = self._neighbors.get(q)
            if adjacency is not None and p in adjacency:
                adjacency.remove(p)
        for key in [key for key in self._states if p in key[0]]:
            del self._states[key]
        for subset in [subset for subset in self._entries if p in subset]:
            del self._entries[subset]
            removed_subsets.add(subset)
            added_entries.pop(subset, None)
        self._entry_arrays = None

    def _add_point(
        self,
        p: str,
        dp: DeliveryPoint,
        added_entries: Dict[FrozenSet[str], CVdpsEntry],
        stats: DPStats,
    ) -> None:
        """Extend the table with every state whose subset contains ``p``."""
        self._points[p] = dp
        if self.epsilon is None:
            adjacency = [q for q in self._points if q != p]
        else:
            # Same Euclidean point-to-point test as neighbor_lists.
            adjacency = [
                q
                for q, other in self._points.items()
                if q != p and dp.location.distance_to(other.location) <= self.epsilon
            ]
        for q in adjacency:
            self._neighbors[q].append(p)
        self._neighbors[p] = adjacency

        new_states = self._states_with_point(p, stats)
        self._states.update(new_states)
        for subset, value in best_per_subset(new_states).items():
            entry = entry_from_value(
                self._points, subset, value, self._travel, self._center_location
            )
            self._entries[subset] = entry
            added_entries[subset] = entry
        self._entry_arrays = None

    def _states_with_point(self, p: str, stats: DPStats) -> Dict[_StateKey, _StateVal]:
        """All feasible DP states containing ``p`` over the current points.

        States free of ``p`` never route through it, so the existing table
        is exactly the ``p``-free half of the full DP; this computes the
        other half.  Seeds: the singleton ``({p}, p)`` plus one-step
        extensions of every existing state whose endpoint can hop to ``p``
        (predecessors of a state ending *at* ``p`` are ``p``-free).  The
        upward closure then only ever expands states already containing
        ``p``, layer by layer, with the same canonical relaxation as the
        full build — so every new state gets its canonical value.
        """
        cap = self._cap_built
        by_size: Dict[int, Dict[_StateKey, _StateVal]] = defaultdict(dict)
        if cap < 1:
            return {}
        dp_p = self._points[p]
        seeded = seed_value(dp_p, self._travel, self._center_location)
        if seeded is None:
            stats.deadline_rejections += 1
        else:
            by_size[1][(frozenset((p,)), p)] = seeded
        # The neighbourhood is symmetric (point-to-point Euclidean), so
        # "p in neighbors[j]" — the full DP's chaining test — is exactly
        # "j in neighbors[p]".
        reaches_p = set(self._neighbors[p])
        for (subset, j), value in self._states.items():
            if len(subset) >= cap or j not in reaches_p:
                continue
            stats.candidates_tried += 1
            extended = extend_value(value, self._points[j], dp_p, self._travel)
            if extended is None:
                stats.deadline_rejections += 1
                continue
            relax(by_size[len(subset) + 1], (subset | {p}, p), extended)
        for size in range(1, cap):
            frontier = by_size.get(size)
            if not frontier:
                continue
            for (subset, j), value in frontier.items():
                dp_j = self._points[j]
                for q in self._neighbors[j]:
                    if q in subset:
                        continue
                    stats.candidates_tried += 1
                    extended = extend_value(value, dp_j, self._points[q], self._travel)
                    if extended is None:
                        stats.deadline_rejections += 1
                        continue
                    relax(by_size[size + 1], (subset | {q}, q), extended)
        out: Dict[_StateKey, _StateVal] = {}
        for size in range(1, cap + 1):
            layer = by_size.get(size)
            if layer:
                stats.states_expanded += len(layer)
                out.update(layer)
        return out

    def _extend_cap(
        self,
        new_cap: int,
        added_entries: Dict[FrozenSet[str], CVdpsEntry],
        stats: DPStats,
    ) -> None:
        """Deepen the DP when a joining worker raises the ``maxDP`` bound.

        The table is complete up to ``cap_built``, so resuming the layered
        expansion from the top layer reproduces exactly the layers a
        full build with the larger cap would add.  (A cap that *shrank*
        needs no surgery: materialisation filters by the current cap.)
        """
        frontier = {
            key: value
            for key, value in self._states.items()
            if len(key[0]) == self._cap_built
        }
        size = self._cap_built
        new_states: Dict[_StateKey, _StateVal] = {}
        while frontier and size < new_cap:
            next_frontier: Dict[_StateKey, _StateVal] = {}
            for (subset, j), value in frontier.items():
                dp_j = self._points[j]
                for q in self._neighbors[j]:
                    if q in subset:
                        continue
                    stats.candidates_tried += 1
                    extended = extend_value(value, dp_j, self._points[q], self._travel)
                    if extended is None:
                        stats.deadline_rejections += 1
                        continue
                    relax(next_frontier, (subset | {q}, q), extended)
            self._states.update(next_frontier)
            new_states.update(next_frontier)
            frontier = next_frontier
            size += 1
            stats.states_expanded += len(next_frontier)
        self._cap_built = new_cap
        for subset, value in best_per_subset(new_states).items():
            entry = entry_from_value(
                self._points, subset, value, self._travel, self._center_location
            )
            self._entries[subset] = entry
            added_entries[subset] = entry
        self._entry_arrays = None

    # -- worker-level revalidation ------------------------------------------

    def _get_entry_arrays(self):
        """The flattened entry arrays, rebuilt lazily after entry churn.

        Entries flatten in the canonical ``(size, ids)`` order — the order
        the scalar scan iterates — so the vectorized scan visits the same
        entries in the same sequence.
        """
        arrays = getattr(self, "_entry_arrays", None)
        if arrays is None:
            from repro.kernels.validate import EntryArrays

            arrays = EntryArrays.from_entries(
                [
                    self._entries[subset]
                    for subset in sorted(self._entries, key=_subset_sort_key)
                ]
            )
            self._entry_arrays = arrays
        return arrays

    def _validate_worker(self, worker: Worker) -> Dict[FrozenSet[str], WorkerStrategy]:
        """Full Section IV validation of one worker against every entry."""
        offset, factor = worker_offset_factor(
            worker, self._travel, self._center_location
        )
        self._offsets[worker.worker_id] = (offset, factor)
        from repro.kernels import resolve_kernel

        if resolve_kernel(getattr(self, "_kernel", None)) != "scalar":
            from repro.kernels.validate import validate_worker_vectorized

            found = validate_worker_vectorized(
                self._get_entry_arrays(),
                worker,
                offset,
                factor,
                self._travel,
                self._center_location,
                self._strict,
            )
            return {strategy.point_ids: strategy for strategy in found}
        out: Dict[FrozenSet[str], WorkerStrategy] = {}
        for subset in sorted(self._entries, key=_subset_sort_key):
            strategy = validate_entry(
                self._entries[subset],
                worker,
                offset,
                factor,
                self._travel,
                self._center_location,
                self._strict,
            )
            if strategy is not None:
                out[subset] = strategy
        return out

    def _apply_worker_churn(
        self,
        workers: Tuple[Worker, ...],
        removed_subsets: Set[FrozenSet[str]],
        added_entries: Dict[FrozenSet[str], CVdpsEntry],
    ) -> None:
        """Revalidate changed workers fully; patch unchanged ones by delta."""
        live = {worker.worker_id: worker for worker in workers}
        for wid in [wid for wid in self._strategies if wid not in live]:
            del self._strategies[wid]
            self._offsets.pop(wid, None)
            self._workers.pop(wid, None)
        ordered_added = [
            added_entries[subset]
            for subset in sorted(added_entries, key=_subset_sort_key)
        ]
        revalidated = 0
        for wid, worker in live.items():
            known = self._workers.get(wid)
            if known is None or known != worker:
                # New worker, or content changed (location shifts the start
                # offset, maxDP the size filter, speed the scale factor):
                # nothing incremental survives, validate from scratch.
                self._workers[wid] = worker
                self._strategies[wid] = self._validate_worker(worker)
                revalidated += 1
                continue
            strategies = self._strategies[wid]
            for subset in removed_subsets:
                strategies.pop(subset, None)
            offset, factor = self._offsets[wid]
            for entry in ordered_added:
                strategy = validate_entry(
                    entry,
                    worker,
                    offset,
                    factor,
                    self._travel,
                    self._center_location,
                    self._strict,
                )
                if strategy is not None:
                    strategies[entry.point_ids] = strategy
        if revalidated:
            METRICS.counter("catalog.delta_workers_revalidated").add(revalidated)

    # -- materialisation ----------------------------------------------------

    def _materialize(self, workers: Tuple[Worker, ...]) -> VDPSCatalog:
        """Assemble the :class:`VDPSCatalog` a from-scratch build would return.

        Per-worker strategy dicts sort into the canonical catalog order
        (the sort key is a total order, so insertion history is erased);
        ``cvdps_count`` filters the entry table by the *current* cap so a
        shrunk worker pool reports what its own build would generate.  The
        conflict index stays lazy, exactly like ``build_catalog``: equal
        strategy mappings build equal indexes on demand.
        """
        cap_now = max((w.max_delivery_points for w in workers), default=0)
        strategies: Dict[str, Tuple[WorkerStrategy, ...]] = {}
        for worker in workers:
            found = sorted(
                self._strategies[worker.worker_id].values(), key=strategy_sort_key
            )
            strategies[worker.worker_id] = tuple(found)
        cvdps_count = sum(
            1 for subset in self._entries if len(subset) <= cap_now
        )
        self._catalog = VDPSCatalog(workers, strategies, self.epsilon, cvdps_count)
        return self._catalog


def catalog_diff(
    actual: VDPSCatalog, expected: VDPSCatalog, check_index: bool = True
) -> List[str]:
    """Human-readable differences between two catalogs; ``[]`` means equal.

    Equality here is the full bit-identity contract the differential suites
    assert: worker tuples (content equality), epsilon, ``cvdps_count``,
    every strategy tuple position for position (point sets, routes with
    exact arrival times, payoffs), and — with ``check_index`` — the
    materialised :class:`CatalogIndex` bit layout (``point_bits``, packed
    masks, payoff vectors, size-1 pools, all compared exactly).
    """
    diffs: List[str] = []
    if actual.epsilon != expected.epsilon:
        diffs.append(f"epsilon {actual.epsilon!r} != {expected.epsilon!r}")
    if actual.cvdps_count != expected.cvdps_count:
        diffs.append(
            f"cvdps_count {actual.cvdps_count} != {expected.cvdps_count}"
        )
    if actual.workers != expected.workers:
        diffs.append(
            f"workers {[w.worker_id for w in actual.workers]} != "
            f"{[w.worker_id for w in expected.workers]} (or content changed)"
        )
        return diffs
    for worker in actual.workers:
        wid = worker.worker_id
        ours, theirs = actual.strategies(wid), expected.strategies(wid)
        if len(ours) != len(theirs):
            diffs.append(
                f"worker {wid}: {len(ours)} strategies != {len(theirs)}"
            )
            continue
        for pos, (a, b) in enumerate(zip(ours, theirs)):
            if a != b:
                diffs.append(
                    f"worker {wid} strategy {pos}: "
                    f"{sorted(a.point_ids)} payoff {a.payoff!r} != "
                    f"{sorted(b.point_ids)} payoff {b.payoff!r}"
                )
                break
    if diffs or not check_index:
        return diffs
    index_a, index_b = actual.index, expected.index
    if index_a.point_bits != index_b.point_bits:
        diffs.append("index point_bits differ")
    if index_a.n_words != index_b.n_words:
        diffs.append(f"index n_words {index_a.n_words} != {index_b.n_words}")
    for worker in actual.workers:
        wid = worker.worker_id
        wa, wb = index_a.worker(wid), index_b.worker(wid)
        if not np.array_equal(wa.masks, wb.masks):
            diffs.append(f"index masks differ for worker {wid}")
        if not np.array_equal(wa.payoffs, wb.payoffs):
            diffs.append(f"index payoffs differ for worker {wid}")
        if not np.array_equal(wa.size1, wb.size1):
            diffs.append(f"index size1 pools differ for worker {wid}")
    return diffs
