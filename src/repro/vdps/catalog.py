"""Per-worker strategy catalogs built from C-VDPSs.

After C-VDPS generation, Section IV validates each set per worker using the
worker's travel time to the distribution center and the task expiration
times.  The result — every VDPS of every worker, with its minimal-time route
and precomputed payoff — is the strategy space of both games, so it is built
once per sub-problem and shared by all solvers.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, List, Mapping, Optional, Tuple

from repro.core.entities import Worker
from repro.core.instance import SubProblem
from repro.core.payoff import worker_payoff
from repro.core.routing import Route, arrival_times, best_route
from repro.obs.metrics import METRICS
from repro.obs.tracer import NullTracer, resolve_tracer
from repro.vdps.generator import CVdpsEntry, generate_cvdps

#: Sentinel id for the *null* strategy (the worker performs no deliveries).
NULL_STRATEGY_ID = "<null>"


@dataclass(frozen=True)
class WorkerStrategy:
    """One strategy of one worker: a VDPS with its route and payoff.

    ``route`` arrival times include the worker's start offset, so ``payoff``
    is exactly Equation 1.  The null strategy has an empty set, an empty
    route, and payoff 0.
    """

    point_ids: FrozenSet[str]
    route: Route
    payoff: float

    @property
    def is_null(self) -> bool:
        return not self.point_ids

    @property
    def size(self) -> int:
        return len(self.point_ids)

    def conflicts_with(self, claimed: Iterable[str]) -> bool:
        """Whether this strategy uses any delivery point in ``claimed``."""
        if self.is_null:
            return False
        ids = self.point_ids
        return any(c in ids for c in claimed)


#: The shared null strategy (identical for every worker).
NULL_STRATEGY = WorkerStrategy(frozenset(), Route((), ()), 0.0)


class VDPSCatalog:
    """Strategy spaces ``ST_i = VDPS(w_i) ∪ {null}`` for a sub-problem.

    Strategies are sorted by descending payoff (ties broken by point ids) so
    iteration order — and therefore every solver's tie-breaking — is
    deterministic.
    """

    def __init__(
        self,
        workers: Tuple[Worker, ...],
        strategies: Mapping[str, Tuple[WorkerStrategy, ...]],
        epsilon: Optional[float],
        cvdps_count: int,
    ) -> None:
        self._workers = workers
        self._strategies: Dict[str, Tuple[WorkerStrategy, ...]] = dict(strategies)
        self.epsilon = epsilon
        self.cvdps_count = cvdps_count

    @property
    def workers(self) -> Tuple[Worker, ...]:
        return self._workers

    def strategies(self, worker_id: str) -> Tuple[WorkerStrategy, ...]:
        """The worker's non-null strategies, best payoff first."""
        try:
            return self._strategies[worker_id]
        except KeyError:
            raise KeyError(f"no worker {worker_id!r} in catalog") from None

    def has_strategies(self, worker_id: str) -> bool:
        """Whether the worker has at least one non-null VDPS."""
        return bool(self._strategies.get(worker_id))

    def available(
        self, worker_id: str, claimed: Iterable[str]
    ) -> List[WorkerStrategy]:
        """Non-null strategies not conflicting with ``claimed`` point ids."""
        claimed_set = frozenset(claimed)
        return [
            s
            for s in self.strategies(worker_id)
            if not (claimed_set and s.conflicts_with(claimed_set))
        ]

    @property
    def max_vdps_size(self) -> int:
        """``|maxVDPS|``: the largest VDPS size across all workers."""
        sizes = [
            s.size for strategies in self._strategies.values() for s in strategies
        ]
        return max(sizes, default=0)

    @property
    def total_strategy_count(self) -> int:
        """Total number of non-null strategies across workers."""
        return sum(len(v) for v in self._strategies.values())

    def describe(self) -> str:
        """One-line summary used in logs and experiment reports."""
        return (
            f"catalog: |W|={len(self._workers)} cvdps={self.cvdps_count} "
            f"strategies={self.total_strategy_count} eps={self.epsilon}"
        )


def build_catalog(
    sub: SubProblem,
    epsilon: Optional[float] = None,
    strict_revalidation: bool = False,
    cvdps: Optional[List[CVdpsEntry]] = None,
    tracer: Optional[NullTracer] = None,
) -> VDPSCatalog:
    """Build the strategy catalog for every online worker of ``sub``.

    Parameters
    ----------
    sub:
        The per-center sub-problem.
    epsilon:
        Distance-constrained pruning threshold; ``None`` disables pruning.
    strict_revalidation:
        The paper validates a C-VDPS per worker by shifting its recorded
        minimal-time sequence by the worker's start offset.  A set whose
        recorded sequence misses a deadline might still admit *another*
        feasible order for that worker; with ``strict_revalidation`` those
        sets are re-solved exactly (Held-Karp) instead of dropped.  Off by
        default to match the paper.
    cvdps:
        Pre-generated C-VDPS entries, to share work across algorithm arms
        that use the same ``epsilon``.
    tracer:
        Structured-event tracer for the build; ``None`` resolves the
        process-wide sink (``REPRO_TRACE`` / :func:`repro.obs.set_tracing`).
        A live tracer receives one ``catalog.build`` span per call; build
        timings and strategy counts always land in the :mod:`repro.obs`
        metrics registry.
    """
    tracer = resolve_tracer(False) if tracer is None else tracer
    span = tracer.span(
        "catalog.build",
        center=sub.center.center_id,
        epsilon=epsilon,
        workers=len(sub.online_workers),
    )
    with span, METRICS.timer("catalog.build_seconds"):
        catalog = _build_catalog(
            sub, epsilon, strict_revalidation, cvdps, tracer
        )
        if tracer.enabled:
            span.add(
                cvdps=catalog.cvdps_count,
                strategies=catalog.total_strategy_count,
            )
    METRICS.counter("catalog.builds").add(1)
    METRICS.counter("catalog.strategies_built").add(catalog.total_strategy_count)
    return catalog


def _build_catalog(
    sub: SubProblem,
    epsilon: Optional[float],
    strict_revalidation: bool,
    cvdps: Optional[List[CVdpsEntry]],
    tracer: NullTracer,
) -> VDPSCatalog:
    workers = sub.online_workers
    travel_model = sub.travel
    if cvdps is None:
        cap = max((w.max_delivery_points for w in workers), default=0)
        cvdps = generate_cvdps(sub.center, travel_model, epsilon, cap, tracer=tracer)

    strategies: Dict[str, Tuple[WorkerStrategy, ...]] = {}
    for worker in workers:
        # Workers with an individual speed (future-work extension) traverse
        # the same distances in scaled time: center-relative arrival times
        # stretch by factor = shared_speed / worker_speed.
        if worker.speed_kmh is None or worker.speed_kmh == travel_model.speed_kmh:
            factor = 1.0
        else:
            factor = travel_model.speed_kmh / worker.speed_kmh
        offset = travel_model.time(worker.location, sub.center.location) * factor
        found: List[WorkerStrategy] = []
        for entry in cvdps:
            if entry.size > worker.max_delivery_points:
                continue
            if factor == 1.0:
                base = entry.route
            elif any(dp.service_hours for dp in entry.route.sequence):
                # Service time does not scale with travel speed, so the
                # arrival times must be recomputed rather than scaled.
                worker_travel = travel_model.with_speed(worker.speed_kmh)
                base = Route(
                    entry.route.sequence,
                    tuple(
                        arrival_times(
                            sub.center.location, entry.route.sequence, worker_travel
                        )
                    ),
                )
            else:
                base = entry.route.scaled(factor)
            if base.is_valid_with_offset(offset):
                route = base.shifted(offset)
            elif strict_revalidation:
                worker_travel = (
                    travel_model
                    if factor == 1.0
                    else travel_model.with_speed(worker.speed_kmh)
                )
                route = best_route(
                    sub.center.location,
                    entry.route.sequence,
                    worker_travel,
                    start_offset=offset,
                )
                if route is None:
                    continue
            else:
                continue
            if route.completion_time <= 0:
                # Degenerate geometry: delivery point co-located with both
                # center and worker.  Equation 1's payoff is undefined
                # (reward at zero cost), so the strategy is excluded.
                continue
            payoff = worker_payoff(route)
            if not math.isfinite(payoff):
                # Subnormal travel times can overflow the ratio to inf;
                # such strategies are as degenerate as zero-cost ones.
                continue
            found.append(WorkerStrategy(entry.point_ids, route, payoff))
        found.sort(key=lambda s: (-s.payoff, tuple(sorted(s.point_ids))))
        strategies[worker.worker_id] = tuple(found)
    return VDPSCatalog(workers, strategies, epsilon, len(cvdps))
