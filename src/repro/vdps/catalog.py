"""Per-worker strategy catalogs built from C-VDPSs.

After C-VDPS generation, Section IV validates each set per worker using the
worker's travel time to the distribution center and the task expiration
times.  The result — every VDPS of every worker, with its minimal-time route
and precomputed payoff — is the strategy space of both games, so it is built
once per sub-problem and shared by all solvers.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, List, Mapping, Optional, Tuple

import numpy as np

from repro.core.entities import Worker
from repro.core.instance import SubProblem
from repro.core.payoff import worker_payoff
from repro.core.routing import Route, arrival_times, best_route
from repro.obs.metrics import METRICS
from repro.obs.tracer import NullTracer, resolve_tracer
from repro.vdps.generator import CVdpsEntry, generate_cvdps

#: Sentinel id for the *null* strategy (the worker performs no deliveries).
NULL_STRATEGY_ID = "<null>"


@dataclass(frozen=True)
class WorkerStrategy:
    """One strategy of one worker: a VDPS with its route and payoff.

    ``route`` arrival times include the worker's start offset, so ``payoff``
    is exactly Equation 1.  The null strategy has an empty set, an empty
    route, and payoff 0.
    """

    point_ids: FrozenSet[str]
    route: Route
    payoff: float

    @property
    def is_null(self) -> bool:
        return not self.point_ids

    @property
    def size(self) -> int:
        return len(self.point_ids)

    def conflicts_with(self, claimed: Iterable[str]) -> bool:
        """Whether this strategy uses any delivery point in ``claimed``."""
        if self.is_null:
            return False
        ids = self.point_ids
        return any(c in ids for c in claimed)


#: The shared null strategy (identical for every worker).
NULL_STRATEGY = WorkerStrategy(frozenset(), Route((), ()), 0.0)

#: Bits per mask word (the conflict index packs point ids into uint64 words).
_WORD_BITS = 64


@dataclass(frozen=True)
class WorkerIndex:
    """Vectorized view of one worker's strategy tuple, aligned by position.

    Row ``r`` of every array describes ``catalog.strategies(worker_id)[r]``,
    so an index computed over these arrays selects the exact same strategy
    (and therefore the same tie-breaking) as a scan over the tuple.
    """

    #: ``(n_strategies, n_words)`` uint64 conflict bitmasks (one bit per
    #: delivery point of the center, see :attr:`CatalogIndex.point_bits`).
    masks: np.ndarray
    #: ``(n_strategies,)`` float64 Equation-1 payoffs.
    payoffs: np.ndarray
    #: Positions (ascending, i.e. catalog order) of the size-1 strategies —
    #: the candidate pool of the random initial assignment.
    size1: np.ndarray

    @property
    def n_strategies(self) -> int:
        return self.payoffs.size

    def available(self, claimed_words: np.ndarray) -> np.ndarray:
        """Positions of strategies disjoint from the ``claimed_words`` mask.

        Equivalent to filtering the strategy tuple through
        :meth:`WorkerStrategy.conflicts_with`, as one vectorized pass.
        """
        conflict = (self.masks & claimed_words).any(axis=1)
        return np.flatnonzero(~conflict)


class CatalogIndex:
    """Bitmask conflict index over a catalog's delivery points.

    Every delivery point referenced by any strategy gets a bit position
    (assigned in sorted-id order, so the index is deterministic); each
    strategy becomes a packed uint64 bitmask over those positions.  Solvers
    then test availability with ``masks & claimed == 0`` over whole strategy
    lists instead of Python-level set intersections — the backbone of the
    vectorized best-response engine.
    """

    def __init__(self, strategies: Mapping[str, Tuple[WorkerStrategy, ...]]) -> None:
        point_ids = sorted(
            {
                dp_id
                for worker_strategies in strategies.values()
                for strategy in worker_strategies
                for dp_id in strategy.point_ids
            }
        )
        self.point_bits: Dict[str, int] = {
            dp_id: bit for bit, dp_id in enumerate(point_ids)
        }
        self.n_words: int = max(
            1, -(-len(point_ids) // _WORD_BITS)
        )  # ceil, at least one word so masks never degenerate to width 0
        self._workers: Dict[str, WorkerIndex] = {}
        for worker_id, worker_strategies in strategies.items():
            n = len(worker_strategies)
            masks = np.zeros((n, self.n_words), dtype=np.uint64)
            payoffs = np.empty(n, dtype=np.float64)
            size1: List[int] = []
            for row, strategy in enumerate(worker_strategies):
                payoffs[row] = strategy.payoff
                for dp_id in strategy.point_ids:
                    bit = self.point_bits[dp_id]
                    word = bit // _WORD_BITS
                    masks[row, word] |= np.uint64(1 << (bit % _WORD_BITS))
                if strategy.size == 1:
                    size1.append(row)
            self._workers[worker_id] = WorkerIndex(
                masks=masks,
                payoffs=payoffs,
                size1=np.asarray(size1, dtype=np.intp),
            )

    def worker(self, worker_id: str) -> WorkerIndex:
        """The per-worker arrays; raises KeyError for unknown workers."""
        try:
            return self._workers[worker_id]
        except KeyError:
            raise KeyError(f"no worker {worker_id!r} in catalog index") from None

    def empty_mask(self) -> np.ndarray:
        """A fresh all-zero claimed mask (``(n_words,)`` uint64)."""
        return np.zeros(self.n_words, dtype=np.uint64)

    def mask_of(self, point_ids: Iterable[str]) -> np.ndarray:
        """The bitmask of an arbitrary point-id set (e.g. one strategy's)."""
        mask = self.empty_mask()
        for dp_id in point_ids:
            bit = self.point_bits[dp_id]
            mask[bit // _WORD_BITS] |= np.uint64(1 << (bit % _WORD_BITS))
        return mask


class VDPSCatalog:
    """Strategy spaces ``ST_i = VDPS(w_i) ∪ {null}`` for a sub-problem.

    Strategies are sorted by descending payoff (ties broken by point ids) so
    iteration order — and therefore every solver's tie-breaking — is
    deterministic.
    """

    def __init__(
        self,
        workers: Tuple[Worker, ...],
        strategies: Mapping[str, Tuple[WorkerStrategy, ...]],
        epsilon: Optional[float],
        cvdps_count: int,
    ) -> None:
        self._workers = workers
        self._strategies: Dict[str, Tuple[WorkerStrategy, ...]] = dict(strategies)
        self.epsilon = epsilon
        self.cvdps_count = cvdps_count
        # Both aggregates are O(total strategies) and read on hot paths
        # (solve_start trace events, reports), so they are computed once.
        self._max_vdps_size = max(
            (
                len(s.point_ids)
                for worker_strategies in self._strategies.values()
                for s in worker_strategies
            ),
            default=0,
        )
        self._total_strategy_count = sum(
            len(v) for v in self._strategies.values()
        )
        self._index: Optional[CatalogIndex] = None

    @property
    def workers(self) -> Tuple[Worker, ...]:
        return self._workers

    def strategies(self, worker_id: str) -> Tuple[WorkerStrategy, ...]:
        """The worker's non-null strategies, best payoff first."""
        try:
            return self._strategies[worker_id]
        except KeyError:
            raise KeyError(f"no worker {worker_id!r} in catalog") from None

    def has_strategies(self, worker_id: str) -> bool:
        """Whether the worker has at least one non-null VDPS."""
        return bool(self._strategies.get(worker_id))

    def available(
        self, worker_id: str, claimed: Iterable[str]
    ) -> List[WorkerStrategy]:
        """Non-null strategies not conflicting with ``claimed`` point ids."""
        claimed_set = frozenset(claimed)
        return [
            s
            for s in self.strategies(worker_id)
            if not (claimed_set and s.conflicts_with(claimed_set))
        ]

    @property
    def max_vdps_size(self) -> int:
        """``|maxVDPS|``: the largest VDPS size across all workers."""
        return self._max_vdps_size

    @property
    def total_strategy_count(self) -> int:
        """Total number of non-null strategies across workers."""
        return self._total_strategy_count

    @property
    def index(self) -> CatalogIndex:
        """The bitmask conflict index, built on first access and cached.

        One-shot solvers (GTA, MPTA) never touch it, so the packing cost is
        only paid by the game solvers that actually vectorize over it.
        """
        if self._index is None:
            self._index = CatalogIndex(self._strategies)
        return self._index

    def describe(self) -> str:
        """One-line summary used in logs and experiment reports."""
        return (
            f"catalog: |W|={len(self._workers)} cvdps={self.cvdps_count} "
            f"strategies={self.total_strategy_count} eps={self.epsilon}"
        )


def build_catalog(
    sub: SubProblem,
    epsilon: Optional[float] = None,
    strict_revalidation: bool = False,
    cvdps: Optional[List[CVdpsEntry]] = None,
    tracer: Optional[NullTracer] = None,
    kernel: Optional[str] = None,
) -> VDPSCatalog:
    """Build the strategy catalog for every online worker of ``sub``.

    Parameters
    ----------
    sub:
        The per-center sub-problem.
    epsilon:
        Distance-constrained pruning threshold; ``None`` disables pruning.
    kernel:
        Implementation tier for C-VDPS generation and the per-worker
        validation scan (``"scalar"``, ``"vectorized"``, or ``"numba"``;
        ``None`` resolves the process default — see
        :mod:`repro.kernels.config`).  Tiers are bit-identical: the same
        strategies, routes, payoffs, and index layout.
    strict_revalidation:
        The paper validates a C-VDPS per worker by shifting its recorded
        minimal-time sequence by the worker's start offset.  A set whose
        recorded sequence misses a deadline might still admit *another*
        feasible order for that worker; with ``strict_revalidation`` those
        sets are re-solved exactly (Held-Karp) instead of dropped.  Off by
        default to match the paper.
    cvdps:
        Pre-generated C-VDPS entries, to share work across algorithm arms
        that use the same ``epsilon``.
    tracer:
        Structured-event tracer for the build; ``None`` resolves the
        process-wide sink (``REPRO_TRACE`` / :func:`repro.obs.set_tracing`).
        A live tracer receives one ``catalog.build`` span per call; build
        timings and strategy counts always land in the :mod:`repro.obs`
        metrics registry.
    """
    tracer = resolve_tracer(False) if tracer is None else tracer
    span = tracer.span(
        "catalog.build",
        center=sub.center.center_id,
        epsilon=epsilon,
        workers=len(sub.online_workers),
    )
    with span, METRICS.timer("catalog.build_seconds"):
        catalog = _build_catalog(
            sub, epsilon, strict_revalidation, cvdps, tracer, kernel
        )
        if tracer.enabled:
            span.add(
                cvdps=catalog.cvdps_count,
                strategies=catalog.total_strategy_count,
            )
    METRICS.counter("catalog.builds").add(1)
    METRICS.counter("catalog.strategies_built").add(catalog.total_strategy_count)
    return catalog


def worker_offset_factor(
    worker: Worker, travel_model, center_location
) -> Tuple[float, float]:
    """The worker's start-time ``(offset, speed factor)`` pair.

    Workers with an individual speed (future-work extension) traverse the
    same distances in scaled time: center-relative arrival times stretch by
    ``factor = shared_speed / worker_speed``.  Only these two numbers (plus
    ``max_delivery_points``) feed per-worker validation, so the delta layer
    revalidates a worker exactly when one of them changed.
    """
    if worker.speed_kmh is None or worker.speed_kmh == travel_model.speed_kmh:
        factor = 1.0
    else:
        factor = travel_model.speed_kmh / worker.speed_kmh
    offset = travel_model.time(worker.location, center_location) * factor
    return offset, factor


def validate_entry(
    entry: CVdpsEntry,
    worker: Worker,
    offset: float,
    factor: float,
    travel_model,
    center_location,
    strict_revalidation: bool = False,
) -> Optional[WorkerStrategy]:
    """Section IV validation of one C-VDPS for one worker.

    Returns the worker's :class:`WorkerStrategy` for ``entry``, or ``None``
    when the set is infeasible (deadline miss after the start offset) or
    degenerate (non-positive completion time, non-finite payoff).  Shared
    verbatim by the full catalog build and :mod:`repro.vdps.delta`, which is
    what makes an incrementally revalidated strategy bit-identical to the
    rebuilt one.
    """
    if entry.size > worker.max_delivery_points:
        return None
    if factor == 1.0:
        base = entry.route
    elif any(dp.service_hours for dp in entry.route.sequence):
        # Service time does not scale with travel speed, so the
        # arrival times must be recomputed rather than scaled.
        worker_travel = travel_model.with_speed(worker.speed_kmh)
        base = Route(
            entry.route.sequence,
            tuple(
                arrival_times(center_location, entry.route.sequence, worker_travel)
            ),
        )
    else:
        base = entry.route.scaled(factor)
    if base.is_valid_with_offset(offset):
        route = base.shifted(offset)
    elif strict_revalidation:
        worker_travel = (
            travel_model if factor == 1.0 else travel_model.with_speed(worker.speed_kmh)
        )
        route = best_route(
            center_location,
            entry.route.sequence,
            worker_travel,
            start_offset=offset,
        )
        if route is None:
            return None
    else:
        return None
    if route.completion_time <= 0:
        # Degenerate geometry: delivery point co-located with both
        # center and worker.  Equation 1's payoff is undefined
        # (reward at zero cost), so the strategy is excluded.
        return None
    payoff = worker_payoff(route)
    if not math.isfinite(payoff):
        # Subnormal travel times can overflow the ratio to inf;
        # such strategies are as degenerate as zero-cost ones.
        return None
    return WorkerStrategy(entry.point_ids, route, payoff)


def strategy_sort_key(strategy: WorkerStrategy):
    """The canonical catalog ordering: best payoff first, ties by point ids.

    Unique per worker (one strategy per subset), hence a total order — any
    collection of validated strategies sorts to the same tuple regardless
    of how it was accumulated, which is what lets the incremental catalog
    (:mod:`repro.vdps.delta`) erase its insertion history.
    """
    return (-strategy.payoff, tuple(sorted(strategy.point_ids)))


def _build_catalog(
    sub: SubProblem,
    epsilon: Optional[float],
    strict_revalidation: bool,
    cvdps: Optional[List[CVdpsEntry]],
    tracer: NullTracer,
    kernel: Optional[str] = None,
) -> VDPSCatalog:
    from repro.kernels import resolve_kernel

    tier = resolve_kernel(kernel)
    workers = sub.online_workers
    travel_model = sub.travel
    if cvdps is None:
        cap = max((w.max_delivery_points for w in workers), default=0)
        cvdps = generate_cvdps(
            sub.center, travel_model, epsilon, cap, tracer=tracer, kernel=tier
        )

    arrays = None
    if tier != "scalar" and cvdps:
        from repro.kernels.validate import EntryArrays, validate_worker_vectorized

        arrays = EntryArrays.from_entries(cvdps)
        METRICS.counter("kernel.validate_vectorized").add(1)

    strategies: Dict[str, Tuple[WorkerStrategy, ...]] = {}
    for worker in workers:
        offset, factor = worker_offset_factor(worker, travel_model, sub.center.location)
        if arrays is not None:
            # Already in canonical catalog order (the kernel lexsorts by
            # payoff and precomputed id ranks), so no key-function sort.
            found = validate_worker_vectorized(
                arrays,
                worker,
                offset,
                factor,
                travel_model,
                sub.center.location,
                strict_revalidation,
            )
        else:
            found = []
            for entry in cvdps:
                strategy = validate_entry(
                    entry,
                    worker,
                    offset,
                    factor,
                    travel_model,
                    sub.center.location,
                    strict_revalidation,
                )
                if strategy is not None:
                    found.append(strategy)
            found.sort(key=strategy_sort_key)
        strategies[worker.worker_id] = tuple(found)
    return VDPSCatalog(workers, strategies, epsilon, len(cvdps))
