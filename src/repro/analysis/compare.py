"""Side-by-side comparison of two assignments over the same workers.

Answers the operational question behind the paper's Figure 1: switching
from policy A to policy B, *who* gains, who loses, and what happens to the
fairness/efficiency aggregates.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.core.assignment import Assignment


@dataclass(frozen=True)
class WorkerDelta:
    """One worker's payoff change between two assignments."""

    worker_id: str
    payoff_a: float
    payoff_b: float

    @property
    def delta(self) -> float:
        return self.payoff_b - self.payoff_a


@dataclass(frozen=True)
class AssignmentComparison:
    """Aggregate and per-worker differences between assignments A and B."""

    label_a: str
    label_b: str
    deltas: Tuple[WorkerDelta, ...]
    payoff_difference_a: float
    payoff_difference_b: float
    average_payoff_a: float
    average_payoff_b: float
    #: Workers only in B / only in A (tolerant mode; empty under
    #: ``strict=True``, where a mismatch raises instead).  ``deltas``
    #: always covers exactly the intersection.
    joined: Tuple[str, ...] = ()
    departed: Tuple[str, ...] = ()

    @property
    def winners(self) -> List[WorkerDelta]:
        """Workers strictly better off under B, largest gain first."""
        gains = [d for d in self.deltas if d.delta > 1e-12]
        return sorted(gains, key=lambda d: -d.delta)

    @property
    def losers(self) -> List[WorkerDelta]:
        """Workers strictly worse off under B, largest loss first."""
        losses = [d for d in self.deltas if d.delta < -1e-12]
        return sorted(losses, key=lambda d: d.delta)

    @property
    def unchanged_count(self) -> int:
        return len(self.deltas) - len(self.winners) - len(self.losers)

    @property
    def fairness_improvement(self) -> float:
        """Reduction of ``P_dif`` going from A to B (positive = B fairer)."""
        return self.payoff_difference_a - self.payoff_difference_b

    @property
    def efficiency_cost(self) -> float:
        """Average-payoff drop going from A to B (positive = B pays less)."""
        return self.average_payoff_a - self.average_payoff_b

    def format(self) -> str:
        """Multi-line text summary with the top winners and losers."""
        lines = [
            f"{self.label_a} -> {self.label_b}: "
            f"P_dif {self.payoff_difference_a:.4f} -> "
            f"{self.payoff_difference_b:.4f} "
            f"({self.fairness_improvement:+.4f}), "
            f"avgP {self.average_payoff_a:.4f} -> {self.average_payoff_b:.4f} "
            f"({-self.efficiency_cost:+.4f})",
            f"  winners={len(self.winners)} losers={len(self.losers)} "
            f"unchanged={self.unchanged_count}",
        ]
        if self.joined or self.departed:
            lines.append(
                f"  population: +{len(self.joined)} joined "
                f"{list(self.joined)[:3]} / -{len(self.departed)} departed "
                f"{list(self.departed)[:3]}"
            )
        for delta in self.winners[:3]:
            lines.append(
                f"  + {delta.worker_id}: {delta.payoff_a:.3f} -> "
                f"{delta.payoff_b:.3f}"
            )
        for delta in self.losers[:3]:
            lines.append(
                f"  - {delta.worker_id}: {delta.payoff_a:.3f} -> "
                f"{delta.payoff_b:.3f}"
            )
        return "\n".join(lines)


def compare_assignments(
    assignment_a: Assignment,
    assignment_b: Assignment,
    label_a: str = "A",
    label_b: str = "B",
    strict: bool = True,
) -> AssignmentComparison:
    """Compare two assignments of (mostly) the same workers.

    With ``strict=True`` (the default, and the historical behaviour) a
    worker-population mismatch raises :class:`ValueError` — right for
    same-instance policy comparisons, where a mismatch is a bug.

    ``strict=False`` tolerates churn: rounds of a live world (or two
    long-run scenario arms) legitimately differ in who is present.
    Per-worker deltas then cover the intersection, and the workers only
    in B / only in A are reported as the ``joined`` / ``departed``
    tuples instead of an exception.
    """
    payoffs_a: Dict[str, float] = {
        p.worker.worker_id: p.payoff for p in assignment_a
    }
    payoffs_b: Dict[str, float] = {
        p.worker.worker_id: p.payoff for p in assignment_b
    }
    joined: Tuple[str, ...] = ()
    departed: Tuple[str, ...] = ()
    if set(payoffs_a) != set(payoffs_b):
        if strict:
            missing = set(payoffs_a) ^ set(payoffs_b)
            raise ValueError(
                f"assignments cover different workers "
                f"(mismatch: {sorted(missing)[:5]}); pass strict=False to "
                f"compare the intersection and report joined/departed workers"
            )
        joined = tuple(sorted(set(payoffs_b) - set(payoffs_a)))
        departed = tuple(sorted(set(payoffs_a) - set(payoffs_b)))
    common = sorted(set(payoffs_a) & set(payoffs_b))
    deltas = tuple(
        WorkerDelta(wid, payoffs_a[wid], payoffs_b[wid]) for wid in common
    )
    return AssignmentComparison(
        label_a=label_a,
        label_b=label_b,
        deltas=deltas,
        payoff_difference_a=assignment_a.payoff_difference,
        payoff_difference_b=assignment_b.payoff_difference,
        average_payoff_a=assignment_a.average_payoff,
        average_payoff_b=assignment_b.average_payoff,
        joined=joined,
        departed=departed,
    )
