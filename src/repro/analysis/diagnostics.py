"""Per-worker and whole-assignment diagnostics.

Turns an :class:`~repro.core.assignment.Assignment` into the numbers an
operations dashboard would show: who earns what per hour, who idles, how
concentrated the work is, and a text rendering for logs and CLIs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from repro.core.assignment import Assignment
from repro.core.fairness import gini_coefficient, jain_index
from repro.core.payoff import payoff_difference


@dataclass(frozen=True)
class WorkerDiagnostics:
    """One worker's line in the assignment report."""

    worker_id: str
    payoff: float
    task_count: int
    delivery_point_count: int
    route_hours: float
    reward: float
    idle: bool

    @property
    def reward_per_task(self) -> float:
        return self.reward / self.task_count if self.task_count else 0.0


@dataclass(frozen=True)
class AssignmentDiagnostics:
    """The full report: per-worker rows plus population statistics."""

    workers: Tuple[WorkerDiagnostics, ...]
    payoff_difference: float
    average_payoff: float
    total_payoff: float
    gini: float
    jain: float
    idle_count: int
    assigned_tasks: int

    @property
    def busy_count(self) -> int:
        return len(self.workers) - self.idle_count

    @property
    def idle_fraction(self) -> float:
        return self.idle_count / len(self.workers) if self.workers else 0.0

    def top_earners(self, k: int = 3) -> List[WorkerDiagnostics]:
        """The ``k`` highest-payoff workers, best first."""
        return sorted(self.workers, key=lambda w: -w.payoff)[:k]

    def bottom_earners(self, k: int = 3) -> List[WorkerDiagnostics]:
        """The ``k`` lowest-payoff workers (idle included), worst first."""
        return sorted(self.workers, key=lambda w: w.payoff)[:k]

    def format(self, max_rows: Optional[int] = None) -> str:
        """Multi-line text report (sorted by descending payoff)."""
        lines = [
            f"assignment: P_dif={self.payoff_difference:.4f} "
            f"avgP={self.average_payoff:.4f} gini={self.gini:.3f} "
            f"jain={self.jain:.3f} busy={self.busy_count}/{len(self.workers)} "
            f"tasks={self.assigned_tasks}"
        ]
        header = f"  {'worker':<12} {'payoff':>8} {'tasks':>6} {'points':>7} {'hours':>7}"
        lines.append(header)
        rows = sorted(self.workers, key=lambda w: -w.payoff)
        if max_rows is not None:
            rows = rows[:max_rows]
        for w in rows:
            lines.append(
                f"  {w.worker_id:<12} {w.payoff:>8.3f} {w.task_count:>6d} "
                f"{w.delivery_point_count:>7d} {w.route_hours:>7.3f}"
            )
        return "\n".join(lines)


def diagnose(assignment: Assignment) -> AssignmentDiagnostics:
    """Compute the full diagnostics report for ``assignment``."""
    rows: List[WorkerDiagnostics] = []
    for pair in assignment:
        route = pair.route
        idle = route is None or len(route) == 0
        rows.append(
            WorkerDiagnostics(
                worker_id=pair.worker.worker_id,
                payoff=pair.payoff,
                task_count=pair.task_count,
                delivery_point_count=0 if idle else len(route),
                route_hours=0.0 if idle else route.completion_time,
                reward=0.0 if idle else route.total_reward,
                idle=idle,
            )
        )
    payoffs = [r.payoff for r in rows]
    return AssignmentDiagnostics(
        workers=tuple(rows),
        payoff_difference=payoff_difference(payoffs),
        average_payoff=float(np.mean(payoffs)) if payoffs else 0.0,
        total_payoff=float(np.sum(payoffs)) if payoffs else 0.0,
        gini=gini_coefficient(payoffs),
        jain=jain_index(payoffs),
        idle_count=sum(1 for r in rows if r.idle),
        assigned_tasks=sum(r.task_count for r in rows),
    )
