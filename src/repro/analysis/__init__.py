"""Assignment diagnostics: per-worker breakdowns, comparisons, decompositions."""

from repro.analysis.diagnostics import (
    AssignmentDiagnostics,
    WorkerDiagnostics,
    diagnose,
)
from repro.analysis.compare import AssignmentComparison, compare_assignments
from repro.analysis.decomposition import (
    FairnessDecomposition,
    decompose_fairness,
)

__all__ = [
    "WorkerDiagnostics",
    "AssignmentDiagnostics",
    "diagnose",
    "AssignmentComparison",
    "compare_assignments",
    "FairnessDecomposition",
    "decompose_fairness",
]
