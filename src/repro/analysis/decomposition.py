"""Fairness decomposition: who contributes how much to the unfairness.

``P_dif`` (Eq. 2) is a population mean; this module attributes it to
individual workers.  A worker's *contribution* is its mean absolute payoff
gap to everyone else — the summand of Eq. 2 restricted to pairs involving
that worker — and its *side* records whether it sits above or below the
population mean (overpaid/underpaid in the inequity-aversion reading:
envied vs envying).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

import numpy as np

from repro.core.assignment import Assignment


@dataclass(frozen=True)
class WorkerFairnessShare:
    """One worker's slice of the population unfairness."""

    worker_id: str
    payoff: float
    contribution: float  # mean |gap| to the other workers
    envy: float  # MP_i / (n-1): how far richer workers are ahead
    guilt: float  # LP_i / (n-1): how far this worker is ahead of poorer ones

    @property
    def side(self) -> str:
        """"ahead", "behind", or "balanced" relative to the others."""
        if self.guilt > self.envy + 1e-12:
            return "ahead"
        if self.envy > self.guilt + 1e-12:
            return "behind"
        return "balanced"


@dataclass(frozen=True)
class FairnessDecomposition:
    """Per-worker shares; their mean equals ``P_dif`` exactly."""

    shares: Tuple[WorkerFairnessShare, ...]
    payoff_difference: float

    def most_unequal(self, k: int = 3) -> List[WorkerFairnessShare]:
        """The ``k`` workers contributing most to unfairness."""
        return sorted(self.shares, key=lambda s: -s.contribution)[:k]

    def format(self) -> str:
        """Multi-line text report, largest contributors first."""
        lines = [f"P_dif={self.payoff_difference:.4f} decomposed over "
                 f"{len(self.shares)} workers:"]
        for share in sorted(self.shares, key=lambda s: -s.contribution):
            lines.append(
                f"  {share.worker_id:<12} payoff={share.payoff:>8.3f} "
                f"contribution={share.contribution:>8.4f} [{share.side}]"
            )
        return "\n".join(lines)


def decompose_fairness(assignment: Assignment) -> FairnessDecomposition:
    """Attribute ``assignment.payoff_difference`` to its workers.

    Identity verified in the tests: the mean of the per-worker
    contributions equals Eq. 2's ``P_dif`` (each unordered pair appears in
    exactly two workers' contributions, matching the ordered-pair double
    count of the equation).
    """
    payoffs = np.asarray(assignment.payoffs, dtype=float)
    n = payoffs.size
    shares: List[WorkerFairnessShare] = []
    pairs = list(assignment)
    for idx, pair in enumerate(pairs):
        if n < 2:
            shares.append(
                WorkerFairnessShare(pair.worker.worker_id, float(payoffs[idx]), 0.0, 0.0, 0.0)
            )
            continue
        mine = payoffs[idx]
        others = np.delete(payoffs, idx)
        gaps = np.abs(others - mine)
        envy = float(np.clip(others - mine, 0, None).sum()) / (n - 1)
        guilt = float(np.clip(mine - others, 0, None).sum()) / (n - 1)
        shares.append(
            WorkerFairnessShare(
                worker_id=pair.worker.worker_id,
                payoff=float(mine),
                contribution=float(gaps.mean()),
                envy=envy,
                guilt=guilt,
            )
        )
    return FairnessDecomposition(
        shares=tuple(shares),
        payoff_difference=assignment.payoff_difference,
    )
