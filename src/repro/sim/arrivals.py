"""Task arrival processes for the dispatch simulation.

Arrivals follow a Poisson process in time; each arrival lands on a
delivery point drawn from a (optionally weighted) categorical distribution
over the center's points and carries an absolute expiry drawn uniformly
from a patience window.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from repro.core.entities import DeliveryPoint
from repro.utils.rng import SeedLike, ensure_rng


@dataclass(frozen=True)
class TaskArrival:
    """One task landing on the platform.

    ``expiry`` is *absolute* simulation time (hours since start), unlike
    :class:`~repro.core.entities.SpatialTask` whose expiry is relative to
    the assignment instant; the simulator converts between the two.
    """

    task_id: str
    dp_id: str
    arrival_time: float
    expiry: float
    reward: float = 1.0

    def remaining(self, now: float) -> float:
        """Time left before expiry at ``now`` (may be negative)."""
        return self.expiry - now


class PoissonTaskArrivals:
    """Homogeneous Poisson arrivals over a center's delivery points.

    Parameters
    ----------
    delivery_points:
        The center's points; arrivals pick one per task.
    rate_per_hour:
        Expected arrivals per simulated hour across the whole center.
    patience:
        ``(min, max)`` hours a task stays valid after arriving.
    weights:
        Optional relative popularity per delivery point (defaults to
        uniform); normalised internally.
    reward:
        Reward per task (paper: 1).
    """

    def __init__(
        self,
        delivery_points: Sequence[DeliveryPoint],
        rate_per_hour: float,
        patience: tuple = (0.5, 1.5),
        weights: Optional[Sequence[float]] = None,
        reward: float = 1.0,
    ) -> None:
        if not delivery_points:
            raise ValueError("arrivals need at least one delivery point")
        if rate_per_hour <= 0:
            raise ValueError(f"rate_per_hour must be positive, got {rate_per_hour}")
        low, high = patience
        if not 0 < low <= high:
            raise ValueError(f"patience must satisfy 0 < min <= max, got {patience}")
        self._points = list(delivery_points)
        self._rate = float(rate_per_hour)
        self._patience = (float(low), float(high))
        self._reward = float(reward)
        if weights is None:
            self._weights = np.full(len(self._points), 1.0 / len(self._points))
        else:
            w = np.asarray(list(weights), dtype=float)
            if w.shape != (len(self._points),) or np.any(w < 0) or w.sum() <= 0:
                raise ValueError("weights must be non-negative, one per point")
            self._weights = w / w.sum()

    def between(
        self, start: float, end: float, seed: SeedLike = None
    ) -> List[TaskArrival]:
        """All arrivals in ``[start, end)``, sorted by arrival time."""
        if end < start:
            raise ValueError(f"end ({end}) must be >= start ({start})")
        rng = ensure_rng(seed)
        count = int(rng.poisson(self._rate * (end - start)))
        if count == 0:
            return []
        times = np.sort(rng.uniform(start, end, size=count))
        picks = rng.choice(len(self._points), size=count, p=self._weights)
        patience = rng.uniform(self._patience[0], self._patience[1], size=count)
        arrivals = []
        for k in range(count):
            t = float(times[k])
            arrivals.append(
                TaskArrival(
                    task_id=f"sim_t{start:.3f}_{k}",
                    dp_id=self._points[int(picks[k])].dp_id,
                    arrival_time=t,
                    expiry=t + float(patience[k]),
                    reward=self._reward,
                )
            )
        return arrivals
