"""Multi-round dispatch simulation on top of the one-shot FTA solvers.

The paper solves a single time instance ("the server will consider all the
available tasks and workers at a particular time instance").  A deployed
platform loops that decision: tasks arrive continuously, workers go
offline while delivering and return at their last drop-off point, and the
long-run fairness a worker experiences is over *cumulative* earnings.
This package provides that loop so the one-shot algorithms can be compared
on the horizon that actually matters for worker retention.
"""

from repro.sim.arrivals import PoissonTaskArrivals, TaskArrival
from repro.sim.platform import DispatchSimulator, RoundRecord, SimConfig, SimReport
from repro.sim.workers import WorkerState

__all__ = [
    "TaskArrival",
    "PoissonTaskArrivals",
    "SimConfig",
    "DispatchSimulator",
    "RoundRecord",
    "SimReport",
    "WorkerState",
    "EquityScenario",
    "SCENARIOS",
    "bursty_arrivals",
    "churn_heavy",
    "get_scenario",
    "unlucky_worker",
]

_SCENARIO_EXPORTS = (
    "EquityScenario",
    "SCENARIOS",
    "bursty_arrivals",
    "churn_heavy",
    "get_scenario",
    "unlucky_worker",
)


def __getattr__(name: str):
    # repro.sim.scenarios builds WorldState worlds, and the service layer
    # imports this package's arrivals/workers modules; loading the
    # scenarios lazily keeps that cycle open.
    if name in _SCENARIO_EXPORTS:
        from repro.sim import scenarios

        return getattr(scenarios, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
