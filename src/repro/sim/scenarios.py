"""Long-run equity scenarios: worlds where per-round fairness leaves a gap.

Each :class:`EquityScenario` describes a deterministic multi-round world —
layout, fleet, and a per-round task (and worker-churn) schedule — built to
exercise a specific way the paper's *per-round* FGT/IEGT objective goes
temporally unfair:

* :func:`unlucky_worker` — more workers than work.  Winners reappear at
  their last drop-off right next to the following round's tasks, so the
  same few workers keep winning while the rest starve at their spawn
  points (the rich-get-richer positional trap).
* :func:`bursty_arrivals` — long quiet stretches with one task, then a
  burst.  Whoever wins the quiet rounds compounds income; per-round
  fairness only balances *within* the burst.
* :func:`churn_heavy` — a growing fleet.  Late joiners start with zero
  cumulative income and must catch up against incumbents that per-round
  fairness treats as equals.

The schedule is **pure arithmetic** over the round index — no RNG — so
both arms of an equity comparison (ledger-weighted vs per-round, see
:mod:`repro.equity.report`) replay byte-identical churn and differ only in
how they assign it.  The solve seed is the only stochastic input, and the
caller owns it.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List

from repro.core.entities import DistributionCenter, DeliveryPoint, Worker
from repro.geo.point import Point
from repro.geo.travel import TravelModel
from repro.service.state import WorldState

__all__ = [
    "EquityScenario",
    "SCENARIOS",
    "bursty_arrivals",
    "churn_heavy",
    "get_scenario",
    "unlucky_worker",
]


@dataclass(frozen=True)
class EquityScenario:
    """A deterministic multi-round world for long-run fairness studies.

    Geometry is one distribution center at the origin with
    ``n_delivery_points`` delivery points evenly spaced on a ring of
    radius ``dp_ring_km``.  The first ``far_workers`` workers spawn on a
    wider ring (``worker_far_km``), the rest near the center
    (``worker_near_km``) — with the paper's 5 km/h speed the far spawn is
    a real payoff handicap until the worker earns a route that relocates
    it onto the ring.

    The task schedule is arithmetic in the round index (see
    :meth:`round_tasks`); worker churn likewise (:meth:`round_workers`).
    """

    name: str
    description: str
    rounds: int = 40
    advance_hours: float = 1.0
    n_delivery_points: int = 6
    dp_ring_km: float = 1.0
    n_workers: int = 6
    far_workers: int = 0
    worker_near_km: float = 0.3
    worker_far_km: float = 2.2
    max_delivery_points: int = 2
    tasks_per_round: int = 3
    burst_every: int = 0
    burst_size: int = 0
    join_every: int = 0
    join_count: int = 0
    task_expiry_hours: float = 6.0
    reward: float = 1.0

    def __post_init__(self) -> None:
        if self.rounds < 1:
            raise ValueError(f"rounds must be >= 1, got {self.rounds}")
        if self.n_workers < 1:
            raise ValueError(f"n_workers must be >= 1, got {self.n_workers}")
        if not 0 <= self.far_workers <= self.n_workers:
            raise ValueError(
                f"far_workers must be in [0, n_workers], got {self.far_workers}"
            )
        if self.n_delivery_points < 1:
            raise ValueError(
                f"n_delivery_points must be >= 1, got {self.n_delivery_points}"
            )
        if self.task_expiry_hours <= 0:
            raise ValueError(
                f"task_expiry_hours must be > 0, got {self.task_expiry_hours}"
            )

    # -- world construction -------------------------------------------------

    def _dp_id(self, i: int) -> str:
        return f"{self.name}-dp{i}"

    def build_world(self) -> WorldState:
        """A fresh :class:`WorldState`; identical on every call."""
        points = []
        for i in range(self.n_delivery_points):
            angle = 2.0 * math.pi * i / self.n_delivery_points
            points.append(
                DeliveryPoint(
                    dp_id=self._dp_id(i),
                    location=Point(
                        self.dp_ring_km * math.cos(angle),
                        self.dp_ring_km * math.sin(angle),
                    ),
                    tasks=(),
                )
            )
        center = DistributionCenter(
            f"{self.name}-c0", Point(0.0, 0.0), tuple(points)
        )
        workers = [
            self._make_worker(i, joined=False) for i in range(self.n_workers)
        ]
        return WorldState([center], workers=workers, travel=TravelModel())

    def _make_worker(self, i: int, joined: bool) -> Worker:
        tag = "j" if joined else "w"
        far = not joined and i < self.far_workers
        radius = self.worker_far_km if far else self.worker_near_km
        # Spread spawn angles with a prime stride so near/far workers do
        # not stack on the same bearing.
        angle = 2.0 * math.pi * ((i * 5) % 11) / 11.0
        return Worker(
            worker_id=f"{self.name}-{tag}{i}",
            location=Point(radius * math.cos(angle), radius * math.sin(angle)),
            max_delivery_points=self.max_delivery_points,
            center_id=f"{self.name}-c0",
        )

    # -- the schedule -------------------------------------------------------

    def tasks_in_round(self, index: int) -> int:
        """How many tasks arrive before round ``index`` (0-based)."""
        if self.burst_every and (index + 1) % self.burst_every == 0:
            return self.burst_size
        return self.tasks_per_round

    def round_tasks(self, index: int, now: float) -> List[Dict[str, object]]:
        """The task batch arriving before round ``index`` at clock ``now``.

        Deterministic: delivery points rotate with a prime stride and
        rewards follow a fixed small jitter pattern, so every replay (and
        both comparison arms) sees the same work.
        """
        batch: List[Dict[str, object]] = []
        for j in range(self.tasks_in_round(index)):
            dp = self._dp_id((index * 5 + j * 3) % self.n_delivery_points)
            reward = self.reward * (1.0 + 0.2 * float((index + j) % 3 - 1))
            batch.append(
                {
                    "task_id": f"{self.name}-r{index}-t{j}",
                    "dp_id": dp,
                    "expiry": now + self.task_expiry_hours,
                    "reward": reward,
                }
            )
        return batch

    def round_workers(self, index: int) -> List[Worker]:
        """Workers joining before round ``index`` (churn scenarios)."""
        if not self.join_every or index == 0:
            return []
        if index % self.join_every:
            return []
        nth = index // self.join_every - 1
        if nth >= self.join_count:
            return []
        return [self._make_worker(self.n_workers + nth, joined=True)]


def unlucky_worker(rounds: int = 40) -> EquityScenario:
    """Six workers, three tasks a round: half the fleet must lose.

    Two workers spawn far from the ring; whoever wins early relocates to
    the drop-off ring and keeps winning.  Per-round fairness never repays
    the losers — the ledger-weighted mode should.
    """
    return EquityScenario(
        name="unlucky",
        description=(
            "oversubscribed fleet with a positional rich-get-richer trap"
        ),
        rounds=rounds,
        n_workers=6,
        far_workers=2,
        tasks_per_round=3,
    )


def bursty_arrivals(rounds: int = 40) -> EquityScenario:
    """One task on quiet rounds, a ten-task burst every fifth round."""
    return EquityScenario(
        name="bursty",
        description="quiet single-task rounds punctuated by task bursts",
        rounds=rounds,
        n_workers=5,
        far_workers=1,
        tasks_per_round=1,
        burst_every=5,
        burst_size=10,
    )


def churn_heavy(rounds: int = 40) -> EquityScenario:
    """A worker joins every fourth round; task mix churns constantly."""
    return EquityScenario(
        name="churn",
        description="growing fleet; late joiners start cumulative-poor",
        rounds=rounds,
        n_workers=4,
        far_workers=1,
        tasks_per_round=3,
        join_every=4,
        join_count=6,
    )


#: Registry behind ``python -m repro equity report --scenario <name>``.
SCENARIOS = {
    "unlucky": unlucky_worker,
    "bursty": bursty_arrivals,
    "churn": churn_heavy,
}


def get_scenario(name: str, rounds: int = 40) -> EquityScenario:
    """Look up a scenario builder by registry name."""
    try:
        builder = SCENARIOS[name]
    except KeyError:
        raise ValueError(
            f"unknown scenario {name!r}; choose from {sorted(SCENARIOS)}"
        ) from None
    return builder(rounds=rounds)
