"""Mutable per-worker simulation state.

The core entities are immutable; the simulator tracks each worker's
evolving position, availability, and cumulative earnings here and
materialises fresh :class:`~repro.core.entities.Worker` snapshots for the
solver each round.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.entities import Worker
from repro.geo.point import Point


@dataclass
class WorkerState:
    """Simulation-time state of one worker."""

    template: Worker
    location: Point
    available_at: float = 0.0
    earnings: float = 0.0
    working_hours: float = 0.0
    deliveries: int = 0
    assignments: int = 0

    @classmethod
    def from_worker(cls, worker: Worker) -> "WorkerState":
        return cls(template=worker, location=worker.location)

    @property
    def worker_id(self) -> str:
        return self.template.worker_id

    def is_available(self, now: float) -> bool:
        """Whether the worker can accept a new route at time ``now``."""
        return self.template.online and self.available_at <= now

    def snapshot(self) -> Worker:
        """An immutable Worker at the current simulated location."""
        return Worker(
            self.template.worker_id,
            self.location,
            self.template.max_delivery_points,
            self.template.center_id,
            online=True,
            speed_kmh=self.template.speed_kmh,
        )

    def commit_route(
        self, now: float, completion_time: float, reward: float,
        deliveries: int, end_location: Point,
    ) -> None:
        """Record an accepted route: busy until done, richer afterwards.

        ``completion_time`` is the route's absolute duration from ``now``
        (the worker-relative arrival time at the final point).
        """
        if completion_time < 0:
            raise ValueError(f"completion_time must be >= 0, got {completion_time}")
        self.available_at = now + completion_time
        self.location = end_location
        self.earnings += reward
        self.working_hours += completion_time
        self.deliveries += deliveries
        self.assignments += 1

    @property
    def earning_rate(self) -> float:
        """Cumulative earnings per working hour (0 while never assigned).

        This is the long-run analogue of the paper's per-assignment payoff
        (reward over travel time).
        """
        if self.working_hours <= 0:
            return 0.0
        return self.earnings / self.working_hours
