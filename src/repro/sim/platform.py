"""The dispatch loop: repeated one-shot FTA solves over a working day.

Every ``round_interval`` hours the platform snapshots its pending tasks
and available workers, builds a relative-deadline
:class:`~repro.core.instance.SubProblem`, hands it to the configured
one-shot solver, and commits the resulting routes: assigned tasks leave
the queue, workers go offline until their route completes (and reappear at
their last drop-off point), and unassigned tasks either wait for the next
round or expire.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.core.entities import DeliveryPoint, DistributionCenter, SpatialTask, Worker
from repro.core.instance import SubProblem
from repro.core.payoff import average_payoff, payoff_difference
from repro.geo.travel import TravelModel
from repro.sim.arrivals import PoissonTaskArrivals, TaskArrival
from repro.sim.workers import WorkerState
from repro.vdps.catalog import build_catalog
from repro.utils.rng import RngFactory, SeedLike
from repro.utils.validation import require_positive


@dataclass(frozen=True)
class SimConfig:
    """Simulation horizon and dispatch cadence."""

    horizon_hours: float = 8.0
    round_interval_hours: float = 0.5
    epsilon: Optional[float] = None

    def __post_init__(self) -> None:
        require_positive(self.horizon_hours, "horizon_hours")
        require_positive(self.round_interval_hours, "round_interval_hours")
        if self.round_interval_hours > self.horizon_hours:
            raise ValueError("round_interval_hours must not exceed horizon_hours")


@dataclass(frozen=True)
class RoundRecord:
    """What one dispatch round saw and decided."""

    time: float
    pending_tasks: int
    available_workers: int
    assigned_tasks: int
    expired_tasks: int
    payoff_difference: float
    average_payoff: float


@dataclass
class SimReport:
    """Full outcome of a simulation run."""

    rounds: List[RoundRecord]
    worker_states: List[WorkerState]
    arrived_tasks: int
    completed_tasks: int
    expired_tasks: int

    @property
    def completion_rate(self) -> float:
        """Fraction of arrived tasks that some worker delivered."""
        if self.arrived_tasks == 0:
            return 1.0
        return self.completed_tasks / self.arrived_tasks

    @property
    def earning_rates(self) -> List[float]:
        return [w.earning_rate for w in self.worker_states]

    @property
    def cumulative_payoff_difference(self) -> float:
        """Equation 2 over cumulative earning rates — long-run unfairness."""
        return payoff_difference(self.earning_rates)

    @property
    def cumulative_average_payoff(self) -> float:
        return average_payoff(self.earning_rates)

    def describe(self) -> str:
        """One-line summary of throughput and cumulative fairness."""
        return (
            f"rounds={len(self.rounds)} arrived={self.arrived_tasks} "
            f"completed={self.completed_tasks} expired={self.expired_tasks} "
            f"completion={self.completion_rate:.1%} "
            f"cumP_dif={self.cumulative_payoff_difference:.4f} "
            f"cumAvgP={self.cumulative_average_payoff:.4f}"
        )


class DispatchSimulator:
    """Runs the repeated-dispatch loop for one distribution center.

    Parameters
    ----------
    center:
        Layout only — the center's delivery points define *where* tasks can
        land; any tasks already attached are ignored.
    workers:
        The worker fleet (initial locations; ``maxDP`` etc. from the
        entities).
    arrivals:
        The task arrival process.
    solver:
        Any one-shot solver from this library (GTA/MPTA/FGT/IEGT/...).
    travel:
        Shared travel model.
    config:
        Horizon, cadence, and the VDPS pruning threshold per round.
    """

    def __init__(
        self,
        center: DistributionCenter,
        workers: Sequence[Worker],
        arrivals: PoissonTaskArrivals,
        solver,
        travel: Optional[TravelModel] = None,
        config: SimConfig = SimConfig(),
    ) -> None:
        self._layout = {dp.dp_id: dp for dp in center.delivery_points}
        if not self._layout:
            raise ValueError("simulation needs a center with delivery points")
        self._center = center
        self._workers = [WorkerState.from_worker(w) for w in workers]
        self._arrivals = arrivals
        self._solver = solver
        self._travel = travel if travel is not None else TravelModel()
        self._config = config

    def run(self, seed: SeedLike = None) -> SimReport:
        """Simulate the configured horizon; deterministic in ``seed``."""
        rng_factory = RngFactory(seed)
        config = self._config
        pending: List[TaskArrival] = []
        rounds: List[RoundRecord] = []
        arrived = completed = expired_total = 0

        n_rounds = int(config.horizon_hours / config.round_interval_hours)
        for round_idx in range(n_rounds):
            now = round_idx * config.round_interval_hours
            window_end = now + config.round_interval_hours
            new_tasks = self._arrivals.between(
                now, window_end, seed=rng_factory.get(f"arrivals:{round_idx}")
            )
            # Arrivals within the window queue for the *next* decision; the
            # decision at `now` sees what had arrived before it.
            still_valid = [t for t in pending if t.expiry > now]
            expired = len(pending) - len(still_valid)
            expired_total += expired
            pending = still_valid
            arrived += len(new_tasks)

            assigned_count, payoffs = self._dispatch_round(
                now, pending, rng_factory.get(f"solve:{round_idx}")
            )
            completed += assigned_count
            rounds.append(
                RoundRecord(
                    time=now,
                    pending_tasks=len(pending) + assigned_count,
                    available_workers=sum(
                        1 for w in self._workers if w.is_available(now)
                    ),
                    assigned_tasks=assigned_count,
                    expired_tasks=expired,
                    payoff_difference=payoff_difference(payoffs),
                    average_payoff=average_payoff(payoffs),
                )
            )
            pending.extend(new_tasks)

        expired_total += sum(1 for t in pending if t.expiry <= config.horizon_hours)
        return SimReport(
            rounds=rounds,
            worker_states=list(self._workers),
            arrived_tasks=arrived,
            completed_tasks=completed,
            expired_tasks=expired_total,
        )

    # -- internals ----------------------------------------------------------

    def _dispatch_round(self, now, pending: List[TaskArrival], rng):
        """Solve one instant; mutate worker/pending state; return stats."""
        available = [w for w in self._workers if w.is_available(now)]
        if not available or not pending:
            return 0, []

        delivery_points = self._materialise_points(now, pending)
        if not delivery_points:
            return 0, []
        center = DistributionCenter(
            self._center.center_id, self._center.location, tuple(delivery_points)
        )
        sub = SubProblem(
            center, tuple(w.snapshot() for w in available), self._travel
        )
        catalog = build_catalog(sub, epsilon=self._config.epsilon)
        result = self._solver.solve(sub, catalog=catalog, seed=rng)

        by_id = {w.worker_id: w for w in available}
        assigned_tasks = 0
        assigned_dp_ids = set()
        payoffs = []
        for pair in result.assignment:
            payoffs.append(pair.payoff)
            if pair.route is None or len(pair.route) == 0:
                continue
            state = by_id[pair.worker.worker_id]
            state.commit_route(
                now,
                completion_time=pair.route.completion_time,
                reward=pair.route.total_reward,
                deliveries=pair.task_count,
                end_location=pair.route.sequence[-1].location,
            )
            assigned_tasks += pair.task_count
            assigned_dp_ids.update(pair.delivery_point_ids)
        pending[:] = [t for t in pending if t.dp_id not in assigned_dp_ids]
        return assigned_tasks, payoffs

    def _materialise_points(
        self, now: float, pending: Sequence[TaskArrival]
    ) -> List[DeliveryPoint]:
        """Group pending tasks into relative-deadline delivery points.

        Tasks that could not be reached even by a worker already standing
        at the center are *hopeless*: under Definition 6 their (minimal)
        expiry would make the whole delivery point infeasible for everyone,
        so they are excluded from the offered points and left to expire in
        the queue.
        """
        tasks_by_dp: Dict[str, List[SpatialTask]] = {}
        for arrival in pending:
            remaining = arrival.remaining(now)
            if remaining <= 0:
                continue
            dp = self._layout[arrival.dp_id]
            if remaining <= self._travel.time(self._center.location, dp.location):
                continue  # hopeless even from the center
            tasks_by_dp.setdefault(arrival.dp_id, []).append(
                SpatialTask(
                    task_id=arrival.task_id,
                    delivery_point_id=arrival.dp_id,
                    expiry=remaining,
                    reward=arrival.reward,
                )
            )
        return [
            self._layout[dp_id].with_tasks(tuple(tasks))
            for dp_id, tasks in sorted(tasks_by_dp.items())
        ]
