"""CSV persistence for problem instances.

An instance round-trips through four CSV files in a directory —
``centers.csv``, ``delivery_points.csv``, ``tasks.csv``, ``workers.csv`` —
plus ``meta.csv`` for the travel model.  The format is deliberately plain
(no pickles) so instances can be inspected, diffed, and produced by
external tools.
"""

from __future__ import annotations

import csv
from pathlib import Path
from typing import Dict, List, Union

from repro.core.entities import DeliveryPoint, DistributionCenter, SpatialTask, Worker
from repro.core.exceptions import DatasetError
from repro.core.instance import ProblemInstance
from repro.geo.point import Point
from repro.geo.travel import TravelModel

_FILES = ("centers.csv", "delivery_points.csv", "tasks.csv", "workers.csv", "meta.csv")


def save_instance(instance: ProblemInstance, directory: Union[str, Path]) -> Path:
    """Write ``instance`` under ``directory`` (created if missing)."""
    root = Path(directory)
    root.mkdir(parents=True, exist_ok=True)

    with (root / "centers.csv").open("w", newline="") as fh:
        writer = csv.writer(fh)
        writer.writerow(["center_id", "x", "y"])
        for c in instance.centers:
            writer.writerow([c.center_id, c.location.x, c.location.y])

    with (root / "delivery_points.csv").open("w", newline="") as fh:
        writer = csv.writer(fh)
        writer.writerow(["dp_id", "center_id", "x", "y", "service_hours"])
        for c in instance.centers:
            for dp in c.delivery_points:
                writer.writerow(
                    [
                        dp.dp_id,
                        c.center_id,
                        dp.location.x,
                        dp.location.y,
                        dp.service_hours,
                    ]
                )

    with (root / "tasks.csv").open("w", newline="") as fh:
        writer = csv.writer(fh)
        writer.writerow(["task_id", "dp_id", "expiry", "reward"])
        for c in instance.centers:
            for dp in c.delivery_points:
                for task in dp.tasks:
                    writer.writerow([task.task_id, dp.dp_id, task.expiry, task.reward])

    with (root / "workers.csv").open("w", newline="") as fh:
        writer = csv.writer(fh)
        writer.writerow(
            ["worker_id", "center_id", "x", "y", "max_dp", "online", "speed_kmh"]
        )
        for w in instance.workers:
            writer.writerow(
                [
                    w.worker_id,
                    w.center_id or "",
                    w.location.x,
                    w.location.y,
                    w.max_delivery_points,
                    int(w.online),
                    "" if w.speed_kmh is None else w.speed_kmh,
                ]
            )

    with (root / "meta.csv").open("w", newline="") as fh:
        writer = csv.writer(fh)
        writer.writerow(["key", "value"])
        writer.writerow(["speed_kmh", instance.travel.speed_kmh])
    return root


def load_instance(directory: Union[str, Path]) -> ProblemInstance:
    """Read an instance previously written by :func:`save_instance`."""
    root = Path(directory)
    for name in _FILES:
        if not (root / name).exists():
            raise DatasetError(f"missing {name} under {root}")

    tasks_by_dp: Dict[str, List[SpatialTask]] = {}
    with (root / "tasks.csv").open(newline="") as fh:
        for row in csv.DictReader(fh):
            task = SpatialTask(
                task_id=row["task_id"],
                delivery_point_id=row["dp_id"],
                expiry=float(row["expiry"]),
                reward=float(row["reward"]),
            )
            tasks_by_dp.setdefault(row["dp_id"], []).append(task)

    points_by_center: Dict[str, List[DeliveryPoint]] = {}
    seen_dp_ids = set()
    with (root / "delivery_points.csv").open(newline="") as fh:
        for row in csv.DictReader(fh):
            dp = DeliveryPoint(
                dp_id=row["dp_id"],
                location=Point(float(row["x"]), float(row["y"])),
                tasks=tuple(tasks_by_dp.get(row["dp_id"], ())),
                service_hours=float(row.get("service_hours") or 0.0),
            )
            seen_dp_ids.add(dp.dp_id)
            points_by_center.setdefault(row["center_id"], []).append(dp)
    dangling = set(tasks_by_dp) - seen_dp_ids
    if dangling:
        sample = ", ".join(sorted(dangling)[:3])
        raise DatasetError(
            f"tasks reference delivery points absent from delivery_points.csv: "
            f"{sample}"
        )

    centers: List[DistributionCenter] = []
    with (root / "centers.csv").open(newline="") as fh:
        for row in csv.DictReader(fh):
            centers.append(
                DistributionCenter(
                    center_id=row["center_id"],
                    location=Point(float(row["x"]), float(row["y"])),
                    delivery_points=tuple(points_by_center.get(row["center_id"], ())),
                )
            )

    workers: List[Worker] = []
    with (root / "workers.csv").open(newline="") as fh:
        for row in csv.DictReader(fh):
            speed_cell = row.get("speed_kmh", "")
            workers.append(
                Worker(
                    worker_id=row["worker_id"],
                    location=Point(float(row["x"]), float(row["y"])),
                    max_delivery_points=int(row["max_dp"]),
                    center_id=row["center_id"] or None,
                    online=bool(int(row["online"])),
                    speed_kmh=float(speed_cell) if speed_cell else None,
                )
            )

    speed = 5.0
    with (root / "meta.csv").open(newline="") as fh:
        for row in csv.DictReader(fh):
            if row["key"] == "speed_kmh":
                speed = float(row["value"])
    return ProblemInstance(
        tuple(centers), tuple(workers), TravelModel(speed_kmh=speed)
    )
