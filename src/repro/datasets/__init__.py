"""Dataset generators and loaders: SYN, gMission-like, k-means, CSV I/O."""

from repro.datasets.clustering import KMeansResult, kmeans
from repro.datasets.synthetic import SynConfig, generate_synthetic
from repro.datasets.gmission import GMissionConfig, generate_gmission_like
from repro.datasets.io import load_instance, save_instance

__all__ = [
    "kmeans",
    "KMeansResult",
    "SynConfig",
    "generate_synthetic",
    "GMissionConfig",
    "generate_gmission_like",
    "save_instance",
    "load_instance",
]
