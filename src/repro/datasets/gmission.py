"""gMission-like (GM) dataset generator.

The paper's real dataset, gMission [29], is not redistributable offline, so
this module synthesises a faithful surrogate (see DESIGN.md §4).  What the
paper actually consumes from gMission is small: task locations (spatially
clustered, unlike SYN's uniform spread), per-task expiration times and
rewards, and worker locations.  Its preprocessing is then reproduced
exactly:

1. the distribution center is the centroid of all task locations;
2. tasks are k-means clustered into ``n_delivery_points`` clusters whose
   centroids become the delivery points;
3. each cluster's tasks are delivered to its centroid point.

The surrogate draws task and worker locations from a Gaussian-hotspot
mixture, which reproduces the clustered geometry that differentiates the
GM results from the SYN results in Figures 2-9.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

from repro.core.entities import DeliveryPoint, DistributionCenter, SpatialTask, Worker
from repro.core.exceptions import DatasetError
from repro.core.instance import ProblemInstance
from repro.datasets.clustering import kmeans
from repro.geo.point import Point
from repro.geo.travel import TravelModel
from repro.utils.rng import SeedLike, ensure_rng


@dataclass(frozen=True)
class GMissionConfig:
    """Parameters of the GM surrogate (defaults = Table I GM column).

    ``space_km`` and ``hotspot_std_km`` control the spatial extent; the
    defaults give inter-centroid spacings around 0.5 km, which is why the
    paper's GM pruning grid (epsilon in 0.2-1 km) is discriminative.

    The expiry defaults (0.3-1.0 h) are deliberately tight: the paper runs
    its unpruned ``-W`` variants to completion on GM with |DP| = 100, which
    is only possible when deadlines rule out the vast majority of the
    ``2^|DP|`` candidate sets.  Looser deadlines make the unpruned subset
    DP explode combinatorially (verified empirically; see DESIGN.md §4).
    """

    n_tasks: int = 200
    n_workers: int = 40
    n_delivery_points: int = 100
    n_hotspots: int = 8
    space_km: float = 8.0
    hotspot_std_km: float = 0.6
    expiry_min_hours: float = 0.3
    expiry_max_hours: float = 1.0
    expiry_jitter_hours: float = 0.05
    max_delivery_points: int = 3
    speed_kmh: float = 5.0
    reward: float = 1.0

    def __post_init__(self) -> None:
        if self.n_tasks < 1:
            raise DatasetError(f"n_tasks must be >= 1, got {self.n_tasks}")
        if self.n_workers < 0:
            raise DatasetError(f"n_workers must be >= 0, got {self.n_workers}")
        if not 1 <= self.n_delivery_points <= self.n_tasks:
            raise DatasetError(
                "n_delivery_points must be between 1 and n_tasks "
                f"({self.n_tasks}), got {self.n_delivery_points}"
            )
        if self.n_hotspots < 1:
            raise DatasetError(f"n_hotspots must be >= 1, got {self.n_hotspots}")
        if not 0 < self.expiry_min_hours <= self.expiry_max_hours:
            raise DatasetError(
                "expiry bounds must satisfy 0 < min <= max, got "
                f"[{self.expiry_min_hours}, {self.expiry_max_hours}]"
            )
        if self.expiry_jitter_hours < 0:
            raise DatasetError(
                f"expiry_jitter_hours must be >= 0, got {self.expiry_jitter_hours}"
            )
        if self.space_km <= 0 or self.hotspot_std_km <= 0 or self.speed_kmh <= 0:
            raise DatasetError("space_km, hotspot_std_km, speed_kmh must be positive")
        if self.max_delivery_points < 1:
            raise DatasetError(
                f"max_delivery_points must be >= 1, got {self.max_delivery_points}"
            )


def _hotspot_mixture(
    count: int, hotspots: np.ndarray, std: float, side: float, rng: np.random.Generator
) -> np.ndarray:
    """Sample ``count`` 2-D locations from a clipped Gaussian mixture."""
    if count == 0:
        return np.zeros((0, 2))
    which = rng.integers(0, hotspots.shape[0], size=count)
    samples = hotspots[which] + rng.normal(0.0, std, size=(count, 2))
    return np.clip(samples, 0.0, side)


def generate_gmission_like(
    config: GMissionConfig = GMissionConfig(), seed: SeedLike = None
) -> ProblemInstance:
    """Draw a GM-surrogate instance per ``config``; deterministic in ``seed``.

    The returned instance always has exactly one distribution center, whose
    location is the task centroid (the paper's construction).
    """
    rng = ensure_rng(seed)
    side = config.space_km
    hotspots = rng.uniform(0.2 * side, 0.8 * side, size=(config.n_hotspots, 2))

    which_hotspot = rng.integers(0, config.n_hotspots, size=config.n_tasks)
    offsets = rng.normal(
        0.0, config.hotspot_std_km, size=(config.n_tasks, 2)
    )
    task_xy = np.clip(hotspots[which_hotspot] + offsets, 0.0, side)
    worker_xy = _hotspot_mixture(
        config.n_workers, hotspots, config.hotspot_std_km, side, rng
    )
    # Expiries are spatially correlated, as in real task streams: each
    # hotspot (neighbourhood) has a base deadline, tasks jitter around it.
    # Independent per-task expiries would make the *minimum* expiry of a
    # many-task delivery point collapse toward the lower bound, inverting
    # the paper's Figure 8 trend (see EXPERIMENTS.md).
    base_expiry = rng.uniform(
        config.expiry_min_hours, config.expiry_max_hours, size=config.n_hotspots
    )
    expiries = np.clip(
        base_expiry[which_hotspot]
        + rng.normal(0.0, config.expiry_jitter_hours, size=config.n_tasks),
        config.expiry_min_hours,
        config.expiry_max_hours,
    )

    clustering = kmeans(task_xy, config.n_delivery_points, seed=rng)
    center_location = Point(float(task_xy[:, 0].mean()), float(task_xy[:, 1].mean()))

    tasks_by_cluster: List[List[SpatialTask]] = [
        [] for _ in range(config.n_delivery_points)
    ]
    for t_idx in range(config.n_tasks):
        cluster = int(clustering.labels[t_idx])
        tasks_by_cluster[cluster].append(
            SpatialTask(
                task_id=f"gm_s{t_idx}",
                delivery_point_id=f"gm_dp{cluster}",
                expiry=float(expiries[t_idx]),
                reward=config.reward,
            )
        )

    delivery_points: List[DeliveryPoint] = []
    for c_idx in range(config.n_delivery_points):
        centroid = clustering.centroids[c_idx]
        delivery_points.append(
            DeliveryPoint(
                dp_id=f"gm_dp{c_idx}",
                location=Point(float(centroid[0]), float(centroid[1])),
                tasks=tuple(tasks_by_cluster[c_idx]),
            )
        )

    center = DistributionCenter(
        center_id="gm_dc0",
        location=center_location,
        delivery_points=tuple(delivery_points),
    )
    workers = tuple(
        Worker(
            worker_id=f"gm_w{w_idx}",
            location=Point(float(worker_xy[w_idx, 0]), float(worker_xy[w_idx, 1])),
            max_delivery_points=config.max_delivery_points,
            center_id="gm_dc0",
        )
        for w_idx in range(config.n_workers)
    )
    return ProblemInstance(
        (center,), workers, TravelModel(speed_kmh=config.speed_kmh)
    )
