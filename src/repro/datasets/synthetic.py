"""Synthetic (SYN) dataset generator — Section VII-A of the paper.

Worker and delivery-point locations are uniform over a square 2-D space
(the paper uses ``[0, 100]^2`` km); 50 distribution centers are placed
uniformly; every worker and delivery point is associated with a random
center; tasks are associated with random delivery points; every task has
reward 1; worker speed is 5 km/h.

``expiry_spread`` controls deadline heterogeneity: 0 gives every task the
deadline ``expiry_hours`` exactly (the paper's single ``e`` knob), larger
values draw deadlines uniformly from ``[(1 - spread) e, e]``.

Two knobs deviate from a literal reading of the paper, both because the
literal combination (100 km space, random worker-center association,
5 km/h, 2 h deadlines) leaves nearly every worker hours away from every
task and the instance degenerate (see DESIGN.md §4):

* ``association="nearest"`` (default) attaches workers and delivery points
  to their nearest center; ``"random"`` is the literal paper text.
* ``space_km`` defaults to 20 so that per-center worker/point/task
  densities equal the paper's (40 workers, 100 points, 2 000 tasks per
  center) while centers' catchment areas stay reachable within the
  deadline grid.  ``SynConfig.paper_scale()`` restores the literal values.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import List

import numpy as np

from repro.core.entities import DeliveryPoint, DistributionCenter, SpatialTask, Worker
from repro.core.exceptions import DatasetError
from repro.core.instance import ProblemInstance
from repro.geo.point import Point
from repro.geo.travel import TravelModel
from repro.utils.rng import SeedLike, ensure_rng


@dataclass(frozen=True)
class SynConfig:
    """Parameters of the SYN generator (defaults = Table I, scaled).

    The paper's default SYN sizes (100K tasks, 2K workers, 5K delivery
    points, 50 centers) target a dual-Xeon server; :meth:`paper_scale`
    returns that configuration, while the default here keeps the same
    *per-center* densities at laptop scale (see DESIGN.md §4).
    """

    n_centers: int = 10
    n_workers: int = 400
    n_delivery_points: int = 1000
    n_tasks: int = 20_000
    expiry_hours: float = 2.0
    expiry_spread: float = 0.0
    max_delivery_points: int = 3
    space_km: float = 20.0
    speed_kmh: float = 5.0
    reward: float = 1.0
    association: str = "nearest"

    def __post_init__(self) -> None:
        if self.association not in ("nearest", "random"):
            raise DatasetError(
                f"association must be 'nearest' or 'random', got {self.association!r}"
            )
        for name in ("n_centers", "n_workers", "n_delivery_points", "n_tasks"):
            if getattr(self, name) < 0 or (name == "n_centers" and self.n_centers < 1):
                raise DatasetError(f"{name} must be valid, got {getattr(self, name)}")
        if self.expiry_hours <= 0:
            raise DatasetError(f"expiry_hours must be positive, got {self.expiry_hours}")
        if not 0.0 <= self.expiry_spread < 1.0:
            raise DatasetError(
                f"expiry_spread must be in [0, 1), got {self.expiry_spread}"
            )
        if self.max_delivery_points < 1:
            raise DatasetError(
                f"max_delivery_points must be >= 1, got {self.max_delivery_points}"
            )
        if self.space_km <= 0 or self.speed_kmh <= 0 or self.reward < 0:
            raise DatasetError("space_km/speed_kmh must be positive, reward >= 0")

    @classmethod
    def paper_scale(cls) -> "SynConfig":
        """The paper's full default SYN setting (Table I underlined values)."""
        return cls(
            n_centers=50,
            n_workers=2000,
            n_delivery_points=5000,
            n_tasks=100_000,
            space_km=100.0,
            association="random",
        )

    def scaled(self, factor: float) -> "SynConfig":
        """A copy with all population sizes multiplied by ``factor``."""
        if factor <= 0:
            raise DatasetError(f"factor must be positive, got {factor}")
        return replace(
            self,
            n_centers=max(1, round(self.n_centers * factor)),
            n_workers=max(0, round(self.n_workers * factor)),
            n_delivery_points=max(0, round(self.n_delivery_points * factor)),
            n_tasks=max(0, round(self.n_tasks * factor)),
        )


def _nearest_center(locations: List[Point], center_xy: np.ndarray) -> np.ndarray:
    """Index of the nearest center for each location (vectorised)."""
    if not locations:
        return np.zeros(0, dtype=int)
    xy = np.array([(p.x, p.y) for p in locations])
    diff = xy[:, None, :] - center_xy[None, :, :]
    return ((diff**2).sum(axis=2)).argmin(axis=1)


def generate_synthetic(
    config: SynConfig = SynConfig(), seed: SeedLike = None
) -> ProblemInstance:
    """Draw a SYN instance per ``config``; deterministic in ``seed``."""
    rng = ensure_rng(seed)
    side = config.space_km

    def _uniform_points(count: int) -> List[Point]:
        coords = rng.uniform(0.0, side, size=(count, 2))
        return [Point(float(x), float(y)) for x, y in coords]

    center_locations = _uniform_points(config.n_centers)
    dp_locations = _uniform_points(config.n_delivery_points)
    worker_locations = _uniform_points(config.n_workers)

    if config.association == "random":
        dp_center = rng.integers(0, config.n_centers, size=config.n_delivery_points)
        worker_center = rng.integers(0, config.n_centers, size=config.n_workers)
    else:
        center_xy = np.array([(p.x, p.y) for p in center_locations])
        dp_center = _nearest_center(dp_locations, center_xy)
        worker_center = _nearest_center(worker_locations, center_xy)
    task_dp = (
        rng.integers(0, config.n_delivery_points, size=config.n_tasks)
        if config.n_delivery_points
        else np.zeros(0, dtype=int)
    )
    if config.n_tasks and not config.n_delivery_points:
        raise DatasetError("cannot place tasks without delivery points")

    low = config.expiry_hours * (1.0 - config.expiry_spread)
    expiries = (
        rng.uniform(low, config.expiry_hours, size=config.n_tasks)
        if config.expiry_spread > 0
        else np.full(config.n_tasks, config.expiry_hours)
    )

    tasks_by_dp: List[List[SpatialTask]] = [[] for _ in range(config.n_delivery_points)]
    for t_idx in range(config.n_tasks):
        dp_idx = int(task_dp[t_idx])
        tasks_by_dp[dp_idx].append(
            SpatialTask(
                task_id=f"s{t_idx}",
                delivery_point_id=f"dp{dp_idx}",
                expiry=float(expiries[t_idx]),
                reward=config.reward,
            )
        )

    points_by_center: List[List[DeliveryPoint]] = [[] for _ in range(config.n_centers)]
    for dp_idx in range(config.n_delivery_points):
        dp = DeliveryPoint(
            dp_id=f"dp{dp_idx}",
            location=dp_locations[dp_idx],
            tasks=tuple(tasks_by_dp[dp_idx]),
        )
        points_by_center[int(dp_center[dp_idx])].append(dp)

    centers = tuple(
        DistributionCenter(
            center_id=f"dc{c_idx}",
            location=center_locations[c_idx],
            delivery_points=tuple(points_by_center[c_idx]),
        )
        for c_idx in range(config.n_centers)
    )
    workers = tuple(
        Worker(
            worker_id=f"w{w_idx}",
            location=worker_locations[w_idx],
            max_delivery_points=config.max_delivery_points,
            center_id=f"dc{int(worker_center[w_idx])}",
        )
        for w_idx in range(config.n_workers)
    )
    return ProblemInstance(
        centers, workers, TravelModel(speed_kmh=config.speed_kmh)
    )
