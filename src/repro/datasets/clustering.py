"""Lloyd's k-means with k-means++ seeding.

The gMission preprocessing in Section VII-A clusters task locations with
k-means and uses the centroids as delivery points.  Implemented here on
plain numpy (no scikit-learn dependency) with deterministic seeding.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.exceptions import DatasetError
from repro.utils.rng import SeedLike, ensure_rng


@dataclass(frozen=True)
class KMeansResult:
    """Clustering output: centroids, per-point labels, and inertia."""

    centroids: np.ndarray  # (k, d)
    labels: np.ndarray  # (n,)
    inertia: float
    iterations: int

    @property
    def k(self) -> int:
        return self.centroids.shape[0]


def _plus_plus_init(
    points: np.ndarray, k: int, rng: np.random.Generator
) -> np.ndarray:
    """k-means++ seeding: spread initial centroids proportionally to D^2."""
    n = points.shape[0]
    centroids = np.empty((k, points.shape[1]))
    first = int(rng.integers(0, n))
    centroids[0] = points[first]
    closest_sq = ((points - centroids[0]) ** 2).sum(axis=1)
    for i in range(1, k):
        total = closest_sq.sum()
        if total <= 0:
            # All remaining points coincide with chosen centroids; any pick works.
            idx = int(rng.integers(0, n))
        else:
            probabilities = closest_sq / total
            idx = int(rng.choice(n, p=probabilities))
        centroids[i] = points[idx]
        dist_sq = ((points - centroids[i]) ** 2).sum(axis=1)
        np.minimum(closest_sq, dist_sq, out=closest_sq)
    return centroids


def kmeans(
    points: np.ndarray,
    k: int,
    seed: SeedLike = None,
    max_iterations: int = 100,
    tol: float = 1e-6,
) -> KMeansResult:
    """Cluster ``points`` (shape ``(n, d)``) into ``k`` groups.

    Raises :class:`DatasetError` when ``k`` exceeds the number of points.
    Empty clusters are reseeded to the point farthest from its centroid, so
    the result always has exactly ``k`` non-empty clusters when ``n >= k``.
    """
    points = np.asarray(points, dtype=float)
    if points.ndim != 2:
        raise DatasetError(f"points must be 2-D, got shape {points.shape}")
    n = points.shape[0]
    if k < 1:
        raise DatasetError(f"k must be >= 1, got {k}")
    if k > n:
        raise DatasetError(f"cannot form {k} clusters from {n} points")
    rng = ensure_rng(seed)

    centroids = _plus_plus_init(points, k, rng)
    labels = np.zeros(n, dtype=int)
    iterations = 0
    for iterations in range(1, max_iterations + 1):
        distances = ((points[:, None, :] - centroids[None, :, :]) ** 2).sum(axis=2)
        labels = distances.argmin(axis=1)
        new_centroids = centroids.copy()
        for c in range(k):
            members = points[labels == c]
            if members.size:
                new_centroids[c] = members.mean(axis=0)
            else:
                # Reseed an empty cluster at the worst-served point.
                worst = int(distances[np.arange(n), labels].argmax())
                new_centroids[c] = points[worst]
        shift = float(np.abs(new_centroids - centroids).max())
        centroids = new_centroids
        if shift <= tol:
            break
    distances = ((points[:, None, :] - centroids[None, :, :]) ** 2).sum(axis=2)
    labels = distances.argmin(axis=1)
    inertia = float(distances[np.arange(n), labels].sum())
    return KMeansResult(centroids, labels, inertia, iterations)
