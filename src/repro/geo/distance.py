"""Distance metrics over :class:`~repro.geo.point.Point`.

The paper uses Euclidean travel distance; Manhattan and Chebyshev are provided
for city-grid style studies and for sensitivity experiments.
"""

from __future__ import annotations

import enum
import math
from typing import Callable, Sequence, Union

import numpy as np

from repro.geo.point import Point

DistanceFn = Callable[[Point, Point], float]


def euclidean(a: Point, b: Point) -> float:
    """Straight-line (L2) distance."""
    return math.hypot(a.x - b.x, a.y - b.y)


def manhattan(a: Point, b: Point) -> float:
    """City-block (L1) distance."""
    return abs(a.x - b.x) + abs(a.y - b.y)


def chebyshev(a: Point, b: Point) -> float:
    """Chessboard (L-infinity) distance."""
    return max(abs(a.x - b.x), abs(a.y - b.y))


class Metric(enum.Enum):
    """Named distance metrics selectable in configuration files."""

    EUCLIDEAN = "euclidean"
    MANHATTAN = "manhattan"
    CHEBYSHEV = "chebyshev"

    @property
    def fn(self) -> DistanceFn:
        return _METRIC_FNS[self]


_METRIC_FNS = {
    Metric.EUCLIDEAN: euclidean,
    Metric.MANHATTAN: manhattan,
    Metric.CHEBYSHEV: chebyshev,
}


def resolve_metric(metric: Union[str, Metric, DistanceFn]) -> DistanceFn:
    """Turn a metric name, enum member, or callable into a distance function."""
    if isinstance(metric, Metric):
        return metric.fn
    if isinstance(metric, str):
        try:
            return Metric(metric.lower()).fn
        except ValueError:
            valid = ", ".join(m.value for m in Metric)
            raise ValueError(f"unknown metric {metric!r}; expected one of: {valid}")
    if callable(metric):
        return metric
    raise TypeError(f"metric must be a name, Metric, or callable, got {type(metric)!r}")


def pairwise_distance_matrix(
    points: Sequence[Point], metric: Union[str, Metric, DistanceFn] = Metric.EUCLIDEAN
) -> np.ndarray:
    """Dense ``(n, n)`` matrix of pairwise distances.

    For the Euclidean metric the computation is vectorised; other metrics fall
    back to a Python double loop (they are only used on small inputs).
    """
    n = len(points)
    if n == 0:
        return np.zeros((0, 0))
    if metric in (Metric.EUCLIDEAN, "euclidean", euclidean):
        coords = np.array([(p.x, p.y) for p in points])
        diff = coords[:, None, :] - coords[None, :, :]
        return np.sqrt((diff**2).sum(axis=-1))
    fn = resolve_metric(metric)
    out = np.zeros((n, n))
    for i in range(n):
        for j in range(i + 1, n):
            out[i, j] = out[j, i] = fn(points[i], points[j])
    return out
