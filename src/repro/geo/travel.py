"""Travel-time model.

The paper's cost ``c(a, b)`` is the travel time between two locations.  All
workers share one speed (5 km/h in the experiments), so travel time is
``distance / speed`` under a chosen metric.  The model also memoises pairs,
because routing and VDPS generation query the same point pairs heavily.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence, Tuple, Union

import numpy as np

from repro.geo.distance import DistanceFn, Metric, resolve_metric
from repro.geo.point import Point
from repro.utils.validation import require_positive


@dataclass(frozen=True)
class TravelMatrix:
    """Dense pairwise travel view of a point set under one model.

    ``times[i, j]`` equals ``TravelModel.time(points[i], points[j])`` bit
    for bit — the matrix is filled through the same memoised
    ``distance()`` calls and the same scalar division, so kernels indexing
    into it reproduce the exact floats the per-pair API returns.
    ``origin_times[i]`` is the origin leg ``time(origin, points[i])``
    (all zeros when no origin was given).
    """

    #: ``(n, n)`` float64 pairwise distances in km (model metric).
    distances: np.ndarray
    #: ``(n, n)`` float64 pairwise travel times in hours.
    times: np.ndarray
    #: ``(n,)`` float64 origin-to-point travel times in hours.
    origin_times: np.ndarray

    @property
    def n(self) -> int:
        return self.origin_times.size


class TravelModel:
    """Converts distances into travel times at a constant speed.

    Parameters
    ----------
    speed_kmh:
        Worker movement speed in km/h.  The paper uses 5 km/h.
    metric:
        Distance metric (name, :class:`Metric`, or callable).
    cache:
        Memoise point-pair distances.  VDPS generation evaluates the same
        pairs across exponentially many subsets, so this is on by default.
    """

    def __init__(
        self,
        speed_kmh: float = 5.0,
        metric: Union[str, Metric, DistanceFn] = Metric.EUCLIDEAN,
        cache: bool = True,
    ) -> None:
        require_positive(speed_kmh, "speed_kmh")
        self.speed_kmh = float(speed_kmh)
        self._distance_fn = resolve_metric(metric)
        self._cache: Dict[Tuple[Point, Point], float] = {} if cache else None  # type: ignore[assignment]

    def distance(self, a: Point, b: Point) -> float:
        """Distance between ``a`` and ``b`` in kilometres."""
        if a == b:
            return 0.0
        if self._cache is None:
            return self._distance_fn(a, b)
        key = (a, b) if a <= b else (b, a)
        d = self._cache.get(key)
        if d is None:
            d = self._distance_fn(a, b)
            self._cache[key] = d
        return d

    def time(self, a: Point, b: Point) -> float:
        """Travel time from ``a`` to ``b`` in hours (the paper's ``c(a, b)``)."""
        return self.distance(a, b) / self.speed_kmh

    def matrix(
        self, points: Sequence[Point], origin: Optional[Point] = None
    ) -> TravelMatrix:
        """All pairwise (and origin-leg) travel times in one cache pass.

        The DP kernels and the pruning neighbourhoods query the same
        ``O(n^2)`` point pairs over and over; this fills them once with
        direct metric calls — the memo dict would only add key-hashing
        overhead for pairs evaluated exactly once — and divides by the
        speed elementwise.  The metric is deterministic and equal points
        short-circuit to ``0.0`` exactly as :meth:`distance` does, and
        IEEE-754 division is performed value for value exactly as
        :meth:`time` does, so
        ``matrix(points).times[i, j] == time(points[i], points[j])`` holds
        bit for bit, which is what lets the vectorized kernels substitute
        matrix gathers for per-pair calls without perturbing a single
        arrival time.
        """
        n = len(points)
        fn = self._distance_fn
        distances = np.zeros((n, n), dtype=np.float64)
        for i in range(n):
            a = points[i]
            row = distances[i]
            for j in range(i + 1, n):
                b = points[j]
                row[j] = distances[j, i] = 0.0 if a == b else fn(a, b)
        if origin is None:
            origin_distances = np.zeros(n, dtype=np.float64)
        else:
            origin_distances = np.array(
                [0.0 if origin == p else fn(origin, p) for p in points],
                dtype=np.float64,
            )
        return TravelMatrix(
            distances=distances,
            times=distances / self.speed_kmh,
            origin_times=origin_distances / self.speed_kmh,
        )

    @property
    def distance_fn(self) -> DistanceFn:
        """The resolved metric callable (used for structural comparisons)."""
        return self._distance_fn

    def with_speed(self, speed_kmh: float) -> "TravelModel":
        """A model with the same metric but a different speed.

        Used for workers with individual speeds; the distance cache is not
        shared (distances are cheap relative to the rest of the pipeline).
        """
        return TravelModel(speed_kmh, self._distance_fn, cache=self._cache is not None)

    def clear_cache(self) -> None:
        """Drop all memoised distances."""
        if self._cache is not None:
            self._cache.clear()

    @property
    def cache_size(self) -> int:
        """Number of memoised point pairs (0 when caching is disabled)."""
        return 0 if self._cache is None else len(self._cache)

    def __repr__(self) -> str:
        return f"TravelModel(speed_kmh={self.speed_kmh})"
