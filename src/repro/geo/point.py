"""Immutable planar point used for all locations in the library.

Coordinates are kilometres in an abstract 2-D plane, matching the paper's
synthetic space ``[0, 100]^2`` and its Euclidean travel distances.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Iterator, Tuple


@dataclass(frozen=True, order=True)
class Point:
    """A 2-D location ``(x, y)`` in kilometres.

    ``Point`` is hashable and ordered lexicographically, so it can key
    dictionaries (e.g. distance caches) and sort deterministically.
    """

    x: float
    y: float

    def __post_init__(self) -> None:
        for name, value in (("x", self.x), ("y", self.y)):
            if not isinstance(value, (int, float)):
                raise TypeError(f"{name} must be a number, got {type(value).__name__}")
            if not math.isfinite(value):
                raise ValueError(f"{name} must be finite, got {value!r}")

    def distance_to(self, other: "Point") -> float:
        """Euclidean distance to ``other`` in kilometres."""
        return math.hypot(self.x - other.x, self.y - other.y)

    def manhattan_to(self, other: "Point") -> float:
        """Manhattan (L1) distance to ``other``."""
        return abs(self.x - other.x) + abs(self.y - other.y)

    def midpoint(self, other: "Point") -> "Point":
        """Midpoint of the segment between this point and ``other``."""
        return Point((self.x + other.x) / 2.0, (self.y + other.y) / 2.0)

    def translated(self, dx: float, dy: float) -> "Point":
        """A new point shifted by ``(dx, dy)``."""
        return Point(self.x + dx, self.y + dy)

    def as_tuple(self) -> Tuple[float, float]:
        """The coordinates as a plain tuple."""
        return (self.x, self.y)

    def __iter__(self) -> Iterator[float]:
        yield self.x
        yield self.y

    @staticmethod
    def centroid(points: Iterable["Point"]) -> "Point":
        """Arithmetic mean of ``points``; raises on an empty iterable."""
        xs, ys, n = 0.0, 0.0, 0
        for p in points:
            xs += p.x
            ys += p.y
            n += 1
        if n == 0:
            raise ValueError("centroid of an empty point collection is undefined")
        return Point(xs / n, ys / n)
