"""Planar geometry substrate: points, metrics, travel model, spatial index."""

from repro.geo.point import Point
from repro.geo.distance import (
    Metric,
    chebyshev,
    euclidean,
    manhattan,
    pairwise_distance_matrix,
    resolve_metric,
)
from repro.geo.travel import TravelModel
from repro.geo.index import GridIndex

__all__ = [
    "Point",
    "Metric",
    "euclidean",
    "manhattan",
    "chebyshev",
    "pairwise_distance_matrix",
    "resolve_metric",
    "TravelModel",
    "GridIndex",
]
