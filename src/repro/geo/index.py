"""Uniform-grid spatial index.

The distance-constrained pruning strategy of Section IV repeatedly asks
"which delivery points lie within travel distance ε of this one?".  A uniform
grid answers that in expected O(1) per query for the near-uniform point
distributions used in the experiments, without pulling in a k-d tree
dependency.
"""

from __future__ import annotations

import math
from collections import defaultdict
from typing import Dict, Generic, Iterable, List, Sequence, Tuple, TypeVar

from repro.geo.distance import euclidean
from repro.geo.point import Point
from repro.utils.validation import require_positive

T = TypeVar("T")


class GridIndex(Generic[T]):
    """Buckets items by location into square cells of side ``cell_size``.

    Items are arbitrary objects paired with a :class:`Point`.  Queries return
    items, not points, so callers can index delivery points directly.
    """

    def __init__(self, cell_size: float) -> None:
        require_positive(cell_size, "cell_size")
        self.cell_size = float(cell_size)
        self._cells: Dict[Tuple[int, int], List[Tuple[Point, T]]] = defaultdict(list)
        self._count = 0

    @classmethod
    def build(
        cls, items: Sequence[Tuple[Point, T]], cell_size: float
    ) -> "GridIndex[T]":
        """Construct an index holding every ``(point, item)`` pair."""
        index = cls(cell_size)
        for point, item in items:
            index.insert(point, item)
        return index

    def _cell_of(self, p: Point) -> Tuple[int, int]:
        return (math.floor(p.x / self.cell_size), math.floor(p.y / self.cell_size))

    def insert(self, point: Point, item: T) -> None:
        """Add ``item`` located at ``point``."""
        self._cells[self._cell_of(point)].append((point, item))
        self._count += 1

    def __len__(self) -> int:
        return self._count

    def within(self, center: Point, radius: float) -> List[T]:
        """All items within Euclidean ``radius`` of ``center`` (inclusive)."""
        if radius < 0:
            raise ValueError(f"radius must be non-negative, got {radius}")
        # One ring wider than ceil(radius/cell): cell assignment floors the
        # exact coordinate while the distance test rounds, so a point whose
        # rounded distance equals ``radius`` can sit one cell outside the
        # naive window (e.g. x=-1e-274 lands in cell -1 yet is at rounded
        # distance 2.0 from a center at x=2 with cell_size=2).
        reach = math.ceil(radius / self.cell_size) + 1
        cx, cy = self._cell_of(center)
        hits: List[T] = []
        for gx in range(cx - reach, cx + reach + 1):
            for gy in range(cy - reach, cy + reach + 1):
                for point, item in self._cells.get((gx, gy), ()):
                    if euclidean(center, point) <= radius:
                        hits.append(item)
        return hits

    def nearest(self, center: Point) -> T:
        """The single item closest to ``center``; raises on an empty index."""
        if self._count == 0:
            raise ValueError("nearest() on an empty index")
        best_item: T = None  # type: ignore[assignment]
        best_dist = math.inf
        cx, cy = self._cell_of(center)
        # Farthest occupied cell bounds how far the search can ever need to go.
        max_reach = max(
            max(abs(gx - cx), abs(gy - cy)) for gx, gy in self._cells
        )
        # Expand ring by ring; stop once even the nearest possible location
        # in the next unexplored ring — (reach - 1) cells away — cannot beat
        # the incumbent.
        reach = 0
        while reach <= max_reach:
            if best_dist < math.inf and (reach - 1) * self.cell_size > best_dist:
                break
            for gx in range(cx - reach, cx + reach + 1):
                for gy in range(cy - reach, cy + reach + 1):
                    if max(abs(gx - cx), abs(gy - cy)) != reach:
                        continue  # only the new ring
                    for point, item in self._cells.get((gx, gy), ()):
                        d = euclidean(center, point)
                        if d < best_dist:
                            best_dist, best_item = d, item
            reach += 1
        return best_item

    def items(self) -> Iterable[Tuple[Point, T]]:
        """Iterate over all ``(point, item)`` pairs in the index."""
        for bucket in self._cells.values():
            yield from bucket
