"""Cross-round equity ledger: cumulative payoff, participation, balance.

The paper's FGT/IEGT optimize the payoff difference within a *single*
assignment round; a worker who loses ties for ten consecutive rounds is
invisible to the objective.  The :class:`EquityLedger` gives the dispatch
service the long-horizon memory that per-round fairness lacks: for every
worker it accrues

* ``cumulative`` — exponentially-decayed cumulative payoff
  ``C_i <- decay * C_i + P_i``.  With ``decay < 1`` this is bounded by
  ``P_max / (1 - decay)``, so the ledger never grows without bound and
  old rounds fade at a configurable horizon (``decay=0.9`` weighs
  roughly the last 10 rounds).
* ``participation`` — how many rounds the worker appeared in.
* ``balance`` — a decayed credit/debt account against the round mean,
  ``B_i <- decay * B_i + (P_i - mean(P))``: positive means the worker
  has been running ahead of its peers, negative behind (the
  "persistent fairness balance" shape from SNIPPETS.md).

plus a rolling window of the last ``window`` rounds' payoff maps, from
which :meth:`rolling_gini` / :meth:`rolling_jain` report fairness over
recent *cumulative* income rather than a single round.

Determinism contract
--------------------
The ledger is journaled by :class:`~repro.service.state.WorldState` (one
``equity`` record per recorded round) and must replay **bit-identically**
on crash recovery.  Every update therefore iterates workers in sorted-id
order, all arithmetic is plain float64, and :meth:`as_dict` /
:meth:`from_dict` round-trip exactly through JSON (``repr`` of a float is
read back to the same bits).
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, Iterator, Mapping, Tuple

from repro.core.fairness import gini_coefficient, jain_index

#: Default decay applied to cumulative payoff and balance each round.
DEFAULT_DECAY = 0.9

#: Default rolling-window length (rounds) for the fairness indices.
DEFAULT_WINDOW = 32


class EquityLedger:
    """Per-worker cross-round payoff accounting (see module docs)."""

    def __init__(
        self, decay: float = DEFAULT_DECAY, window: int = DEFAULT_WINDOW
    ) -> None:
        if not 0.0 < decay <= 1.0:
            raise ValueError(f"decay must be in (0, 1], got {decay!r}")
        if window < 1:
            raise ValueError(f"window must be >= 1, got {window!r}")
        self._decay = float(decay)
        self._window_size = int(window)
        self._cumulative: Dict[str, float] = {}
        self._participation: Dict[str, int] = {}
        self._balance: Dict[str, float] = {}
        self._window: Deque[Dict[str, float]] = deque(maxlen=self._window_size)
        self._rounds = 0

    # ------------------------------------------------------------------
    # Accounting
    # ------------------------------------------------------------------

    @property
    def decay(self) -> float:
        return self._decay

    @property
    def window(self) -> int:
        return self._window_size

    @property
    def rounds(self) -> int:
        """How many dispatch rounds have been recorded."""
        return self._rounds

    @property
    def workers(self) -> Tuple[str, ...]:
        """Sorted ids of every worker the ledger has ever seen."""
        return tuple(sorted(self._cumulative))

    def record_round(self, payoffs: Mapping[str, float]) -> None:
        """Fold one dispatch round's per-worker payoffs into the ledger.

        ``payoffs`` must cover every worker present in the round (workers
        assigned the null strategy at payoff 0.0 included — presence is
        what drives participation and the balance debit).  Workers absent
        from ``payoffs`` (departed or not yet joined) simply decay.
        """
        present = sorted(payoffs)
        round_mean = (
            sum(float(payoffs[w]) for w in present) / len(present)
            if present
            else 0.0
        )
        for wid in sorted(set(self._cumulative) | set(payoffs)):
            cum = self._decay * self._cumulative.get(wid, 0.0)
            bal = self._decay * self._balance.get(wid, 0.0)
            if wid in payoffs:
                value = float(payoffs[wid])
                cum = cum + value
                bal = bal + (value - round_mean)
                self._participation[wid] = self._participation.get(wid, 0) + 1
            self._cumulative[wid] = cum
            self._balance[wid] = bal
        self._window.append({w: float(payoffs[w]) for w in present})
        self._rounds += 1

    def baselines(self) -> Dict[str, float]:
        """Per-worker cumulative payoff — the equity-mode IAU baselines.

        Fed to the solvers as ``equity_baselines``: the round's IAU envy
        and guilt terms are then computed against *cumulative* payoff gaps
        (``docs/temporal_fairness.md``), so a cumulative-poor worker looks
        envied-at and a cumulative-rich one guilt-laden even before the
        round's own payoffs differ.
        """
        return dict(sorted(self._cumulative.items()))

    def cumulative_of(self, worker_id: str) -> float:
        """Decayed cumulative payoff (0.0 for unknown workers)."""
        return self._cumulative.get(worker_id, 0.0)

    def balance_of(self, worker_id: str) -> float:
        """Decayed credit/debt vs the round means (0.0 for unknown workers)."""
        return self._balance.get(worker_id, 0.0)

    def participation_of(self, worker_id: str) -> int:
        """Rounds the worker was present in (0 for unknown workers)."""
        return self._participation.get(worker_id, 0)

    # ------------------------------------------------------------------
    # Rolling fairness
    # ------------------------------------------------------------------

    def rolling_payoffs(self) -> Dict[str, float]:
        """Per-worker payoff summed over the rolling window's rounds.

        A worker missing from some window rounds contributes 0.0 for
        those rounds — exactly the income a departed or unlucky worker
        earned, which is what the rolling indices must see.
        """
        totals: Dict[str, float] = {}
        for round_payoffs in self._window:
            for wid in round_payoffs:
                totals[wid] = totals.get(wid, 0.0) + round_payoffs[wid]
        return dict(sorted(totals.items()))

    def rolling_gini(self) -> float:
        """Gini coefficient of windowed per-worker income (0 = equal)."""
        totals = self.rolling_payoffs()
        return gini_coefficient([max(0.0, v) for v in totals.values()])

    def rolling_jain(self) -> float:
        """Jain index of windowed per-worker income (1 = equal)."""
        totals = self.rolling_payoffs()
        return jain_index(list(totals.values()))

    def summary(self) -> Dict[str, object]:
        """Compact JSON-ready view for ``/healthz`` and ``GET /equity``."""
        cumulative = self.baselines()
        return {
            "rounds": self._rounds,
            "workers": len(cumulative),
            "decay": self._decay,
            "window": self._window_size,
            "rolling_gini": self.rolling_gini(),
            "rolling_jain": self.rolling_jain(),
            "cumulative_gini": gini_coefficient(
                [max(0.0, v) for v in cumulative.values()]
            ),
        }

    # ------------------------------------------------------------------
    # Persistence (journal checkpoints + fingerprints)
    # ------------------------------------------------------------------

    def as_dict(self) -> Dict[str, object]:
        """JSON-ready snapshot; :meth:`from_dict` restores it exactly."""
        return {
            "decay": self._decay,
            "window": self._window_size,
            "rounds": self._rounds,
            "cumulative": dict(sorted(self._cumulative.items())),
            "participation": dict(sorted(self._participation.items())),
            "balance": dict(sorted(self._balance.items())),
            "recent": [dict(sorted(r.items())) for r in self._window],
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, object]) -> "EquityLedger":
        """Rebuild a ledger from :meth:`as_dict` output (bit-exact)."""
        ledger = cls(decay=float(data["decay"]), window=int(data["window"]))
        ledger._rounds = int(data["rounds"])
        ledger._cumulative = {
            str(k): float(v) for k, v in dict(data["cumulative"]).items()
        }
        ledger._participation = {
            str(k): int(v) for k, v in dict(data["participation"]).items()
        }
        ledger._balance = {
            str(k): float(v) for k, v in dict(data["balance"]).items()
        }
        for round_payoffs in data.get("recent", []):
            ledger._window.append(
                {str(k): float(v) for k, v in dict(round_payoffs).items()}
            )
        return ledger

    def fingerprint_items(self) -> Iterator[str]:
        """Stable ``key=value`` strings for WorldState's fingerprint hash.

        Floats are rendered with ``float.hex`` so two ledgers hash equal
        iff they are bit-identical, mirroring the rest of the fingerprint.
        """
        yield f"equity.decay={self._decay.hex()}"
        yield f"equity.window={self._window_size}"
        yield f"equity.rounds={self._rounds}"
        for wid in sorted(self._cumulative):
            yield (
                f"equity.worker={wid}"
                f"|cum={self._cumulative[wid].hex()}"
                f"|bal={self._balance[wid].hex()}"
                f"|part={self._participation.get(wid, 0)}"
            )
        for i, round_payoffs in enumerate(self._window):
            parts = ",".join(
                f"{w}:{round_payoffs[w].hex()}" for w in sorted(round_payoffs)
            )
            yield f"equity.recent[{i}]={parts}"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, EquityLedger):
            return NotImplemented
        return list(self.fingerprint_items()) == list(other.fingerprint_items())

    def __repr__(self) -> str:
        return (
            f"EquityLedger(decay={self._decay}, window={self._window_size}, "
            f"rounds={self._rounds}, workers={len(self._cumulative)})"
        )
