"""Long-run equity reports: ledger-weighted vs per-round fairness.

The runner behind ``python -m repro equity report``: it plays one of the
:mod:`repro.sim.scenarios` worlds through the real dispatch service
(:class:`~repro.service.state.WorldState` +
:class:`~repro.service.engine.DispatchEngine`, not the offline simulator)
twice —

* the **ledger arm** solves with ``equity_mode=True``, so every round's
  IAU acts on cumulative income (``docs/temporal_fairness.md``), and
* the **per-round arm** solves the unmodified paper game while an
  *observer* ledger records the same rolling metrics without influencing
  a single route.

Both arms replay byte-identical churn (the scenario schedule is pure
arithmetic) and derive identical solve seeds, so the only difference is
the equity term — the comparison isolates exactly what the ledger buys
(lower rolling Gini) and what it costs (total payoff given up).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.core.fairness import (
    DEFAULT_EQUITY_STRENGTH,
    gini_coefficient,
    jain_index,
)
from repro.games.fgt import FGTSolver
from repro.games.iegt import IEGTSolver
from repro.service.engine import DispatchEngine
from repro.sim.scenarios import EquityScenario

__all__ = [
    "EquityComparison",
    "ScenarioOutcome",
    "compare_scenario",
    "run_scenario",
]

#: Efficiency the ledger mode may give up (percent of the per-round
#: arm's total payoff) and still count as within budget.
EFFICIENCY_BUDGET_PCT = 10.0


def _make_solver(algorithm: str, epsilon: float):
    name = algorithm.strip().upper()
    if name == "FGT":
        return FGTSolver(epsilon=epsilon)
    if name == "IEGT":
        return IEGTSolver(epsilon=epsilon)
    raise ValueError(
        f"unknown algorithm {algorithm!r}; equity reports support FGT and IEGT"
    )


@dataclass(frozen=True)
class ScenarioOutcome:
    """One arm of an equity comparison: a full scenario run's accounting."""

    scenario: str
    algorithm: str
    equity_mode: bool
    rounds: int
    seed: int
    #: Final rolling-window fairness from the (solver- or observer-) ledger.
    rolling_gini: float
    rolling_jain: float
    #: Fairness of raw (undecayed) whole-run income per worker.
    income_gini: float
    income_jain: float
    #: Sum over rounds of every committed payoff — the efficiency side.
    total_payoff: float
    #: Raw whole-run income per worker (sorted ids; 0.0 for never-assigned).
    income: Dict[str, float]
    #: Rolling Gini after each round — the trajectory plotted in reports.
    gini_trajectory: Tuple[float, ...]

    @property
    def average_round_payoff(self) -> float:
        """Total committed payoff divided by the scenario's round count."""
        return self.total_payoff / self.rounds if self.rounds else 0.0

    def as_dict(self) -> Dict[str, object]:
        """JSON-ready view for ``repro equity report --json``."""
        return {
            "scenario": self.scenario,
            "algorithm": self.algorithm,
            "equity_mode": self.equity_mode,
            "rounds": self.rounds,
            "seed": self.seed,
            "rolling_gini": self.rolling_gini,
            "rolling_jain": self.rolling_jain,
            "income_gini": self.income_gini,
            "income_jain": self.income_jain,
            "total_payoff": self.total_payoff,
            "average_round_payoff": self.average_round_payoff,
            "income": dict(self.income),
            "gini_trajectory": list(self.gini_trajectory),
        }


def run_scenario(
    scenario: EquityScenario,
    *,
    algorithm: str = "FGT",
    equity_mode: bool = True,
    seed: int = 0,
    epsilon: float = 0.8,
    decay: Optional[float] = None,
    window: Optional[int] = None,
    strength: float = DEFAULT_EQUITY_STRENGTH,
) -> ScenarioOutcome:
    """Play ``scenario`` through the dispatch service; see the module doc.

    A ledger is attached even with ``equity_mode=False`` (observer mode),
    so both arms of a comparison report rolling metrics from identical
    accounting.
    """
    world = scenario.build_world()
    world.enable_equity(decay=decay, window=window)
    engine = DispatchEngine(
        world,
        _make_solver(algorithm, epsilon),
        epsilon=epsilon,
        seed=seed,
        equity_mode=equity_mode,
        equity_strength=strength,
    )
    income: Dict[str, float] = {}
    trajectory = []
    total = 0.0
    for index in range(scenario.rounds):
        joiners = scenario.round_workers(index)
        if joiners:
            accepted, rejected = world.add_workers(joiners)
            if rejected:
                raise RuntimeError(
                    f"scenario {scenario.name!r} round {index}: "
                    f"worker rejected: {rejected[0].reason}"
                )
        batch = scenario.round_tasks(index, world.now)
        if batch:
            accepted, rejected = world.add_tasks(batch)
            if rejected:
                raise RuntimeError(
                    f"scenario {scenario.name!r} round {index}: "
                    f"task rejected: {rejected[0].reason}"
                )
        result = engine.dispatch(advance_hours=scenario.advance_hours)
        for wid, payoff in result.payoffs.items():
            income[wid] = income.get(wid, 0.0) + float(payoff)
            total += float(payoff)
        trajectory.append(
            result.rolling_gini if result.rolling_gini is not None else 0.0
        )
    # Workers that never appeared in a committed round earned nothing —
    # the rolling indices already price them in via the ledger; the raw
    # income map must too.
    for wid in world.worker_stats():
        income.setdefault(wid, 0.0)
    income = dict(sorted(income.items()))
    values = [max(0.0, v) for v in income.values()]
    ledger = world.equity
    assert ledger is not None
    return ScenarioOutcome(
        scenario=scenario.name,
        algorithm=algorithm.strip().upper(),
        equity_mode=equity_mode,
        rounds=scenario.rounds,
        seed=int(seed),
        rolling_gini=ledger.rolling_gini(),
        rolling_jain=ledger.rolling_jain(),
        income_gini=gini_coefficient(values),
        income_jain=jain_index(values),
        total_payoff=total,
        income=income,
        gini_trajectory=tuple(trajectory),
    )


@dataclass(frozen=True)
class EquityComparison:
    """Ledger arm vs per-round arm of one scenario (same seed, same churn)."""

    per_round: ScenarioOutcome
    ledger: ScenarioOutcome

    @property
    def scenario(self) -> str:
        return self.ledger.scenario

    @property
    def gini_gap_closed(self) -> float:
        """Rolling-Gini reduction the ledger mode achieves (>0 = fairer)."""
        return self.per_round.rolling_gini - self.ledger.rolling_gini

    @property
    def gini_gap_closed_pct(self) -> float:
        if self.per_round.rolling_gini <= 0.0:
            return 0.0
        return 100.0 * self.gini_gap_closed / self.per_round.rolling_gini

    @property
    def efficiency_cost_pct(self) -> float:
        """Total payoff given up by the ledger mode (percent, >= 0)."""
        if self.per_round.total_payoff <= 0.0:
            return 0.0
        lost = self.per_round.total_payoff - self.ledger.total_payoff
        return max(0.0, 100.0 * lost / self.per_round.total_payoff)

    @property
    def improved(self) -> bool:
        """Strictly lower final rolling Gini than the per-round arm."""
        return self.ledger.rolling_gini < self.per_round.rolling_gini

    @property
    def within_budget(self) -> bool:
        return self.efficiency_cost_pct <= EFFICIENCY_BUDGET_PCT

    def as_dict(self) -> Dict[str, object]:
        """JSON-ready view of both arms plus the derived gap/cost numbers."""
        return {
            "scenario": self.scenario,
            "algorithm": self.ledger.algorithm,
            "rounds": self.ledger.rounds,
            "per_round": self.per_round.as_dict(),
            "ledger": self.ledger.as_dict(),
            "gini_gap_closed": self.gini_gap_closed,
            "gini_gap_closed_pct": self.gini_gap_closed_pct,
            "efficiency_cost_pct": self.efficiency_cost_pct,
            "efficiency_budget_pct": EFFICIENCY_BUDGET_PCT,
            "improved": self.improved,
            "within_budget": self.within_budget,
        }

    def format(self) -> str:
        """Multi-line text summary (the default CLI report output)."""
        lines = [
            f"scenario {self.scenario} ({self.ledger.algorithm}, "
            f"{self.ledger.rounds} rounds)",
            f"  per-round arm: rolling_gini={self.per_round.rolling_gini:.4f} "
            f"jain={self.per_round.rolling_jain:.4f} "
            f"total_payoff={self.per_round.total_payoff:.3f}",
            f"  ledger arm:    rolling_gini={self.ledger.rolling_gini:.4f} "
            f"jain={self.ledger.rolling_jain:.4f} "
            f"total_payoff={self.ledger.total_payoff:.3f}",
            f"  gap closed: {self.gini_gap_closed:+.4f} "
            f"({self.gini_gap_closed_pct:+.1f}%)  "
            f"efficiency cost: {self.efficiency_cost_pct:.1f}% "
            f"(budget {EFFICIENCY_BUDGET_PCT:.0f}%)",
            f"  improved={self.improved} within_budget={self.within_budget}",
        ]
        return "\n".join(lines)


def compare_scenario(
    scenario: EquityScenario,
    *,
    algorithm: str = "FGT",
    seed: int = 0,
    epsilon: float = 0.8,
    decay: Optional[float] = None,
    window: Optional[int] = None,
    strength: float = DEFAULT_EQUITY_STRENGTH,
) -> EquityComparison:
    """Run both arms of ``scenario`` and pair them for the report."""
    common = dict(
        algorithm=algorithm,
        seed=seed,
        epsilon=epsilon,
        decay=decay,
        window=window,
        strength=strength,
    )
    per_round = run_scenario(scenario, equity_mode=False, **common)
    ledger = run_scenario(scenario, equity_mode=True, **common)
    return EquityComparison(per_round=per_round, ledger=ledger)
