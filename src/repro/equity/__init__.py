"""Temporal fairness: cross-round equity ledger and long-run reporting.

Per-round FGT/IEGT leave a long-horizon gap open: a worker unlucky for
many consecutive rounds is invisible to a within-round objective.  This
package closes it:

* :mod:`repro.equity.ledger` — :class:`EquityLedger`, the per-worker
  cumulative-payoff / participation / balance account that survives
  restarts via the WorldState write-ahead journal.
* :mod:`repro.equity.report` — long-run scenario runner behind
  ``python -m repro equity report``: plays the scenarios of
  :mod:`repro.sim.scenarios` with the ledger-weighted equity mode on and
  off and reports the rolling-Gini gap it closes.

See ``docs/temporal_fairness.md`` for the ledger semantics and the
equity-mode IAU math.
"""

from repro.equity.ledger import DEFAULT_DECAY, DEFAULT_WINDOW, EquityLedger

__all__ = [
    "DEFAULT_DECAY",
    "DEFAULT_WINDOW",
    "EquityLedger",
    "EFFICIENCY_BUDGET_PCT",
    "EquityComparison",
    "ScenarioOutcome",
    "compare_scenario",
    "run_scenario",
]

_REPORT_EXPORTS = (
    "EFFICIENCY_BUDGET_PCT",
    "EquityComparison",
    "ScenarioOutcome",
    "compare_scenario",
    "run_scenario",
)


def __getattr__(name: str):
    # repro.equity.report pulls in the service layer, which itself imports
    # the ledger from this package; loading it lazily keeps that cycle
    # open (ledger-only importers never touch the service layer at all).
    if name in _REPORT_EXPORTS:
        from repro.equity import report

        return getattr(report, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
