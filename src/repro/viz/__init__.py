"""Dependency-free SVG rendering of experiment results and instances.

The evaluation figures of the paper are line charts (metric vs swept
parameter, one series per algorithm).  This package renders
:class:`~repro.experiments.sweep.SweepResult` objects — and instance maps —
as standalone SVG files without requiring matplotlib, which is not
available in offline environments.
"""

from repro.viz.svg import SvgDocument
from repro.viz.charts import (
    LineChart,
    Series,
    render_instance_map,
    render_payoff_distribution,
    render_sweep_chart,
)

__all__ = [
    "SvgDocument",
    "Series",
    "LineChart",
    "render_sweep_chart",
    "render_instance_map",
    "render_payoff_distribution",
]
