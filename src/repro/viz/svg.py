"""Minimal SVG document builder.

Only the handful of primitives the charts need — lines, polylines,
circles, rectangles, text — with correct XML escaping and fixed-precision
coordinates so output is deterministic and diff-friendly.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple
from xml.sax.saxutils import escape, quoteattr


def _fmt(value: float) -> str:
    """Fixed-precision coordinate formatting (trailing zeros trimmed)."""
    text = f"{value:.2f}"
    return text.rstrip("0").rstrip(".") if "." in text else text


class SvgDocument:
    """An append-only SVG document of fixed pixel size."""

    def __init__(self, width: int, height: int, background: str = "white") -> None:
        if width <= 0 or height <= 0:
            raise ValueError("width and height must be positive")
        self.width = width
        self.height = height
        self._parts: List[str] = []
        if background:
            self.rect(0, 0, width, height, fill=background, stroke="none")

    def _element(self, tag: str, attrs: dict, text: str = None) -> None:
        rendered = " ".join(f"{k}={quoteattr(str(v))}" for k, v in attrs.items())
        if text is None:
            self._parts.append(f"<{tag} {rendered}/>")
        else:
            self._parts.append(f"<{tag} {rendered}>{escape(text)}</{tag}>")

    def line(
        self, x1: float, y1: float, x2: float, y2: float,
        stroke: str = "black", width: float = 1.0, dash: str = None,
    ) -> None:
        """A straight stroke from ``(x1, y1)`` to ``(x2, y2)``."""
        attrs = {
            "x1": _fmt(x1), "y1": _fmt(y1), "x2": _fmt(x2), "y2": _fmt(y2),
            "stroke": stroke, "stroke-width": _fmt(width),
        }
        if dash:
            attrs["stroke-dasharray"] = dash
        self._element("line", attrs)

    def polyline(
        self, points: Sequence[Tuple[float, float]],
        stroke: str = "black", width: float = 1.5,
    ) -> None:
        """An unfilled connected path through ``points``."""
        if len(points) < 2:
            raise ValueError("polyline needs at least two points")
        path = " ".join(f"{_fmt(x)},{_fmt(y)}" for x, y in points)
        self._element(
            "polyline",
            {"points": path, "fill": "none", "stroke": stroke,
             "stroke-width": _fmt(width)},
        )

    def circle(
        self, cx: float, cy: float, r: float,
        fill: str = "black", stroke: str = "none",
    ) -> None:
        """A filled circle of radius ``r`` at ``(cx, cy)``."""
        self._element(
            "circle",
            {"cx": _fmt(cx), "cy": _fmt(cy), "r": _fmt(r),
             "fill": fill, "stroke": stroke},
        )

    def rect(
        self, x: float, y: float, w: float, h: float,
        fill: str = "none", stroke: str = "black",
    ) -> None:
        """A rectangle with top-left corner ``(x, y)``."""
        self._element(
            "rect",
            {"x": _fmt(x), "y": _fmt(y), "width": _fmt(w), "height": _fmt(h),
             "fill": fill, "stroke": stroke},
        )

    def text(
        self, x: float, y: float, content: str,
        size: int = 12, anchor: str = "start", color: str = "#222",
        rotate: float = None,
    ) -> None:
        """A text label anchored at ``(x, y)``; XML-escaped."""
        attrs = {
            "x": _fmt(x), "y": _fmt(y), "font-size": size,
            "text-anchor": anchor, "fill": color,
            "font-family": "Helvetica, Arial, sans-serif",
        }
        if rotate is not None:
            attrs["transform"] = f"rotate({_fmt(rotate)} {_fmt(x)} {_fmt(y)})"
        self._element("text", attrs, content)

    def to_string(self) -> str:
        """The complete SVG document as a string."""
        header = (
            f'<svg xmlns="http://www.w3.org/2000/svg" '
            f'width="{self.width}" height="{self.height}" '
            f'viewBox="0 0 {self.width} {self.height}">'
        )
        return header + "".join(self._parts) + "</svg>"

    def save(self, path) -> None:
        """Write the document to ``path``."""
        from pathlib import Path

        Path(path).write_text(self.to_string())
