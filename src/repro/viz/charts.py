"""Line charts and instance maps rendered to SVG.

The default palette is colorblind-friendly (Okabe-Ito).  Axis ticks use a
1-2-5 "nice numbers" progression so regenerated charts look hand-tuned.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from repro.core.instance import SubProblem
from repro.experiments.sweep import SweepResult
from repro.viz.svg import SvgDocument

#: Okabe-Ito palette (colorblind safe), skipping the yellow (weak on white).
PALETTE = (
    "#0072B2",  # blue
    "#D55E00",  # vermillion
    "#009E73",  # bluish green
    "#CC79A7",  # reddish purple
    "#56B4E9",  # sky blue
    "#E69F00",  # orange
    "#000000",  # black
)

_MARGIN_LEFT = 64
_MARGIN_RIGHT = 16
_MARGIN_TOP = 36
_MARGIN_BOTTOM = 48


def nice_ticks(lo: float, hi: float, target: int = 5) -> List[float]:
    """Round tick positions covering ``[lo, hi]`` in 1-2-5 steps."""
    if target < 2:
        raise ValueError("target must be >= 2")
    if hi < lo:
        lo, hi = hi, lo
    if math.isclose(hi, lo):
        return [lo]
    span = hi - lo
    raw_step = span / (target - 1)
    magnitude = 10 ** math.floor(math.log10(raw_step))
    for multiple in (1, 2, 5, 10):
        step = multiple * magnitude
        if span / step <= target:
            break
    first = math.floor(lo / step) * step
    ticks = []
    tick = first
    while tick <= hi + step * 1e-9:
        if tick >= lo - step * 1e-9:
            ticks.append(round(tick, 10))
        tick += step
    return ticks


def _label(value: float) -> str:
    if value == int(value) and abs(value) < 1e6:
        return str(int(value))
    return f"{value:g}"


@dataclass
class Series:
    """One named line of a chart."""

    name: str
    ys: List[float]

    def __post_init__(self) -> None:
        if not self.ys:
            raise ValueError(f"series {self.name!r} is empty")


@dataclass
class LineChart:
    """A multi-series line chart over shared x positions."""

    title: str
    x_values: List[float]
    series: List[Series] = field(default_factory=list)
    x_label: str = ""
    y_label: str = ""
    width: int = 560
    height: int = 360
    log_y: bool = False

    def add(self, name: str, ys: Sequence[float]) -> "LineChart":
        """Append a series; returns ``self`` for chaining."""
        ys = list(ys)
        if len(ys) != len(self.x_values):
            raise ValueError(
                f"series {name!r} has {len(ys)} points, expected "
                f"{len(self.x_values)}"
            )
        if self.log_y and any(y <= 0 for y in ys):
            raise ValueError(f"log-scale chart cannot plot non-positive {name!r}")
        self.series.append(Series(name, ys))
        return self

    # -- rendering ----------------------------------------------------------

    def _y_transform(self, y: float) -> float:
        return math.log10(y) if self.log_y else y

    def render(self) -> str:
        """The chart as a complete SVG document string."""
        if not self.series:
            raise ValueError("chart has no series")
        if len(self.x_values) < 1:
            raise ValueError("chart has no x values")
        doc = SvgDocument(self.width, self.height)
        plot_w = self.width - _MARGIN_LEFT - _MARGIN_RIGHT
        plot_h = self.height - _MARGIN_TOP - _MARGIN_BOTTOM

        xs = [float(x) for x in self.x_values]
        all_y = [self._y_transform(y) for s in self.series for y in s.ys]
        x_lo, x_hi = min(xs), max(xs)
        y_lo, y_hi = min(all_y), max(all_y)
        if math.isclose(x_hi, x_lo):
            x_hi = x_lo + 1.0
        if math.isclose(y_hi, y_lo):
            y_hi = y_lo + 1.0
        pad = 0.05 * (y_hi - y_lo)
        y_lo, y_hi = y_lo - pad, y_hi + pad

        def px(x: float) -> float:
            return _MARGIN_LEFT + (x - x_lo) / (x_hi - x_lo) * plot_w

        def py(y: float) -> float:
            return _MARGIN_TOP + (y_hi - y) / (y_hi - y_lo) * plot_h

        # Frame and grid.
        doc.rect(_MARGIN_LEFT, _MARGIN_TOP, plot_w, plot_h, stroke="#888")
        for tick in nice_ticks(y_lo, y_hi):
            y = py(tick)
            doc.line(_MARGIN_LEFT, y, _MARGIN_LEFT + plot_w, y,
                     stroke="#ddd", width=0.6)
            label_value = 10**tick if self.log_y else tick
            doc.text(_MARGIN_LEFT - 6, y + 4, _label(label_value),
                     size=10, anchor="end")
        for tick in nice_ticks(x_lo, x_hi):
            x = px(tick)
            doc.line(x, _MARGIN_TOP, x, _MARGIN_TOP + plot_h,
                     stroke="#eee", width=0.6)
            doc.text(x, _MARGIN_TOP + plot_h + 16, _label(tick),
                     size=10, anchor="middle")

        # Series lines and point markers.
        for idx, series in enumerate(self.series):
            color = PALETTE[idx % len(PALETTE)]
            points = [
                (px(x), py(self._y_transform(y)))
                for x, y in zip(xs, series.ys)
            ]
            if len(points) >= 2:
                doc.polyline(points, stroke=color, width=1.8)
            for x, y in points:
                doc.circle(x, y, 2.6, fill=color)

        # Legend (top-right, one row per series).
        legend_x = _MARGIN_LEFT + plot_w - 120
        legend_y = _MARGIN_TOP + 12
        for idx, series in enumerate(self.series):
            color = PALETTE[idx % len(PALETTE)]
            y = legend_y + idx * 16
            doc.line(legend_x, y - 4, legend_x + 18, y - 4, stroke=color, width=2.2)
            doc.text(legend_x + 24, y, series.name, size=11)

        # Titles.
        doc.text(self.width / 2, 20, self.title, size=14, anchor="middle")
        if self.x_label:
            doc.text(self.width / 2, self.height - 12, self.x_label,
                     size=11, anchor="middle")
        if self.y_label:
            doc.text(16, self.height / 2, self.y_label, size=11,
                     anchor="middle", rotate=-90)
        return doc.to_string()

    def save(self, path) -> None:
        """Render and write the chart to ``path``."""
        from pathlib import Path

        Path(path).write_text(self.render())


def render_sweep_chart(
    result: SweepResult,
    metric: str,
    log_y: bool = False,
    algorithms: Optional[Sequence[str]] = None,
) -> str:
    """Render one metric panel of a figure sweep as SVG.

    Mirrors the paper's panels: x = swept parameter, one line per
    algorithm.  ``log_y`` suits the CPU-time panels where MPTA dominates
    by orders of magnitude.
    """
    names = list(algorithms) if algorithms is not None else result.algorithms
    chart = LineChart(
        title=f"{result.name} — {metric}",
        x_values=[float(v) for v in result.values],
        x_label=result.parameter,
        y_label=metric,
        log_y=log_y,
    )
    for name in names:
        chart.add(name, result.series(metric, name))
    return chart.render()


def render_payoff_distribution(
    assignment, width: int = 560, height: int = 300, title: str = ""
) -> str:
    """Bar chart of per-worker payoffs, sorted descending, with a mean line.

    The visual form of the fairness story: a steep staircase means an
    unequal assignment, a flat one means equal payoffs.  Idle workers show
    as zero-height bars at the right edge.
    """
    payoffs = sorted(assignment.payoffs, reverse=True)
    if not payoffs:
        raise ValueError("assignment has no workers to plot")
    doc = SvgDocument(width, height)
    plot_w = width - _MARGIN_LEFT - _MARGIN_RIGHT
    plot_h = height - _MARGIN_TOP - _MARGIN_BOTTOM
    top = max(payoffs) or 1.0
    n = len(payoffs)
    gap = 2.0
    bar_w = max(1.0, (plot_w - gap * (n - 1)) / n)

    doc.rect(_MARGIN_LEFT, _MARGIN_TOP, plot_w, plot_h, stroke="#888")
    for tick in nice_ticks(0.0, top):
        y = _MARGIN_TOP + plot_h - (tick / (top * 1.05)) * plot_h
        doc.line(_MARGIN_LEFT, y, _MARGIN_LEFT + plot_w, y, stroke="#ddd", width=0.6)
        doc.text(_MARGIN_LEFT - 6, y + 4, _label(tick), size=10, anchor="end")
    for idx, payoff in enumerate(payoffs):
        h = (payoff / (top * 1.05)) * plot_h
        x = _MARGIN_LEFT + idx * (bar_w + gap)
        doc.rect(
            x, _MARGIN_TOP + plot_h - h, bar_w, h,
            fill=PALETTE[0], stroke="none",
        )
    mean = sum(payoffs) / n
    mean_y = _MARGIN_TOP + plot_h - (mean / (top * 1.05)) * plot_h
    doc.line(
        _MARGIN_LEFT, mean_y, _MARGIN_LEFT + plot_w, mean_y,
        stroke=PALETTE[1], width=1.5, dash="5,3",
    )
    doc.text(
        _MARGIN_LEFT + plot_w - 4, mean_y - 5, f"mean {mean:.2f}",
        size=10, anchor="end", color=PALETTE[1],
    )
    doc.text(
        width / 2, 20,
        title or f"Worker payoffs (P_dif={assignment.payoff_difference:.3f})",
        size=13, anchor="middle",
    )
    doc.text(width / 2, height - 12, "workers (sorted by payoff)",
             size=11, anchor="middle")
    return doc.to_string()


def render_instance_map(sub: SubProblem, width: int = 520, height: int = 520) -> str:
    """A spatial map of one sub-problem: center, delivery points, workers.

    Delivery-point radius scales with task count; the distribution center
    is the black square; workers are crosses.
    """
    doc = SvgDocument(width, height)
    points = [dp.location for dp in sub.delivery_points]
    points += [w.location for w in sub.workers]
    points.append(sub.center.location)
    xs = [p.x for p in points]
    ys = [p.y for p in points]
    x_lo, x_hi = min(xs), max(xs)
    y_lo, y_hi = min(ys), max(ys)
    span = max(x_hi - x_lo, y_hi - y_lo) or 1.0
    margin = 30

    def px(x: float) -> float:
        return margin + (x - x_lo) / span * (width - 2 * margin)

    def py(y: float) -> float:
        return height - margin - (y - y_lo) / span * (height - 2 * margin)

    max_tasks = max((dp.task_count for dp in sub.delivery_points), default=1) or 1
    for dp in sub.delivery_points:
        radius = 3 + 7 * (dp.task_count / max_tasks)
        doc.circle(px(dp.location.x), py(dp.location.y), radius,
                   fill="#0072B266", stroke="#0072B2")
    for worker in sub.workers:
        x, y = px(worker.location.x), py(worker.location.y)
        doc.line(x - 4, y, x + 4, y, stroke="#D55E00", width=1.8)
        doc.line(x, y - 4, x, y + 4, stroke="#D55E00", width=1.8)
    cx, cy = px(sub.center.location.x), py(sub.center.location.y)
    doc.rect(cx - 5, cy - 5, 10, 10, fill="black", stroke="black")
    doc.text(width / 2, 18, sub.describe(), size=12, anchor="middle")
    return doc.to_string()
