"""Command-line interface: ``python -m repro <command>``.

Four subcommands cover the operational loop a platform engineer needs:

* ``generate`` — draw a SYN or GM instance and persist it as CSV.
* ``solve`` — load a CSV instance, run one algorithm, print metrics, and
  optionally write the assignment as CSV.
* ``experiment`` — regenerate one of the paper's figures by id.
* ``list-experiments`` — enumerate the reproducible figure ids.
* ``verify`` — run solvers under the :mod:`repro.verify` invariant
  checkers on an experiment's representative instance (or, with
  ``--full``, the whole experiment) and report what was certified.
* ``trace`` — run one solver under :mod:`repro.obs` structured tracing,
  write the JSONL trace, and print a summary (per-phase wall time,
  rounds, switches, catalog-cache stats).
* ``serve`` — run the long-lived online dispatch service
  (:mod:`repro.service`): a JSON-over-HTTP assignment engine with
  per-center sharded solves and snapshot-keyed catalog caching.
* ``bench`` — run the pinned core benchmark (catalog build, FGT solve,
  IEGT solve through both best-response engines) and write wall-times,
  speedups, and obs counter deltas to ``BENCH_core.json``.
"""

from __future__ import annotations

import argparse
import csv
import sys
from pathlib import Path
from typing import List, Optional, Sequence

from repro.baselines import GTASolver, MPTASolver, RandomSolver
from repro.core.payoff import average_payoff, payoff_difference
from repro.datasets.gmission import GMissionConfig, generate_gmission_like
from repro.datasets.io import load_instance, save_instance
from repro.datasets.synthetic import SynConfig, generate_synthetic
from repro.experiments.config import Scale
from repro.experiments.figures import ConvergenceStudy
from repro.experiments.registry import get_experiment, list_experiments
from repro.experiments.report import format_series_table, format_sweep
from repro.games import FGTSolver, IEGTSolver

_SOLVERS = {
    "gta": lambda eps: GTASolver(epsilon=eps),
    "mpta": lambda eps: MPTASolver(epsilon=eps),
    "fgt": lambda eps: FGTSolver(epsilon=eps),
    "iegt": lambda eps: IEGTSolver(epsilon=eps),
    "random": lambda eps: RandomSolver(epsilon=eps),
}


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Fairness-aware spatial crowdsourcing task assignment (ICDE 2021).",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    gen = sub.add_parser("generate", help="generate a dataset and save it as CSV")
    gen.add_argument("output", type=Path, help="directory to write the CSV files to")
    gen.add_argument("--dataset", choices=("syn", "gm"), default="gm")
    gen.add_argument("--tasks", type=int, default=None)
    gen.add_argument("--workers", type=int, default=None)
    gen.add_argument("--delivery-points", type=int, default=None)
    gen.add_argument("--centers", type=int, default=None, help="SYN only")
    gen.add_argument("--seed", type=int, default=0)

    solve = sub.add_parser("solve", help="solve a CSV instance with one algorithm")
    solve.add_argument("input", type=Path, help="directory produced by 'generate'")
    solve.add_argument(
        "--algorithm", choices=sorted(_SOLVERS), default="iegt"
    )
    solve.add_argument("--epsilon", type=float, default=None, help="pruning radius (km)")
    solve.add_argument("--seed", type=int, default=0)
    solve.add_argument(
        "--n-jobs",
        type=int,
        default=1,
        help="solve distribution centers on a process pool of this size",
    )
    solve.add_argument(
        "--output", type=Path, default=None, help="write the assignment CSV here"
    )
    solve.add_argument(
        "--equity-mode",
        action="store_true",
        help="solve with the ledger-weighted equity IAU (FGT/IEGT only; "
        "one-shot solves use zero baselines, i.e. the amplified game — "
        "docs/temporal_fairness.md)",
    )
    solve.add_argument(
        "--equity-strength",
        type=float,
        default=None,
        help="IAU amplification for --equity-mode (default 3.0)",
    )
    _add_kernel_flag(solve)

    cmp = sub.add_parser(
        "compare", help="solve with two algorithms and diff the outcomes"
    )
    cmp.add_argument("input", type=Path, help="directory produced by 'generate'")
    cmp.add_argument("--baseline", choices=sorted(_SOLVERS), default="gta")
    cmp.add_argument("--challenger", choices=sorted(_SOLVERS), default="iegt")
    cmp.add_argument("--epsilon", type=float, default=None)
    cmp.add_argument("--seed", type=int, default=0)
    cmp.add_argument(
        "--n-jobs",
        type=int,
        default=1,
        help="solve distribution centers on a process pool of this size",
    )

    exp = sub.add_parser("experiment", help="regenerate one paper figure")
    exp.add_argument("experiment_id", help="e.g. fig4; see list-experiments")
    exp.add_argument(
        "--scale", choices=[s.value for s in Scale], default=Scale.CI.value
    )
    exp.add_argument("--seed", type=int, default=0)

    sub.add_parser("list-experiments", help="list reproducible figure ids")

    ver = sub.add_parser(
        "verify", help="run solvers under the runtime invariant checkers"
    )
    ver.add_argument(
        "--experiment",
        default="fig3",
        help="experiment id whose representative instance to verify (default fig3)",
    )
    ver.add_argument(
        "--scale", choices=[s.value for s in Scale], default=Scale.CI.value
    )
    ver.add_argument("--seed", type=int, default=0)
    ver.add_argument(
        "--algorithms",
        default="fgt,iegt",
        help="comma-separated solver names to verify (default fgt,iegt)",
    )
    ver.add_argument(
        "--epsilon",
        type=float,
        default=None,
        help="pruning radius (km); default: the experiment grid's default",
    )
    ver.add_argument(
        "--full",
        action="store_true",
        help="verify the experiment's entire sweep instead of one instance",
    )

    trc = sub.add_parser(
        "trace", help="run a solver under structured tracing and summarise it"
    )
    trc.add_argument(
        "--algo",
        "--algorithm",
        dest="algo",
        choices=sorted(_SOLVERS),
        default="fgt",
        help="solver to trace (default fgt)",
    )
    trc.add_argument(
        "--experiment",
        default="fig3",
        help="experiment id whose representative instance to trace (default fig3)",
    )
    trc.add_argument(
        "--scale", choices=[s.value for s in Scale], default=Scale.CI.value
    )
    trc.add_argument("--seed", type=int, default=0)
    trc.add_argument(
        "--epsilon",
        type=float,
        default=None,
        help="pruning radius (km); default: the experiment grid's default",
    )
    trc.add_argument(
        "--output",
        type=Path,
        default=Path("trace.jsonl"),
        help="JSONL trace file to write (default trace.jsonl)",
    )
    trc.add_argument(
        "--prometheus",
        action="store_true",
        help="also print the metrics registry in Prometheus text format",
    )
    trc_sub = trc.add_subparsers(dest="trace_action")
    trc_analyze = trc_sub.add_parser(
        "analyze",
        help="reconstruct span trees from a JSONL trace and print "
        "critical paths and per-phase self time",
    )
    trc_analyze.add_argument(
        "input", type=Path, help="JSONL trace file to analyze"
    )
    trc_analyze.add_argument(
        "--top",
        type=int,
        default=10,
        help="slowest rounds to print critical paths for (default 10)",
    )
    trc_analyze.add_argument(
        "--json",
        action="store_true",
        help="emit the analysis as JSON instead of the text report",
    )

    bch = sub.add_parser(
        "bench", help="run the pinned core benchmark and write BENCH_core.json"
    )
    bch.add_argument(
        "--scale",
        choices=("smoke", "medium"),
        default="medium",
        help="pinned benchmark shape (default medium; smoke is CI-sized)",
    )
    bch.add_argument("--seed", type=int, default=0)
    bch.add_argument(
        "--repeats",
        type=int,
        default=3,
        help="solve repetitions per engine; the best wall time is reported",
    )
    bch.add_argument(
        "--output",
        type=Path,
        default=Path("BENCH_core.json"),
        help="JSON report path (default BENCH_core.json)",
    )
    bch.add_argument(
        "--profile",
        action="store_true",
        help="run each bench section under cProfile and print the top "
        "cumulative-time functions per section",
    )
    _add_kernel_flag(bch)

    srv = sub.add_parser(
        "serve", help="run the online dispatch service (JSON over HTTP)"
    )
    srv.add_argument(
        "input",
        type=Path,
        nargs="?",
        default=None,
        help="CSV instance dir for the layout/fleet/initial queue "
        "(default: generate a gMission-like city)",
    )
    srv.add_argument("--host", default="127.0.0.1")
    srv.add_argument(
        "--port",
        type=int,
        default=8321,
        help="TCP port; 0 binds an ephemeral port (see --port-file)",
    )
    srv.add_argument(
        "--port-file",
        type=Path,
        default=None,
        help="write the bound port here once listening (for --port 0)",
    )
    srv.add_argument("--algorithm", choices=sorted(_SOLVERS), default="fgt")
    srv.add_argument("--epsilon", type=float, default=None, help="pruning radius (km)")
    srv.add_argument("--seed", type=int, default=0)
    srv.add_argument(
        "--n-jobs",
        type=int,
        default=1,
        help="per-center solve parallelism within each dispatch round",
    )
    srv.add_argument(
        "--verify",
        action="store_true",
        help="run the Def. 8 / Eq. 1-2 invariant checkers on every round",
    )
    srv.add_argument(
        "--no-initial-tasks",
        action="store_true",
        help="start with an empty task queue (layout and fleet only)",
    )
    srv.add_argument("--tasks", type=int, default=60, help="generated-city task count")
    srv.add_argument("--workers", type=int, default=12, help="generated-city fleet size")
    srv.add_argument(
        "--delivery-points", type=int, default=24, help="generated-city point count"
    )
    srv.add_argument(
        "--journal",
        type=Path,
        default=None,
        help="write-ahead journal path; an existing journal is recovered "
        "first, so the service survives SIGKILL (docs/fault_tolerance.md). "
        "With --shards > 1 this is a *directory* of per-shard segments",
    )
    srv.add_argument(
        "--shards",
        type=int,
        default=1,
        help="run the supervised multi-process shard pool with this many "
        "worker processes (centers are partitioned by rendezvous hash; "
        "crashed shards are respawned and journal-replayed). 1 = the "
        "single-process engine (docs/fault_tolerance.md)",
    )
    srv.add_argument(
        "--queue-bound",
        type=int,
        default=4,
        help="sharded mode: max concurrently admitted /dispatch calls; "
        "excess requests are shed with 503 + Retry-After",
    )
    srv.add_argument(
        "--journal-compact-every",
        type=int,
        default=512,
        help="auto-compact the journal after this many records (default 512)",
    )
    srv.add_argument(
        "--solve-deadline-s",
        type=float,
        default=None,
        help="per-center solve budget in seconds; enables the degradation "
        "ladder (primary -> scalar -> greedy -> skip)",
    )
    srv.add_argument(
        "--solve-retries",
        type=int,
        default=1,
        help="primary-rung retries before degrading (default 1)",
    )
    srv.add_argument(
        "--breaker-failures",
        type=int,
        default=3,
        help="consecutive primary failures that open a center's breaker",
    )
    srv.add_argument(
        "--breaker-cooldown-s",
        type=float,
        default=30.0,
        help="seconds an open breaker waits before a half-open probe",
    )
    srv.add_argument(
        "--faults",
        default=None,
        help="chaos-injection spec, e.g. 'seed=7,error_rate=0.2' "
        "(same syntax as the REPRO_FAULTS env var; testing only)",
    )
    srv.add_argument(
        "--catalog-store",
        type=Path,
        default=None,
        help="directory for persistent catalog warm-starts: drained "
        "shutdowns save each center's incremental catalog there and the "
        "next start refreshes it instead of paying cold C-VDPS builds",
    )
    srv.add_argument(
        "--no-delta-catalog",
        action="store_true",
        help="rebuild catalogs from scratch on every cache miss instead "
        "of applying incremental churn deltas (docs/performance.md)",
    )
    srv.add_argument(
        "--equity",
        action="store_true",
        help="solve rounds with ledger-weighted equity utilities; the "
        "cross-round ledger is journaled and survives restarts "
        "(docs/temporal_fairness.md)",
    )
    srv.add_argument(
        "--equity-decay",
        type=float,
        default=None,
        help="ledger decay per round (default 0.9; only for a fresh ledger)",
    )
    srv.add_argument(
        "--equity-window",
        type=int,
        default=None,
        help="rolling-fairness window in rounds (default 32; fresh ledger only)",
    )
    srv.add_argument(
        "--equity-strength",
        type=float,
        default=None,
        help="IAU amplification for equity rounds (default 3.0)",
    )
    _add_kernel_flag(srv)

    eqp = sub.add_parser(
        "equity", help="long-run temporal-fairness reports (ledger vs per-round)"
    )
    eq_sub = eqp.add_subparsers(dest="equity_action", required=True)
    eq_report = eq_sub.add_parser(
        "report",
        help="play a long-run scenario with the equity ledger on and off "
        "and report the rolling-Gini gap it closes",
    )
    eq_report.add_argument(
        "--scenario",
        choices=("unlucky", "bursty", "churn", "all"),
        default="all",
        help="which repro.sim.scenarios world to play (default all)",
    )
    eq_report.add_argument(
        "--rounds", type=int, default=40, help="dispatch rounds per arm"
    )
    eq_report.add_argument("--seed", type=int, default=0)
    eq_report.add_argument(
        "--algorithm",
        choices=("fgt", "iegt"),
        default="fgt",
        help="solver for both arms (default fgt — IEGT's imitation "
        "dynamics cannot yield work, so its equity effect is weaker)",
    )
    eq_report.add_argument(
        "--epsilon", type=float, default=0.8, help="pruning radius (km)"
    )
    eq_report.add_argument(
        "--decay", type=float, default=None, help="ledger decay (default 0.9)"
    )
    eq_report.add_argument(
        "--window", type=int, default=None, help="rolling window (default 32)"
    )
    eq_report.add_argument(
        "--strength",
        type=float,
        default=None,
        help="IAU amplification for the ledger arm (default 3.0)",
    )
    eq_report.add_argument(
        "--json",
        action="store_true",
        help="emit the comparisons as JSON instead of the text report",
    )
    eq_report.add_argument(
        "--output", type=Path, default=None, help="also write the JSON here"
    )
    return parser


def _add_kernel_flag(parser: argparse.ArgumentParser) -> None:
    from repro.kernels import VALID_KERNELS

    parser.add_argument(
        "--kernel",
        choices=VALID_KERNELS,
        default=None,
        help="DP kernel tier for catalog builds and routing (default: "
        "REPRO_KERNEL env var, then 'vectorized'; all tiers are "
        "bit-identical — docs/performance.md)",
    )


def _apply_kernel(args: argparse.Namespace) -> None:
    """Install ``--kernel`` as the process-wide default tier."""
    if getattr(args, "kernel", None) is not None:
        from repro.kernels import set_default_kernel

        set_default_kernel(args.kernel)


def _cmd_generate(args: argparse.Namespace) -> int:
    if args.dataset == "gm":
        config = GMissionConfig(
            n_tasks=args.tasks or 200,
            n_workers=args.workers if args.workers is not None else 40,
            n_delivery_points=args.delivery_points or 100,
        )
        instance = generate_gmission_like(config, seed=args.seed)
    else:
        config = SynConfig(
            n_centers=args.centers or 4,
            n_tasks=args.tasks or 8000,
            n_workers=args.workers if args.workers is not None else 160,
            n_delivery_points=args.delivery_points or 400,
        )
        instance = generate_synthetic(config, seed=args.seed)
    save_instance(instance, args.output)
    print(f"wrote {instance.describe()} to {args.output}")
    return 0


def _cmd_solve(args: argparse.Namespace) -> int:
    from repro.parallel import solve_instance

    _apply_kernel(args)
    instance = load_instance(args.input)
    solver = _SOLVERS[args.algorithm](args.epsilon)
    if args.equity_mode:
        solver = _equity_solver(solver, args.equity_strength)
        if solver is None:
            print(
                f"ERROR: --equity-mode is not supported by "
                f"{args.algorithm!r} (FGT and IEGT only)",
                file=sys.stderr,
            )
            return 2
    solution = solve_instance(
        instance, solver, epsilon=args.epsilon, seed=args.seed, n_jobs=args.n_jobs
    )
    payoffs: List[float] = []
    rows = []
    for center_id in sorted(solution.assignments):
        for pair in solution.assignments[center_id]:
            payoffs.append(pair.payoff)
            rows.append(
                (
                    pair.worker.worker_id,
                    center_id,
                    "|".join(pair.delivery_point_ids),
                    f"{pair.payoff:.6f}",
                )
            )
    print(f"algorithm        : {solver.name}")
    print(f"workers          : {len(payoffs)}")
    print(f"payoff difference: {payoff_difference(payoffs):.6f}")
    print(f"average payoff   : {average_payoff(payoffs):.6f}")
    if args.output is not None:
        args.output.parent.mkdir(parents=True, exist_ok=True)
        with args.output.open("w", newline="") as fh:
            writer = csv.writer(fh)
            writer.writerow(["worker_id", "center_id", "route", "payoff"])
            writer.writerows(rows)
        print(f"assignment written to {args.output}")
    return 0


def _equity_solver(solver, strength: Optional[float]):
    """An equity-mode copy of ``solver``, or ``None`` if unsupported."""
    import dataclasses

    if not dataclasses.is_dataclass(solver):
        return None
    names = {f.name for f in dataclasses.fields(solver)}
    if "equity_mode" not in names:
        return None
    changes = {"equity_mode": True}
    if strength is not None and "equity_strength" in names:
        changes["equity_strength"] = strength
    return dataclasses.replace(solver, **changes)


def _cmd_compare(args: argparse.Namespace) -> int:
    from repro.analysis import compare_assignments
    from repro.core.assignment import Assignment
    from repro.parallel import solve_instance

    instance = load_instance(args.input)
    labelled = {}
    for label in (args.baseline, args.challenger):
        solver = _SOLVERS[label](args.epsilon)
        solution = solve_instance(
            instance, solver, epsilon=args.epsilon, seed=args.seed, n_jobs=args.n_jobs
        )
        pairs = []
        for center_id in sorted(solution.assignments):
            pairs.extend(solution.assignments[center_id].pairs)
        labelled[label] = Assignment(pairs)
    comparison = compare_assignments(
        labelled[args.baseline],
        labelled[args.challenger],
        args.baseline.upper(),
        args.challenger.upper(),
    )
    print(comparison.format())
    return 0


def _cmd_experiment(args: argparse.Namespace) -> int:
    entry = get_experiment(args.experiment_id)
    result = entry.run(scale=Scale(args.scale), seed=args.seed)
    if isinstance(result, ConvergenceStudy):
        rows = {name: result.series(name) for name in result.traces}
        width = max(len(series) for series in rows.values())
        padded = {
            name: series + [series[-1]] * (width - len(series))
            for name, series in rows.items()
        }
        print(
            format_series_table(
                f"{result.name}: payoff difference per iteration",
                list(range(1, width + 1)),
                padded,
                column_header="iter",
            )
        )
    elif hasattr(result, "format") and callable(result.format):
        # Extension studies render themselves.
        print(result.format())
    else:
        print(format_sweep(result))
    return 0


def _cmd_list_experiments(args: argparse.Namespace) -> int:
    for experiment_id in list_experiments():
        print(get_experiment(experiment_id).describe())
    return 0


def _representative_instance(entry, scale: Scale, seed: int):
    """The experiment's dataset at its grid's default (underlined) sizes.

    Returns ``(instance, default_epsilon)``.  Experiments on GM+SYN (e.g.
    fig12) and the GM-based extension studies verify on the GM instance.
    """
    from repro.experiments.config import GM_GRID, SYN_GRID, SYN_SPACE_KM

    if entry.dataset.startswith("SYN"):
        grid = SYN_GRID[scale]
        config = SynConfig(
            n_centers=grid.n_centers,
            n_workers=grid.workers_default,
            n_delivery_points=grid.dps_default,
            n_tasks=grid.tasks_default,
            expiry_hours=grid.expiry_default,
            max_delivery_points=grid.maxdp_default,
            space_km=SYN_SPACE_KM[scale],
        )
        return generate_synthetic(config, seed=seed), grid.epsilon_default
    grid = GM_GRID[scale]
    config = GMissionConfig(
        n_tasks=grid.tasks_default,
        n_workers=grid.workers_default,
        n_delivery_points=min(grid.dps_default, grid.tasks_default),
    )
    return generate_gmission_like(config, seed=seed), grid.epsilon_default


def _cmd_verify(args: argparse.Namespace) -> int:
    from repro.core.exceptions import InvariantViolation
    from repro.experiments.runner import AlgorithmSpec, run_algorithms
    from repro.verify import (
        reset_verification_stats,
        set_verification,
        verification_stats,
    )

    entry = get_experiment(args.experiment)
    scale = Scale(args.scale)
    names = [name.strip().lower() for name in args.algorithms.split(",") if name.strip()]
    unknown = sorted(set(names) - set(_SOLVERS))
    if unknown:
        print(f"unknown algorithm(s): {', '.join(unknown)}", file=sys.stderr)
        return 2
    reset_verification_stats()
    try:
        if args.full:
            # Verify the whole sweep: every solver the experiment runs picks
            # up the checkers through the global override + REPRO_VERIFY path.
            set_verification(True)
            try:
                entry.run(scale=scale, seed=args.seed)
            finally:
                set_verification(None)
        else:
            instance, grid_epsilon = _representative_instance(
                entry, scale, args.seed
            )
            epsilon = args.epsilon if args.epsilon is not None else grid_epsilon
            specs = [
                AlgorithmSpec(name.upper(), _SOLVERS[name]) for name in names
            ]
            records = run_algorithms(
                instance, specs, epsilon, seed=args.seed, verify=True
            )
            for record in records:
                print(
                    f"{record.algorithm:<6} P_dif={record.payoff_difference:.6f} "
                    f"avg={record.average_payoff:.6f} "
                    f"{'converged' if record.converged else 'NOT converged'}"
                )
    except InvariantViolation as violation:
        print(f"INVARIANT VIOLATION: {violation}", file=sys.stderr)
        return 1
    stats = verification_stats()
    if not stats.total:
        print("no invariant checks ran (nothing was verified)", file=sys.stderr)
        return 1
    print()
    print(f"all invariant checks passed ({stats.total} checks)")
    print(stats.format())
    return 0


def _cmd_trace_analyze(args: argparse.Namespace) -> int:
    import json

    from repro.obs import TraceFormatError, analyze_trace

    if not args.input.exists():
        print(f"ERROR: no trace file at {args.input}", file=sys.stderr)
        return 1
    try:
        analysis = analyze_trace(args.input)
    except TraceFormatError as exc:
        print(f"ERROR: {exc}", file=sys.stderr)
        return 1
    if args.json:
        span_count = sum(1 for _ in analysis.forest.iter_spans())
        payload = {
            "traces": len(analysis.forest.roots),
            "spans": span_count,
            "orphans": analysis.orphan_count,
            "rounds": [
                {
                    "round_index": rp.round_index,
                    "dur": rp.dur,
                    "steps": [
                        {"depth": depth, "label": label, "dur": dur}
                        for depth, label, dur in rp.steps
                    ],
                }
                for rp in analysis.rounds[: args.top]
            ],
            "phases": {
                kind: {"count": count, "total_s": total, "self_s": self_time}
                for kind, (count, total, self_time) in sorted(
                    analysis.phases.items()
                )
            },
        }
        print(json.dumps(payload, indent=2, sort_keys=True))
    else:
        print(analysis.format(top=args.top))
    if analysis.orphan_count:
        print(
            f"ERROR: {analysis.orphan_count} orphan span(s) — parent ids "
            f"missing from the trace, the causal tree is incomplete",
            file=sys.stderr,
        )
        return 1
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    import dataclasses

    if getattr(args, "trace_action", None) == "analyze":
        return _cmd_trace_analyze(args)

    from repro.experiments.runner import CatalogCache
    from repro.obs import (
        METRICS,
        JsonlTracer,
        read_trace,
        reset_metrics,
        set_tracing,
        summarize_trace,
    )
    from repro.utils.rng import RngFactory

    entry = get_experiment(args.experiment)
    scale = Scale(args.scale)
    instance, grid_epsilon = _representative_instance(entry, scale, args.seed)
    epsilon = args.epsilon if args.epsilon is not None else grid_epsilon
    solver = _SOLVERS[args.algo](epsilon)

    if args.output.exists():
        args.output.unlink()  # each trace run produces a fresh stream
    reset_metrics()
    tracer = JsonlTracer(args.output)
    # Process-wide install so catalog builds and cache lookups trace too;
    # the solver itself gets the tracer instance through its trace= field.
    set_tracing(tracer)
    rng_factory = RngFactory(args.seed)
    cache = CatalogCache()
    total_rounds = 0
    payoffs: List[float] = []
    converged = True
    try:
        try:
            solver = dataclasses.replace(solver, trace=tracer)
        except TypeError:
            pass  # solvers without a trace= field still trace via the sink
        for sub_problem in instance.subproblems():
            with METRICS.timer("phase.catalog"):
                catalog, _ = cache.get(sub_problem, epsilon)
            seed = rng_factory.get(f"{solver.name}:{sub_problem.center.center_id}")
            with METRICS.timer("phase.solve"):
                result = solver.solve(sub_problem, catalog=catalog, seed=seed)
            total_rounds += result.rounds
            converged = converged and result.converged
            payoffs.extend(result.assignment.payoffs)
        tracer.event("metrics.snapshot", metrics=METRICS.snapshot())
    finally:
        set_tracing(None)
        tracer.close()

    if args.prometheus:
        print(METRICS.render_prometheus(), end="")
        print()
    summary = summarize_trace(read_trace(args.output))
    print(f"algorithm        : {solver.name}")
    print(f"workers          : {len(payoffs)}")
    print(f"payoff difference: {payoff_difference(payoffs):.6f}")
    print(f"average payoff   : {average_payoff(payoffs):.6f}")
    print(f"rounds           : {total_rounds}")
    print(f"converged        : {converged}")
    print()
    print(summary.format())
    print()
    print(f"trace written to {args.output}")
    if summary.total_rounds(args.algo) not in (0, total_rounds):
        print(
            f"WARNING: trace records {summary.total_rounds(args.algo)} rounds "
            f"but the solver reported {total_rounds}",
            file=sys.stderr,
        )
        return 1
    return 0


def _cmd_bench(args: argparse.Namespace) -> int:
    from repro.bench import format_report, run_bench

    _apply_kernel(args)
    report = run_bench(
        scale=args.scale,
        seed=args.seed,
        repeats=args.repeats,
        output=args.output,
        profile=args.profile,
    )
    print(format_report(report))
    print(f"report written to {args.output}")
    if not report["kernel"]["identical"]:
        print(
            "ERROR: scalar and vectorized kernel catalog builds disagreed — "
            "the bench is reporting a correctness bug, not a performance "
            "number",
            file=sys.stderr,
        )
        return 1
    if not (report["fgt"]["identical"] and report["iegt"]["identical"]):
        print(
            "ERROR: scalar and vectorized engines disagreed — the bench is "
            "reporting a correctness bug, not a performance number",
            file=sys.stderr,
        )
        return 1
    if not report["catalog_delta"]["identical"]:
        print(
            "ERROR: incremental catalog refresh diverged from a full "
            "rebuild — the bench is reporting a correctness bug, not a "
            "performance number",
            file=sys.stderr,
        )
        return 1
    equity = report["temporal_fairness"]
    if not (equity["improved"] and equity["within_budget"]):
        print(
            "ERROR: the equity ledger failed its temporal-fairness gate — "
            "ledger-weighted dispatch must strictly lower the rolling Gini "
            f"at under {equity['budget_pct']:.0f}% efficiency cost "
            f"(improved={equity['improved']} "
            f"within_budget={equity['within_budget']})",
            file=sys.stderr,
        )
        return 1
    shards = report["shards"]
    if not shards["identical"]:
        print(
            "ERROR: the sharded pool's assignments diverged from the "
            "single-process engine — shard layout must never change "
            "results",
            file=sys.stderr,
        )
        return 1
    if not (shards["recovered_identical"] and shards["respawns"] >= 1):
        print(
            "ERROR: the shard pool failed its kill-recover gate — a "
            "SIGKILLed shard must respawn, replay its journal segment, "
            "and finish bit-identical to the fault-free run "
            f"(respawns={shards['respawns']} "
            f"recovered_identical={shards['recovered_identical']})",
            file=sys.stderr,
        )
        return 1
    obs = report["obs_overhead"]
    if not obs["identical"]:
        print(
            "ERROR: tracing changed the dispatch assignments — "
            "observation must never alter behaviour",
            file=sys.stderr,
        )
        return 1
    if not obs["within_budget"]:
        # Advisory: single-run wall times flake, so a budget breach warns
        # instead of failing; the recorded numbers make real regressions
        # visible in the BENCH_core.json diff.
        print(
            f"WARNING: tracing-disabled dispatch regressed "
            f"{obs['regression_pct']:+.1f}% vs the tracked baseline "
            f"(budget {obs['budget_pct']:.0f}%)",
            file=sys.stderr,
        )
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    import signal

    from repro.obs.metrics import METRICS
    from repro.service import (
        BreakerConfig,
        DispatchEngine,
        DispatchServer,
        FaultPlan,
        WorldJournal,
        WorldState,
    )
    from repro.vdps.store import CatalogStore

    _apply_kernel(args)
    if args.shards < 1:
        print(f"error: --shards must be >= 1, got {args.shards}", file=sys.stderr)
        return 2
    if args.shards > 1:
        return _serve_sharded(args)
    recovered = False
    if args.journal is not None and args.journal.exists():
        # Crash recovery: replay the write-ahead journal into a
        # bit-identical world and keep journaling to the same file.
        state = WorldState.recover(
            args.journal, compact_every=args.journal_compact_every
        )
        recovered = True
    else:
        if args.input is not None:
            instance = load_instance(args.input)
        else:
            config = GMissionConfig(
                n_tasks=args.tasks,
                n_workers=args.workers,
                n_delivery_points=args.delivery_points,
            )
            instance = generate_gmission_like(config, seed=args.seed)

        state = WorldState(instance.centers, travel=instance.travel)
        if args.journal is not None:
            state.attach_journal(
                WorldJournal(
                    args.journal, compact_every=args.journal_compact_every
                )
            )
        # Attach the fleet through the churn path (assigns free-floating
        # workers to their nearest center, exactly like subproblems()).
        state.add_workers(instance.workers)
        if not args.no_initial_tasks:
            # The instance's relative expiries become absolute at t=0.
            state.add_tasks(
                [
                    {
                        "task_id": task.task_id,
                        "dp_id": task.delivery_point_id,
                        "expiry": task.expiry,
                        "reward": task.reward,
                    }
                    for center in instance.centers
                    for task in center.tasks
                ]
            )

    if args.equity:
        # Attach (or keep the recovered) ledger before the engine starts;
        # decay/window only shape a fresh ledger.
        state.enable_equity(decay=args.equity_decay, window=args.equity_window)

    solver = _SOLVERS[args.algorithm](args.epsilon)
    equity_kwargs = {}
    if args.equity:
        equity_kwargs["equity_mode"] = True
        if args.equity_strength is not None:
            equity_kwargs["equity_strength"] = args.equity_strength
    engine = DispatchEngine(
        state,
        solver,
        epsilon=args.epsilon,
        n_jobs=args.n_jobs,
        verify=args.verify,
        seed=args.seed,
        **equity_kwargs,
        solve_deadline_s=args.solve_deadline_s,
        solve_retries=args.solve_retries,
        breaker=BreakerConfig(
            failure_threshold=args.breaker_failures,
            cooldown_s=args.breaker_cooldown_s,
        ),
        faults=None if args.faults is None else FaultPlan.from_spec(args.faults),
        delta_catalog=not args.no_delta_catalog,
        catalog_store=(
            None
            if args.catalog_store is None or args.no_delta_catalog
            else CatalogStore(args.catalog_store)
        ),
    )
    server = DispatchServer(engine, host=args.host, port=args.port)
    if args.port_file is not None:
        args.port_file.parent.mkdir(parents=True, exist_ok=True)
        args.port_file.write_text(f"{server.port}\n")

    print(f"dispatch service listening on {server.url}")
    print(
        f"  algorithm={engine.solver_name} epsilon={args.epsilon} "
        f"n_jobs={args.n_jobs} verify={args.verify} seed={args.seed}"
    )
    print(
        f"  centers={len(state.centers)} workers={state.worker_count} "
        f"pending_tasks={state.pending_task_count}"
    )
    if args.journal is not None:
        print(
            f"  journal={args.journal}"
            f"{' (recovered from previous run)' if recovered else ''}"
        )
    if args.equity:
        ledger = state.equity
        print(
            f"  equity: strength={engine.equity_strength} "
            f"decay={ledger.decay} window={ledger.window} "
            f"ledger_rounds={ledger.rounds}"
        )
    if engine.fault_tolerant:
        print(
            f"  fault-tolerant: solve_deadline_s={args.solve_deadline_s} "
            f"retries={args.solve_retries} "
            f"breaker={args.breaker_failures}x/{args.breaker_cooldown_s}s"
            + (
                f" faults=[{engine.faults.describe()}]"
                if engine.faults is not None
                else ""
            )
        )
    print(
        "  endpoints: POST /tasks /workers /dispatch /shutdown · "
        "GET /assignments /healthz /metrics /slo /equity"
    )
    sys.stdout.flush()

    def _stop(signum, frame):  # noqa: ARG001
        print("signal received, draining in-flight dispatch ...", file=sys.stderr)
        server.request_stop()

    previous = {
        sig: signal.signal(sig, _stop) for sig in (signal.SIGINT, signal.SIGTERM)
    }
    try:
        server.serve_forever()
    finally:
        for sig, handler in previous.items():
            signal.signal(sig, handler)
    print()
    print(f"served {engine.rounds_dispatched} dispatch rounds; final metrics:")
    print(METRICS.format())
    return 0


def _serve_sharded(args: argparse.Namespace) -> int:
    """``serve --shards N``: the supervised multi-process pool.

    The layout always comes from the instance (CSV dir or generated
    city); per-shard journal segments under ``--journal`` (a directory
    here) restore each partition's dynamic state, so a recovering run
    must be started with the same input/seed as the crashed one.
    """
    import signal

    from repro.obs.metrics import METRICS
    from repro.service import DispatchServer, FaultPlan, ShardedDispatchEngine

    if args.equity:
        print(
            "error: --equity is not supported with --shards > 1 "
            "(the cross-round ledger needs a single world)",
            file=sys.stderr,
        )
        return 2
    if args.catalog_store is not None:
        print(
            "warning: --catalog-store is ignored with --shards > 1 "
            "(shard workers rebuild their catalogs on boot)",
            file=sys.stderr,
        )

    if args.input is not None:
        instance = load_instance(args.input)
    else:
        config = GMissionConfig(
            n_tasks=args.tasks,
            n_workers=args.workers,
            n_delivery_points=args.delivery_points,
        )
        instance = generate_gmission_like(config, seed=args.seed)
    recovered = args.journal is not None and any(
        args.journal.glob("shard-*.jsonl")
    )

    solver = _SOLVERS[args.algorithm](args.epsilon)
    engine = ShardedDispatchEngine(
        instance.centers,
        solver,
        travel=instance.travel,
        epsilon=args.epsilon,
        shards=args.shards,
        n_jobs=args.n_jobs,
        verify=args.verify,
        seed=args.seed,
        solve_deadline_s=args.solve_deadline_s,
        solve_retries=args.solve_retries,
        faults=None if args.faults is None else FaultPlan.from_spec(args.faults),
        delta_catalog=not args.no_delta_catalog,
        journal_dir=args.journal,
        journal_compact_every=args.journal_compact_every,
        queue_bound=args.queue_bound,
    )
    state = engine.state
    if not recovered:
        # Seed through the churn path exactly like single-process serve;
        # a recovered run already carries fleet and queue in its segments.
        state.add_workers(instance.workers)
        if not args.no_initial_tasks:
            state.add_tasks(
                [
                    {
                        "task_id": task.task_id,
                        "dp_id": task.delivery_point_id,
                        "expiry": task.expiry,
                        "reward": task.reward,
                    }
                    for center in instance.centers
                    for task in center.tasks
                ]
            )

    server = DispatchServer(engine, host=args.host, port=args.port)
    if args.port_file is not None:
        args.port_file.parent.mkdir(parents=True, exist_ok=True)
        args.port_file.write_text(f"{server.port}\n")

    print(f"dispatch service listening on {server.url}")
    print(
        f"  algorithm={engine.solver_name} epsilon={args.epsilon} "
        f"n_jobs={args.n_jobs} verify={args.verify} seed={args.seed}"
    )
    print(
        f"  shards={args.shards} queue_bound={args.queue_bound} "
        f"centers={len(state.centers)} workers={state.worker_count} "
        f"pending_tasks={state.pending_task_count}"
    )
    for shard_id, entry in sorted(engine.shard_health().items()):
        print(
            f"    shard {shard_id}: pid={entry['pid']} "
            f"centers={','.join(entry['centers'])} status={entry['status']}"
        )
    if args.journal is not None:
        print(
            f"  journal_dir={args.journal}"
            f"{' (segments recovered from previous run)' if recovered else ''}"
        )
    if engine.faults is not None:
        print(f"  faults=[{engine.faults.describe()}]")
    print(
        "  endpoints: POST /tasks /workers /dispatch /shutdown · "
        "GET /assignments /healthz /metrics /slo"
    )
    sys.stdout.flush()

    def _stop(signum, frame):  # noqa: ARG001
        print("signal received, draining in-flight dispatch ...", file=sys.stderr)
        server.request_stop()

    previous = {
        sig: signal.signal(sig, _stop) for sig in (signal.SIGINT, signal.SIGTERM)
    }
    try:
        server.serve_forever()
    finally:
        for sig, handler in previous.items():
            signal.signal(sig, handler)
    print()
    print(f"served {engine.rounds_dispatched} dispatch rounds; final metrics:")
    print(METRICS.format())
    return 0


def _cmd_equity(args: argparse.Namespace) -> int:
    import json

    from repro.equity.report import compare_scenario
    from repro.sim.scenarios import SCENARIOS, get_scenario

    names = sorted(SCENARIOS) if args.scenario == "all" else [args.scenario]
    kwargs = dict(
        algorithm=args.algorithm,
        seed=args.seed,
        epsilon=args.epsilon,
        decay=args.decay,
        window=args.window,
    )
    if args.strength is not None:
        kwargs["strength"] = args.strength
    comparisons = [
        compare_scenario(get_scenario(name, rounds=args.rounds), **kwargs)
        for name in names
    ]
    payload = {
        "rounds": args.rounds,
        "seed": args.seed,
        "algorithm": args.algorithm.upper(),
        "scenarios": [c.as_dict() for c in comparisons],
        "all_improved": all(c.improved for c in comparisons),
        "all_within_budget": all(c.within_budget for c in comparisons),
    }
    if args.json:
        print(json.dumps(payload, indent=2, sort_keys=True))
    else:
        for comparison in comparisons:
            print(comparison.format())
            print()
        print(
            f"all_improved={payload['all_improved']} "
            f"all_within_budget={payload['all_within_budget']}"
        )
    if args.output is not None:
        args.output.parent.mkdir(parents=True, exist_ok=True)
        args.output.write_text(
            json.dumps(payload, indent=2, sort_keys=True) + "\n"
        )
        if not args.json:
            print(f"report written to {args.output}")
    return 0


_COMMANDS = {
    "generate": _cmd_generate,
    "solve": _cmd_solve,
    "compare": _cmd_compare,
    "experiment": _cmd_experiment,
    "list-experiments": _cmd_list_experiments,
    "verify": _cmd_verify,
    "trace": _cmd_trace,
    "serve": _cmd_serve,
    "bench": _cmd_bench,
    "equity": _cmd_equity,
}


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Entry point; returns a process exit code."""
    args = _build_parser().parse_args(argv)
    return _COMMANDS[args.command](args)


if __name__ == "__main__":
    sys.exit(main())
