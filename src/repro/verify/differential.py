"""Differential testing: two solvers, one seeded instance, structured diffs.

:func:`run_differential` solves the same sub-problem with two solvers over
one shared catalog and identical seed streams, verifies both outcomes
against the assignment-level invariant checkers, and reports every metric
and per-worker route difference as a structured :class:`Discrepancy`.
Discrepancies between two heuristics are *observations* (FGT and GTA are
supposed to differ); discrepancies between two runs of the same solver with
the same seed are determinism bugs, and violations of the exhaustive
oracle's bounds (:func:`oracle_bounds` / :func:`check_against_oracle`) are
correctness bugs.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

import numpy as np

from repro.core.exceptions import InvariantViolation
from repro.core.instance import SubProblem
from repro.core.payoff import average_payoff, payoff_difference
from repro.vdps.catalog import VDPSCatalog, build_catalog
from repro.verify.checkers import ABS_TOL, REL_TOL
from repro.verify.stats import STATS
from repro.verify.verifier import verify_result


@dataclass(frozen=True)
class Discrepancy:
    """One observed difference between the two solvers' outcomes."""

    metric: str
    left: object
    right: object
    detail: str = ""

    def format(self) -> str:
        """One-line ``metric: left vs right`` rendering."""
        suffix = f" ({self.detail})" if self.detail else ""
        return f"{self.metric}: {self.left!r} vs {self.right!r}{suffix}"


@dataclass
class DifferentialReport:
    """Outcome of one differential run: both results plus their diffs."""

    left_name: str
    right_name: str
    left_result: object
    right_result: object
    discrepancies: List[Discrepancy] = field(default_factory=list)

    @property
    def agreeing(self) -> bool:
        """Whether the two solvers produced indistinguishable outcomes."""
        return not self.discrepancies

    def format(self) -> str:
        """Human-readable multi-line report."""
        header = f"{self.left_name} vs {self.right_name}: "
        if self.agreeing:
            return header + "no discrepancies"
        lines = [header + f"{len(self.discrepancies)} discrepancies"]
        lines.extend("  " + d.format() for d in self.discrepancies)
        return "\n".join(lines)


def _metric_diff(
    name: str, left: float, right: float, out: List[Discrepancy]
) -> None:
    if not math.isclose(left, right, rel_tol=REL_TOL, abs_tol=ABS_TOL):
        out.append(Discrepancy(name, left, right))


def run_differential(
    sub: SubProblem,
    left_solver,
    right_solver,
    seed: int = 0,
    catalog: Optional[VDPSCatalog] = None,
    epsilon: Optional[float] = None,
    verify_invariants: bool = True,
) -> DifferentialReport:
    """Solve ``sub`` with both solvers on one catalog and diff the outcomes.

    ``seed`` must be an int (or ``None``) so each solver can be handed an
    *identical independent* random stream; sharing one generator object
    would entangle the two runs.  With ``verify_invariants`` (default) both
    assignments must pass every assignment-level checker first — an
    :class:`~repro.core.exceptions.InvariantViolation` there outranks any
    diff.
    """
    if isinstance(seed, np.random.Generator):
        raise ValueError(
            "run_differential needs an int or None seed, not a Generator: "
            "both solvers must observe identical independent streams"
        )
    if catalog is None:
        catalog = build_catalog(sub, epsilon=epsilon)
    left_name = getattr(left_solver, "name", type(left_solver).__name__)
    right_name = getattr(right_solver, "name", type(right_solver).__name__)
    left = left_solver.solve(sub, catalog=catalog, seed=seed)
    right = right_solver.solve(sub, catalog=catalog, seed=seed)
    if verify_invariants:
        verify_result(left, sub=sub, catalog=catalog, solver=left_name)
        verify_result(right, sub=sub, catalog=catalog, solver=right_name)

    discrepancies: List[Discrepancy] = []
    la, ra = left.assignment, right.assignment
    _metric_diff(
        "payoff_difference", la.payoff_difference, ra.payoff_difference, discrepancies
    )
    _metric_diff("average_payoff", la.average_payoff, ra.average_payoff, discrepancies)
    _metric_diff("total_payoff", la.total_payoff, ra.total_payoff, discrepancies)
    if la.busy_worker_count != ra.busy_worker_count:
        discrepancies.append(
            Discrepancy("busy_workers", la.busy_worker_count, ra.busy_worker_count)
        )
    left_routes = la.as_mapping()
    right_routes = ra.as_mapping()
    for wid in sorted(set(left_routes) | set(right_routes)):
        lr = left_routes.get(wid, ())
        rr = right_routes.get(wid, ())
        if lr != rr:
            discrepancies.append(
                Discrepancy("route", lr, rr, detail=f"worker {wid}")
            )
    STATS.record("differential.run")
    return DifferentialReport(left_name, right_name, left, right, discrepancies)


@dataclass(frozen=True)
class OracleBounds:
    """Exhaustively certified bounds over *all* conflict-free assignments.

    ``min_payoff_difference``/``average_at_optimum`` describe the
    lexicographic optimum of the FTA objective (minimal ``P_dif``, maximal
    average payoff among those); ``max_total_payoff`` is the MPTA
    objective's true maximum.  Any valid assignment must have
    ``P_dif >= min_payoff_difference`` and
    ``total payoff <= max_total_payoff``.
    """

    min_payoff_difference: float
    average_at_optimum: float
    max_total_payoff: float
    joint_strategies: int

    def slack(self, reference: float) -> float:
        """Float tolerance for comparing against a certified bound."""
        return ABS_TOL + REL_TOL * abs(reference)


def oracle_bounds(catalog: VDPSCatalog, state_limit: int = 5_000_000) -> OracleBounds:
    """Enumerate every joint strategy once and certify both objective bounds."""
    from repro.baselines.exhaustive import enumerate_joint_strategies

    space = 1
    for w in catalog.workers:
        space *= len(catalog.strategies(w.worker_id)) + 1
        if space > state_limit:
            raise ValueError(
                f"joint strategy space exceeds limit {state_limit}; "
                "oracle_bounds is for tiny differential-test instances"
            )
    best_key: Optional[Tuple[float, float]] = None
    max_total = 0.0
    count = 0
    for joint in enumerate_joint_strategies(catalog):
        count += 1
        payoffs = [joint[w.worker_id].payoff for w in catalog.workers]
        key = (payoff_difference(payoffs), -average_payoff(payoffs))
        if best_key is None or key < best_key:
            best_key = key
        max_total = max(max_total, float(sum(payoffs)))
    assert best_key is not None  # the all-null joint strategy always exists
    STATS.record("differential.oracle-bounds")
    return OracleBounds(
        min_payoff_difference=best_key[0],
        average_at_optimum=-best_key[1],
        max_total_payoff=max_total,
        joint_strategies=count,
    )


def check_against_oracle(
    assignment, bounds: OracleBounds, solver: str = ""
) -> None:
    """No valid assignment may beat the exhaustive oracle on either objective.

    Raises :class:`~repro.core.exceptions.InvariantViolation` when the
    assignment's ``P_dif`` undercuts the certified minimum or its total
    payoff exceeds the certified maximum — either means the solver produced
    a joint strategy outside the legal space (or the oracle is broken,
    which the differential tests would surface on tiny instances).
    """
    p_dif = assignment.payoff_difference
    if p_dif < bounds.min_payoff_difference - bounds.slack(
        bounds.min_payoff_difference
    ):
        raise InvariantViolation(
            "oracle.payoff-difference-bound",
            f"assignment P_dif {p_dif!r} beats the exhaustive minimum "
            f"{bounds.min_payoff_difference!r}",
            solver=solver,
        )
    total = assignment.total_payoff
    if total > bounds.max_total_payoff + bounds.slack(bounds.max_total_payoff):
        raise InvariantViolation(
            "oracle.total-payoff-bound",
            f"assignment total payoff {total!r} beats the exhaustive maximum "
            f"{bounds.max_total_payoff!r}",
            solver=solver,
        )
    STATS.record("differential.oracle-check")
