"""Runtime invariant verification and differential testing.

The correctness layer of the reproduction: assignment-level checkers that
re-derive Definition 6/8 validity and Equation 1/2 metrics from scratch,
trace-level verifiers that certify Lemma 2 (FGT) and the Equation 11-14
sign conditions (IEGT) while the solvers run, and a differential harness
that pins any two solvers — or a solver against the exhaustive oracle —
on the same seeded instance.

Enable per solver (``FGTSolver(verify=True)``), per run
(``run_algorithms(..., verify=True)``), globally for a process
(:func:`set_verification`), or for a whole benchmark invocation via the
``REPRO_VERIFY=1`` environment variable.  See ``docs/verification.md``.
"""

from repro.core.exceptions import InvariantViolation
from repro.verify.checkers import (
    check_capacity,
    check_catalog_membership,
    check_deadlines,
    check_disjointness,
    check_payoffs,
    verify_assignment,
)
from repro.verify.differential import (
    DifferentialReport,
    Discrepancy,
    OracleBounds,
    check_against_oracle,
    oracle_bounds,
    run_differential,
)
from repro.verify.stats import (
    STATS,
    VerificationStats,
    reset_verification_stats,
    verification_stats,
)
from repro.verify.verifier import (
    NULL_VERIFIER,
    AssignmentVerifier,
    EvolutionaryGameVerifier,
    NullVerifier,
    PotentialGameVerifier,
    make_assignment_verifier,
    set_verification,
    verification_enabled,
    verify_result,
)

__all__ = [
    "InvariantViolation",
    # checkers
    "check_disjointness",
    "check_capacity",
    "check_deadlines",
    "check_catalog_membership",
    "check_payoffs",
    "verify_assignment",
    "verify_result",
    # verifiers
    "NullVerifier",
    "NULL_VERIFIER",
    "AssignmentVerifier",
    "PotentialGameVerifier",
    "EvolutionaryGameVerifier",
    "make_assignment_verifier",
    "set_verification",
    "verification_enabled",
    # differential
    "Discrepancy",
    "DifferentialReport",
    "run_differential",
    "OracleBounds",
    "oracle_bounds",
    "check_against_oracle",
    # stats
    "STATS",
    "VerificationStats",
    "verification_stats",
    "reset_verification_stats",
]
