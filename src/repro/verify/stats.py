"""Counters for how many invariant checks actually ran.

Verification that silently checks nothing is worse than no verification,
so every checker records what it looked at.  ``python -m repro verify``
prints the tallies and fails when a run performed zero checks.
"""

from __future__ import annotations

from typing import Dict

from repro.obs.metrics import METRICS


class VerificationStats:
    """Per-invariant counters of executed checks (process-wide singleton)."""

    def __init__(self) -> None:
        self._counts: Dict[str, int] = {}

    def record(self, invariant: str, count: int = 1) -> None:
        """Count ``count`` executed checks of ``invariant``.

        Also mirrored into the :mod:`repro.obs` metrics registry under
        ``verify.<invariant>``, so run profiles report how many invariant
        checks executed alongside the solver counters.
        """
        self._counts[invariant] = self._counts.get(invariant, 0) + count
        METRICS.counter(f"verify.{invariant}").add(count)

    def reset(self) -> None:
        """Zero every counter."""
        self._counts.clear()

    @property
    def counts(self) -> Dict[str, int]:
        """A copy of the per-invariant counters."""
        return dict(self._counts)

    @property
    def total(self) -> int:
        """Total number of checks executed since the last reset."""
        return sum(self._counts.values())

    def format(self) -> str:
        """Multi-line ``invariant: count`` table, alphabetical."""
        if not self._counts:
            return "(no invariant checks executed)"
        width = max(len(name) for name in self._counts)
        return "\n".join(
            f"{name.ljust(width)}  {self._counts[name]}"
            for name in sorted(self._counts)
        )


#: The process-wide stats instance every checker records into.
STATS = VerificationStats()


def verification_stats() -> VerificationStats:
    """The process-wide :class:`VerificationStats` singleton."""
    return STATS


def reset_verification_stats() -> None:
    """Zero all counters (start of a ``repro verify`` run)."""
    STATS.reset()
