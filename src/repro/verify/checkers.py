"""Assignment-level invariant checkers (Definitions 6 and 8, Equations 1-2).

Every checker re-derives the property from the raw inputs instead of
trusting any value the solver cached: deadlines are re-checked by re-running
the arrival-time recurrence of Definition 5, payoffs are recomputed from
rewards and completion times (Equation 1), and ``P_dif`` is recomputed with
the literal double-loop transcription of Equation 2.  A failed check raises
:class:`~repro.core.exceptions.InvariantViolation` carrying the offending
worker and strategy.
"""

from __future__ import annotations

import math
from typing import Dict, Optional

from repro.core.assignment import Assignment
from repro.core.exceptions import InvariantViolation
from repro.core.instance import SubProblem
from repro.core.payoff import payoff_difference, payoff_difference_naive
from repro.core.routing import arrival_times
from repro.vdps.catalog import VDPSCatalog
from repro.verify.stats import STATS

#: Absolute slack for float comparisons of re-derived quantities.
ABS_TOL = 1e-9
#: Relative slack for float comparisons of re-derived quantities.
REL_TOL = 1e-9


def _close(a: float, b: float) -> bool:
    return math.isclose(a, b, rel_tol=REL_TOL, abs_tol=ABS_TOL)


def check_disjointness(assignment: Assignment, solver: str = "") -> None:
    """Definition 8: no delivery point served by two workers; workers unique."""
    seen_workers: set = set()
    claimed: Dict[str, str] = {}
    for pair in assignment:
        wid = pair.worker.worker_id
        if wid in seen_workers:
            raise InvariantViolation(
                "assignment.disjointness",
                f"worker {wid!r} appears twice in the assignment",
                solver=solver,
                worker_id=wid,
            )
        seen_workers.add(wid)
        for dp_id in pair.delivery_point_ids:
            if dp_id in claimed:
                raise InvariantViolation(
                    "assignment.disjointness",
                    f"delivery point {dp_id!r} served by both "
                    f"{claimed[dp_id]!r} and {wid!r}",
                    solver=solver,
                    worker_id=wid,
                    strategy=pair.delivery_point_ids,
                )
            claimed[dp_id] = wid
    STATS.record("assignment.disjointness")


def check_capacity(assignment: Assignment, solver: str = "") -> None:
    """Definition 8: no worker serves more than its ``maxDP`` delivery points."""
    for pair in assignment:
        if pair.route is None:
            continue
        if len(pair.route) > pair.worker.max_delivery_points:
            raise InvariantViolation(
                "assignment.capacity",
                f"route of length {len(pair.route)} exceeds maxDP="
                f"{pair.worker.max_delivery_points}",
                solver=solver,
                worker_id=pair.worker.worker_id,
                strategy=pair.delivery_point_ids,
            )
    STATS.record("assignment.capacity")


def check_deadlines(assignment: Assignment, sub: SubProblem, solver: str = "") -> None:
    """Definition 6: re-run the Definition 5 recurrence and re-check expiries.

    The route's recorded arrival times are *not* trusted: per worker, the
    start offset (worker-to-center leg, at the worker's own speed) and the
    arrival time at every delivery point are recomputed from the geometry,
    compared against the recorded times, and checked against each point's
    earliest task expiry.
    """
    travel = sub.travel
    for pair in assignment:
        route = pair.route
        if route is None or len(route) == 0:
            continue
        worker = pair.worker
        if worker.speed_kmh is None or worker.speed_kmh == travel.speed_kmh:
            worker_travel = travel
        else:
            worker_travel = travel.with_speed(worker.speed_kmh)
        offset = worker_travel.time(worker.location, sub.center.location)
        recomputed = arrival_times(
            sub.center.location, route.sequence, worker_travel, start_offset=offset
        )
        for dp, recorded, expected in zip(
            route.sequence, route.arrival_times, recomputed
        ):
            if not _close(recorded, expected):
                raise InvariantViolation(
                    "assignment.arrival-times",
                    f"recorded arrival at {dp.dp_id!r} is t={recorded:.9f} but the "
                    f"Definition 5 recurrence gives t={expected:.9f}",
                    solver=solver,
                    worker_id=worker.worker_id,
                    strategy=pair.delivery_point_ids,
                )
            if expected > dp.earliest_expiry + ABS_TOL:
                raise InvariantViolation(
                    "assignment.deadlines",
                    f"arrival at {dp.dp_id!r} at t={expected:.9f} misses its "
                    f"earliest expiry {dp.earliest_expiry:.9f}",
                    solver=solver,
                    worker_id=worker.worker_id,
                    strategy=pair.delivery_point_ids,
                )
    STATS.record("assignment.deadlines")


def check_catalog_membership(
    assignment: Assignment, catalog: VDPSCatalog, solver: str = ""
) -> None:
    """Every non-null choice is a strategy of that worker's own catalog."""
    for pair in assignment:
        if pair.route is None or len(pair.route) == 0:
            continue
        wid = pair.worker.worker_id
        chosen = frozenset(pair.delivery_point_ids)
        try:
            strategies = catalog.strategies(wid)
        except KeyError:
            raise InvariantViolation(
                "assignment.catalog-membership",
                "worker is not part of the sub-problem's catalog",
                solver=solver,
                worker_id=wid,
                strategy=pair.delivery_point_ids,
            ) from None
        if not any(s.point_ids == chosen for s in strategies):
            raise InvariantViolation(
                "assignment.catalog-membership",
                f"chosen delivery point set is not one of the worker's "
                f"{len(strategies)} valid VDPSs",
                solver=solver,
                worker_id=wid,
                strategy=pair.delivery_point_ids,
            )
    STATS.record("assignment.catalog-membership")


def check_payoffs(
    assignment: Assignment,
    solver: str = "",
    reported_payoff_difference: Optional[float] = None,
) -> None:
    """Equations 1-2: recompute every payoff and ``P_dif`` from scratch.

    Each worker's payoff is re-derived as total route reward over completion
    time; the assignment's ``P_dif`` is recomputed with the quadratic
    transcription of Equation 2 and compared against the O(n log n)
    production implementation (and, when given, against a solver-reported
    value).
    """
    for pair in assignment:
        route = pair.route
        if route is None or len(route) == 0:
            expected = 0.0
        else:
            reward = sum(dp.total_reward for dp in route.sequence)
            completion = route.arrival_times[-1]
            if completion <= 0:
                raise InvariantViolation(
                    "assignment.payoff",
                    "non-empty route with non-positive completion time",
                    solver=solver,
                    worker_id=pair.worker.worker_id,
                    strategy=pair.delivery_point_ids,
                )
            expected = reward / completion
        if not _close(pair.payoff, expected):
            raise InvariantViolation(
                "assignment.payoff",
                f"reported payoff {pair.payoff!r} != Equation 1 value {expected!r}",
                solver=solver,
                worker_id=pair.worker.worker_id,
                strategy=pair.delivery_point_ids,
            )
    payoffs = assignment.payoffs
    naive = payoff_difference_naive(payoffs)
    fast = payoff_difference(payoffs)
    if not _close(naive, fast):
        raise InvariantViolation(
            "assignment.payoff-difference",
            f"fast P_dif {fast!r} != Equation 2 double sum {naive!r}",
            solver=solver,
        )
    if reported_payoff_difference is not None and not _close(
        reported_payoff_difference, naive
    ):
        raise InvariantViolation(
            "assignment.payoff-difference",
            f"solver-reported P_dif {reported_payoff_difference!r} != "
            f"recomputed {naive!r}",
            solver=solver,
        )
    STATS.record("assignment.payoffs")


def verify_assignment(
    assignment: Assignment,
    sub: Optional[SubProblem] = None,
    catalog: Optional[VDPSCatalog] = None,
    solver: str = "",
    reported_payoff_difference: Optional[float] = None,
) -> None:
    """Run every applicable assignment-level checker.

    ``sub`` enables the deadline re-derivation, ``catalog`` the membership
    check; both are optional so the function also works on bare assignments
    (e.g. ones loaded from CSV).  Raises
    :class:`~repro.core.exceptions.InvariantViolation` on the first failure.
    """
    check_disjointness(assignment, solver=solver)
    check_capacity(assignment, solver=solver)
    if sub is not None:
        check_deadlines(assignment, sub, solver=solver)
    if catalog is not None:
        check_catalog_membership(assignment, catalog, solver=solver)
    check_payoffs(
        assignment,
        solver=solver,
        reported_payoff_difference=reported_payoff_difference,
    )
    STATS.record("assignment.verified")
