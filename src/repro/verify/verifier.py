"""Trace-level verifiers the game solvers call while they run.

The solvers are instrumented with four hook points — solve start, strategy
switch, round end, final state — and route them through a verifier object:

* :class:`NullVerifier` (the default) makes every hook a no-op, so solvers
  pay nothing when verification is off.
* :class:`PotentialGameVerifier` certifies FGT: every best-response switch
  strictly improves the switching worker's IAU, the exact potential
  ``Phi = sum IAU`` never decreases across rounds (Lemma 2), the
  solver-reported potential matches a from-scratch recomputation, and a
  converged final state is a pure Nash equilibrium.
* :class:`EvolutionaryGameVerifier` certifies IEGT: a worker only evolves
  when its replicator derivative is negative (payoff below the population
  average, the sign condition of Equations 11-14), every switch strictly
  improves its payoff, and a converged final state satisfies the improved
  evolutionary-equilibrium condition of Definition 10.
* :class:`AssignmentVerifier` covers the one-shot baselines (GTA, MPTA):
  only the final assignment is checked.

All verifiers finish with the assignment-level checkers of
:mod:`repro.verify.checkers`.  Whether verification is on is decided by
:func:`verification_enabled`, which honours a per-solver flag, a global
override (set by ``python -m repro verify``), and the ``REPRO_VERIFY``
environment variable, in that order.
"""

from __future__ import annotations

import os
from typing import Optional, Sequence

import numpy as np

from repro.core.exceptions import InvariantViolation
from repro.core.fairness import InequityAversion
from repro.core.instance import SubProblem
from repro.verify.checkers import ABS_TOL, verify_assignment
from repro.verify.stats import STATS

# NOTE: repro.games.potential.is_pure_nash is imported lazily inside
# PotentialGameVerifier.on_final — the game solvers import this module at
# class-definition time, so a top-level import here would be circular.

_TRUTHY = ("1", "true", "yes", "on")

#: Global override installed by ``python -m repro verify`` (None = defer to env).
_OVERRIDE: Optional[bool] = None


def set_verification(enabled: Optional[bool]) -> None:
    """Force verification on/off process-wide; ``None`` restores env control."""
    global _OVERRIDE
    _OVERRIDE = enabled


def verification_enabled(flag: bool = False) -> bool:
    """Whether solvers should verify: ``flag`` or override or ``REPRO_VERIFY``."""
    if flag:
        return True
    if _OVERRIDE is not None:
        return _OVERRIDE
    return os.environ.get("REPRO_VERIFY", "").strip().lower() in _TRUTHY


class NullVerifier:
    """No-op verifier: the zero-overhead default on every solver hot path."""

    enabled = False

    def on_solve_start(self, state) -> None:
        """Called once before the first round; no-op."""
        pass

    def on_switch(self, worker_id, round_index, before, after) -> None:
        """Called on every strategy switch; no-op."""
        pass

    def on_round(self, round_index, payoffs, potential, switches) -> None:
        """Called at the end of every round; no-op."""
        pass

    def on_final(self, state, assignment, sub=None, converged=True) -> None:
        """Called once with the final state; no-op."""
        pass


#: Shared no-op instance handed to solvers when verification is off.
NULL_VERIFIER = NullVerifier()


def _monotone_slack(reference: float) -> float:
    """Float slack for monotonicity checks, scaled to the value magnitude."""
    return ABS_TOL * max(1.0, abs(reference))


class AssignmentVerifier(NullVerifier):
    """Final-state-only verifier for one-shot solvers (GTA, MPTA, random)."""

    enabled = True

    def __init__(self, solver: str = "") -> None:
        self._solver = solver

    def on_final(self, state, assignment, sub=None, converged=True) -> None:
        """Run every assignment-level checker on the final assignment."""
        verify_assignment(
            assignment, sub=sub, catalog=state.catalog, solver=self._solver
        )


class PotentialGameVerifier(AssignmentVerifier):
    """Lemma 2 certification for FGT's sequential best-response play."""

    def __init__(
        self,
        model: InequityAversion,
        scales: Optional[Sequence[float]] = None,
        tol: float = 1e-9,
        solver: str = "FGT",
        offsets: Optional[Sequence[float]] = None,
        monotone: bool = True,
    ) -> None:
        """``offsets``/``monotone`` support the ledger-weighted equity game.

        ``offsets`` (one addend per worker) makes every potential
        computation and the final Nash check run on *effective* payoffs
        ``payoff * scale + offset``.  ``monotone=False`` disables only the
        Lemma 2 non-decreasing-potential check: the amplified equity
        model's IAU weights exceed 1/2, past which a utility-improving
        switch can legitimately lower ``Phi`` (see
        :func:`repro.core.fairness.equity_model`); the recompute, strict
        switch-improvement, and pure-Nash checks all remain active.
        """
        super().__init__(solver)
        self._model = model
        self._scales = None if scales is None else np.asarray(scales, dtype=float)
        self._offsets = (
            None if offsets is None else np.asarray(offsets, dtype=float)
        )
        self._monotone = monotone
        self._tol = tol
        self._last_potential: Optional[float] = None

    def _scaled(self, payoffs) -> np.ndarray:
        values = np.asarray(payoffs, dtype=float)
        if self._scales is not None:
            values = values * self._scales
        if self._offsets is not None:
            values = values + self._offsets
        return values

    def on_solve_start(self, state) -> None:
        """Record the initial potential as the monotonicity baseline."""
        self._last_potential = self._model.potential(self._scaled(state.payoffs()))

    def on_switch(self, worker_id, round_index, before, after) -> None:
        """A best-response switch must strictly improve the worker's IAU."""
        if after <= before + self._tol:
            raise InvariantViolation(
                "fgt.switch-improving",
                f"switch changed IAU from {before!r} to {after!r} "
                f"(required improvement > {self._tol})",
                solver=self._solver,
                worker_id=worker_id,
                round_index=round_index,
            )
        STATS.record("fgt.switch-improving")

    def on_round(self, round_index, payoffs, potential, switches) -> None:
        """Recompute Phi from scratch; Lemma 2 forbids it ever decreasing."""
        recomputed = self._model.potential(self._scaled(payoffs))
        slack = _monotone_slack(recomputed)
        if potential is not None and abs(recomputed - potential) > slack:
            raise InvariantViolation(
                "fgt.potential-recompute",
                f"solver-reported potential {potential!r} != from-scratch "
                f"recomputation {recomputed!r}",
                solver=self._solver,
                round_index=round_index,
            )
        if (
            self._monotone
            and self._last_potential is not None
            and recomputed < self._last_potential - _monotone_slack(self._last_potential)
        ):
            raise InvariantViolation(
                "fgt.potential-monotone",
                f"potential decreased from {self._last_potential!r} to "
                f"{recomputed!r} across a best-response round (Lemma 2)",
                solver=self._solver,
                round_index=round_index,
            )
        self._last_potential = recomputed
        STATS.record("fgt.potential-monotone")

    def on_final(self, state, assignment, sub=None, converged=True) -> None:
        """Check the assignment and certify the pure-NE claim (Def. 9)."""
        from repro.games.potential import is_pure_nash

        super().on_final(state, assignment, sub=sub, converged=converged)
        # A fixed point of the tol-thresholded best response certifies "no
        # deviation gains more than 2*tol" (the threshold can hide up to tol
        # in the candidate scan and another tol in the switch test).
        if converged and not is_pure_nash(
            state,
            self._model,
            tol=2 * self._tol,
            scales=self._scales,
            offsets=self._offsets,
        ):
            raise InvariantViolation(
                "fgt.pure-nash",
                "solver reported convergence but a worker can strictly improve "
                "its IAU by a unilateral switch",
                solver=self._solver,
            )
        if converged:
            STATS.record("fgt.pure-nash")


class EvolutionaryGameVerifier(AssignmentVerifier):
    """Equations 11-14 certification for IEGT's replicator-driven play."""

    def __init__(
        self,
        tol: float = 1e-9,
        solver: str = "IEGT",
        offsets: Optional[Sequence[float]] = None,
    ) -> None:
        """``offsets`` (one addend per worker) supports equity mode: the
        below-average tests — on switches and in the final Definition 10
        scan — then run on *effective* payoffs ``payoff + offset``, which
        is the quantity the equity-mode replicator derivative is signed
        on.  Switch targets are still required to strictly improve, which
        in effective terms equals strict raw improvement."""
        super().__init__(solver)
        self._tol = tol
        self._offsets = (
            None if offsets is None else np.asarray(offsets, dtype=float)
        )

    def _effective(self, payoffs) -> np.ndarray:
        values = np.asarray(payoffs, dtype=float)
        return values if self._offsets is None else values + self._offsets

    def on_switch(self, worker_id, round_index, before, after) -> None:
        """``before`` is ``(payoff, population mean)``; ``after`` the new payoff.

        The sign of the replicator derivative (Equation 11) is the sign of
        ``U_i - U-bar``, so a switching worker must have been strictly below
        the population average, and Algorithm 3 only ever switches to a
        strictly better-paying strategy.  In equity mode all three values
        arrive as effective payoffs (round + cumulative base).
        """
        payoff, mean_payoff = before
        if payoff >= mean_payoff - self._tol:
            raise InvariantViolation(
                "iegt.replicator-sign",
                f"worker evolved although its payoff {payoff!r} was not below "
                f"the population average {mean_payoff!r} (Eq. 11 derivative "
                f"not negative)",
                solver=self._solver,
                worker_id=worker_id,
                round_index=round_index,
            )
        if after <= payoff + self._tol:
            raise InvariantViolation(
                "iegt.switch-improving",
                f"switch changed payoff from {payoff!r} to {after!r} "
                f"(required improvement > {self._tol})",
                solver=self._solver,
                worker_id=worker_id,
                round_index=round_index,
            )
        STATS.record("iegt.switch-improving")

    def on_round(self, round_index, payoffs, potential, switches) -> None:
        """IEGT reports the population's total payoff as its trace potential."""
        recomputed = float(np.asarray(payoffs, dtype=float).sum())
        if potential is not None and abs(recomputed - potential) > _monotone_slack(
            recomputed
        ):
            raise InvariantViolation(
                "iegt.total-payoff-recompute",
                f"solver-reported total payoff {potential!r} != recomputed "
                f"{recomputed!r}",
                solver=self._solver,
                round_index=round_index,
            )
        STATS.record("iegt.round")

    def on_final(self, state, assignment, sub=None, converged=True) -> None:
        """Check the assignment and the Definition 10 equilibrium claim."""
        super().on_final(state, assignment, sub=sub, converged=converged)
        if not converged:
            return
        payoffs = state.payoffs()
        effective = self._effective(payoffs)
        mean_payoff = float(effective.mean()) if effective.size else 0.0
        if bool(np.all(np.abs(effective - mean_payoff) <= self._tol)):
            STATS.record("iegt.iess")
            return
        # Improved termination (Definition 10): nobody below average may
        # still hold a strictly better available strategy.  States backed by
        # a VDPSCatalog run the scan on the bitmask conflict index (same
        # catalog order, so the same first violation is reported).  The
        # below-average test uses effective payoffs in equity mode; the
        # better-strategy test stays on raw payoffs, mirroring the solver.
        vectorized = hasattr(state, "available_strategy_indices")
        for idx, worker in enumerate(state.workers):
            if effective[idx] >= mean_payoff - self._tol:
                continue
            current = state.strategy_of(worker.worker_id).payoff
            if vectorized:
                available = state.available_strategy_indices(worker.worker_id)
                candidates = state.catalog.index.worker(worker.worker_id).payoffs[
                    available
                ]
                improving = np.flatnonzero(candidates > current + self._tol)
                better = (
                    state.catalog.strategies(worker.worker_id)[
                        int(available[improving[0]])
                    ]
                    if improving.size
                    else None
                )
            else:
                better = next(
                    (
                        strategy
                        for strategy in state.available_strategies(worker.worker_id)
                        if strategy.payoff > current + self._tol
                    ),
                    None,
                )
            if better is not None:
                raise InvariantViolation(
                    "iegt.iess",
                    f"solver reported convergence but the below-average "
                    f"worker still has a strictly better available VDPS "
                    f"(payoff {current!r} -> {better.payoff!r})",
                    solver=self._solver,
                    worker_id=worker.worker_id,
                    strategy=tuple(better.point_ids),
                )
        STATS.record("iegt.iess")


def make_assignment_verifier(enabled: bool, solver: str = "") -> NullVerifier:
    """An :class:`AssignmentVerifier` when ``enabled``, else the shared no-op."""
    if verification_enabled(enabled):
        return AssignmentVerifier(solver=solver)
    return NULL_VERIFIER


def verify_result(
    result,
    sub: Optional[SubProblem] = None,
    catalog=None,
    solver: str = "",
) -> None:
    """Assignment-level verification of a finished :class:`GameResult`.

    Convenience for callers that only hold a result (the experiment runner,
    the differential harness): checks the assignment and cross-checks the
    trace's final ``P_dif`` against a from-scratch recomputation.
    """
    reported = None
    trace = getattr(result, "trace", None)
    if trace is not None and len(trace):
        reported = trace.final.payoff_difference
    verify_assignment(
        result.assignment,
        sub=sub,
        catalog=catalog,
        solver=solver,
        reported_payoff_difference=reported,
    )
