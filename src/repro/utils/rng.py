"""Deterministic random-number utilities.

Every stochastic component of the library (data generators, initial strategy
draws in the games, random switches in the evolutionary dynamics) accepts
either an integer seed or a ready :class:`numpy.random.Generator`.  The helpers
here normalise those inputs so that experiments are reproducible bit-for-bit.
"""

from __future__ import annotations

import hashlib
from typing import Union

import numpy as np

SeedLike = Union[int, np.random.Generator, None]

_DEFAULT_SEED = 20210419  # ICDE 2021 conference start date; arbitrary but fixed.


def ensure_rng(seed: SeedLike = None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for ``seed``.

    ``None`` maps to the library-wide default seed (so unseeded runs are still
    deterministic), an ``int`` is used as a seed, and a ``Generator`` is passed
    through unchanged.
    """
    if seed is None:
        return np.random.default_rng(_DEFAULT_SEED)
    if isinstance(seed, np.random.Generator):
        return seed
    if isinstance(seed, (int, np.integer)):
        return np.random.default_rng(int(seed))
    raise TypeError(f"seed must be None, int, or numpy Generator, got {type(seed)!r}")


def spawn_rng(rng: np.random.Generator, n: int = 1) -> list:
    """Split ``rng`` into ``n`` independent child generators.

    Child streams are independent of each other and of the parent's future
    output, which lets parallel experiment arms draw without interference.
    """
    if n < 1:
        raise ValueError(f"n must be >= 1, got {n}")
    seeds = rng.integers(0, 2**63 - 1, size=n)
    return [np.random.default_rng(int(s)) for s in seeds]


class RngFactory:
    """Named, reproducible random streams derived from one root seed.

    Asking for the same ``name`` twice returns generators with identical
    output; different names give independent streams.  Experiment runners use
    one factory per run so each algorithm arm sees its own stable stream
    regardless of execution order.
    """

    def __init__(self, root_seed: SeedLike = None) -> None:
        root = ensure_rng(root_seed)
        self._root_seed = int(root.integers(0, 2**63 - 1))

    def get(self, name: str) -> np.random.Generator:
        """Return a fresh generator for the stream called ``name``."""
        return np.random.default_rng(self.seed_for(name))

    def seed_for(self, name: str) -> int:
        """Return the integer seed that :meth:`get` would use for ``name``.

        Uses a cryptographic digest rather than ``hash()`` so the mapping is
        stable across processes regardless of ``PYTHONHASHSEED``.
        """
        digest = hashlib.sha256(f"{self._root_seed}:{name}".encode()).digest()
        return int.from_bytes(digest[:8], "little") % (2**63)
