"""Timing helpers used by the experiment harness.

The paper reports *CPU time* for each algorithm; :class:`CpuTimer` measures
process CPU time (``time.process_time``) while :class:`Stopwatch` measures
wall-clock time.  Interval measurement deliberately never uses
``time.time`` — wall intervals come from the monotonic
``time.perf_counter``, which cannot jump with clock adjustments.  Both are
context managers so call sites stay one line long.

These timers are re-exported through :mod:`repro.obs` so instrumentation
code has one timing idiom (``from repro.obs import Stopwatch``).
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterator, List, Tuple, TypeVar

T = TypeVar("T")


@dataclass
class _TimerBase:
    """Accumulating timer; subclasses choose the clock."""

    elapsed: float = 0.0
    _start: float = field(default=0.0, repr=False)
    _running: bool = field(default=False, repr=False)

    def _clock(self) -> float:
        raise NotImplementedError

    def start(self) -> None:
        if self._running:
            raise RuntimeError("timer already running")
        self._running = True
        self._start = self._clock()

    def stop(self) -> float:
        """Stop and return the elapsed time of the just-finished interval."""
        if not self._running:
            raise RuntimeError("timer is not running")
        interval = self._clock() - self._start
        self.elapsed += interval
        self._running = False
        return interval

    def reset(self) -> None:
        self.elapsed = 0.0
        self._running = False

    def __enter__(self) -> "_TimerBase":
        self.start()
        return self

    def __exit__(self, *exc_info) -> None:
        self.stop()


class CpuTimer(_TimerBase):
    """Accumulates process CPU time (user + system) across intervals."""

    def _clock(self) -> float:
        return time.process_time()


class Stopwatch(_TimerBase):
    """Accumulates wall-clock time across intervals."""

    def _clock(self) -> float:
        return time.perf_counter()


def timed(fn: Callable[..., T], *args, **kwargs) -> Tuple[T, float]:
    """Call ``fn`` and return ``(result, cpu_seconds)``."""
    timer = CpuTimer()
    with timer:
        result = fn(*args, **kwargs)
    return result, timer.elapsed


@contextmanager
def record_time(store: Dict[str, List[float]], key: str) -> Iterator[None]:
    """Append the CPU time of the enclosed block to ``store[key]``."""
    timer = CpuTimer()
    timer.start()
    try:
        yield
    finally:
        store.setdefault(key, []).append(timer.stop())
