"""Lightweight argument validation helpers.

These keep constructors short while producing error messages that name the
offending parameter, which matters for a library meant to be embedded in
user pipelines.
"""

from __future__ import annotations

from typing import Any, Tuple, Type, Union


def require(condition: bool, message: str) -> None:
    """Raise :class:`ValueError` with ``message`` unless ``condition`` holds."""
    if not condition:
        raise ValueError(message)


def require_type(value: Any, types: Union[Type, Tuple[Type, ...]], name: str) -> None:
    """Raise :class:`TypeError` unless ``value`` is an instance of ``types``."""
    if not isinstance(value, types):
        expected = getattr(types, "__name__", str(types))
        raise TypeError(f"{name} must be {expected}, got {type(value).__name__}")


def require_positive(value: float, name: str) -> None:
    """Raise :class:`ValueError` unless ``value`` > 0."""
    if not value > 0:
        raise ValueError(f"{name} must be positive, got {value!r}")


def require_non_negative(value: float, name: str) -> None:
    """Raise :class:`ValueError` unless ``value`` >= 0."""
    if value < 0:
        raise ValueError(f"{name} must be non-negative, got {value!r}")
