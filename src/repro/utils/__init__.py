"""Shared utilities: seeded randomness, timing, logging, and validation."""

from repro.utils.rng import RngFactory, ensure_rng, spawn_rng
from repro.utils.timing import CpuTimer, Stopwatch, timed
from repro.utils.validation import (
    require,
    require_non_negative,
    require_positive,
    require_type,
)

__all__ = [
    "RngFactory",
    "ensure_rng",
    "spawn_rng",
    "CpuTimer",
    "Stopwatch",
    "timed",
    "require",
    "require_non_negative",
    "require_positive",
    "require_type",
]
