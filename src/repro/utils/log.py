"""Library logging configuration.

The library logs under the ``repro`` namespace and never configures the root
logger; applications decide where output goes.  :func:`enable_console_logging`
is a convenience for scripts and examples.
"""

from __future__ import annotations

import logging

_LIBRARY_LOGGER_NAME = "repro"


def get_logger(name: str) -> logging.Logger:
    """Return a logger nested under the library namespace."""
    if name.startswith(_LIBRARY_LOGGER_NAME):
        return logging.getLogger(name)
    return logging.getLogger(f"{_LIBRARY_LOGGER_NAME}.{name}")


def enable_console_logging(level: int = logging.INFO) -> logging.Logger:
    """Attach a stderr handler to the library logger (idempotent)."""
    logger = logging.getLogger(_LIBRARY_LOGGER_NAME)
    logger.setLevel(level)
    if not any(isinstance(h, logging.StreamHandler) for h in logger.handlers):
        handler = logging.StreamHandler()
        handler.setFormatter(
            logging.Formatter("%(asctime)s %(name)s %(levelname)s %(message)s")
        )
        logger.addHandler(handler)
    return logger
