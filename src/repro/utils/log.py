"""Library logging configuration.

The library logs under the ``repro`` namespace and never configures the root
logger; applications decide where output goes.  :func:`enable_console_logging`
is a convenience for scripts and examples; calling it again with a different
level re-levels the existing handler (it never stacks duplicates), and
:func:`disable_console_logging` removes it.
"""

from __future__ import annotations

import logging
from typing import Optional

_LIBRARY_LOGGER_NAME = "repro"

#: Marker attribute identifying the console handler this module installed.
_HANDLER_MARK = "_repro_console_handler"


def get_logger(name: str) -> logging.Logger:
    """Return a logger nested under the library namespace."""
    if name.startswith(_LIBRARY_LOGGER_NAME):
        return logging.getLogger(name)
    return logging.getLogger(f"{_LIBRARY_LOGGER_NAME}.{name}")


def _console_handler(logger: logging.Logger) -> Optional[logging.Handler]:
    """The console handler previously installed here, if any.

    Plain stream handlers attached by the application are treated as ours
    too — the historical behaviour was to skip adding a second handler when
    any ``StreamHandler`` was present, so re-levelling it is what a repeat
    caller expects.
    """
    for handler in logger.handlers:
        if getattr(handler, _HANDLER_MARK, False):
            return handler
    for handler in logger.handlers:
        if isinstance(handler, logging.StreamHandler):
            return handler
    return None


def enable_console_logging(level: int = logging.INFO) -> logging.Logger:
    """Attach a stderr handler to the library logger (idempotent).

    Repeat calls update the *existing* handler's level and ensure it has a
    formatter, so ``enable_console_logging(logging.DEBUG)`` after an
    earlier ``enable_console_logging()`` actually starts showing debug
    records instead of silently keeping the old configuration.
    """
    logger = logging.getLogger(_LIBRARY_LOGGER_NAME)
    logger.setLevel(level)
    handler = _console_handler(logger)
    if handler is None:
        handler = logging.StreamHandler()
        setattr(handler, _HANDLER_MARK, True)
        logger.addHandler(handler)
    handler.setLevel(level)
    if handler.formatter is None:
        handler.setFormatter(
            logging.Formatter("%(asctime)s %(name)s %(levelname)s %(message)s")
        )
    return logger


def disable_console_logging() -> None:
    """Remove the console handler :func:`enable_console_logging` installed.

    Handlers the application attached itself (without this module) are left
    in place unless they are plain stream handlers adopted by a previous
    :func:`enable_console_logging` call.
    """
    logger = logging.getLogger(_LIBRARY_LOGGER_NAME)
    handler = _console_handler(logger)
    if handler is not None:
        logger.removeHandler(handler)
