"""Worker payoff and population payoff statistics (Definition 7, Equation 2).

A worker's payoff is the ratio of the total reward collected on its route to
its total travel time (arrival time at the last delivery point, including the
worker-to-center leg).  The population-level statistics defined here are the
paper's two effectiveness metrics: *payoff difference* (the unfairness
measure, Equation 2) and *average payoff*.
"""

from __future__ import annotations

from typing import Iterable, Optional, Sequence

import numpy as np

from repro.core.routing import Route


def worker_payoff(route: Optional[Route]) -> float:
    """The payoff ``P(w, VDPS(w))`` of Equation 1 for a worker's route.

    ``route`` must already include the worker's start offset in its arrival
    times.  A ``None`` or empty route — the *null* strategy — earns payoff 0.
    """
    if route is None or len(route) == 0:
        return 0.0
    completion = route.completion_time
    if completion <= 0:
        # A zero travel time can only happen when the worker starts on top of
        # its single delivery point; reward with zero cost is unbounded, which
        # the model rules out, so treat it as an input error.
        raise ValueError("route completion time must be positive for a non-empty route")
    return route.total_reward / completion


def average_payoff(payoffs: Iterable[float]) -> float:
    """Mean worker payoff; 0.0 for an empty population."""
    values = np.asarray(list(payoffs), dtype=float)
    if values.size == 0:
        return 0.0
    return float(values.mean())


def payoff_difference(payoffs: Sequence[float]) -> float:
    """The unfairness measure ``P_dif`` of Equation 2.

    Mean absolute pairwise difference over ordered worker pairs:
    ``sum_{i != j} |P_i - P_j| / (|W| (|W| - 1))``.  Computed in
    O(n log n) via the sorted-prefix identity rather than the quadratic
    double sum.
    """
    values = np.sort(np.asarray(list(payoffs), dtype=float))
    n = values.size
    if n < 2:
        return 0.0
    # P_dif depends only on pairwise differences, so shifting by the first
    # value changes nothing mathematically while removing the float
    # cancellation that a large common magnitude would otherwise cause.
    values = values - values[0]
    # sum_{i<j} (v_j - v_i) where v is ascending equals sum_k v_k * (2k - n + 1).
    weights = 2.0 * np.arange(n) - (n - 1)
    unordered = float((values * weights).sum())
    # Mathematically >= 0; clamp away any residual noise.
    return max(0.0, 2.0 * unordered / (n * (n - 1)))


def payoff_difference_naive(payoffs: Sequence[float]) -> float:
    """Literal double-loop transcription of Equation 2 (test oracle)."""
    values = list(payoffs)
    n = len(values)
    if n < 2:
        return 0.0
    total = sum(
        abs(values[i] - values[j])
        for i in range(n)
        for j in range(n)
        if i != j
    )
    return total / (n * (n - 1))


def payoff_range(payoffs: Sequence[float]) -> float:
    """Max-minus-min payoff; a coarser spread statistic used in reports."""
    values = list(payoffs)
    if not values:
        return 0.0
    return max(values) - min(values)
