"""Problem instances: the full FTA input and its per-center sub-problems.

The paper observes that task assignment across distribution centers is
independent, so an instance is solved center by center (possibly in
parallel).  :class:`ProblemInstance` validates the whole input once;
:class:`SubProblem` is the unit the solvers actually consume.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Tuple

from repro.core.entities import DeliveryPoint, DistributionCenter, SpatialTask, Worker
from repro.core.exceptions import InvalidInstanceError
from repro.geo.travel import TravelModel


@dataclass(frozen=True)
class SubProblem:
    """One distribution center with its delivery points and its workers.

    This is the self-contained input to every solver in the library: the
    solvers never need the rest of the instance.  The travel model rides
    along so solvers and catalogs share one distance cache.
    """

    center: DistributionCenter
    workers: Tuple[Worker, ...]
    travel: TravelModel = field(default_factory=TravelModel)

    def __post_init__(self) -> None:
        object.__setattr__(self, "workers", tuple(self.workers))
        for w in self.workers:
            if w.center_id is not None and w.center_id != self.center.center_id:
                raise InvalidInstanceError(
                    f"worker {w.worker_id!r} belongs to center {w.center_id!r}, "
                    f"not {self.center.center_id!r}"
                )

    @property
    def delivery_points(self) -> Tuple[DeliveryPoint, ...]:
        return self.center.delivery_points

    @property
    def tasks(self) -> Tuple[SpatialTask, ...]:
        return self.center.tasks

    @property
    def online_workers(self) -> Tuple[Worker, ...]:
        """Only the workers currently able to accept tasks."""
        return tuple(w for w in self.workers if w.online)

    def describe(self) -> str:
        """One-line human-readable summary used in logs and reports."""
        return (
            f"center={self.center.center_id} |W|={len(self.workers)} "
            f"|DP|={len(self.delivery_points)} |S|={self.center.task_count}"
        )


@dataclass(frozen=True)
class ProblemInstance:
    """The complete FTA input: centers, workers, and a travel model.

    Construction validates the structural invariants of Definitions 1-4:
    unique ids, every worker referencing an existing center, and every
    delivery point belonging to exactly one center.
    """

    centers: Tuple[DistributionCenter, ...]
    workers: Tuple[Worker, ...]
    travel: TravelModel = field(default_factory=TravelModel)

    def __post_init__(self) -> None:
        object.__setattr__(self, "centers", tuple(self.centers))
        object.__setattr__(self, "workers", tuple(self.workers))
        self._validate()

    def _validate(self) -> None:
        if not self.centers:
            raise InvalidInstanceError("an instance needs at least one distribution center")
        center_ids = [c.center_id for c in self.centers]
        if len(set(center_ids)) != len(center_ids):
            raise InvalidInstanceError("duplicate distribution center ids")
        dp_ids: Dict[str, str] = {}
        for center in self.centers:
            for dp in center.delivery_points:
                if dp.dp_id in dp_ids:
                    raise InvalidInstanceError(
                        f"delivery point {dp.dp_id!r} appears in centers "
                        f"{dp_ids[dp.dp_id]!r} and {center.center_id!r}"
                    )
                dp_ids[dp.dp_id] = center.center_id
        worker_ids = [w.worker_id for w in self.workers]
        if len(set(worker_ids)) != len(worker_ids):
            raise InvalidInstanceError("duplicate worker ids")
        known = set(center_ids)
        for w in self.workers:
            if w.center_id is not None and w.center_id not in known:
                raise InvalidInstanceError(
                    f"worker {w.worker_id!r} references unknown center {w.center_id!r}"
                )

    @property
    def task_count(self) -> int:
        """Total number of tasks across all centers."""
        return sum(c.task_count for c in self.centers)

    @property
    def delivery_point_count(self) -> int:
        """Total number of delivery points across all centers."""
        return sum(len(c.delivery_points) for c in self.centers)

    def center(self, center_id: str) -> DistributionCenter:
        """Look up a center by id; raises :class:`KeyError` if absent."""
        for c in self.centers:
            if c.center_id == center_id:
                return c
        raise KeyError(f"no distribution center {center_id!r}")

    def subproblems(self) -> List[SubProblem]:
        """Split the instance into independent per-center sub-problems.

        Workers without an explicit ``center_id`` are attached to their
        nearest center, mirroring how raw datasets (with free-floating
        workers) are partitioned in the experimental setup.
        """
        by_center: Mapping[str, List[Worker]] = {c.center_id: [] for c in self.centers}
        for w in self.workers:
            cid = w.center_id
            if cid is None:
                cid = min(
                    self.centers,
                    key=lambda c: self.travel.distance(w.location, c.location),
                ).center_id
                w = w.assigned_to(cid)
            by_center[cid].append(w)
        return [
            SubProblem(c, tuple(by_center[c.center_id]), self.travel)
            for c in self.centers
        ]

    def subproblem(self, center_id: str) -> SubProblem:
        """The sub-problem for one center (see :meth:`subproblems`)."""
        for sub in self.subproblems():
            if sub.center.center_id == center_id:
                return sub
        raise KeyError(f"no distribution center {center_id!r}")

    def describe(self) -> str:
        """One-line human-readable summary used in logs and reports."""
        return (
            f"instance: |DC|={len(self.centers)} |W|={len(self.workers)} "
            f"|DP|={self.delivery_point_count} |S|={self.task_count}"
        )
