"""Exception hierarchy for the library.

Every error the library raises deliberately derives from :class:`ReproError`,
so embedding applications can catch one base class.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all library-specific errors."""


class InvalidInstanceError(ReproError):
    """A problem instance violates a structural invariant (Defs. 1-4)."""


class InvalidAssignmentError(ReproError):
    """An assignment violates disjointness or validity (Defs. 6 and 8)."""


class InfeasibleRouteError(ReproError):
    """No deadline-feasible visiting order exists for a delivery-point set."""


class ConvergenceError(ReproError):
    """A game-theoretic solver exceeded its iteration budget."""


class InvariantViolation(ReproError):
    """A runtime invariant checker caught a solver producing invalid output.

    Raised by :mod:`repro.verify` when a certified property of the
    reproduction — Definition 8 disjointness, Definition 6 deadline
    feasibility, Lemma 2 potential monotonicity, the replicator sign
    conditions of Equations 11-14, … — fails to hold.  The offending
    context (solver, worker, strategy, round) is carried as attributes so
    a violation deep inside a benchmark run is immediately debuggable.
    """

    def __init__(
        self,
        invariant: str,
        message: str,
        *,
        solver: "str | None" = None,
        worker_id: "str | None" = None,
        round_index: "int | None" = None,
        strategy: "tuple | None" = None,
    ) -> None:
        self.invariant = invariant
        self.solver = solver
        self.worker_id = worker_id
        self.round_index = round_index
        self.strategy = tuple(strategy) if strategy is not None else None
        context = []
        if solver:
            context.append(f"solver={solver}")
        if worker_id is not None:
            context.append(f"worker={worker_id}")
        if round_index is not None:
            context.append(f"round={round_index}")
        if self.strategy is not None:
            context.append(f"strategy={sorted(self.strategy)}")
        suffix = f" [{', '.join(context)}]" if context else ""
        super().__init__(f"{invariant}: {message}{suffix}")


class DatasetError(ReproError):
    """A dataset could not be generated, loaded, or parsed."""
