"""Exception hierarchy for the library.

Every error the library raises deliberately derives from :class:`ReproError`,
so embedding applications can catch one base class.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all library-specific errors."""


class InvalidInstanceError(ReproError):
    """A problem instance violates a structural invariant (Defs. 1-4)."""


class InvalidAssignmentError(ReproError):
    """An assignment violates disjointness or validity (Defs. 6 and 8)."""


class InfeasibleRouteError(ReproError):
    """No deadline-feasible visiting order exists for a delivery-point set."""


class ConvergenceError(ReproError):
    """A game-theoretic solver exceeded its iteration budget."""


class DatasetError(ReproError):
    """A dataset could not be generated, loaded, or parsed."""
