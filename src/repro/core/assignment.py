"""Spatial task assignments (Definition 8) and their quality metrics.

An :class:`Assignment` pairs every worker of a sub-problem with either a
deadline-feasible :class:`~repro.core.routing.Route` over a VDPS or the null
strategy.  Construction enforces Definition 8's disjointness and each
worker's ``maxDP`` bound; the effectiveness metrics the paper reports are
exposed as properties.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Mapping, Optional, Sequence, Tuple

from repro.core.entities import Worker
from repro.core.exceptions import InvalidAssignmentError
from repro.core.payoff import average_payoff, payoff_difference, worker_payoff
from repro.core.routing import Route


@dataclass(frozen=True)
class WorkerAssignment:
    """One worker together with its assigned route (``None`` = null strategy).

    The route's arrival times must already include the worker's travel time
    to the distribution center, so ``payoff`` is exactly Equation 1.
    """

    worker: Worker
    route: Optional[Route] = None

    @property
    def payoff(self) -> float:
        """``P(w, VDPS(w))`` for this pair; 0.0 for the null strategy."""
        return worker_payoff(self.route)

    @property
    def delivery_point_ids(self) -> Tuple[str, ...]:
        """Ids of the delivery points served, in visiting order."""
        if self.route is None:
            return ()
        return tuple(dp.dp_id for dp in self.route.sequence)

    @property
    def task_count(self) -> int:
        """Number of tasks completed by this worker."""
        if self.route is None:
            return 0
        return sum(dp.task_count for dp in self.route.sequence)


class Assignment:
    """A full spatial task assignment ``A`` for one sub-problem.

    Parameters
    ----------
    pairs:
        One :class:`WorkerAssignment` per worker.
    validate:
        When true (default), check Definition 8's disjointness, each
        worker's ``maxDP``, and each worker's deadline feasibility; raise
        :class:`InvalidAssignmentError` on violation.
    """

    def __init__(self, pairs: Sequence[WorkerAssignment], validate: bool = True) -> None:
        self._pairs: Tuple[WorkerAssignment, ...] = tuple(pairs)
        if validate:
            self._validate()

    def _validate(self) -> None:
        seen_workers: set = set()
        claimed: Dict[str, str] = {}
        for pair in self._pairs:
            wid = pair.worker.worker_id
            if wid in seen_workers:
                raise InvalidAssignmentError(f"worker {wid!r} appears twice")
            seen_workers.add(wid)
            if pair.route is None:
                continue
            if len(pair.route) > pair.worker.max_delivery_points:
                raise InvalidAssignmentError(
                    f"worker {wid!r} assigned {len(pair.route)} delivery points "
                    f"but accepts at most {pair.worker.max_delivery_points}"
                )
            for dp in pair.route.sequence:
                if dp.dp_id in claimed:
                    raise InvalidAssignmentError(
                        f"delivery point {dp.dp_id!r} assigned to both "
                        f"{claimed[dp.dp_id]!r} and {wid!r}"
                    )
                claimed[dp.dp_id] = wid
            for dp, t in zip(pair.route.sequence, pair.route.arrival_times):
                if t > dp.earliest_expiry + 1e-12:
                    raise InvalidAssignmentError(
                        f"worker {wid!r} reaches {dp.dp_id!r} at t={t:.4f} after "
                        f"its earliest expiry {dp.earliest_expiry:.4f}"
                    )

    def __iter__(self) -> Iterator[WorkerAssignment]:
        return iter(self._pairs)

    def __len__(self) -> int:
        return len(self._pairs)

    @property
    def pairs(self) -> Tuple[WorkerAssignment, ...]:
        return self._pairs

    def pair_for(self, worker_id: str) -> WorkerAssignment:
        """The pair for ``worker_id``; raises :class:`KeyError` if absent."""
        for pair in self._pairs:
            if pair.worker.worker_id == worker_id:
                return pair
        raise KeyError(f"no worker {worker_id!r} in assignment")

    @property
    def payoffs(self) -> List[float]:
        """Per-worker payoffs, in pair order."""
        return [pair.payoff for pair in self._pairs]

    @property
    def payoff_difference(self) -> float:
        """``A.P_dif`` — the unfairness of this assignment (Equation 2)."""
        return payoff_difference(self.payoffs)

    @property
    def average_payoff(self) -> float:
        """Mean worker payoff of this assignment."""
        return average_payoff(self.payoffs)

    @property
    def total_payoff(self) -> float:
        """Sum of worker payoffs (the objective MPTA maximises)."""
        return float(sum(self.payoffs))

    @property
    def assigned_task_count(self) -> int:
        """Number of tasks that some worker will complete."""
        return sum(pair.task_count for pair in self._pairs)

    @property
    def busy_worker_count(self) -> int:
        """Number of workers with a non-null strategy."""
        return sum(1 for pair in self._pairs if pair.route is not None and len(pair.route))

    def as_mapping(self) -> Mapping[str, Tuple[str, ...]]:
        """``worker_id -> ordered delivery point ids`` view of the assignment."""
        return {p.worker.worker_id: p.delivery_point_ids for p in self._pairs}

    def describe(self) -> str:
        """One-line summary: the three metrics the paper reports."""
        return (
            f"P_dif={self.payoff_difference:.4f} "
            f"avgP={self.average_payoff:.4f} "
            f"busy={self.busy_worker_count}/{len(self)}"
        )

    def __repr__(self) -> str:
        return f"Assignment({self.describe()})"
