"""Fairness models: Inequity Aversion based Utility and auxiliary indices.

The FGT game's utility function is the Inequity Aversion based Utility (IAU)
of Equations 5-7, after Fehr & Schmidt: a worker's raw payoff is discounted
both for being behind others (envy, weighted ``alpha``) and for being ahead
of others (guilt, weighted ``beta``).  Gini and Jain indices are provided as
additional descriptive fairness statistics for reports; they play no role in
the algorithms themselves.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.utils.validation import require_non_negative


@dataclass(frozen=True)
class InequityAversion:
    """The IAU model ``IAU(w_i) = P_i - (alpha/(n-1)) MP_i - (beta/(n-1)) LP_i``.

    ``MP_i`` sums how far richer workers are ahead of ``w_i`` (Equation 6)
    and ``LP_i`` sums how far ``w_i`` is ahead of poorer workers
    (Equation 7).  The paper fixes ``alpha = beta = 0.5``.
    """

    alpha: float = 0.5
    beta: float = 0.5

    def __post_init__(self) -> None:
        require_non_negative(self.alpha, "alpha")
        require_non_negative(self.beta, "beta")

    def utility(self, index: int, payoffs: Sequence[float]) -> float:
        """IAU of the worker at ``index`` given all workers' payoffs."""
        values = np.asarray(payoffs, dtype=float)
        n = values.size
        if not 0 <= index < n:
            raise IndexError(f"index {index} out of range for {n} workers")
        if n == 1:
            return float(values[0])
        mine = values[index]
        others = np.delete(values, index)
        mp = float(np.clip(others - mine, 0.0, None).sum())
        lp = float(np.clip(mine - others, 0.0, None).sum())
        return mine - (self.alpha * mp + self.beta * lp) / (n - 1)

    def utilities(self, payoffs: Sequence[float]) -> np.ndarray:
        """IAU of every worker, vectorised over the population.

        Sorting lets both envy and guilt terms be computed with prefix sums,
        so the cost is O(n log n) rather than the O(n^2) of calling
        :meth:`utility` per worker.
        """
        values = np.asarray(payoffs, dtype=float)
        n = values.size
        if n == 0:
            return np.zeros(0)
        if n == 1:
            return values.copy()
        order = np.argsort(values, kind="stable")
        sorted_vals = values[order]
        prefix = np.concatenate(([0.0], np.cumsum(sorted_vals)))
        total = prefix[-1]
        ranks = np.arange(n)
        # For the k-th smallest value v: LP = k*v - prefix[k] (mass below),
        # MP = (total - prefix[k+1]) - (n-1-k)*v (mass above).
        lp_sorted = ranks * sorted_vals - prefix[:-1]
        mp_sorted = (total - prefix[1:]) - (n - 1 - ranks) * sorted_vals
        iau_sorted = sorted_vals - (self.alpha * mp_sorted + self.beta * lp_sorted) / (
            n - 1
        )
        out = np.empty(n)
        out[order] = iau_sorted
        return out

    def potential(self, payoffs: Sequence[float]) -> float:
        """The exact potential ``Phi = sum_i IAU_i`` used in Lemma 2."""
        return float(self.utilities(payoffs).sum())


#: Default amplification of the IAU weights in ledger-weighted equity mode.
#: With the paper's alpha = beta = 0.5, a strength of 3.0 gives effective
#: guilt weight 1.5 > 1, which is the threshold past which utility becomes
#: *decreasing* in own payoff for a cumulative-rich worker — the property
#: that makes equity mode behaviorally active (see ``equity_model``).
DEFAULT_EQUITY_STRENGTH = 3.0


def equity_model(
    model: InequityAversion, strength: float = DEFAULT_EQUITY_STRENGTH
) -> InequityAversion:
    """The amplified IAU model used by ledger-weighted equity mode.

    Equity mode evaluates ``IAU_t(w_i) = E_i - (a'/(n-1)) MP_i^cum
    - (b'/(n-1)) LP_i^cum`` where ``E_i = C_i + P_i`` is the worker's
    *effective* payoff (decayed cumulative ledger balance ``C_i`` plus the
    round payoff ``P_i``), the envy/guilt masses ``MP^cum``/``LP^cum`` are
    computed on the effective payoffs, and ``(a', b') = strength * (a, b)``.

    The amplification is load-bearing, not cosmetic: plain IAU is strictly
    monotone in own payoff (slope at least ``1 - beta`` > 0 for the
    paper's ``beta = 0.5``), so merely shifting payoffs by the cumulative
    base would never change any best response.  With ``strength * beta``
    > 1 the marginal utility of own payoff turns *negative* once a worker
    is ahead of enough others on cumulative income — such a worker
    voluntarily declines work, freeing tasks for cumulative-poor workers.

    The price is Lemma 2: for ``alpha = beta = a`` a unilateral switch
    changes the potential ``Phi = sum IAU`` by ``2*delta_u - delta_P``,
    which is guaranteed non-negative for utility-improving switches only
    when ``a <= 1/2``.  Amplified weights void that guarantee, so equity
    mode runs FGT with the potential-monotonicity verifier check disabled
    and convergence bounded by ``max_rounds`` (reported honestly via
    ``GameResult.converged``); IEGT keeps its termination argument (raw
    total payoff strictly increases per switch and is bounded).
    """
    require_non_negative(strength, "strength")
    return InequityAversion(strength * model.alpha, strength * model.beta)


def ledger_weighted_utilities(
    payoffs: Sequence[float],
    cumulative: Sequence[float],
    model: InequityAversion = InequityAversion(),
    strength: float = DEFAULT_EQUITY_STRENGTH,
) -> np.ndarray:
    """Reference implementation of the equity-mode utilities ``IAU_t``.

    ``payoffs`` are the round's per-worker payoffs, ``cumulative`` the
    aligned decayed cumulative payoffs from the equity ledger.  The game
    engines compute the same quantity incrementally (bit-identically
    between the scalar and vectorized paths); this direct form exists as
    the oracle for their differential tests and for offline analysis.
    """
    effective = np.asarray(payoffs, dtype=float) + np.asarray(
        cumulative, dtype=float
    )
    return equity_model(model, strength).utilities(effective)


def gini_coefficient(payoffs: Sequence[float]) -> float:
    """Gini coefficient of the payoff distribution (0 = equal, 1 = maximal).

    Undefined for an all-zero or empty population; returns 0.0 there, which
    matches the "perfectly equal" reading of an all-idle population.
    """
    values = np.sort(np.asarray(list(payoffs), dtype=float))
    n = values.size
    if n == 0:
        return 0.0
    if np.any(values < 0):
        raise ValueError("gini_coefficient requires non-negative payoffs")
    total = values.sum()
    if total == 0:
        return 0.0
    ranks = np.arange(1, n + 1)
    gini = float((2.0 * (ranks * values).sum()) / (n * total) - (n + 1.0) / n)
    # Mathematically in [0, 1]; clamp away float cancellation noise.
    return min(1.0, max(0.0, gini))


def jain_index(payoffs: Sequence[float]) -> float:
    """Jain's fairness index ``(sum x)^2 / (n sum x^2)``; 1.0 means equal.

    Returns 1.0 for empty or all-zero populations (nothing is unequal).
    """
    values = np.asarray(list(payoffs), dtype=float)
    n = values.size
    if n == 0:
        return 1.0
    scale = float(np.abs(values).max())
    if scale == 0:
        return 1.0
    # The index is scale-invariant; normalising by the largest magnitude
    # keeps the squares out of the subnormal range, where they would lose
    # precision and push the ratio outside [0, 1].
    values = values / scale
    denom = float((values**2).sum())
    return float(values.sum() ** 2 / (n * denom))
