"""Core domain model: entities, problem instance, routing, payoff, fairness."""

from repro.core.entities import (
    DeliveryPoint,
    DistributionCenter,
    SpatialTask,
    Worker,
)
from repro.core.instance import ProblemInstance, SubProblem
from repro.core.routing import Route, arrival_times, best_route, route_is_valid
from repro.core.payoff import (
    average_payoff,
    payoff_difference,
    worker_payoff,
)
from repro.core.fairness import (
    InequityAversion,
    gini_coefficient,
    jain_index,
)
from repro.core.priority import (
    PriorityModel,
    priority_payoff_difference,
)
from repro.core.assignment import Assignment, WorkerAssignment
from repro.core.exceptions import (
    InvalidAssignmentError,
    InvalidInstanceError,
    InvariantViolation,
    ReproError,
)

__all__ = [
    "SpatialTask",
    "DeliveryPoint",
    "DistributionCenter",
    "Worker",
    "ProblemInstance",
    "SubProblem",
    "Route",
    "arrival_times",
    "best_route",
    "route_is_valid",
    "worker_payoff",
    "average_payoff",
    "payoff_difference",
    "InequityAversion",
    "gini_coefficient",
    "jain_index",
    "PriorityModel",
    "priority_payoff_difference",
    "Assignment",
    "WorkerAssignment",
    "ReproError",
    "InvalidInstanceError",
    "InvalidAssignmentError",
    "InvariantViolation",
]
