"""Domain entities from Section III of the paper (Definitions 1-4).

All entities are immutable dataclasses keyed by string identifiers, so they
hash cheaply, sort deterministically, and can be serialised to CSV without a
custom encoder.  Relationships are by id (a task references its delivery
point's id) to keep each object small and the object graph acyclic.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional, Tuple

from repro.geo.point import Point


@dataclass(frozen=True, order=True)
class SpatialTask:
    """A spatial task ``s = (dp, e, r)`` (Definition 3).

    Attributes
    ----------
    task_id:
        Unique identifier of the task.
    delivery_point_id:
        Identifier of the delivery point ``s.dp`` the task must be
        delivered to.
    expiry:
        Task expiration deadline ``s.e`` in hours from the assignment
        instant.  A worker must *arrive* at the delivery point no later
        than this.
    reward:
        Reward ``s.r`` paid to the worker who completes the task.  The
        paper's experiments use reward 1 for every task.
    """

    task_id: str
    delivery_point_id: str
    expiry: float
    reward: float = 1.0

    def __post_init__(self) -> None:
        if not self.task_id:
            raise ValueError("task_id must be a non-empty string")
        if not self.delivery_point_id:
            raise ValueError("delivery_point_id must be a non-empty string")
        if not math.isfinite(self.expiry) or self.expiry < 0:
            raise ValueError(f"expiry must be finite and >= 0, got {self.expiry!r}")
        if not math.isfinite(self.reward) or self.reward < 0:
            raise ValueError(f"reward must be finite and >= 0, got {self.reward!r}")


@dataclass(frozen=True)
class DeliveryPoint:
    """A delivery point ``dp = (l, S)`` (Definition 2).

    Carries its location and the tuple of tasks to be delivered there.
    Derived quantities used throughout the algorithms — earliest task
    expiry ``dp.e``, total reward, task count — are exposed as properties.

    ``service_hours`` is the handover time spent *at* the point before
    travelling on.  The paper assumes it is zero ("the processing time of
    a task is zero"); a positive value is an opt-in generalisation: the
    deadline check still applies to the *arrival* time, but departure to
    the next point is delayed by the service.
    """

    dp_id: str
    location: Point
    tasks: Tuple[SpatialTask, ...] = ()
    service_hours: float = 0.0

    def __post_init__(self) -> None:
        if not self.dp_id:
            raise ValueError("dp_id must be a non-empty string")
        if not isinstance(self.location, Point):
            raise TypeError(f"location must be a Point, got {type(self.location).__name__}")
        if not math.isfinite(self.service_hours) or self.service_hours < 0:
            raise ValueError(
                f"service_hours must be finite and >= 0, got {self.service_hours!r}"
            )
        object.__setattr__(self, "tasks", tuple(self.tasks))
        for task in self.tasks:
            if task.delivery_point_id != self.dp_id:
                raise ValueError(
                    f"task {task.task_id!r} belongs to delivery point "
                    f"{task.delivery_point_id!r}, not {self.dp_id!r}"
                )

    @property
    def earliest_expiry(self) -> float:
        """``dp.e``: the earliest expiration time among the point's tasks.

        An empty delivery point never constrains a route, so it reports
        ``+inf``.
        """
        if not self.tasks:
            return math.inf
        return min(task.expiry for task in self.tasks)

    @property
    def total_reward(self) -> float:
        """Sum of the rewards of all tasks at this point."""
        return sum(task.reward for task in self.tasks)

    @property
    def task_count(self) -> int:
        """Number of tasks to deliver to this point (``|dp.S|``)."""
        return len(self.tasks)

    def with_tasks(self, tasks: Tuple[SpatialTask, ...]) -> "DeliveryPoint":
        """A copy of this delivery point holding ``tasks`` instead."""
        return DeliveryPoint(self.dp_id, self.location, tasks, self.service_hours)

    def __hash__(self) -> int:
        return hash(self.dp_id)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, DeliveryPoint):
            return NotImplemented
        return (
            self.dp_id == other.dp_id
            and self.location == other.location
            and self.tasks == other.tasks
            and self.service_hours == other.service_hours
        )


@dataclass(frozen=True)
class DistributionCenter:
    """A distribution center ``dc = (l, S, DP)`` (Definition 1).

    The center's task set ``dc.S`` is exactly the union of its delivery
    points' task sets, so only the points are stored and the tasks are
    derived.
    """

    center_id: str
    location: Point
    delivery_points: Tuple[DeliveryPoint, ...] = ()

    def __post_init__(self) -> None:
        if not self.center_id:
            raise ValueError("center_id must be a non-empty string")
        if not isinstance(self.location, Point):
            raise TypeError(f"location must be a Point, got {type(self.location).__name__}")
        object.__setattr__(self, "delivery_points", tuple(self.delivery_points))
        seen = set()
        for dp in self.delivery_points:
            if dp.dp_id in seen:
                raise ValueError(f"duplicate delivery point id {dp.dp_id!r}")
            seen.add(dp.dp_id)

    @property
    def tasks(self) -> Tuple[SpatialTask, ...]:
        """``dc.S``: all tasks across the center's delivery points."""
        return tuple(t for dp in self.delivery_points for t in dp.tasks)

    @property
    def task_count(self) -> int:
        """Total number of tasks distributed by this center."""
        return sum(dp.task_count for dp in self.delivery_points)

    def delivery_point(self, dp_id: str) -> DeliveryPoint:
        """Look up a delivery point by id; raises :class:`KeyError` if absent."""
        for dp in self.delivery_points:
            if dp.dp_id == dp_id:
                return dp
        raise KeyError(f"no delivery point {dp_id!r} in center {self.center_id!r}")

    def __hash__(self) -> int:
        return hash(self.center_id)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, DistributionCenter):
            return NotImplemented
        return (
            self.center_id == other.center_id
            and self.location == other.location
            and self.delivery_points == other.delivery_points
        )


@dataclass(frozen=True)
class Worker:
    """A worker ``w = (l, maxDP)`` (Definition 4).

    Attributes
    ----------
    worker_id:
        Unique identifier.
    location:
        The worker's current location ``w.l``.
    max_delivery_points:
        ``w.maxDP``: the maximum number of delivery points the worker is
        willing to serve in one assignment.
    center_id:
        The distribution center the worker works for.  The paper assumes a
        worker serves a single center; ``None`` means "not yet associated"
        (e.g. raw dataset rows before partitioning).
    online:
        Whether the worker is currently accepting tasks (Definition 4's
        online/offline mode).
    speed_kmh:
        Optional individual movement speed, enabling the paper's
        future-work direction of workers with different contributions.
        ``None`` (the paper's model) means "use the instance's shared
        speed".
    """

    worker_id: str
    location: Point
    max_delivery_points: int = 3
    center_id: Optional[str] = None
    online: bool = True
    speed_kmh: Optional[float] = None

    def __post_init__(self) -> None:
        if not self.worker_id:
            raise ValueError("worker_id must be a non-empty string")
        if not isinstance(self.location, Point):
            raise TypeError(f"location must be a Point, got {type(self.location).__name__}")
        if not isinstance(self.max_delivery_points, int) or self.max_delivery_points < 1:
            raise ValueError(
                f"max_delivery_points must be a positive int, got "
                f"{self.max_delivery_points!r}"
            )
        if self.speed_kmh is not None and not self.speed_kmh > 0:
            raise ValueError(
                f"speed_kmh must be positive or None, got {self.speed_kmh!r}"
            )

    def assigned_to(self, center_id: str) -> "Worker":
        """A copy of this worker associated with ``center_id``."""
        return Worker(
            self.worker_id,
            self.location,
            self.max_delivery_points,
            center_id,
            self.online,
            self.speed_kmh,
        )

    def offline(self) -> "Worker":
        """A copy of this worker marked offline (tasks in progress)."""
        return Worker(
            self.worker_id,
            self.location,
            self.max_delivery_points,
            self.center_id,
            False,
            self.speed_kmh,
        )

    def __hash__(self) -> int:
        return hash(self.worker_id)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Worker):
            return NotImplemented
        return (
            self.worker_id == other.worker_id
            and self.location == other.location
            and self.max_delivery_points == other.max_delivery_points
            and self.center_id == other.center_id
            and self.online == other.online
            and self.speed_kmh == other.speed_kmh
        )
