"""Priority-aware fairness — the paper's named future-work direction.

The conclusion proposes "introduc[ing] additional descriptive models of
fairness, e.g., priority-aware fairness".  Following the priority-awareness
model of De Jong et al. (the paper's reference [26]), each worker carries a
positive priority; the *fair* outcome is payoffs proportional to priority,
so inequity is measured on priority-normalised payoffs ``P_i / pi_i``.

Setting every priority to 1 recovers the paper's plain IAU exactly, so the
extension is strictly opt-in.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Mapping, Sequence

import numpy as np

from repro.core.fairness import InequityAversion
from repro.core.payoff import payoff_difference


@dataclass(frozen=True)
class PriorityModel:
    """Positive per-worker priorities; missing workers default to 1.0.

    ``priorities`` maps worker ids to weights: a worker with priority 2 is
    *entitled* to twice the payoff of a priority-1 worker before the
    inequity penalties of the IAU model kick in.
    """

    priorities: Mapping[str, float] = field(default_factory=dict)

    def __post_init__(self) -> None:
        frozen: Dict[str, float] = dict(self.priorities)
        for worker_id, value in frozen.items():
            if not value > 0:
                raise ValueError(
                    f"priority of {worker_id!r} must be positive, got {value!r}"
                )
        object.__setattr__(self, "priorities", frozen)

    def priority_of(self, worker_id: str) -> float:
        """The worker's priority (1.0 when unspecified)."""
        return self.priorities.get(worker_id, 1.0)

    def normalize(
        self, payoffs: Sequence[float], worker_ids: Sequence[str]
    ) -> np.ndarray:
        """Priority-normalised payoffs ``P_i / pi_i``, aligned with inputs."""
        if len(payoffs) != len(worker_ids):
            raise ValueError("payoffs and worker_ids must align")
        scale = np.array([self.priority_of(w) for w in worker_ids], dtype=float)
        return np.asarray(payoffs, dtype=float) / scale


def priority_payoff_difference(
    payoffs: Sequence[float],
    worker_ids: Sequence[str],
    model: PriorityModel,
) -> float:
    """Equation 2's ``P_dif`` computed on priority-normalised payoffs.

    Zero means every worker earns exactly in proportion to its priority.
    """
    return payoff_difference(model.normalize(payoffs, worker_ids).tolist())


def priority_inequity_utilities(
    payoffs: Sequence[float],
    worker_ids: Sequence[str],
    model: PriorityModel,
    inequity: InequityAversion,
) -> np.ndarray:
    """IAU (Equations 5-7) applied to priority-normalised payoffs."""
    return inequity.utilities(model.normalize(payoffs, worker_ids))
