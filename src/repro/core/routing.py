"""Routing: delivery-point sequences, arrival times, and optimal orders.

Implements Definition 5 (arrival-time recurrence) and the minimal-travel-time
sequence selection the paper applies to every VDPS ("among these, we consider
only the one with the minimal travel time").  :func:`best_route` is an exact
Held-Karp-style subset dynamic program with deadline feasibility folded in;
it is shared by the VDPS generator and by the test oracles.
"""

from __future__ import annotations

import itertools
import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.entities import DeliveryPoint
from repro.geo.point import Point
from repro.geo.travel import TravelModel


@dataclass(frozen=True)
class Route:
    """An ordered visit of delivery points starting from a distribution center.

    Attributes
    ----------
    sequence:
        Delivery points in visiting order.
    arrival_times:
        Arrival time at each point, measured from the moment the worker is
        *at the center* (i.e. excluding the worker-to-center leg).  Adding a
        worker's start offset shifts every entry uniformly.
    """

    sequence: Tuple[DeliveryPoint, ...]
    arrival_times: Tuple[float, ...]

    def __post_init__(self) -> None:
        if len(self.sequence) != len(self.arrival_times):
            raise ValueError("sequence and arrival_times must have equal length")

    @property
    def completion_time(self) -> float:
        """Arrival time at the final delivery point (0 for an empty route)."""
        return self.arrival_times[-1] if self.arrival_times else 0.0

    @property
    def total_reward(self) -> float:
        """Sum of the rewards of every task on the route."""
        return sum(dp.total_reward for dp in self.sequence)

    def __len__(self) -> int:
        return len(self.sequence)

    def is_valid_with_offset(self, offset: float) -> bool:
        """Whether every deadline holds when the start is delayed by ``offset``.

        ``offset`` is the worker's travel time to the center, so this is the
        per-worker validity check of Section IV.
        """
        return all(
            t + offset <= dp.earliest_expiry
            for dp, t in zip(self.sequence, self.arrival_times)
        )

    def shifted(self, offset: float) -> "Route":
        """The same route with every arrival time delayed by ``offset``."""
        return Route(self.sequence, tuple(t + offset for t in self.arrival_times))

    def scaled(self, factor: float) -> "Route":
        """The same route traversed at ``1/factor`` times the speed.

        A worker moving at half the reference speed experiences the same
        distances in twice the time, so arrival times scale linearly.
        """
        if factor <= 0:
            raise ValueError(f"factor must be positive, got {factor}")
        return Route(self.sequence, tuple(t * factor for t in self.arrival_times))


def arrival_times(
    center_location: Point,
    sequence: Sequence[DeliveryPoint],
    travel: TravelModel,
    start_offset: float = 0.0,
) -> List[float]:
    """Arrival times along ``sequence`` per the recurrence of Definition 5.

    ``start_offset`` is ``c(w.l, dc.l)``: the worker's travel time to the
    center.  With the default of 0 the times are center-relative, matching
    the ``t'`` recurrence used during C-VDPS generation (Equation 3).

    Deadlines apply to the *arrival* at each point; a point's optional
    ``service_hours`` delays the departure toward the next point (the
    paper's zero-processing-time assumption is the 0.0 default).
    """
    times: List[float] = []
    clock = start_offset
    previous = center_location
    for dp in sequence:
        clock += travel.time(previous, dp.location)
        times.append(clock)
        clock += dp.service_hours
        previous = dp.location
    return times


def route_is_valid(
    center_location: Point,
    sequence: Sequence[DeliveryPoint],
    travel: TravelModel,
    start_offset: float = 0.0,
) -> bool:
    """Whether visiting ``sequence`` meets every point's earliest task expiry."""
    for dp, t in zip(
        sequence, arrival_times(center_location, sequence, travel, start_offset)
    ):
        if t > dp.earliest_expiry:
            return False
    return True


def best_route(
    center_location: Point,
    points: Sequence[DeliveryPoint],
    travel: TravelModel,
    start_offset: float = 0.0,
    kernel: Optional[str] = None,
) -> Optional[Route]:
    """The minimal-completion-time deadline-feasible visit of ``points``.

    Returns ``None`` when no feasible order exists.  Uses a Held-Karp subset
    DP over (visited-set, last-point) states.  Keeping only the minimal
    arrival time per state is safe because an earlier arrival dominates: any
    feasible extension of a later arrival is also feasible from an earlier
    one.

    Masks are enumerated layer by layer from feasible predecessors only —
    a feasible state over ``s + 1`` points extends a feasible state over
    ``s`` of them, so unreachable subsets are never visited and an empty
    layer proves infeasibility outright (the old ``range(1, 2^n)`` scan
    touched all ``2^n`` masks even when the first layer already died).

    ``kernel`` picks the DP implementation (``"scalar"`` or
    ``"vectorized"``; ``None`` resolves the process default, see
    :mod:`repro.kernels.config`) — both produce bit-identical routes.

    The returned :class:`Route` reports arrival times that *include*
    ``start_offset``.
    """
    pts = list(points)
    n = len(pts)
    if n == 0:
        return Route((), ())
    if len({dp.dp_id for dp in pts}) != n:
        raise ValueError("points must not contain duplicate delivery point ids")

    from repro.kernels import resolve_kernel

    if resolve_kernel(kernel) != "scalar" and 2 <= n <= 62:
        from repro.kernels.routing import best_route_vectorized

        return best_route_vectorized(center_location, pts, travel, start_offset)

    # dp_table[(mask, j)] = minimal arrival time at pts[j] having visited mask.
    dp_table: Dict[Tuple[int, int], float] = {}
    parent: Dict[Tuple[int, int], int] = {}
    layer: List[int] = []
    for j, dp in enumerate(pts):
        t = start_offset + travel.time(center_location, dp.location)
        if t <= dp.earliest_expiry:
            dp_table[(1 << j, j)] = t
            parent[(1 << j, j)] = -1
            layer.append(1 << j)

    full = (1 << n) - 1
    for _ in range(1, n):
        if not layer:
            return None  # nothing feasible at this size, so nothing above
        next_layer: Dict[int, None] = {}  # insertion-ordered mask set
        for prev_mask in layer:
            feasible = [
                i for i in range(n) if (prev_mask, i) in dp_table
            ]
            for j in range(n):
                bit = 1 << j
                if prev_mask & bit:
                    continue
                best_t = math.inf
                best_i = -1
                for i in feasible:
                    t = (
                        dp_table[(prev_mask, i)]
                        + pts[i].service_hours
                        + travel.time(pts[i].location, pts[j].location)
                    )
                    if t < best_t:
                        best_t, best_i = t, i
                if best_i >= 0 and best_t <= pts[j].earliest_expiry:
                    mask = prev_mask | bit
                    dp_table[(mask, j)] = best_t
                    parent[(mask, j)] = best_i
                    next_layer[mask] = None
        layer = list(next_layer)

    end = min(
        (j for j in range(n) if (full, j) in dp_table),
        key=lambda j: dp_table[(full, j)],
        default=None,
    )
    if end is None:
        return None

    order: List[int] = []
    mask, j = full, end
    while j != -1:
        order.append(j)
        i = parent[(mask, j)]
        mask ^= 1 << j
        j = i
    order.reverse()
    sequence = tuple(pts[k] for k in order)
    times = tuple(arrival_times(center_location, sequence, travel, start_offset))
    return Route(sequence, times)


def brute_force_best_route(
    center_location: Point,
    points: Sequence[DeliveryPoint],
    travel: TravelModel,
    start_offset: float = 0.0,
) -> Optional[Route]:
    """Exhaustive counterpart of :func:`best_route`; used as a test oracle.

    Enumerates every permutation, so only suitable for very small inputs.
    """
    pts = list(points)
    if not pts:
        return Route((), ())
    best: Optional[Route] = None
    for perm in itertools.permutations(pts):
        if not route_is_valid(center_location, perm, travel, start_offset):
            continue
        times = tuple(arrival_times(center_location, perm, travel, start_offset))
        candidate = Route(tuple(perm), times)
        if best is None or candidate.completion_time < best.completion_time:
            best = candidate
    return best
