"""Tests for repro.games.base (GameState, random initialisation)."""

import numpy as np
import pytest

from repro.core.instance import SubProblem
from repro.games.base import GameState, random_initial_state
from repro.vdps.catalog import NULL_STRATEGY, build_catalog

from tests.conftest import make_center, make_dp, make_worker, unit_speed_travel


@pytest.fixture
def sub():
    center = make_center(
        [
            make_dp("a", 1, 0, n_tasks=2),
            make_dp("b", 2, 0, n_tasks=1),
            make_dp("c", 3, 0, n_tasks=3),
        ]
    )
    workers = (make_worker("w1", 0, 0), make_worker("w2", 0, 0))
    return SubProblem(center, workers, unit_speed_travel())


@pytest.fixture
def catalog(sub):
    return build_catalog(sub)


class TestGameState:
    def test_initially_all_null(self, catalog):
        state = GameState(catalog)
        assert all(
            state.strategy_of(w.worker_id) is NULL_STRATEGY for w in catalog.workers
        )
        assert np.all(state.payoffs() == 0.0)

    def test_set_strategy_updates_claims(self, catalog):
        state = GameState(catalog)
        strategy = catalog.strategies("w1")[0]
        state.set_strategy("w1", strategy)
        assert state.strategy_of("w1") is strategy
        assert state.claimed_except("w2") == set(strategy.point_ids)
        assert state.claimed_except("w1") == set()

    def test_conflicting_strategy_rejected(self, catalog):
        state = GameState(catalog)
        s_a = next(s for s in catalog.strategies("w1") if s.point_ids == {"a"})
        state.set_strategy("w1", s_a)
        s_a2 = next(s for s in catalog.strategies("w2") if s.point_ids == {"a"})
        with pytest.raises(ValueError, match="already claimed"):
            state.set_strategy("w2", s_a2)

    def test_switching_releases_old_claims(self, catalog):
        state = GameState(catalog)
        s_a = next(s for s in catalog.strategies("w1") if s.point_ids == {"a"})
        s_b = next(s for s in catalog.strategies("w1") if s.point_ids == {"b"})
        state.set_strategy("w1", s_a)
        state.set_strategy("w1", s_b)
        s_a2 = next(s for s in catalog.strategies("w2") if s.point_ids == {"a"})
        state.set_strategy("w2", s_a2)  # must not raise: "a" was released

    def test_available_strategies_respect_claims(self, catalog):
        state = GameState(catalog)
        s_ab = next(
            s for s in catalog.strategies("w1") if s.point_ids == {"a", "b"}
        )
        state.set_strategy("w1", s_ab)
        available = state.available_strategies("w2")
        assert all(not (s.point_ids & {"a", "b"}) for s in available)
        # w1's own availability ignores its own claims.
        assert any(s.point_ids == {"a"} for s in state.available_strategies("w1"))

    def test_joint_strategy_key(self, catalog):
        state = GameState(catalog)
        key0 = state.joint_strategy_key()
        state.set_strategy("w1", catalog.strategies("w1")[0])
        assert state.joint_strategy_key() != key0

    def test_to_assignment_valid(self, catalog):
        state = GameState(catalog)
        state.set_strategy("w1", catalog.strategies("w1")[0])
        assignment = state.to_assignment()
        assert len(assignment) == 2
        assert assignment.busy_worker_count == 1


class TestRandomInitialState:
    def test_single_point_strategies(self, catalog):
        state = random_initial_state(catalog, seed=5)
        for worker in catalog.workers:
            strategy = state.strategy_of(worker.worker_id)
            assert strategy.size <= 1

    def test_deterministic_in_seed(self, catalog):
        a = random_initial_state(catalog, seed=9).joint_strategy_key()
        b = random_initial_state(catalog, seed=9).joint_strategy_key()
        assert a == b

    def test_varies_with_seed(self, catalog):
        keys = {
            random_initial_state(catalog, seed=s).joint_strategy_key()
            for s in range(12)
        }
        assert len(keys) > 1

    def test_disjointness_maintained(self, catalog):
        state = random_initial_state(catalog, seed=2)
        state.to_assignment()  # validation inside must not raise

    def test_worker_without_strategies_stays_null(self):
        center = make_center([make_dp("a", 1, 0, expiry=9.0)])
        # Far worker: offset 20 invalidates everything.
        workers = (make_worker("near", 0, 0), make_worker("far", -20, 0))
        sub = SubProblem(center, workers, unit_speed_travel())
        catalog = build_catalog(sub)
        state = random_initial_state(catalog, seed=0)
        assert state.strategy_of("far").is_null
        assert not state.strategy_of("near").is_null
