"""Seed-sweep differential tests: vectorized engine ≡ scalar reference.

The vectorized best-response engine (bitmask conflict index + batched IAU
evaluation, ``docs/performance.md``) promises *bit-identical* results to
the retained scalar loops: same routes, payoffs, Equation 2 ``P_dif``,
round counts, and trace contents.  PR 3's dispatch service leans on that
contract — frozen snapshots must replay offline bit-for-bit regardless of
which engine solved them — so these tests assert it across a seed sweep
and across every solver configuration that changes the hot loop
(priorities, early stopping, per-update tracing), plus a warm
dispatch-service round through :class:`DispatchEngine`.
"""

import numpy as np
import pytest

from repro.core.fairness import InequityAversion
from repro.core.payoff import payoff_difference
from repro.core.priority import PriorityModel
from repro.datasets.gmission import GMissionConfig, generate_gmission_like
from repro.games.fgt import FGTSolver
from repro.games.iegt import IEGTSolver
from repro.games.potential import IAUEvaluator, sequential_best
from repro.service.engine import DispatchEngine
from repro.vdps.catalog import build_catalog

from tests.service.conftest import make_world, task

SEEDS = [0, 1, 2, 7, 13, 42]


def _subs_and_catalogs(seed):
    """A small gMission-like instance, catalogs shared by both engines."""
    instance = generate_gmission_like(
        GMissionConfig(n_tasks=70, n_workers=9, n_delivery_points=16),
        seed=seed,
    )
    subs = list(instance.subproblems())
    catalogs = {
        sub.center.center_id: build_catalog(sub, epsilon=0.8) for sub in subs
    }
    return subs, catalogs


def _outcome(result):
    """Everything the bit-identity contract covers, as comparable values."""
    payoffs = [pair.payoff for pair in result.assignment.pairs]
    return {
        "routes": [
            (pair.worker.worker_id, pair.delivery_point_ids, pair.payoff)
            for pair in result.assignment.pairs
        ],
        "p_dif": payoff_difference(payoffs),
        "rounds": result.rounds,
        "converged": result.converged,
        "trace": [
            (
                point.round_index,
                point.payoff_difference,
                point.average_payoff,
                point.switches,
                point.potential,
            )
            for point in result.trace
        ],
    }


def _assert_engines_identical(make_solver, seed):
    """Solve every sub-problem with both engines and require equality.

    Comparisons are ``==`` on raw floats (no ``approx``): the contract is
    bit-identity, not numerical closeness.
    """
    subs, catalogs = _subs_and_catalogs(seed)
    assert subs, "instance generated no sub-problems"
    for sub in subs:
        catalog = catalogs[sub.center.center_id]
        results = {
            engine: make_solver(engine, sub).solve(
                sub, catalog=catalog, seed=seed
            )
            for engine in ("scalar", "vectorized")
        }
        assert _outcome(results["scalar"]) == _outcome(results["vectorized"])


def _priorities(sub):
    """Deterministic non-uniform priorities over the sub-problem's workers."""
    return PriorityModel(
        {
            w.worker_id: 1.0 + 0.25 * (i % 4)
            for i, w in enumerate(sub.online_workers)
        }
    )


class TestFGTDifferential:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_default_config(self, seed):
        _assert_engines_identical(
            lambda engine, sub: FGTSolver(epsilon=0.8, engine=engine), seed
        )

    @pytest.mark.parametrize("seed", SEEDS[:3])
    def test_priority_aware(self, seed):
        _assert_engines_identical(
            lambda engine, sub: FGTSolver(
                epsilon=0.8, engine=engine, priorities=_priorities(sub)
            ),
            seed,
        )

    @pytest.mark.parametrize("seed", SEEDS[:3])
    def test_early_stop(self, seed):
        _assert_engines_identical(
            lambda engine, sub: FGTSolver(
                epsilon=0.8,
                engine=engine,
                early_stop_patience=1,
                early_stop_tol=0.05,
            ),
            seed,
        )

    @pytest.mark.parametrize("seed", SEEDS[:3])
    def test_update_granularity_trace(self, seed):
        _assert_engines_identical(
            lambda engine, sub: FGTSolver(
                epsilon=0.8, engine=engine, trace_granularity="update"
            ),
            seed,
        )

    @pytest.mark.parametrize("seed", SEEDS[:2])
    def test_under_invariant_verification(self, seed):
        # The verifier observes per-switch utilities; both engines must
        # hand it the same values (a violation would raise).
        _assert_engines_identical(
            lambda engine, sub: FGTSolver(
                epsilon=0.8, engine=engine, verify=True
            ),
            seed,
        )


class TestIEGTDifferential:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_default_config(self, seed):
        _assert_engines_identical(
            lambda engine, sub: IEGTSolver(epsilon=0.8, engine=engine), seed
        )

    @pytest.mark.parametrize("seed", SEEDS[:3])
    def test_update_granularity_trace(self, seed):
        _assert_engines_identical(
            lambda engine, sub: IEGTSolver(
                epsilon=0.8, engine=engine, trace_granularity="update"
            ),
            seed,
        )

    @pytest.mark.parametrize("seed", SEEDS[:3])
    def test_early_stop(self, seed):
        _assert_engines_identical(
            lambda engine, sub: IEGTSolver(
                epsilon=0.8,
                engine=engine,
                early_stop_patience=1,
                early_stop_tol=0.5,
            ),
            seed,
        )

    @pytest.mark.parametrize("seed", SEEDS[:2])
    def test_under_invariant_verification(self, seed):
        _assert_engines_identical(
            lambda engine, sub: IEGTSolver(
                epsilon=0.8, engine=engine, verify=True
            ),
            seed,
        )


class TestServiceRoundDifferential:
    """A warm dispatch-service round is engine-independent bit-for-bit."""

    @staticmethod
    def _drive(engine):
        """Two committed rounds; the second hits the warm catalog cache."""
        world = make_world()
        svc = DispatchEngine(
            world, FGTSolver(epsilon=0.8, engine=engine), seed=11
        )
        first = svc.dispatch()
        accepted, rejected = world.add_tasks(
            [
                task("xa1", "a1", first.now + 1.3),
                task("xa2", "a2", first.now + 1.1),
                task("xb1", "b1", first.now + 1.4),
            ]
        )
        assert len(accepted) == 3 and not rejected
        second = svc.dispatch()
        return [
            (r.round_index, r.assignments, r.payoffs, r.payoff_difference)
            for r in (first, second)
        ]

    def test_warm_rounds_bit_identical(self):
        assert self._drive("scalar") == self._drive("vectorized")


class TestBatchedIAU:
    """``IAUEvaluator.utilities`` is elementwise bit-identical to ``utility``."""

    @pytest.mark.parametrize("seed", SEEDS)
    def test_exact_bit_equality(self, seed):
        rng = np.random.default_rng(seed)
        model = InequityAversion(0.5, 0.5)
        others = rng.uniform(0.0, 5.0, size=17)
        evaluator = IAUEvaluator(others, model)
        # Include exact duplicates of the sorted others to hit the
        # searchsorted/bisect tie behaviour, plus the null payoff.
        candidates = np.concatenate(
            [rng.uniform(0.0, 5.0, size=40), others[:5], [0.0]]
        )
        batched = evaluator.utilities(candidates)
        for i, payoff in enumerate(candidates):
            assert batched[i] == evaluator.utility(float(payoff))

    def test_no_others_returns_payoffs(self):
        evaluator = IAUEvaluator([], InequityAversion(0.5, 0.5))
        candidates = np.array([0.0, 1.5, 2.0])
        assert np.array_equal(evaluator.utilities(candidates), candidates)
        # ... and the returned array is a private copy.
        out = evaluator.utilities(candidates)
        out[0] = 99.0
        assert candidates[0] == 0.0


class TestSequentialBest:
    """``sequential_best`` replays FGT's scalar accept scan exactly."""

    @staticmethod
    def _scalar_scan(utilities, baseline, tol):
        best, pos = baseline, -1
        for i, u in enumerate(utilities):
            if u > best + tol:
                best, pos = u, i
        return pos, best

    @pytest.mark.parametrize("seed", SEEDS)
    def test_matches_scalar_scan_on_random_batches(self, seed):
        rng = np.random.default_rng(seed)
        for _ in range(50):
            utilities = rng.uniform(-1.0, 1.0, size=int(rng.integers(1, 30)))
            baseline = float(rng.uniform(-1.0, 1.0))
            tol = float(rng.choice([1e-9, 0.05, 0.3]))
            assert sequential_best(utilities, baseline, tol) == self._scalar_scan(
                utilities, baseline, tol
            )

    def test_tol_tie_keeps_earlier_accept(self):
        # 1.0 is accepted; 1.05 is within tol of it and must NOT displace
        # it even though it is the argmax.  This is the case where a naive
        # argmax would diverge from Algorithm 2.
        utilities = np.array([1.0, 1.05, 0.2])
        assert sequential_best(utilities, 0.0, tol=0.1) == (0, 1.0)

    def test_baseline_stands_when_nothing_clears_tol(self):
        assert sequential_best(np.array([0.5, 0.4]), 0.5, 1e-9) == (-1, 0.5)

    def test_empty_batch(self):
        assert sequential_best(np.array([]), 0.25, 1e-9) == (-1, 0.25)
