"""Regression tests for FGT's seeded tie-breaking among equal-utility moves.

Two delivery points placed symmetrically around the worker yield two
best responses with *exactly* equal utility.  The solver must (a) break
the tie with its seeded rng rather than catalog position — otherwise the
canonical payoff-then-ids catalog ordering silently biases equilibria
toward lexicographically small point ids — and (b) draw identically in
the scalar and vectorized engines, which share one rng stream.
"""

from repro.core.instance import SubProblem
from repro.games.fgt import FGTSolver

from tests.conftest import make_center, make_dp, make_worker, unit_speed_travel

SEEDS = range(24)


def _sub():
    """One cap-1 worker at the origin; `a`/`b` are mirror images (payoff
    tie), `c` is a strictly worse third option so switches happen."""
    center = make_center(
        [
            make_dp("a", 1.0, 0.0, n_tasks=1, reward=1.0),
            make_dp("b", -1.0, 0.0, n_tasks=1, reward=1.0),
            make_dp("c", 0.0, 2.0, n_tasks=1, reward=0.5),
        ]
    )
    worker = make_worker("w", 0.0, 0.0, max_dp=1)
    return SubProblem(center, (worker,), unit_speed_travel())


def _winner(engine, seed):
    result = FGTSolver(engine=engine).solve(_sub(), seed=seed)
    assert result.converged
    return result.assignment.as_mapping().get("w", ())


class TestTieBreak:
    def test_scalar_and_vectorized_draw_identically(self):
        for seed in SEEDS:
            assert _winner("scalar", seed) == _winner("vectorized", seed), seed

    def test_same_seed_is_deterministic(self):
        for engine in ("scalar", "vectorized"):
            assert _winner(engine, 13) == _winner(engine, 13)

    def test_no_first_pick_bias_across_seeds(self):
        """Both tied points win somewhere in the seed range.  Before the
        rng tie-break, `a` (first in canonical catalog order) won every
        tie, so `b` could only appear via its random initial state."""
        winners = {_winner("vectorized", seed) for seed in SEEDS}
        assert ("a",) in winners
        assert ("b",) in winners
        assert ("c",) not in winners  # strictly dominated, never kept
