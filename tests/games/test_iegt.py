"""Tests for repro.games.iegt (Algorithm 3: replicator dynamics)."""

import pytest

from repro.baselines.gta import GTASolver
from repro.core.instance import SubProblem
from repro.games.iegt import IEGTSolver
from repro.vdps.catalog import build_catalog

from tests.conftest import make_center, make_dp, make_worker, unit_speed_travel


def _sub(n_workers=4, max_dp=2):
    center = make_center(
        [
            make_dp("a", 1.0, 0.0, n_tasks=4),
            make_dp("b", 0.0, 1.5, n_tasks=2),
            make_dp("c", -2.0, 0.0, n_tasks=3),
            make_dp("d", 0.0, -1.0, n_tasks=1),
            make_dp("e", 1.5, 1.5, n_tasks=2),
            make_dp("f", -1.0, 1.0, n_tasks=2),
        ]
    )
    workers = tuple(
        make_worker(f"w{i}", 0.25 * i, -0.2 * i, max_dp=max_dp)
        for i in range(n_workers)
    )
    return SubProblem(center, workers, unit_speed_travel())


class TestSolve:
    def test_converges(self):
        result = IEGTSolver().solve(_sub(), seed=0)
        assert result.converged

    def test_assignment_valid(self):
        result = IEGTSolver().solve(_sub(), seed=1)
        assert len(result.assignment) == 4

    def test_deterministic_in_seed(self):
        a = IEGTSolver().solve(_sub(), seed=5).assignment.as_mapping()
        b = IEGTSolver().solve(_sub(), seed=5).assignment.as_mapping()
        assert a == b

    def test_total_payoff_never_decreases(self):
        # Every evolutionary switch strictly raises one worker's payoff, so
        # the traced population total is non-decreasing round over round.
        result = IEGTSolver().solve(_sub(), seed=2)
        totals = result.trace.series("potential")
        assert all(b >= a - 1e-12 for a, b in zip(totals, totals[1:]))

    def test_termination_condition_holds(self):
        # At the improved evolutionary equilibrium no below-average worker
        # has a strictly better available strategy.
        sub = _sub()
        catalog = build_catalog(sub)
        result = IEGTSolver().solve(sub, catalog=catalog, seed=3)
        assert result.converged
        payoffs = result.assignment.payoffs
        mean = sum(payoffs) / len(payoffs)
        claimed = {
            dp_id
            for pair in result.assignment
            for dp_id in pair.delivery_point_ids
        }
        for pair in result.assignment:
            payoff = pair.payoff
            if payoff >= mean - 1e-9:
                continue
            own = set(pair.delivery_point_ids)
            others_claimed = claimed - own
            for strategy in catalog.strategies(pair.worker.worker_id):
                if strategy.conflicts_with(others_claimed):
                    continue
                assert strategy.payoff <= payoff + 1e-9

    def test_max_rounds_respected(self):
        result = IEGTSolver(max_rounds=1).solve(_sub(), seed=4)
        assert result.rounds == 1

    def test_no_workers(self):
        center = make_center([make_dp("a", 1, 0)])
        sub = SubProblem(center, (), unit_speed_travel())
        result = IEGTSolver().solve(sub, seed=0)
        assert result.converged

    def test_fairer_than_greedy_on_average(self):
        sub = _sub(n_workers=5, max_dp=2)
        catalog = build_catalog(sub)
        gta = GTASolver().solve(sub, catalog=catalog).assignment.payoff_difference
        iegt_values = [
            IEGTSolver()
            .solve(sub, catalog=catalog, seed=s)
            .assignment.payoff_difference
            for s in range(5)
        ]
        assert sum(iegt_values) / len(iegt_values) <= gta + 1e-9

    def test_name_property(self):
        assert IEGTSolver(epsilon=2.0).name == "IEGT"
        assert IEGTSolver().name == "IEGT-W"

    def test_update_granularity_trace(self):
        sub = _sub()
        result = IEGTSolver(trace_granularity="update").solve(sub, seed=3)
        assert len(result.trace) == result.rounds * len(sub.workers)
        assert result.trace.final.switches == 0

    def test_invalid_granularity_rejected(self):
        with pytest.raises(ValueError, match="trace_granularity"):
            IEGTSolver(trace_granularity="per-second")

    def test_granularities_reach_same_assignment(self):
        sub = _sub()
        by_round = IEGTSolver().solve(sub, seed=5).assignment.as_mapping()
        by_update = (
            IEGTSolver(trace_granularity="update")
            .solve(sub, seed=5)
            .assignment.as_mapping()
        )
        assert by_round == by_update


class TestTermination:
    def test_invalid_mode_rejected(self):
        with pytest.raises(ValueError, match="termination"):
            IEGTSolver(termination="strict")

    def test_classic_rarely_converges(self):
        # Heterogeneous strategies mean exactly-equal payoffs essentially
        # never happen: the classic evolutionary-equilibrium condition
        # exhausts the round budget (the paper's motivation for the
        # improved condition, Section VI-C).
        sub = _sub()
        classic = IEGTSolver(termination="classic", max_rounds=30).solve(sub, seed=0)
        improved = IEGTSolver(termination="improved", max_rounds=30).solve(sub, seed=0)
        assert improved.converged
        assert improved.rounds <= classic.rounds

    def test_classic_and_improved_same_final_payoffs_when_stable(self):
        # Once no worker can improve, extra classic rounds change nothing.
        sub = _sub()
        classic = IEGTSolver(termination="classic", max_rounds=30).solve(sub, seed=2)
        improved = IEGTSolver(termination="improved", max_rounds=30).solve(sub, seed=2)
        assert classic.assignment.as_mapping() == improved.assignment.as_mapping()
