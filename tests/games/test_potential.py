"""Tests for repro.games.potential (IAU evaluation, Nash predicate)."""

import numpy as np
import pytest

from repro.core.fairness import InequityAversion
from repro.core.instance import SubProblem
from repro.games.base import GameState
from repro.games.fgt import FGTSolver
from repro.games.potential import (
    IAUEvaluator,
    best_response_index,
    is_pure_nash,
    potential_value,
)
from repro.vdps.catalog import build_catalog

from tests.conftest import make_center, make_dp, make_worker, unit_speed_travel


class TestIAUEvaluator:
    @pytest.mark.parametrize("seed", range(8))
    def test_matches_model_utility(self, seed):
        rng = np.random.default_rng(seed)
        n = int(rng.integers(2, 25))
        payoffs = rng.uniform(0, 10, size=n).tolist()
        model = InequityAversion(float(rng.uniform(0, 1)), float(rng.uniform(0, 1)))
        for idx in range(n):
            others = payoffs[:idx] + payoffs[idx + 1 :]
            evaluator = IAUEvaluator(others, model)
            assert evaluator.utility(payoffs[idx]) == pytest.approx(
                model.utility(idx, payoffs)
            )

    def test_no_others_returns_raw(self):
        evaluator = IAUEvaluator([], InequityAversion())
        assert evaluator.utility(4.2) == 4.2

    def test_tie_with_others_no_penalty_contribution(self):
        evaluator = IAUEvaluator([2.0, 2.0], InequityAversion())
        assert evaluator.utility(2.0) == pytest.approx(2.0)

    def test_utility_single_peaked_toward_equality(self):
        # With alpha=beta=0.5 the utility of moving toward the others' common
        # payoff strictly improves from both sides.
        evaluator = IAUEvaluator([5.0, 5.0, 5.0], InequityAversion())
        assert evaluator.utility(4.0) > evaluator.utility(3.0)
        assert evaluator.utility(5.0) > evaluator.utility(4.0)


class TestBestResponseIndex:
    def test_picks_maximal_utility(self):
        idx, utility = best_response_index(
            [0.0, 5.0, 2.0], [2.0, 2.0], InequityAversion()
        )
        # Candidate 2.0 matches everyone: utility 2.0; candidate 5.0 pays a
        # guilt penalty of 0.5*3/2 = 1.5 -> 3.5, still the best.
        assert idx == 1
        assert utility == pytest.approx(3.5)

    def test_tie_broken_to_first(self):
        idx, _ = best_response_index([2.0, 2.0], [1.0], InequityAversion())
        assert idx == 0

    def test_empty_candidates_rejected(self):
        with pytest.raises(ValueError):
            best_response_index([], [1.0], InequityAversion())


class TestPotential:
    def test_potential_is_sum_of_iaus(self):
        model = InequityAversion()
        payoffs = [1.0, 3.0, 2.0]
        assert potential_value(payoffs, model) == pytest.approx(
            sum(model.utility(i, payoffs) for i in range(3))
        )


class TestMonotoneIAU:
    """For beta <= 1 the IAU is strictly increasing in the own payoff.

    dIAU/dP = 1 + alpha*#above/(n-1) - beta*#below/(n-1) >= 1 - beta, so
    under the paper's alpha = beta = 0.5 the best response is simply the
    maximal-payoff available strategy (see DESIGN.md §5).
    """

    def test_monotone_for_paper_weights(self):
        evaluator = IAUEvaluator([1.0, 5.0, 9.0], InequityAversion(0.5, 0.5))
        grid = [0.0, 0.5, 1.0, 3.0, 5.0, 7.0, 9.0, 12.0]
        utilities = [evaluator.utility(p) for p in grid]
        assert all(b > a for a, b in zip(utilities, utilities[1:]))

    def test_best_response_is_payoff_argmax_for_beta_below_one(self):
        candidates = [2.0, 7.0, 4.0]
        idx, _ = best_response_index(candidates, [3.0, 3.0], InequityAversion(0.5, 0.9))
        assert idx == candidates.index(max(candidates))

    def test_guilt_bites_beyond_one(self):
        # With beta = 1.5 a worker may prefer a modest payoff near the
        # others over a runaway one.
        evaluator = IAUEvaluator([3.0, 3.0, 3.0], InequityAversion(0.5, 1.5))
        assert evaluator.utility(3.0) > evaluator.utility(30.0)


class TestIsPureNash:
    def _sub(self):
        center = make_center(
            [make_dp("a", 1, 0, n_tasks=2), make_dp("b", 2, 0, n_tasks=2)]
        )
        workers = (make_worker("w1", 0, 0, max_dp=1), make_worker("w2", 0, 0, max_dp=1))
        return SubProblem(center, workers, unit_speed_travel())

    def test_fgt_result_is_nash(self):
        sub = self._sub()
        catalog = build_catalog(sub)
        solver = FGTSolver()
        result = solver.solve(sub, catalog=catalog, seed=3)
        assert result.converged
        # Rebuild the state from the returned assignment to check the predicate.
        state = GameState(catalog)
        for pair in result.assignment:
            if pair.route is not None and len(pair.route):
                strategy = next(
                    s
                    for s in catalog.strategies(pair.worker.worker_id)
                    if s.point_ids == frozenset(pair.delivery_point_ids)
                )
                state.set_strategy(pair.worker.worker_id, strategy)
        assert is_pure_nash(state, InequityAversion())

    def test_non_nash_detected(self):
        sub = self._sub()
        catalog = build_catalog(sub)
        state = GameState(catalog)  # everyone null; any strategy improves
        assert not is_pure_nash(state, InequityAversion())


def naive_iau(own: float, others, model: InequityAversion) -> float:
    """Literal O(n) transcription of Equation 5 (Fehr-Schmidt IAU)."""
    n = len(others) + 1
    if n == 1:
        return own
    envy = sum(max(o - own, 0.0) for o in others)
    guilt = sum(max(own - o, 0.0) for o in others)
    return own - model.alpha * envy / (n - 1) - model.beta * guilt / (n - 1)


class TestFastIAUMatchesNaive:
    @pytest.mark.parametrize("seed", range(12))
    def test_prefix_sum_matches_naive_on_random_inputs(self, seed):
        rng = np.random.default_rng(seed)
        n_others = int(rng.integers(0, 40))
        others = rng.uniform(0, 10, size=n_others).tolist()
        model = InequityAversion(float(rng.uniform(0, 1)), float(rng.uniform(0, 1)))
        evaluator = IAUEvaluator(others, model)
        for own in rng.uniform(-2, 12, size=20):
            assert evaluator.utility(float(own)) == pytest.approx(
                naive_iau(float(own), others, model), abs=1e-12
            )

    def test_duplicates_and_boundary_values(self):
        others = [2.0, 2.0, 2.0, 5.0]
        model = InequityAversion(0.5, 0.5)
        evaluator = IAUEvaluator(others, model)
        for own in (1.0, 2.0, 3.5, 5.0, 7.0):
            assert evaluator.utility(own) == pytest.approx(
                naive_iau(own, others, model), abs=1e-12
            )


class TestBestResponseWithPrebuiltEvaluator:
    def test_prebuilt_evaluator_matches_from_scratch(self):
        rng = np.random.default_rng(0)
        others = rng.uniform(0, 5, size=9).tolist()
        model = InequityAversion(0.4, 0.6)
        candidates = rng.uniform(0, 5, size=15).tolist()
        direct = best_response_index(candidates, others, model)
        evaluator = IAUEvaluator(others, model)
        prebuilt = best_response_index(candidates, evaluator=evaluator)
        assert direct == prebuilt

    def test_evaluator_takes_precedence_over_model_args(self):
        evaluator = IAUEvaluator([1.0], InequityAversion(0.0, 0.0))
        # Conflicting (other_payoffs, model) must be ignored.
        idx, utility = best_response_index(
            [3.0, 4.0], [100.0], InequityAversion(1.0, 1.0), evaluator=evaluator
        )
        assert idx == 1
        assert utility == pytest.approx(evaluator.utility(4.0))

    def test_missing_both_evaluator_and_model_rejected(self):
        with pytest.raises(ValueError):
            best_response_index([1.0, 2.0])
        with pytest.raises(ValueError):
            best_response_index([1.0, 2.0], other_payoffs=[1.0])
