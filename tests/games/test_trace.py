"""Tests for repro.games.trace."""

import pytest

from repro.games.trace import ConvergenceTrace, TracePoint


class TestConvergenceTrace:
    def _trace(self):
        trace = ConvergenceTrace()
        trace.record(1, [1.0, 3.0], switches=2, potential=4.0)
        trace.record(2, [2.0, 2.0], switches=0, potential=4.5)
        return trace

    def test_record_computes_metrics(self):
        trace = self._trace()
        assert len(trace) == 2
        first = trace[0]
        assert first.payoff_difference == pytest.approx(2.0)
        assert first.average_payoff == pytest.approx(2.0)
        assert first.switches == 2

    def test_final(self):
        trace = self._trace()
        assert trace.final.round_index == 2
        assert trace.final.payoff_difference == pytest.approx(0.0)

    def test_final_on_empty_raises(self):
        with pytest.raises(IndexError):
            ConvergenceTrace().final

    def test_series(self):
        trace = self._trace()
        assert trace.series("switches") == [2, 0]
        assert trace.series("potential") == [4.0, 4.5]

    def test_iteration_and_points(self):
        trace = self._trace()
        assert [p.round_index for p in trace] == [1, 2]
        assert isinstance(trace.points[0], TracePoint)
