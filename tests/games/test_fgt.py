"""Tests for repro.games.fgt (Algorithm 2: best-response dynamics)."""

import pytest

from repro.baselines.gta import GTASolver
from repro.core.instance import SubProblem
from repro.games.fgt import FGTSolver
from repro.vdps.catalog import build_catalog

from tests.conftest import (
    make_center,
    make_dp,
    make_worker,
    unit_speed_travel,
)


def _sub(n_workers=3, max_dp=2):
    center = make_center(
        [
            make_dp("a", 1.0, 0.0, n_tasks=4),
            make_dp("b", 0.0, 1.5, n_tasks=2),
            make_dp("c", -2.0, 0.0, n_tasks=3),
            make_dp("d", 0.0, -1.0, n_tasks=1),
            make_dp("e", 1.5, 1.5, n_tasks=2),
        ]
    )
    workers = tuple(
        make_worker(f"w{i}", 0.3 * i, -0.2 * i, max_dp=max_dp)
        for i in range(n_workers)
    )
    return SubProblem(center, workers, unit_speed_travel())


class TestSolve:
    def test_converges_on_small_instance(self):
        result = FGTSolver().solve(_sub(), seed=0)
        assert result.converged
        assert result.trace.final.switches == 0

    def test_assignment_is_valid(self):
        result = FGTSolver().solve(_sub(), seed=1)
        # Assignment construction validates disjointness/deadlines/maxDP.
        assert len(result.assignment) == 3

    def test_deterministic_in_seed(self):
        a = FGTSolver().solve(_sub(), seed=7).assignment.as_mapping()
        b = FGTSolver().solve(_sub(), seed=7).assignment.as_mapping()
        assert a == b

    def test_accepts_prebuilt_catalog(self):
        sub = _sub()
        catalog = build_catalog(sub)
        result = FGTSolver().solve(sub, catalog=catalog, seed=2)
        assert result.converged

    def test_trace_records_rounds(self):
        result = FGTSolver().solve(_sub(), seed=3)
        assert len(result.trace) == result.rounds
        assert result.trace.final.switches == 0

    def test_max_rounds_respected(self):
        result = FGTSolver(max_rounds=1).solve(_sub(), seed=4)
        assert result.rounds == 1

    def test_no_workers(self):
        center = make_center([make_dp("a", 1, 0)])
        sub = SubProblem(center, (), unit_speed_travel())
        result = FGTSolver().solve(sub, seed=0)
        assert result.converged
        assert len(result.assignment) == 0

    def test_no_strategies_all_null(self):
        center = make_center([make_dp("a", 50, 0, expiry=1.0)])
        sub = SubProblem(center, (make_worker("w", 0, 0),), unit_speed_travel())
        result = FGTSolver().solve(sub, seed=0)
        assert result.converged
        assert result.assignment.busy_worker_count == 0

    def test_fairer_than_greedy_on_average(self):
        # FGT's IAU embeds inequity aversion, so across seeds it should beat
        # greedy's payoff difference on this contested instance.
        sub = _sub(n_workers=4, max_dp=2)
        catalog = build_catalog(sub)
        gta = GTASolver().solve(sub, catalog=catalog).assignment.payoff_difference
        fgt_values = [
            FGTSolver().solve(sub, catalog=catalog, seed=s).assignment.payoff_difference
            for s in range(5)
        ]
        assert sum(fgt_values) / len(fgt_values) <= gta + 1e-9

    def test_name_property(self):
        assert FGTSolver(epsilon=1.0).name == "FGT"
        assert FGTSolver(epsilon=None).name == "FGT-W"

    def test_update_granularity_trace(self):
        sub = _sub()
        result = FGTSolver(trace_granularity="update").solve(sub, seed=3)
        # One trace point per worker per round.
        assert len(result.trace) == result.rounds * len(sub.workers)
        assert result.trace.final.switches == 0

    def test_invalid_granularity_rejected(self):
        with pytest.raises(ValueError, match="trace_granularity"):
            FGTSolver(trace_granularity="per-second")

    def test_granularities_reach_same_assignment(self):
        sub = _sub()
        by_round = FGTSolver().solve(sub, seed=5).assignment.as_mapping()
        by_update = (
            FGTSolver(trace_granularity="update")
            .solve(sub, seed=5)
            .assignment.as_mapping()
        )
        assert by_round == by_update


class TestIAUWeights:
    def test_custom_weights_accepted(self):
        result = FGTSolver(alpha=1.5, beta=0.2).solve(_sub(), seed=0)
        assert result.converged

    def test_zero_weights_reduce_to_selfish_play(self):
        # alpha=beta=0 makes IAU = payoff; best response then maximises raw
        # payoff, so every busy worker holds its best available strategy.
        sub = _sub()
        result = FGTSolver(alpha=0.0, beta=0.0).solve(sub, seed=5)
        assert result.converged
