"""Tests for the future-work extensions: early stop, priorities, speeds."""

import pytest

from repro.core.instance import SubProblem
from repro.core.priority import PriorityModel, priority_payoff_difference
from repro.games.fgt import FGTSolver
from repro.games.iegt import IEGTSolver
from repro.vdps.catalog import build_catalog

from tests.conftest import make_center, make_dp, make_worker, unit_speed_travel


def _sub(n_workers=4):
    center = make_center(
        [
            make_dp("a", 1.0, 0.0, n_tasks=4),
            make_dp("b", 0.0, 1.5, n_tasks=2),
            make_dp("c", -2.0, 0.0, n_tasks=3),
            make_dp("d", 0.0, -1.0, n_tasks=1),
            make_dp("e", 1.5, 1.5, n_tasks=2),
        ]
    )
    workers = tuple(
        make_worker(f"w{i}", 0.3 * i, -0.2 * i, max_dp=2) for i in range(n_workers)
    )
    return SubProblem(center, workers, unit_speed_travel())


class TestEarlyStop:
    def test_disabled_by_default(self):
        assert FGTSolver().early_stop_patience is None
        assert IEGTSolver().early_stop_patience is None

    @pytest.mark.parametrize("solver_cls", [FGTSolver, IEGTSolver])
    def test_invalid_patience_rejected(self, solver_cls):
        with pytest.raises(ValueError, match="early_stop_patience"):
            solver_cls(early_stop_patience=0)

    @pytest.mark.parametrize("solver_cls", [FGTSolver, IEGTSolver])
    def test_early_stop_still_returns_valid_assignment(self, solver_cls):
        solver = solver_cls(early_stop_patience=1, early_stop_tol=1e12)
        result = solver.solve(_sub(), seed=0)
        # A huge tol forces the earliest possible stop; assignment stays valid.
        assert len(result.assignment) == 4

    def test_early_stop_never_beats_full_run_rounds(self):
        sub = _sub()
        catalog = build_catalog(sub)
        full = FGTSolver().solve(sub, catalog=catalog, seed=1)
        early = FGTSolver(early_stop_patience=1, early_stop_tol=1e12).solve(
            sub, catalog=catalog, seed=1
        )
        assert early.rounds <= full.rounds

    def test_natural_convergence_beats_patience(self):
        # When the game converges before the patience window fills, the run
        # is still reported as converged.
        result = FGTSolver(early_stop_patience=50).solve(_sub(), seed=2)
        assert result.converged


class TestPriorityAwareFGT:
    def test_unit_priorities_match_plain_game(self):
        sub = _sub()
        catalog = build_catalog(sub)
        plain = FGTSolver().solve(sub, catalog=catalog, seed=3)
        unit = FGTSolver(priorities=PriorityModel()).solve(
            sub, catalog=catalog, seed=3
        )
        assert plain.assignment.as_mapping() == unit.assignment.as_mapping()

    def test_priorities_shift_normalised_fairness(self):
        # Inequity terms only influence best responses for beta > 1 (see
        # DESIGN.md §5), so the comparison runs at beta = 1.5 and averages
        # over seeds.
        sub = _sub()
        catalog = build_catalog(sub)
        model = PriorityModel({"w0": 3.0, "w1": 0.4})
        prio_vals, plain_vals = [], []
        for seed in range(6):
            aware = FGTSolver(alpha=0.5, beta=1.5, priorities=model).solve(
                sub, catalog=catalog, seed=seed
            )
            plain = FGTSolver(alpha=0.5, beta=1.5).solve(
                sub, catalog=catalog, seed=seed
            )
            ids = [p.worker.worker_id for p in aware.assignment]
            prio_vals.append(
                priority_payoff_difference(aware.assignment.payoffs, ids, model)
            )
            plain_vals.append(
                priority_payoff_difference(plain.assignment.payoffs, ids, model)
            )
        # The priority-aware game optimises normalised fairness, so on
        # average it must not be worse on that metric than the plain game.
        assert sum(prio_vals) <= sum(plain_vals) + 1e-9

    def test_converges_with_priorities(self):
        model = PriorityModel({"w0": 2.0, "w1": 0.5})
        result = FGTSolver(priorities=model).solve(_sub(), seed=5)
        assert result.converged


class TestWorkerSpeeds:
    def test_slower_worker_has_lower_payoffs(self):
        center = make_center([make_dp("a", 2.0, 0.0, n_tasks=2, expiry=50.0)])
        fast = make_worker("fast", 0, 0, max_dp=1)
        sub_fast = SubProblem(center, (fast,), unit_speed_travel())
        fast_payoff = build_catalog(sub_fast).strategies("fast")[0].payoff

        from repro.core.entities import Worker
        from repro.geo.point import Point

        slow = Worker("slow", Point(0, 0), 1, "dc0", speed_kmh=0.5)
        sub_slow = SubProblem(center, (slow,), unit_speed_travel())
        slow_payoff = build_catalog(sub_slow).strategies("slow")[0].payoff
        assert slow_payoff == pytest.approx(fast_payoff / 2.0)

    def test_slow_worker_loses_tight_deadlines(self):
        center = make_center([make_dp("a", 2.0, 0.0, n_tasks=1, expiry=3.0)])
        from repro.core.entities import Worker
        from repro.geo.point import Point

        ok = Worker("ok", Point(0, 0), 1, "dc0", speed_kmh=1.0)
        too_slow = Worker("too_slow", Point(0, 0), 1, "dc0", speed_kmh=0.5)
        sub = SubProblem(center, (ok, too_slow), unit_speed_travel())
        catalog = build_catalog(sub)
        assert catalog.has_strategies("ok")
        assert not catalog.has_strategies("too_slow")

    def test_invalid_speed_rejected(self):
        from repro.core.entities import Worker
        from repro.geo.point import Point

        with pytest.raises(ValueError, match="speed_kmh"):
            Worker("w", Point(0, 0), 1, speed_kmh=0.0)

    def test_speed_survives_copies(self):
        from repro.core.entities import Worker
        from repro.geo.point import Point

        w = Worker("w", Point(0, 0), 1, speed_kmh=7.0)
        assert w.assigned_to("dc9").speed_kmh == 7.0
        assert w.offline().speed_kmh == 7.0
